//! Ablation benches for the design choices DESIGN.md calls out: per-toggle
//! kernel variants (Figure 17 at the kernel level), tile-size and
//! pipeline-depth sweeps, and format encoding throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_kernels::samoyeds_kernel::{SamoyedsKernel, SamoyedsOptions};
use samoyeds_kernels::{GemmProblem, TilingConfig};
use samoyeds_sparse::samoyeds::SamoyedsConfig;
use samoyeds_sparse::{DenseMatrix, SamoyedsWeight};

fn bench_optimisation_toggles(c: &mut Criterion) {
    let dev = DeviceSpec::rtx4070_super();
    let problem = GemmProblem::samoyeds(4096, 4096, 8192, 1024, SamoyedsConfig::DEFAULT);
    let variants: [(&str, SamoyedsOptions); 4] = [
        ("full", SamoyedsOptions::FULL),
        (
            "no_layout",
            SamoyedsOptions {
                optimized_layout: false,
                ..SamoyedsOptions::FULL
            },
        ),
        (
            "no_stationary",
            SamoyedsOptions {
                data_stationary: false,
                ..SamoyedsOptions::FULL
            },
        ),
        (
            "no_packing",
            SamoyedsOptions {
                metadata_packing: false,
                ..SamoyedsOptions::FULL
            },
        ),
    ];
    let mut group = c.benchmark_group("ablation_toggles");
    for (name, opts) in variants {
        group.bench_with_input(BenchmarkId::new("variant", name), &opts, |b, &o| {
            let k = SamoyedsKernel::with_options(dev.clone(), o);
            b.iter(|| k.stats(&problem))
        });
    }
    group.finish();
}

fn bench_tiling_sweep(c: &mut Criterion) {
    let dev = DeviceSpec::rtx4070_super();
    let problem = GemmProblem::samoyeds(4096, 4096, 4096, 4096, SamoyedsConfig::DEFAULT);
    let mut group = c.benchmark_group("ablation_tiling");
    for (name, tiling) in [
        ("default_128x64", TilingConfig::DEFAULT_4070S),
        ("small_64x64", TilingConfig::SMALL_TILE),
        ("deep_pipeline", TilingConfig::DEEP_PIPELINE),
    ] {
        group.bench_with_input(BenchmarkId::new("tiling", name), &tiling, |b, &t| {
            let k = SamoyedsKernel::new(dev.clone()).with_tiling(t);
            b.iter(|| k.stats(&problem))
        });
    }
    group.finish();
}

fn bench_format_encoding(c: &mut Criterion) {
    let dense = DenseMatrix::random(512, 1024, 9);
    c.bench_function("encode_samoyeds_512x1024", |b| {
        b.iter(|| SamoyedsWeight::prune_from_dense(&dense, SamoyedsConfig::DEFAULT).unwrap())
    });
}

criterion_group!(
    benches,
    bench_optimisation_toggles,
    bench_tiling_sweep,
    bench_format_encoding
);
criterion_main!(benches);
