//! Criterion benches over the cluster scheduler step loop: placement,
//! sharding and all-to-all accounting at increasing GPU counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use samoyeds_dist::{
    ClusterConfig, ClusterEngine, ClusterSimulator, ClusterTopology, LinkSpec, PlacementStrategy,
};
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::router::TopKRouter;

fn bench_cluster_step(c: &mut Criterion) {
    let model = MoeModelConfig::qwen2_moe();
    let plan = TopKRouter::for_config(&model, 42).route(4096);
    let mut group = c.benchmark_group("cluster_step_qwen2_4096");
    for gpus in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("gpus", gpus), &gpus, |b, &g| {
            let sim = ClusterSimulator::new(
                ClusterConfig::new(DeviceSpec::a100_40g(), g, ClusterEngine::Samoyeds),
                model.clone(),
            );
            b.iter(|| sim.step(&plan).unwrap())
        });
    }
    group.finish();
}

fn bench_placement_strategies(c: &mut Criterion) {
    let model = MoeModelConfig::qwen2_moe();
    let plan = TopKRouter::for_config(&model, 9).with_skew(1.5).route(4096);
    let mut group = c.benchmark_group("cluster_placement_skewed");
    for strategy in [
        PlacementStrategy::RoundRobin,
        PlacementStrategy::CapacityGreedy,
        PlacementStrategy::ReplicateHot { hot: 2 },
    ] {
        group.bench_with_input(
            BenchmarkId::new("strategy", strategy.name()),
            &strategy,
            |b, &s| {
                let sim = ClusterSimulator::new(
                    ClusterConfig::new(DeviceSpec::a100_40g(), 8, ClusterEngine::Samoyeds)
                        .with_strategy(s),
                    model.clone(),
                );
                b.iter(|| sim.placement_for(&plan).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_hierarchical_step(c: &mut Criterion) {
    let model = MoeModelConfig::qwen2_moe();
    let plan = TopKRouter::for_config(&model, 42)
        .with_skew(1.5)
        .route(4096);
    let mut group = c.benchmark_group("cluster_step_topologies");
    for (label, islands, per_island) in [("1x8", 1usize, 8usize), ("2x4", 2, 4), ("4x2", 4, 2)] {
        group.bench_with_input(BenchmarkId::new("layout", label), &label, |b, _| {
            let topology = ClusterTopology::symmetric(
                islands,
                per_island,
                LinkSpec::nvlink3(),
                LinkSpec::infiniband_ndr(),
            )
            .expect("valid layout");
            let sim = ClusterSimulator::new(
                ClusterConfig::new(DeviceSpec::a100_40g(), 8, ClusterEngine::Samoyeds)
                    .with_topology(topology),
                model.clone(),
            );
            b.iter(|| sim.step(&plan).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cluster_step,
    bench_placement_strategies,
    bench_hierarchical_step
);
criterion_main!(benches);
