//! Criterion benches over the event-driven fleet simulation core.
//!
//! These are the cells the perf trajectory tracks (`BENCH_fleet.json`): a
//! mid-size fleet and the headline 100-replica × 1M-request trace that the
//! event core must simulate in seconds. Traces are generated once outside
//! the timed closure; each iteration builds a fresh fleet (backend
//! construction is analytical and cheap next to the trace itself) and runs
//! it to drain.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use samoyeds_dist::{DisaggSweepReport, FaultSweepReport};
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::EngineKind;
use samoyeds_serve::{
    ExecutionBackend, FleetConfig, FleetController, NoAutoscale, NullSink, Request,
    SchedulerConfig, SharedSink, SingleGpuBackend, TraceConfig, TraceRecorder, TraceSink,
};

fn replica(scfg: &SchedulerConfig) -> Box<dyn ExecutionBackend> {
    Box::new(SingleGpuBackend::new(
        DeviceSpec::a100_40g(),
        &MoeModelConfig::qwen2_moe(),
        EngineKind::Samoyeds,
        scfg,
    ))
}

fn trace(num_requests: usize, arrival_rate_rps: f64) -> Vec<Request> {
    TraceConfig {
        num_requests,
        arrival_rate_rps,
        prompt_len_range: (16, 64),
        output_len_range: (4, 16),
        seed: 7,
    }
    .generate()
}

fn run_fleet(replicas: usize, trace: &[Request]) -> usize {
    let config = FleetConfig {
        max_replicas: replicas.max(8),
        ..FleetConfig::default()
    };
    let mut controller = FleetController::new(config).with_autoscaler(NoAutoscale);
    for _ in 0..replicas {
        controller = controller.with_replica(replica(&config.scheduler));
    }
    controller.run(trace).completed
}

/// The same run with a telemetry sink installed. The sink is built fresh
/// inside the timed closure (an `Rc` handle cannot cross iterations of a
/// drained fleet), which is also what a real caller pays.
fn run_fleet_with_sink<S: TraceSink + 'static>(
    replicas: usize,
    trace: &[Request],
    sink: S,
) -> usize {
    let config = FleetConfig {
        max_replicas: replicas.max(8),
        ..FleetConfig::default()
    };
    let (handle, _sink) = SharedSink::new(sink);
    let mut controller = FleetController::new(config)
        .with_autoscaler(NoAutoscale)
        .with_sink(handle);
    for _ in 0..replicas {
        controller = controller.with_replica(replica(&config.scheduler));
    }
    controller.run(trace).completed
}

fn bench_fleet_event_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_event_core");

    let small = trace(100_000, 400.0);
    group.bench_function("replicas8_requests100k", |b| {
        b.iter(|| black_box(run_fleet(8, &small)))
    });

    let large = trace(1_000_000, 4_000.0);
    group.bench_function("replicas100_requests1M", |b| {
        b.iter(|| black_box(run_fleet(100, &large)))
    });

    // Telemetry overhead on the headline cell: the allocation-free NullSink
    // must stay within a few percent of the sink-free run (the gate the
    // perf trajectory enforces), and the bounded recording ring prices what
    // full capture costs without letting memory scale with the trace.
    group.bench_function("replicas100_requests1M_nullsink", |b| {
        b.iter(|| black_box(run_fleet_with_sink(100, &large, NullSink)))
    });
    group.bench_function("replicas100_requests1M_recording", |b| {
        b.iter(|| {
            black_box(run_fleet_with_sink(
                100,
                &large,
                TraceRecorder::bounded(1 << 20),
            ))
        })
    });

    // Recovery-path cost: the full fault sweep (fail-fast, re-admission and
    // re-admission-plus-replacement runs over the bursty demo trace, plus the
    // topology-priced recovery replan). This prices what the control plane
    // pays to simulate degraded-mode serving, so regressions in the fault
    // path join the tracked perf trajectory.
    let model = MoeModelConfig::qwen2_moe();
    let scfg = SchedulerConfig::default();
    group.bench_function("fault_sweep", |b| {
        b.iter(|| black_box(FaultSweepReport::sweep(&model, &scfg).entries.len()))
    });

    // Disaggregation-path cost: the full prefill:decode ratio sweep (six
    // feasible four-pod runs with per-request KV handoffs, plus the three
    // validation-rejected dense cells). This prices the handoff machinery —
    // transfer events, decode-pod admission, split-request stitching — so
    // regressions in the disaggregated path join the tracked trajectory.
    group.bench_function("disagg_sweep", |b| {
        b.iter(|| black_box(DisaggSweepReport::sweep(&model, &scfg).entries.len()))
    });

    group.finish();
}

criterion_group!(benches, bench_fleet_event_core);
criterion_main!(benches);
