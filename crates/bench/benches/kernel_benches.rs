//! Criterion benches over the kernel cost models (Figures 12/13) and the
//! functional fragment-wise Samoyeds kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_kernels::gemm_dense::DenseGemm;
use samoyeds_kernels::samoyeds_kernel::SamoyedsKernel;
use samoyeds_kernels::spmm_nm::NmSpmm;
use samoyeds_kernels::spmm_venom::VenomSpmm;
use samoyeds_kernels::GemmProblem;
use samoyeds_sparse::samoyeds::SamoyedsConfig;
use samoyeds_sparse::{DenseMatrix, SamoyedsWeight, SelInput};

fn bench_kernel_cost_models(c: &mut Criterion) {
    let dev = DeviceSpec::rtx4070_super();
    let mut group = c.benchmark_group("fig12_kernel_cost");
    for &size in &[1024usize, 4096] {
        let problem = GemmProblem::samoyeds(size, size, size, size, SamoyedsConfig::DEFAULT);
        let dense = GemmProblem::dense(size, size, size);
        group.bench_with_input(BenchmarkId::new("samoyeds", size), &problem, |b, p| {
            let k = SamoyedsKernel::new(dev.clone());
            b.iter(|| k.stats(p))
        });
        group.bench_with_input(BenchmarkId::new("venom", size), &dense, |b, p| {
            let k = VenomSpmm::new(dev.clone());
            b.iter(|| k.stats(p))
        });
        group.bench_with_input(BenchmarkId::new("cusparselt", size), &dense, |b, p| {
            let k = NmSpmm::new(dev.clone());
            b.iter(|| k.stats(p))
        });
        group.bench_with_input(BenchmarkId::new("cublas", size), &dense, |b, p| {
            let k = DenseGemm::new(dev.clone());
            b.iter(|| k.stats(p))
        });
    }
    group.finish();
}

fn bench_functional_samoyeds_kernel(c: &mut Criterion) {
    let dev = DeviceSpec::rtx4070_super();
    let kernel = SamoyedsKernel::new(dev);
    let weight = SamoyedsWeight::prune_from_dense(
        &DenseMatrix::random(128, 256, 1),
        SamoyedsConfig::DEFAULT,
    )
    .unwrap();
    let input = SelInput::dense(DenseMatrix::random(256, 64, 2));
    c.bench_function("samoyeds_fragmentwise_128x256x64", |b| {
        b.iter(|| kernel.execute(&weight, &input).unwrap())
    });
}

criterion_group!(
    benches,
    bench_kernel_cost_models,
    bench_functional_samoyeds_kernel
);
criterion_main!(benches);
