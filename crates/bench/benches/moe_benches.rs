//! Criterion benches over the MoE-layer and decoder-layer cost evaluation
//! (Figures 14-16) and the routing substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::attention::AttentionKind;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::decoder::DecoderLayer;
use samoyeds_moe::engines::{Engine, EngineKind};
use samoyeds_moe::router::TopKRouter;

fn bench_moe_layer_cost(c: &mut Criterion) {
    let dev = DeviceSpec::rtx4070_super();
    let cfg = MoeModelConfig::mixtral_8x7b();
    let plan = TopKRouter::for_config(&cfg, 42).route(4096);
    let mut group = c.benchmark_group("fig14_moe_layer_cost");
    for kind in EngineKind::all() {
        group.bench_with_input(BenchmarkId::new("engine", kind.name()), &kind, |b, &k| {
            let engine = Engine::new(k, dev.clone());
            b.iter(|| engine.moe_layer_cost(&cfg, 4096, &plan))
        });
    }
    group.finish();
}

fn bench_decoder_layer(c: &mut Criterion) {
    let dev = DeviceSpec::rtx4070_super();
    let cfg = MoeModelConfig::qwen2_moe();
    let layer = DecoderLayer::new(dev, EngineKind::Samoyeds, AttentionKind::Flash);
    c.bench_function("fig15_decoder_layer_cost_qwen2", |b| {
        b.iter(|| layer.layer_cost(&cfg, 1, 4096))
    });
}

fn bench_router(c: &mut Criterion) {
    let cfg = MoeModelConfig::deepseek_moe();
    let router = TopKRouter::for_config(&cfg, 7);
    c.bench_function("router_4096_tokens_64_experts", |b| {
        b.iter(|| router.route(4096))
    });
}

criterion_group!(
    benches,
    bench_moe_layer_cost,
    bench_decoder_layer,
    bench_router
);
criterion_main!(benches);
