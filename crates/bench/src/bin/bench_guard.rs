//! CI perf gate: compare a freshly generated `BENCH_*.json` against the
//! committed baseline and exit non-zero if any matched benchmark regressed
//! past the allowed ratio.
//!
//! ```text
//! bench_guard --current <fresh.json> --baseline <committed.json> \
//!             [--key <name-substring>] [--max-ratio 1.2]
//! ```
//!
//! `--key` restricts the gate to benches whose full name contains the given
//! substring (default: all benches present in both files). The gate also
//! fails if `--key` matches nothing in the current run — a silently missing
//! headline cell must not pass CI — and warns (both directions) about cells
//! present on only one side, which the ratio gate cannot compare.

use samoyeds_bench::perf::{missing_cells, parse_bench_json, regressions};
use std::process::ExitCode;

struct Args {
    current: String,
    baseline: String,
    key: String,
    max_ratio: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut current = None;
    let mut baseline = None;
    let mut key = String::new();
    let mut max_ratio = 1.2;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--current" => current = Some(value("--current")?),
            "--baseline" => baseline = Some(value("--baseline")?),
            "--key" => key = value("--key")?,
            "--max-ratio" => {
                max_ratio = value("--max-ratio")?
                    .parse()
                    .map_err(|e| format!("--max-ratio: {e}"))?
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Args {
        current: current.ok_or("--current <path> is required")?,
        baseline: baseline.ok_or("--baseline <path> is required")?,
        key,
        max_ratio,
    })
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| format!("could not read {path}: {e}"))
    };
    let current = parse_bench_json(&read(&args.current)?);
    let baseline = parse_bench_json(&read(&args.baseline)?);

    let matched: Vec<&String> = current
        .keys()
        .filter(|name| name.contains(&args.key))
        .collect();
    if matched.is_empty() {
        return Err(format!(
            "no benchmark in {} matches key {:?}",
            args.current, args.key
        ));
    }
    println!(
        "bench_guard: {} bench(es) match key {:?}; gate ratio {:.2}",
        matched.len(),
        args.key,
        args.max_ratio
    );
    for name in &matched {
        match baseline.get(*name) {
            Some(base) => println!(
                "  {name}: {:.3} ms vs baseline {:.3} ms ({:.2}x)",
                current[*name] / 1e6,
                base / 1e6,
                current[*name] / base
            ),
            None => println!(
                "  {name}: {:.3} ms (no baseline — skipped)",
                current[*name] / 1e6
            ),
        }
    }

    // Cells the ratio gate cannot see: new benches with no baseline, and
    // baseline cells the current run no longer produces (a renamed or
    // dropped headline cell would otherwise pass CI silently forever).
    for name in missing_cells(&current, &baseline, &args.key) {
        eprintln!("WARNING {name}: in current run but not in baseline — ungated until the baseline is regenerated");
    }
    for name in missing_cells(&baseline, &current, &args.key) {
        eprintln!(
            "WARNING {name}: in baseline but missing from current run — its gate no longer runs"
        );
    }

    let hits = regressions(&current, &baseline, &args.key, args.max_ratio);
    for r in &hits {
        eprintln!(
            "REGRESSION {}: {:.3} ms vs baseline {:.3} ms ({:.2}x > {:.2}x)",
            r.name,
            r.current_ns / 1e6,
            r.baseline_ns / 1e6,
            r.ratio,
            args.max_ratio
        );
    }
    Ok(hits.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => {
            println!("bench_guard: OK");
            ExitCode::SUCCESS
        }
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("bench_guard: {msg}");
            ExitCode::FAILURE
        }
    }
}
