//! Runs the paper-reproduction experiments and writes their reports to
//! `results/<id>.md`.
//!
//! Usage:
//! ```text
//! cargo run --release -p samoyeds-bench --bin experiments            # all
//! cargo run --release -p samoyeds-bench --bin experiments fig12_kernel_perf table3_max_batch
//! ```

use samoyeds_bench::{all_experiments, run_experiment};
use std::fs;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected = all_experiments()
        .into_iter()
        .filter(|e| args.is_empty() || args.iter().any(|a| a == e.id()))
        .collect::<Vec<_>>();
    if selected.is_empty() {
        eprintln!("no experiment matched; known ids:");
        for e in all_experiments() {
            eprintln!("  {}", e.id());
        }
        std::process::exit(1);
    }
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("create results directory");
    for exp in selected {
        // simlint::allow(wallclock): bench-harness progress timing only —
        // this bin is outside the simulation (crates/bench/src/bin is
        // wall-clock-exempt by rule, the waiver documents why); nothing the
        // experiments compute depends on the measured duration
        let started = std::time::Instant::now();
        let rows = run_experiment(exp);
        let report = rows.join("\n");
        println!(
            "\n=== {} ({:.1}s) ===\n{report}",
            exp.id(),
            started.elapsed().as_secs_f64()
        );
        fs::write(out_dir.join(format!("{}.md", exp.id())), report + "\n")
            .expect("write experiment report");
    }
}
