//! One function per table/figure of the paper's evaluation (§6).

use rayon::prelude::*;
use samoyeds_dist::{
    render_fleet_sizing, render_placement_comparison, render_topology_placement, ClusterReport,
    ClusterServingReport, ClusterTopology, FaultSweepReport, FleetAutoscaleReport,
    FleetTraceReport, LinkSpec, TopologySweepReport,
};
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_kernels::autotune::{adapt_for_device, suggested_adaptation, Adaptation};
use samoyeds_kernels::gemm_dense::DenseGemm;
use samoyeds_kernels::samoyeds_kernel::{SamoyedsKernel, SamoyedsOptions};
use samoyeds_kernels::spmm_csr::CsrSpmm;
use samoyeds_kernels::spmm_nm::NmSpmm;
use samoyeds_kernels::spmm_venom::VenomSpmm;
use samoyeds_kernels::{GemmProblem, TilingConfig};
use samoyeds_moe::attention::AttentionKind;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::decoder::DecoderLayer;
use samoyeds_moe::engines::{Engine, EngineKind};
use samoyeds_moe::memory::{batch_experiment_seq_len, max_batch_size};
use samoyeds_moe::router::TopKRouter;
use samoyeds_pruning::accuracy::{ProxyTask, PruneMethod};
use samoyeds_serve::{SchedulerConfig, ServingSimulator, TraceConfig};
use samoyeds_sparse::prune::PruneFormat;
use samoyeds_sparse::samoyeds::SamoyedsConfig;
use samoyeds_sparse::venom::VenomConfig;

/// The experiments of the paper, by figure/table number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Figure 2: decoder-layer time breakdown.
    Fig02Breakdown,
    /// Figure 11(b): output-layout optimisation vs input sparsity.
    Fig11Layout,
    /// Figure 12: kernel performance, synthetic grid + realistic shapes.
    Fig12KernelPerf,
    /// Figure 13: throughput vs m / k / n.
    Fig13ThroughputSweep,
    /// Figure 14: MoE-layer speedups.
    Fig14MoeLayer,
    /// Figure 15: end-to-end decoder speedups.
    Fig15EndToEnd,
    /// Figure 16: throughput vs batch size.
    Fig16BatchThroughput,
    /// Table 3: maximum batch sizes.
    Table3MaxBatch,
    /// Figure 17: optimisation breakdown (W / WI / WIT / WITS).
    Fig17Breakdown,
    /// Table 4: F1 of BERT-like proxies across (N,M,V) configurations.
    Table4Accuracy,
    /// Table 5: perplexity of LM proxies across formats.
    Table5Perplexity,
    /// Figure 18: direct-porting portability.
    Fig18Portability,
    /// Table 6: suggested per-device adaptations.
    Table6Adaptation,
    /// Figure 19: comparison with PIT.
    Fig19PitCompare,
    /// Beyond the paper: continuous-batching serving sweep (per-engine
    /// throughput and latency percentiles on a shared request trace).
    ServingSweep,
    /// Beyond the paper: multi-GPU expert-parallel cluster sweep (dense vs
    /// VENOM vs Samoyeds on 1/2/4/8 GPUs, fleet sizing, placement
    /// strategies).
    ClusterSweep,
    /// Beyond the paper: cluster-aware continuous batching — a shared
    /// request trace served through the scheduler over `ClusterBackend`s
    /// (1/2/4/8 GPUs × NVLink/PCIe × dense/VENOM/Samoyeds), with admission
    /// against the straggler per-GPU budget and step times that include the
    /// dispatch/combine collectives.
    ClusterServing,
    /// Beyond the paper: the online fleet control plane — heterogeneous
    /// fleets (A100 pods next to consumer singles) served through
    /// capability-aware dispatch with SLO-driven autoscaling on a bursty
    /// (calm → spike → calm) trace; Samoyeds fleets absorb the spike with
    /// fewer scale-out events than dense because each compressed replica
    /// carries more load.
    FleetAutoscale,
    /// Beyond the paper: observability — the mixed-fleet autoscale demo
    /// re-run with a recording telemetry sink: per-request latency
    /// attribution (queue wait / prefill / decode telescoping exactly to
    /// end-to-end latency), registry counters against the run's exact
    /// metrics, and a Perfetto-loadable Chrome trace of every engine step.
    FleetTrace,
    /// Beyond the paper: hierarchical interconnect topologies — the same
    /// 8-GPU fleet priced as one flat NVLink island, as 2×4 NVLink islands
    /// on an InfiniBand spine, and as 4×2 PCIe hosts on the same spine,
    /// under dense/VENOM/Samoyeds weights and skewed routing. Shows where
    /// the spine becomes the straggler, and island-aware hot-expert
    /// replication keeping traffic off it.
    TopologySweep,
    /// Beyond the paper: fault injection — the same fleet and bursty trace
    /// replayed under a scripted replica crash and link degradation with
    /// three recovery policies (fail-fast, re-admit, re-admit + replace);
    /// the re-admission weight transfer is priced by the placement layer
    /// over the 2×4 topology, and the report tracks recovery time, requests
    /// lost vs re-admitted, and SLO attainment before/during/after each
    /// fault.
    FaultSweep,
}

impl Experiment {
    /// Stable identifier used for file names and CLI selection.
    pub fn id(&self) -> &'static str {
        match self {
            Experiment::Fig02Breakdown => "fig02_breakdown",
            Experiment::Fig11Layout => "fig11_layout",
            Experiment::Fig12KernelPerf => "fig12_kernel_perf",
            Experiment::Fig13ThroughputSweep => "fig13_throughput_sweep",
            Experiment::Fig14MoeLayer => "fig14_moe_layer",
            Experiment::Fig15EndToEnd => "fig15_end_to_end",
            Experiment::Fig16BatchThroughput => "fig16_batch_throughput",
            Experiment::Table3MaxBatch => "table3_max_batch",
            Experiment::Fig17Breakdown => "fig17_opt_breakdown",
            Experiment::Table4Accuracy => "table4_accuracy_f1",
            Experiment::Table5Perplexity => "table5_perplexity",
            Experiment::Fig18Portability => "fig18_portability",
            Experiment::Table6Adaptation => "table6_adaptation",
            Experiment::Fig19PitCompare => "fig19_pit_compare",
            Experiment::ServingSweep => "serving_sweep",
            Experiment::ClusterSweep => "cluster_sweep",
            Experiment::ClusterServing => "cluster_serving",
            Experiment::FleetAutoscale => "fleet_autoscale",
            Experiment::FleetTrace => "fleet_trace",
            Experiment::TopologySweep => "topology_sweep",
            Experiment::FaultSweep => "fault_sweep",
        }
    }
}

/// All experiments in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment::Fig02Breakdown,
        Experiment::Fig11Layout,
        Experiment::Fig12KernelPerf,
        Experiment::Fig13ThroughputSweep,
        Experiment::Fig14MoeLayer,
        Experiment::Fig15EndToEnd,
        Experiment::Fig16BatchThroughput,
        Experiment::Table3MaxBatch,
        Experiment::Fig17Breakdown,
        Experiment::Table4Accuracy,
        Experiment::Table5Perplexity,
        Experiment::Fig18Portability,
        Experiment::Table6Adaptation,
        Experiment::Fig19PitCompare,
        Experiment::ServingSweep,
        Experiment::ClusterSweep,
        Experiment::ClusterServing,
        Experiment::FleetAutoscale,
        Experiment::FleetTrace,
        Experiment::TopologySweep,
        Experiment::FaultSweep,
    ]
}

/// Run one experiment and return its markdown report lines.
pub fn run_experiment(exp: Experiment) -> Vec<String> {
    match exp {
        Experiment::Fig02Breakdown => fig02_breakdown(),
        Experiment::Fig11Layout => fig11_layout(),
        Experiment::Fig12KernelPerf => fig12_kernel_perf(),
        Experiment::Fig13ThroughputSweep => fig13_throughput_sweep(),
        Experiment::Fig14MoeLayer => fig14_moe_layer(),
        Experiment::Fig15EndToEnd => fig15_end_to_end(),
        Experiment::Fig16BatchThroughput => fig16_batch_throughput(),
        Experiment::Table3MaxBatch => table3_max_batch(),
        Experiment::Fig17Breakdown => fig17_breakdown(),
        Experiment::Table4Accuracy => table4_accuracy(),
        Experiment::Table5Perplexity => table5_perplexity(),
        Experiment::Fig18Portability => fig18_portability(),
        Experiment::Table6Adaptation => table6_adaptation(),
        Experiment::Fig19PitCompare => fig19_pit_compare(),
        Experiment::ServingSweep => serving_sweep(),
        Experiment::ClusterSweep => cluster_sweep(),
        Experiment::ClusterServing => cluster_serving(),
        Experiment::FleetAutoscale => fleet_autoscale(),
        Experiment::FleetTrace => fleet_trace(),
        Experiment::TopologySweep => topology_sweep(),
        Experiment::FaultSweep => fault_sweep(),
    }
}

fn device() -> DeviceSpec {
    DeviceSpec::rtx4070_super()
}

fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// The synthetic kernel-benchmark grid (the paper uses 238 sizes with
/// m, k, n between 256 and 16384; we sweep the same range on a power-of-two
/// grid).
pub fn synthetic_grid() -> Vec<(usize, usize, usize)> {
    let sizes = [256usize, 512, 1024, 2048, 4096, 8192, 16384];
    let mut grid = Vec::new();
    for &m in &sizes {
        for &k in &sizes {
            for &n in &sizes {
                // Skip the largest corner cases to keep operand footprints
                // within a 12 GiB device (the paper's grid does the same).
                if m * k + k * n + m * n <= 16384 * 16384 * 2 {
                    grid.push((m, k, n));
                }
            }
        }
    }
    grid
}

/// The realistic kernel shapes of Table 2: the three expert projections of
/// each model with 4096 tokens.
pub fn realistic_shapes() -> Vec<(String, usize, usize, usize)> {
    let mut out = Vec::new();
    for cfg in MoeModelConfig::table2() {
        let h = cfg.hidden_size;
        let i = cfg.intermediate_size;
        out.push((
            format!("{} gate/up ({})", cfg.name, cfg.cfg_group),
            i,
            h,
            4096,
        ));
        out.push((format!("{} down ({})", cfg.name, cfg.cfg_group), h, i, 4096));
    }
    out
}

/// Speedups of the Samoyeds kernel over every baseline for one problem size.
fn kernel_speedups(m: usize, k: usize, n: usize) -> (f64, f64, f64, f64) {
    let dev = device();
    let problem = GemmProblem::samoyeds(m, k, n, n, SamoyedsConfig::DEFAULT);
    let dense_problem = GemmProblem::dense(m, k, n);
    let t_samoyeds = SamoyedsKernel::new(dev.clone()).stats(&problem).time_ms;
    let t_cublas = DenseGemm::new(dev.clone()).stats(&dense_problem).time_ms;
    let t_cusparselt = NmSpmm::new(dev.clone()).stats(&dense_problem).time_ms;
    let t_venom = VenomSpmm::new(dev.clone()).stats(&dense_problem).time_ms;
    let t_sputnik = CsrSpmm::new(dev).stats(&dense_problem, 0.75).time_ms;
    (
        t_cublas / t_samoyeds,
        t_cusparselt / t_samoyeds,
        t_venom / t_samoyeds,
        t_sputnik / t_samoyeds,
    )
}

/// Figure 2: decoder-layer time breakdown with and without Flash-Attention.
pub fn fig02_breakdown() -> Vec<String> {
    let dev = device();
    let mut rows = vec![
        "| Model | MoE share (standard attn) | MoE share (Flash-Attention) |".to_string(),
        "|---|---|---|".to_string(),
    ];
    for cfg in MoeModelConfig::table2() {
        let seq = 4096.min(cfg.max_seq_len);
        let std = DecoderLayer::new(
            dev.clone(),
            EngineKind::Transformers,
            AttentionKind::Standard,
        )
        .breakdown(&cfg, 1, seq);
        let flash = DecoderLayer::new(dev.clone(), EngineKind::Transformers, AttentionKind::Flash)
            .breakdown(&cfg, 1, seq);
        rows.push(format!(
            "| {} | {:.0}% | {:.0}% |",
            cfg.name,
            std.moe_fraction() * 100.0,
            flash.moe_fraction() * 100.0
        ));
    }
    rows
}

/// Figure 11(b): speedup of the compressed output layout over the plain
/// layout as input sparsity grows.
pub fn fig11_layout() -> Vec<String> {
    let dev = device();
    let mut rows = vec![
        "| Input sparsity | Speedup with optimized layout |".to_string(),
        "|---|---|".to_string(),
    ];
    let (m, k, n) = (4096usize, 4096usize, 8192usize);
    for keep in [1.0f64, 0.75, 0.5, 0.25, 0.125, 0.0625] {
        let selected = ((n as f64 * keep) as usize).max(64);
        let problem = GemmProblem::samoyeds(m, k, n, selected, SamoyedsConfig::DEFAULT);
        let with = SamoyedsKernel::with_options(dev.clone(), SamoyedsOptions::FULL)
            .stats(&problem)
            .time_ms;
        // Without the compressed output layout the kernel (and the operator
        // consuming its result) transfers the zero rows of the full-width
        // intermediate tensor (Figure 11(a)): one extra write + read of the
        // unselected columns through DRAM.
        let zero_bytes = (m * (n - selected)) as f64 * 2.0 * 2.0;
        let without = with + zero_bytes / (dev.mem_bandwidth_gbps * 1e9) * 1e3;
        rows.push(format!(
            "| {:.1}% | {:.2}x |",
            (1.0 - keep) * 100.0,
            without / with
        ));
    }
    rows
}

/// Figure 12: kernel performance on the synthetic grid and realistic shapes.
pub fn fig12_kernel_perf() -> Vec<String> {
    let grid = synthetic_grid();
    let speedups: Vec<(f64, f64, f64, f64)> = grid
        .par_iter()
        .map(|&(m, k, n)| kernel_speedups(m, k, n))
        .collect();
    let cublas: Vec<f64> = speedups.iter().map(|s| s.0).collect();
    let cusparselt: Vec<f64> = speedups.iter().map(|s| s.1).collect();
    let venom: Vec<f64> = speedups.iter().map(|s| s.2).collect();
    let sputnik: Vec<f64> = speedups.iter().map(|s| s.3).collect();
    let maxf = |v: &[f64]| v.iter().cloned().fold(f64::MIN, f64::max);

    let mut rows = vec![
        format!(
            "Synthetic benchmark: {} sizes, m/k/n in 256..16384",
            grid.len()
        ),
        "| Baseline | Samoyeds geomean speedup | max speedup |".to_string(),
        "|---|---|---|".to_string(),
        format!(
            "| cuBLAS | {:.2}x | {:.2}x |",
            geomean(&cublas),
            maxf(&cublas)
        ),
        format!(
            "| cuSPARSELt | {:.2}x | {:.2}x |",
            geomean(&cusparselt),
            maxf(&cusparselt)
        ),
        format!("| VENOM | {:.2}x | {:.2}x |", geomean(&venom), maxf(&venom)),
        format!(
            "| Sputnik | {:.2}x | {:.2}x |",
            geomean(&sputnik),
            maxf(&sputnik)
        ),
        String::new(),
        "Realistic benchmark (Table 2 expert shapes, 4096 tokens):".to_string(),
        "| Shape | vs cuBLAS | vs cuSPARSELt | vs VENOM | vs Sputnik |".to_string(),
        "|---|---|---|---|---|".to_string(),
    ];
    for (label, m, k, n) in realistic_shapes() {
        let (c, cs, v, s) = kernel_speedups(m, k, n);
        rows.push(format!(
            "| {label} | {c:.2}x | {cs:.2}x | {v:.2}x | {s:.2}x |"
        ));
    }
    rows
}

/// Figure 13: throughput trend while sweeping one dimension.
pub fn fig13_throughput_sweep() -> Vec<String> {
    let dev = device();
    let sizes = [256usize, 512, 1024, 2048, 4096, 8192, 16384];
    let mut rows = vec![
        "| Swept dim | size | Samoyeds TFLOPS | VENOM TFLOPS | cuSPARSELt TFLOPS | cuBLAS TFLOPS |"
            .to_string(),
        "|---|---|---|---|---|---|".to_string(),
    ];
    let mut cells = Vec::new();
    for (dim, make) in [
        (
            "m",
            Box::new(|s: usize| (s, 4096usize, 4096usize))
                as Box<dyn Fn(usize) -> (usize, usize, usize)>,
        ),
        ("k", Box::new(|s: usize| (4096, s, 4096))),
        ("n", Box::new(|s: usize| (4096, 4096, s))),
    ] {
        for &s in &sizes {
            let (m, k, n) = make(s);
            cells.push((dim, s, m, k, n));
        }
    }
    rows.extend(cells.par_iter().map(|&(dim, s, m, k, n)| {
        let logical = 2.0 * m as f64 * k as f64 * n as f64;
        let problem = GemmProblem::samoyeds(m, k, n, n, SamoyedsConfig::DEFAULT);
        let dense = GemmProblem::dense(m, k, n);
        let tf = |ms: f64| logical / (ms * 1e-3) / 1e12;
        format!(
            "| {dim} | {s} | {:.1} | {:.1} | {:.1} | {:.1} |",
            tf(SamoyedsKernel::new(dev.clone()).stats(&problem).time_ms),
            tf(VenomSpmm::new(dev.clone()).stats(&dense).time_ms),
            tf(NmSpmm::new(dev.clone()).stats(&dense).time_ms),
            tf(DenseGemm::new(dev.clone()).stats(&dense).time_ms),
        )
    }));
    rows
}

/// Figure 14: MoE-layer speedups over Transformers, with and without shared
/// experts.
pub fn fig14_moe_layer() -> Vec<String> {
    let dev = device();
    let tokens = 4096usize;
    let mut rows = vec![
        "| Model | Shared experts | Samoyeds vs Transformers | vs MegaBlocks | vs vLLM-DS |"
            .to_string(),
        "|---|---|---|---|---|".to_string(),
    ];
    for shared in [2usize, 0] {
        for mut cfg in MoeModelConfig::table2() {
            cfg.num_shared_experts = shared;
            let plan = TopKRouter::for_config(&cfg, 42).route(tokens);
            let time = |kind: EngineKind| {
                let c = Engine::new(kind, dev.clone()).moe_layer_cost(&cfg, tokens, &plan);
                if c.supported {
                    Some(c.time_ms)
                } else {
                    None
                }
            };
            let samoyeds = time(EngineKind::Samoyeds).unwrap();
            let fmt = |t: Option<f64>| match t {
                Some(t) => format!("{:.2}x", t / samoyeds),
                None => "NS".to_string(),
            };
            rows.push(format!(
                "| {} | {} | {} | {} | {} |",
                cfg.name,
                shared,
                fmt(time(EngineKind::Transformers)),
                fmt(time(EngineKind::MegaBlocks)),
                fmt(time(EngineKind::VllmDs)),
            ));
        }
    }
    rows
}

/// Figure 15: end-to-end decoder-layer speedups.
pub fn fig15_end_to_end() -> Vec<String> {
    let dev = device();
    let mut rows = vec![
        "| Model | batch | seq | Samoyeds vs Transformers | vs MegaBlocks | vs vLLM-DS |"
            .to_string(),
        "|---|---|---|---|---|---|".to_string(),
    ];
    for cfg in MoeModelConfig::table2() {
        let seq = 4096.min(cfg.max_seq_len);
        let batch = if cfg.cfg_group == "CFG#1" { 16 } else { 1 };
        let time = |kind: EngineKind| {
            let layer = DecoderLayer::new(dev.clone(), kind, AttentionKind::Flash);
            let c = layer.layer_cost(&cfg, batch, seq);
            if c.supported {
                Some(c.time_ms)
            } else {
                None
            }
        };
        let samoyeds = time(EngineKind::Samoyeds).unwrap();
        let fmt = |t: Option<f64>| match t {
            Some(t) => format!("{:.2}x", t / samoyeds),
            None => "NS/OOM".to_string(),
        };
        rows.push(format!(
            "| {} | {} | {} | {} | {} | {} |",
            cfg.name,
            batch,
            seq,
            fmt(time(EngineKind::Transformers)),
            fmt(time(EngineKind::MegaBlocks)),
            fmt(time(EngineKind::VllmDs)),
        ));
    }
    rows
}

/// Figure 16: decoder-layer throughput at increasing batch sizes.
pub fn fig16_batch_throughput() -> Vec<String> {
    let dev = device();
    let mut rows = vec![
        "| Model | batch | Samoyeds tok/s | Transformers tok/s | vLLM-DS tok/s |".to_string(),
        "|---|---|---|---|---|".to_string(),
    ];
    for cfg in [MoeModelConfig::mixtral_8x7b(), MoeModelConfig::qwen2_moe()] {
        let seq = batch_experiment_seq_len(&cfg);
        for batch in [1usize, 2, 4, 8, 16] {
            let tput = |kind: EngineKind| {
                DecoderLayer::new(dev.clone(), kind, AttentionKind::Flash)
                    .throughput_tokens_per_s(&cfg, batch, seq)
            };
            rows.push(format!(
                "| {} | {} | {:.0} | {:.0} | {:.0} |",
                cfg.name,
                batch,
                tput(EngineKind::Samoyeds),
                tput(EngineKind::Transformers),
                tput(EngineKind::VllmDs),
            ));
        }
    }
    rows
}

/// Table 3: maximum batch sizes per engine and the boost over the best
/// baseline.
pub fn table3_max_batch() -> Vec<String> {
    let dev = device();
    let mut rows = vec![
        "| Model | Transformers | MegaBlocks | vLLM-DS | Samoyeds | Boost over best baseline |"
            .to_string(),
        "|---|---|---|---|---|---|".to_string(),
    ];
    let mut boosts = Vec::new();
    for cfg in MoeModelConfig::table2() {
        let seq = batch_experiment_seq_len(&cfg);
        let mb = |kind| max_batch_size(&dev, kind, &cfg, seq);
        let t = mb(EngineKind::Transformers);
        let m = mb(EngineKind::MegaBlocks);
        let v = mb(EngineKind::VllmDs);
        let s = mb(EngineKind::Samoyeds);
        let best = t.max(m).max(v).max(1);
        let boost = s as f64 / best as f64;
        boosts.push(boost);
        let show = |x: usize| {
            if x == 0 {
                "OOM/-".to_string()
            } else {
                x.to_string()
            }
        };
        rows.push(format!(
            "| {} | {} | {} | {} | {} | {:.2}x |",
            cfg.name,
            show(t),
            show(m),
            show(v),
            show(s),
            boost
        ));
    }
    rows.push(format!(
        "| **average** | | | | | {:.2}x |",
        boosts.iter().sum::<f64>() / boosts.len() as f64
    ));
    rows
}

/// Figure 17: stepwise optimisation breakdown (W, WI, WIT, WITS) as speedup
/// over the vanilla Transformers MoE layer.
pub fn fig17_breakdown() -> Vec<String> {
    let dev = device();
    let tokens = 4096usize;
    let mut rows = vec![
        "| Model | +W | +WI | +WIT | +WITS |".to_string(),
        "|---|---|---|---|---|".to_string(),
    ];
    for cfg in MoeModelConfig::table2() {
        let plan = TopKRouter::for_config(&cfg, 42).route(tokens);
        let vanilla = Engine::new(EngineKind::Transformers, dev.clone())
            .moe_layer_cost(&cfg, tokens, &plan)
            .time_ms;
        let step = |opts: SamoyedsOptions| {
            let t = Engine::new(EngineKind::Samoyeds, dev.clone())
                .with_samoyeds_options(opts)
                .moe_layer_cost(&cfg, tokens, &plan)
                .time_ms;
            vanilla / t
        };
        rows.push(format!(
            "| {} | {:.2}x | {:.2}x | {:.2}x | {:.2}x |",
            cfg.name,
            step(SamoyedsOptions::WEIGHT_ONLY),
            step(SamoyedsOptions::WEIGHT_INPUT),
            step(SamoyedsOptions::WEIGHT_INPUT_LAYOUT),
            step(SamoyedsOptions::FULL),
        ));
    }
    rows
}

/// Table 4: F1 of the BERT-like proxies across (N,M,V) configurations.
pub fn table4_accuracy() -> Vec<String> {
    let mut rows = vec![
        "| Model | Dense | (1,2,16) | (1,2,32) | (4,8,32) | (8,16,32) |".to_string(),
        "|---|---|---|---|---|---|".to_string(),
    ];
    for (name, seed) in [("Bert-base (proxy)", 3u64), ("Bert-large (proxy)", 4u64)] {
        let task = ProxyTask::bert_like(name, seed);
        let f1 = |fmt: PruneFormat| task.evaluate(fmt, PruneMethod::WoodFisher).unwrap().f1;
        rows.push(format!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} |",
            name,
            f1(PruneFormat::Dense),
            f1(PruneFormat::Samoyeds(SamoyedsConfig::N1_M2_V16)),
            f1(PruneFormat::Samoyeds(SamoyedsConfig::N1_M2_V32)),
            f1(PruneFormat::Samoyeds(SamoyedsConfig::N4_M8_V32)),
            f1(PruneFormat::Samoyeds(SamoyedsConfig::N8_M16_V32)),
        ));
    }
    rows
}

/// Table 5: perplexity of the LM proxies pruned into each format.
pub fn table5_perplexity() -> Vec<String> {
    let mut rows = vec![
        "| Model | Dense | Unstructured | VENOM | Samoyeds |".to_string(),
        "|---|---|---|---|---|".to_string(),
    ];
    for task in [ProxyTask::tiny_llama_like(7), ProxyTask::qwen2_like(8)] {
        let ppl = |fmt: PruneFormat| {
            task.evaluate(fmt, PruneMethod::SparseGpt)
                .unwrap()
                .perplexity
        };
        rows.push(format!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} |",
            task.name(),
            ppl(PruneFormat::Dense),
            ppl(PruneFormat::Unstructured { sparsity: 0.75 }),
            ppl(PruneFormat::Venom(VenomConfig { v: 64, n: 4, m: 8 })),
            ppl(PruneFormat::Samoyeds(SamoyedsConfig::DEFAULT)),
        ));
    }
    rows
}

/// Relative speedup of the (4070S-tuned) Samoyeds kernel over cuSPARSELt on
/// one device, averaged over a reduced synthetic grid.
fn portability_speedup(dev: &DeviceSpec, tiling: TilingConfig) -> f64 {
    let sizes = [512usize, 1024, 2048, 4096, 8192];
    let mut speedups = Vec::new();
    for &m in &sizes {
        for &n in &sizes {
            let k = 4096;
            let problem = GemmProblem::samoyeds(m, k, n, n, SamoyedsConfig::DEFAULT);
            let dense = GemmProblem::dense(m, k, n);
            let t_s = SamoyedsKernel::new(dev.clone())
                .with_tiling(tiling)
                .stats(&problem)
                .time_ms;
            let t_c = NmSpmm::new(dev.clone()).stats(&dense).time_ms;
            speedups.push(t_c / t_s);
        }
    }
    geomean(&speedups)
}

/// Figure 18: portability of the directly-ported kernel (4070S configuration)
/// across GPUs, reported as relative speedup over cuSPARSELt.
pub fn fig18_portability() -> Vec<String> {
    let reference = portability_speedup(&device(), TilingConfig::DEFAULT_4070S);
    let mut rows = vec![
        "| GPU | Samoyeds speedup over cuSPARSELt (direct port) | Retention vs 4070S |".to_string(),
        "|---|---|---|".to_string(),
    ];
    for dev in DeviceSpec::portability_set() {
        let s = portability_speedup(&dev, TilingConfig::DEFAULT_4070S);
        rows.push(format!(
            "| {} | {:.2}x | {:.0}% |",
            dev.name,
            s,
            (s / reference * 100.0).min(150.0)
        ));
    }
    rows
}

/// Table 6: effect of the suggested adaptations on the synthetic set.
pub fn table6_adaptation() -> Vec<String> {
    let mut rows = vec![
        "| Target | Adaptation | Improved | Unchanged | Degraded |".to_string(),
        "|---|---|---|---|---|".to_string(),
    ];
    for dev in [DeviceSpec::a100_40g(), DeviceSpec::rtx3090()] {
        let adaptation = suggested_adaptation(&dev);
        let adapted_tiling = adapt_for_device(&dev);
        let sizes = [256usize, 512, 1024, 2048, 4096, 8192];
        let (mut improved, mut unchanged, mut degraded) = (0usize, 0usize, 0usize);
        for &m in &sizes {
            for &k in &[2048usize, 4096, 8192] {
                for &n in &sizes {
                    let problem = GemmProblem::samoyeds(m, k, n, n, SamoyedsConfig::DEFAULT);
                    let base = SamoyedsKernel::new(dev.clone())
                        .with_tiling(TilingConfig::DEFAULT_4070S)
                        .stats(&problem)
                        .time_ms;
                    let adapted = SamoyedsKernel::new(dev.clone())
                        .with_tiling(adapted_tiling)
                        .stats(&problem)
                        .time_ms;
                    if adapted < base * 0.99 {
                        improved += 1;
                    } else if adapted > base * 1.01 {
                        degraded += 1;
                    } else {
                        unchanged += 1;
                    }
                }
            }
        }
        let total = (improved + unchanged + degraded) as f64;
        let adaptation_label = match adaptation {
            Adaptation::SmallerTiles => "Tile Size ↓",
            Adaptation::MoreStages => "Stage Num ↑",
            Adaptation::None => "none",
        };
        rows.push(format!(
            "| {} | {} | {:.1}% | {:.1}% | {:.1}% |",
            dev.name,
            adaptation_label,
            improved as f64 / total * 100.0,
            unchanged as f64 / total * 100.0,
            degraded as f64 / total * 100.0,
        ));
    }
    rows
}

/// Figure 19: Samoyeds vs the PIT dynamic-sparsity compiler on the MoE layer.
pub fn fig19_pit_compare() -> Vec<String> {
    let dev = device();
    let mut rows = vec![
        "| Experts | batch (x1024 tokens) | Samoyeds speedup over PIT |".to_string(),
        "|---|---|---|".to_string(),
    ];
    for experts in [8usize, 64] {
        for batch in [1usize, 8] {
            let mut cfg = if experts == 8 {
                MoeModelConfig::mixtral_8x7b()
            } else {
                MoeModelConfig::deepseek_moe()
            };
            cfg.num_shared_experts = 0;
            let tokens = batch * 1024;
            let plan = TopKRouter::for_config(&cfg, 42).route(tokens);
            let t_pit = Engine::new(EngineKind::Pit, dev.clone())
                .moe_layer_cost(&cfg, tokens, &plan)
                .time_ms;
            let t_s = Engine::new(EngineKind::Samoyeds, dev.clone())
                .moe_layer_cost(&cfg, tokens, &plan)
                .time_ms;
            rows.push(format!("| {} | {} | {:.2}x |", experts, batch, t_pit / t_s));
        }
    }
    rows
}

/// Beyond the paper: continuous-batching serving comparison. Every engine
/// serves the same Poisson request trace; the report shows throughput,
/// request-latency percentiles and peak memory per engine, on the A100-40G
/// (all engines hold the full model) and the RTX 4070 Super (only the
/// Samoyeds compressed weights fit).
pub fn serving_sweep() -> Vec<String> {
    let trace = TraceConfig {
        num_requests: 32,
        arrival_rate_rps: 8.0,
        prompt_len_range: (64, 256),
        output_len_range: (8, 32),
        seed: 42,
    };
    let engines = EngineKind::all();
    let mut rows = Vec::new();
    for (device, models) in [
        (
            DeviceSpec::a100_40g(),
            vec![MoeModelConfig::qwen2_moe(), MoeModelConfig::deepseek_moe()],
        ),
        (
            DeviceSpec::rtx4070_super(),
            vec![MoeModelConfig::qwen2_moe()],
        ),
    ] {
        for cfg in models {
            let sim = ServingSimulator::new(device.clone(), cfg.clone())
                .with_trace(trace.clone())
                .with_scheduler(SchedulerConfig::default());
            let metrics = sim.compare(&engines);
            rows.extend(samoyeds_serve::render_markdown(
                &cfg.name,
                &device.name,
                &metrics,
            ));
            rows.push(String::new());
        }
    }
    rows
}

/// Beyond the paper: multi-GPU expert-parallel cluster comparison. A fixed
/// token batch is sharded across 1/2/4/8 GPUs of the consumer RTX 4070
/// Super (PCIe) and the datacenter A100 (NVLink) under three weight
/// representations; the fleet-sizing table shows the compressed formats
/// holding the model on fewer GPUs (the multi-GPU analogue of Table 3), and
/// the placement table shows load-aware strategies beating round-robin on
/// an imbalanced routing plan.
pub fn cluster_sweep() -> Vec<String> {
    let model = MoeModelConfig::qwen2_moe();
    let mut rows = ClusterReport::gpu_count_sweep(&model, 4096, 42).render_markdown();
    rows.push(String::new());
    rows.extend(render_fleet_sizing(&model, 4096));
    rows.push(String::new());
    rows.extend(render_placement_comparison(
        &model,
        &DeviceSpec::a100_40g(),
        8,
        4096,
        1.5,
        9,
    ));
    rows
}

/// Beyond the paper: cluster-aware continuous batching. One shared Poisson
/// trace is served through the scheduler over cluster backends of every
/// (fabric, engine, GPU-count) combination; on the consumer card the dense
/// weights overflow the per-GPU budget and the trace is *rejected*, while
/// the Samoyeds compressed weights admit and serve it — Table 3's OOM
/// entries, restated as serving outcomes.
pub fn cluster_serving() -> Vec<String> {
    let model = MoeModelConfig::qwen2_moe();
    let trace = TraceConfig {
        num_requests: 24,
        arrival_rate_rps: 8.0,
        prompt_len_range: (64, 256),
        output_len_range: (8, 32),
        seed: 42,
    };
    let report = ClusterServingReport::sweep(&model, &trace, &SchedulerConfig::default());
    let mut rows = report.render_markdown();
    rows.push(String::new());
    match report.admission_contrast() {
        Some((device, link, gpus)) => rows.push(format!(
            "-> admission contrast: on {gpus}x {device} ({link}) the Samoyeds weights \
             admit the trace while dense weights are rejected for memory"
        )),
        None => rows.push("-> no admission-contrast cell in this sweep".to_string()),
    }
    rows
}

/// Beyond the paper: the online fleet control plane on a bursty trace. One
/// calm → spike → calm request trace is served by heterogeneous fleets
/// (homogeneous A100 Samoyeds/dense singles, and a mixed A100-pod + 4070S
/// fleet) under SLO targets × dispatch policies; the report shows the
/// SLO-driven autoscaler scaling out during the spike and back in
/// afterwards, with Samoyeds fleets needing fewer scale-outs than dense —
/// the paper's fleet-sizing claim, restated in time instead of GPU count.
pub fn fleet_autoscale() -> Vec<String> {
    let model = MoeModelConfig::qwen2_moe();
    let trace = FleetAutoscaleReport::demo_trace();
    let report = FleetAutoscaleReport::sweep(&model, &trace, &SchedulerConfig::default());
    let mut rows = report.render_markdown();
    rows.push(String::new());
    match report.scale_out_contrast() {
        Some((samoyeds, dense)) => rows.push(format!(
            "-> scale-out contrast at the tight SLO: Samoyeds singles absorb the spike \
             with {samoyeds} scale-outs where dense singles need {dense}"
        )),
        None => rows.push("-> no scale-out contrast cell in this sweep".to_string()),
    }
    rows
}

/// Beyond the paper: observability. The mixed-fleet autoscale demo runs
/// once more with a recording telemetry sink installed; the report shows
/// the run's lifecycle counters, the per-request latency attribution table
/// (queue wait / prefill / decode, telescoping exactly to end-to-end
/// latency), and the exact-vs-histogram p95 TTFT comparison. The same
/// report's Chrome trace export is what `examples/fleet_trace.rs` writes
/// for Perfetto.
pub fn fleet_trace() -> Vec<String> {
    let model = MoeModelConfig::qwen2_moe();
    let report = FleetTraceReport::demo(&model, &SchedulerConfig::default());
    let mut rows = report.render_markdown();
    rows.push(String::new());
    rows.push(format!(
        "-> the Chrome trace export carries {} bytes of span/instant JSON \
         across {} replica tracks",
        report.chrome_trace().len(),
        report.metrics.per_replica.len()
    ));
    rows
}

/// Beyond the paper: hierarchical interconnect topologies. One skewed
/// routing plan over the same 8-GPU fleet is priced as a flat NVLink
/// island, as 2×4 NVLink islands on an InfiniBand NDR spine, and as 4×2
/// PCIe hosts on the same spine; the headline is the 2×4 cell turning
/// spine-bound — the leader exchange over the 50 GB/s spine exceeds the
/// whole flat-NVLink collective — and the topology-aware placement table
/// shows per-island hot-expert replication keeping traffic off the spine.
pub fn topology_sweep() -> Vec<String> {
    let model = MoeModelConfig::qwen2_moe();
    let report = TopologySweepReport::sweep(&model, 4096, 1.5, 42);
    let mut rows = report.render_markdown();
    rows.push(String::new());
    match report.spine_bound_contrast() {
        Some((hier, flat, spine)) => rows.push(format!(
            "-> spine-bound: on 2×4 NVLink+IB the collectives cost {hier:.3} ms/layer \
             ({spine:.3} ms on the spine alone) vs {flat:.3} ms on flat NVLink"
        )),
        None => rows.push("-> no spine-bound contrast cell in this sweep".to_string()),
    }
    rows.push(String::new());
    let two_by_four =
        ClusterTopology::symmetric(2, 4, LinkSpec::nvlink3(), LinkSpec::infiniband_ndr())
            .expect("2x4 is a valid layout");
    rows.extend(render_topology_placement(
        &model,
        &two_by_four,
        4096,
        1.5,
        9,
    ));
    rows
}

/// Beyond the paper: the fault sweep. The same three-replica fleet and
/// bursty trace replayed under an identical scripted fault schedule with
/// three recovery policies; the headline is re-admission recovering every
/// request the crash destroyed, in a recovery time priced by the placement
/// layer's weight-transfer plan.
pub fn fault_sweep() -> Vec<String> {
    let model = MoeModelConfig::qwen2_moe();
    let report = FaultSweepReport::sweep(&model, &SchedulerConfig::default());
    let mut rows = report.render_markdown();
    rows.push(String::new());
    match report.readmit_recovery() {
        Some((recovery_ms, failed)) => rows.push(format!(
            "-> re-admission recovers the crash in {recovery_ms:.1} ms with \
             {failed} requests lost"
        )),
        None => rows.push("-> no crash-recovery cell in this sweep".to_string()),
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_produces_a_non_trivial_report() {
        // The heavy grid experiments are exercised separately; here we smoke
        // test the cheap ones end to end.
        for exp in [
            Experiment::Fig02Breakdown,
            Experiment::Fig11Layout,
            Experiment::Table4Accuracy,
            Experiment::Table5Perplexity,
            Experiment::Table6Adaptation,
            Experiment::Fig19PitCompare,
        ] {
            let rows = run_experiment(exp);
            assert!(rows.len() >= 3, "{} rows {}", exp.id(), rows.len());
        }
        assert_eq!(all_experiments().len(), 21);
    }

    #[test]
    fn fault_sweep_report_contains_the_zero_loss_recovery_headline() {
        let rows = fault_sweep();
        // Three policy rows, the fault timeline, the drain status and the
        // headline.
        assert!(rows.len() >= 3 + 3 + 2, "{} rows", rows.len());
        // Text unique to the Some branch: losing the recovery cell fails
        // here instead of matching the fallback.
        assert!(
            rows.iter()
                .any(|r| r.contains("-> re-admission recovers the crash")),
            "{rows:?}"
        );
        assert!(rows.iter().any(|r| r.contains("0 requests lost")));
        assert!(rows.iter().any(|r| r.starts_with("drain:")));
    }

    #[test]
    fn fleet_autoscale_report_contains_the_scale_out_contrast() {
        let rows = fleet_autoscale();
        // All 18 sweep cells render, plus the headline line.
        assert!(rows.len() >= 3 + 18 + 2, "{} rows", rows.len());
        // Text unique to the Some branch of the headline, so a sweep that
        // loses the contrast cell fails here instead of matching the
        // "no scale-out contrast" fallback.
        assert!(
            rows.iter().any(|r| r.contains("absorb the spike")),
            "{rows:?}"
        );
        assert!(rows.iter().any(|r| r.contains("A100 pod + 4070S")));
    }

    #[test]
    fn topology_sweep_report_contains_the_spine_bound_contrast() {
        let rows = topology_sweep();
        // The 3x3 sweep table, the headline, and the placement table.
        assert!(rows.len() >= 3 + 9 + 2 + 6, "{} rows", rows.len());
        // Text unique to the Some branch of the headline: a sweep that
        // loses the spine-bound cell fails here instead of matching the
        // fallback.
        assert!(
            rows.iter().any(|r| r.contains("-> spine-bound")),
            "{rows:?}"
        );
        assert!(rows.iter().any(|r| r.contains("InfiniBand NDR spine")));
        assert!(rows.iter().any(|r| r.contains("replicate-hot-island")));
    }

    #[test]
    fn cluster_serving_report_contains_the_admission_contrast() {
        let rows = cluster_serving();
        // Dense cells on the consumer card reject the trace for memory...
        assert!(rows.iter().any(|r| r.contains("OOM")));
        // ...and the report names the contrast cell explicitly.
        assert!(
            rows.iter().any(|r| r.contains("admission contrast")),
            "{rows:?}"
        );
        // Served Samoyeds rows exist with nonzero throughput.
        assert!(rows
            .iter()
            .any(|r| r.contains("| Samoyeds |") && !r.contains("OOM")));
    }

    #[test]
    fn cluster_sweep_shows_fleet_sizing_and_placement_wins() {
        let rows = cluster_sweep();
        // The consumer-card dense cells OOM while Samoyeds serves.
        assert!(rows.iter().any(|r| r.contains("OOM")));
        assert!(rows.iter().any(|r| r.starts_with("Fleet sizing")));
        assert!(rows.iter().any(|r| r.starts_with("Placement comparison")));
        assert!(rows.iter().any(|r| r.contains("capacity-greedy")));
    }

    #[test]
    fn serving_sweep_shows_samoyeds_winning_and_the_oom_contrast() {
        let rows = serving_sweep();
        // Three report tables: two A100 models and the 4070S contrast.
        assert_eq!(
            rows.iter()
                .filter(|r| r.starts_with("Serving report"))
                .count(),
            3
        );
        // The 4070S table must mark the dense engines unservable while
        // Samoyeds completes the trace.
        assert!(rows.iter().any(|r| r.contains("NS/OOM")));
        let samoyeds_rows: Vec<&String> = rows
            .iter()
            .filter(|r| r.starts_with("| Samoyeds |"))
            .collect();
        assert_eq!(samoyeds_rows.len(), 3);
        assert!(samoyeds_rows.iter().all(|r| !r.contains("NS/OOM")));
    }

    #[test]
    fn synthetic_grid_covers_the_paper_range() {
        let grid = synthetic_grid();
        assert!(grid.len() >= 238, "grid has {} points", grid.len());
        assert!(grid
            .iter()
            .all(|&(m, k, n)| m >= 256 && k >= 256 && n >= 256));
        assert!(grid.iter().any(|&(m, _, _)| m == 16384));
    }

    #[test]
    fn kernel_speedups_are_positive_and_ordered_sensibly() {
        let (cublas, cusparselt, venom, sputnik) = kernel_speedups(4096, 4096, 4096);
        assert!(cublas > 1.0);
        assert!(cusparselt > 1.0);
        assert!(venom > 1.0);
        // Sputnik (CUDA cores) is by far the slowest baseline.
        assert!(sputnik > cublas);
        // VENOM is the strongest baseline.
        assert!(venom < cusparselt + 1e-9 || venom < cublas);
    }

    #[test]
    fn fig11_speedup_grows_with_input_sparsity() {
        let rows = fig11_layout();
        let parse = |row: &String| {
            row.split('|')
                .nth(2)
                .unwrap()
                .trim()
                .trim_end_matches('x')
                .parse::<f64>()
                .unwrap()
        };
        let first = parse(&rows[2]);
        let last = parse(&rows[rows.len() - 1]);
        assert!(
            last > first,
            "layout speedup should grow: {first} -> {last}"
        );
        assert!(first >= 1.0);
    }
}
