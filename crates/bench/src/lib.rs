//! Experiment harness: one function per table and figure of the paper.
//!
//! Every function returns its result as a markdown table (a `Vec<String>` of
//! lines) so the `experiments` binary can print it and write it into
//! `results/`. The functions are deterministic and run entirely on the
//! analytical cost model, so the full harness completes in seconds in
//! release mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod perf;

pub use experiments::{all_experiments, run_experiment, Experiment};
pub use perf::{parse_bench_json, regressions, BenchTimings, Regression};
