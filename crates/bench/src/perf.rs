//! Perf-trajectory tooling: parse the `BENCH_*.json` documents the vendored
//! criterion harness emits (via the `BENCH_JSON` environment variable) and
//! compare a fresh run against a committed baseline.
//!
//! The document format is deliberately line-oriented — one
//! `{"name": ..., "mean_ns": ..., "iters": ...}` object per line — so this
//! parser stays a few dozen lines of std-only string handling instead of a
//! JSON dependency, and `git diff` on a committed baseline reads as a table.

use std::collections::BTreeMap;

/// One benchmark's mean time, keyed by its full criterion name
/// (`group/bench` convention).
pub type BenchTimings = BTreeMap<String, f64>;

/// Extract the string value of `"key": "..."` from one object line, if
/// present. Handles the `\"` and `\\` escapes the emitter produces.
fn string_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\": \"");
    let start = line.find(&marker)? + marker.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// Extract the numeric value of `"key": <number>` from one object line.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\": ");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse a `BENCH_*.json` document into name → mean-ns timings. Lines that
/// do not carry both a `name` and a `mean_ns` field (the envelope braces,
/// the schema line) are skipped, so the parser accepts exactly what the
/// vendored criterion writes.
pub fn parse_bench_json(doc: &str) -> BenchTimings {
    let mut timings = BenchTimings::new();
    for line in doc.lines() {
        if let (Some(name), Some(mean_ns)) =
            (string_field(line, "name"), number_field(line, "mean_ns"))
        {
            timings.insert(name, mean_ns);
        }
    }
    timings
}

/// One benchmark that got slower than the baseline allows.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Full benchmark name.
    pub name: String,
    /// Fresh mean, nanoseconds per iteration.
    pub current_ns: f64,
    /// Committed baseline mean, nanoseconds per iteration.
    pub baseline_ns: f64,
    /// `current / baseline`.
    pub ratio: f64,
}

/// Compare `current` timings against a committed `baseline`: every bench
/// present in both whose name contains `key_filter` (empty matches all) and
/// whose mean grew past `max_ratio` × baseline is reported. Benches missing
/// from either side are ignored — new benches extend the trajectory, they
/// do not fail it.
pub fn regressions(
    current: &BenchTimings,
    baseline: &BenchTimings,
    key_filter: &str,
    max_ratio: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for (name, &current_ns) in current {
        if !name.contains(key_filter) {
            continue;
        }
        let Some(&baseline_ns) = baseline.get(name) else {
            continue;
        };
        if baseline_ns <= 0.0 {
            continue;
        }
        let ratio = current_ns / baseline_ns;
        if ratio > max_ratio {
            out.push(Regression {
                name: name.clone(),
                current_ns,
                baseline_ns,
                ratio,
            });
        }
    }
    out
}

/// Names matching `key_filter` that are present in `from` but absent in
/// `to` — the cells a ratio gate silently skips. [`regressions`] ignores
/// unmatched cells by design (new benches extend the trajectory, deleted
/// ones retire from it), so the guard surfaces them as warnings instead:
/// call this in both directions to catch a renamed or dropped headline cell
/// before the silent skip becomes a permanent blind spot.
pub fn missing_cells(from: &BenchTimings, to: &BenchTimings, key_filter: &str) -> Vec<String> {
    from.keys()
        .filter(|name| name.contains(key_filter) && !to.contains_key(*name))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "schema": 1,
  "benches": [
    {"name": "fleet_event_core/replicas8_requests100k", "mean_ns": 120000000.500, "iters": 3},
    {"name": "fleet_event_core/replicas100_requests1M", "mean_ns": 2400000000.000, "iters": 1},
    {"name": "kernel/spmm \"quoted\"", "mean_ns": 512.125, "iters": 1000}
  ]
}
"#;

    #[test]
    fn parses_the_emitted_document_shape() {
        let timings = parse_bench_json(DOC);
        assert_eq!(timings.len(), 3);
        assert_eq!(
            timings["fleet_event_core/replicas100_requests1M"],
            2_400_000_000.0
        );
        assert_eq!(timings["kernel/spmm \"quoted\""], 512.125);
    }

    #[test]
    fn regression_detection_honours_filter_and_ratio() {
        let baseline = parse_bench_json(DOC);
        let mut current = baseline.clone();
        // 30% slower on the headline cell, 10% slower elsewhere.
        *current
            .get_mut("fleet_event_core/replicas100_requests1M")
            .unwrap() *= 1.3;
        *current
            .get_mut("fleet_event_core/replicas8_requests100k")
            .unwrap() *= 1.1;

        let hits = regressions(&current, &baseline, "replicas100_requests1M", 1.2);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "fleet_event_core/replicas100_requests1M");
        assert!((hits[0].ratio - 1.3).abs() < 1e-9);

        // The 10% drift stays under the 20% gate.
        assert!(regressions(&current, &baseline, "replicas8", 1.2).is_empty());
        // Empty filter matches everything.
        assert_eq!(regressions(&current, &baseline, "", 1.2).len(), 1);
        // Benches absent from the baseline never fail the gate.
        current.insert("brand/new".to_string(), 1e12);
        assert_eq!(regressions(&current, &baseline, "", 1.2).len(), 1);
    }

    #[test]
    fn missing_cells_reports_both_directions() {
        let baseline = parse_bench_json(DOC);
        let mut current = baseline.clone();
        current.insert("brand/new".to_string(), 1.0);
        current.remove("kernel/spmm \"quoted\"");

        // Current-but-not-baseline: the new cell.
        assert_eq!(missing_cells(&current, &baseline, ""), ["brand/new"]);
        // Baseline-but-not-current: the dropped cell.
        assert_eq!(
            missing_cells(&baseline, &current, ""),
            ["kernel/spmm \"quoted\""]
        );
        // The filter scopes the comparison.
        assert!(missing_cells(&baseline, &current, "fleet").is_empty());
        // Identical sets are clean both ways.
        assert!(missing_cells(&baseline, &baseline, "").is_empty());
    }
}
