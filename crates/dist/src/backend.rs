//! The cluster execution backend: expert-parallel serving behind the
//! `samoyeds-serve` [`ExecutionBackend`] trait.
//!
//! This is the piece that turns the PR-2 cluster simulator from a
//! standalone step-pricing tool into a *serving* substrate: the
//! continuous-batching scheduler drives a whole expert-parallel pod exactly
//! the way it drives one GPU. Two things change relative to
//! [`SingleGpuBackend`](samoyeds_serve::SingleGpuBackend):
//!
//! * **Step cost** — each step routes its batch, shards the plan across the
//!   pod, and pays the *straggler* GPU's MoE compute plus the α-β
//!   dispatch/combine collectives per layer. Attention and the
//!   norm/router auxiliaries are data-parallel across the pod (each rank
//!   hosts its share of the batch), so they divide by the GPU count.
//! * **Admission** — the budget is the straggler GPU under a balanced
//!   placement: `ceil(E/g)` routed experts (plus any replicated hot
//!   experts), a `ceil/g` share of the KV cache and of the step's
//!   activation workspace, against *per-GPU* usable memory. A model whose
//!   dense weights overflow every rank rejects the whole trace; the
//!   compressed formats admit it — the fleet-sizing lever, now visible as
//!   served-vs-rejected traces rather than a static table.

use crate::cluster::{ClusterConfig, ClusterSimulator};
use crate::placement::{ClusterMemoryModel, PlacementStrategy};
use samoyeds_moe::attention::AttentionKind;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::EngineKind;
use samoyeds_moe::router::TopKRouter;
use samoyeds_serve::backend::{
    attention_step_ms, auxiliary_step_ms, ExecutionBackend, MemoryBudget, OverlapModel, StepCost,
    StepWorkload,
};
use samoyeds_serve::SchedulerConfig;

/// Straggler-GPU admission budget of an expert-parallel pod.
///
/// Implements the serve-side [`MemoryBudget`] surface over the per-GPU
/// [`ClusterMemoryModel`]: the footprint is the worst rank — the one
/// holding the largest balanced expert share — with the ceiling share of
/// the KV cache and step workspace. Every executed step re-validates its
/// placement against the same KV-aware residency, and a round-robin
/// placement (balanced `ceil(E/g)` expert counts) always fits once
/// admission has passed, so an admitted trace never strands a step.
#[derive(Debug, Clone)]
pub struct ClusterAdmissionBudget {
    memory: ClusterMemoryModel,
    num_gpus: usize,
    max_experts_per_gpu: usize,
}

impl ClusterAdmissionBudget {
    /// Build the budget for a cluster serving `model`.
    pub fn new(cluster: &ClusterConfig, model: &MoeModelConfig) -> Self {
        let num_gpus = cluster.num_gpus.max(1);
        let experts = model.num_experts;
        // The straggler's expert count under the configured strategy:
        // balanced shares for the non-replicating strategies, plus a full
        // copy of every replicated hot expert otherwise.
        let max_experts_per_gpu = match cluster.strategy {
            PlacementStrategy::ReplicateHot { hot } => {
                let hot = hot.min(experts);
                hot + (experts - hot).div_ceil(num_gpus)
            }
            // Per-island replication concentrates the hot replicas on at
            // most `islands * hot` ranks; a skewed hot load can then repel
            // the greedy cold pass entirely onto the remaining ranks, so
            // the straggler is either a replica host (≤ hot replicas plus
            // a balanced cold share) or a cold-packed non-replica rank
            // (ceil share over the ranks the cold pass is left with).
            PlacementStrategy::ReplicateHotPerIsland { hot } => {
                let hot = hot.min(experts);
                let cold = experts - hot;
                let islands = cluster.resolved_topology().num_islands().min(num_gpus);
                let replica_hosts = (islands * hot).min(num_gpus);
                let balanced = hot + cold.div_ceil(num_gpus);
                if replica_hosts < num_gpus {
                    balanced.max(cold.div_ceil(num_gpus - replica_hosts))
                } else {
                    balanced
                }
            }
            PlacementStrategy::RoundRobin | PlacementStrategy::CapacityGreedy => {
                experts.div_ceil(num_gpus)
            }
        };
        Self {
            memory: ClusterMemoryModel::new(&cluster.device, cluster.engine, model),
            num_gpus,
            max_experts_per_gpu,
        }
    }

    /// The per-GPU memory model underneath.
    pub fn memory_model(&self) -> &ClusterMemoryModel {
        &self.memory
    }

    /// Routed experts resident on the straggler GPU.
    pub fn max_experts_per_gpu(&self) -> usize {
        self.max_experts_per_gpu
    }
}

impl MemoryBudget for ClusterAdmissionBudget {
    fn budget_bytes(&self) -> f64 {
        self.memory.budget_bytes()
    }

    fn footprint_bytes(&self, kv_tokens: usize, step_tokens: usize) -> f64 {
        // Tokens live interleaved across ranks (token `t` on GPU `t mod g`),
        // so the straggler hosts the ceiling share of both the resident KV
        // and the in-flight step.
        let kv_local = kv_tokens.div_ceil(self.num_gpus);
        let step_local = step_tokens.div_ceil(self.num_gpus);
        self.memory
            .gpu_bytes(self.max_experts_per_gpu, kv_local, step_local)
    }
}

/// An expert-parallel cluster as a serving execution backend.
#[derive(Debug, Clone)]
pub struct ClusterBackend {
    sim: ClusterSimulator,
    budget: ClusterAdmissionBudget,
    router: TopKRouter,
    attention: AttentionKind,
    routing_seed: u64,
    step_overhead_ms: f64,
    overlap: OverlapModel,
}

impl ClusterBackend {
    /// Build the backend for one (cluster, model) pair, taking the
    /// cost-model knobs (attention kind, routing seed, step overhead) from
    /// the scheduler configuration — the same contract as
    /// [`SingleGpuBackend::new`](samoyeds_serve::SingleGpuBackend::new).
    ///
    /// Panics if the cluster's topology is invalid or spans a different
    /// number of GPUs than the cluster: a broken topology is a
    /// configuration bug, and failing here beats a misleading
    /// admission-vs-placement panic in the middle of a running trace.
    pub fn new(cluster: ClusterConfig, model: MoeModelConfig, scfg: &SchedulerConfig) -> Self {
        let budget = ClusterAdmissionBudget::new(&cluster, &model);
        let router = TopKRouter::for_config(&model, scfg.routing_seed);
        let sim = ClusterSimulator::new(cluster, model);
        assert_eq!(
            sim.topology().num_gpus(),
            sim.cluster().num_gpus,
            "cluster topology spans {} GPUs but the cluster has {}",
            sim.topology().num_gpus(),
            sim.cluster().num_gpus,
        );
        sim.topology().validate().expect("invalid cluster topology");
        Self {
            budget,
            router,
            sim,
            attention: scfg.attention,
            routing_seed: scfg.routing_seed,
            step_overhead_ms: scfg.step_overhead_ms,
            overlap: OverlapModel::Serial,
        }
    }

    /// Replace the compute/all-to-all overlap model (default:
    /// [`OverlapModel::Serial`], the fully-synchronous step).
    /// [`OverlapModel::Pipelined`] models DeepSpeed-MoE-style pipelined
    /// dispatch: each step's duration blends to
    /// `max(compute_ms, collective_ms)` instead of their sum.
    pub fn with_overlap(mut self, overlap: OverlapModel) -> Self {
        self.overlap = overlap;
        self
    }

    /// The configured overlap model.
    pub fn overlap(&self) -> OverlapModel {
        self.overlap
    }

    /// The cluster simulator pricing the MoE steps.
    pub fn simulator(&self) -> &ClusterSimulator {
        &self.sim
    }

    /// The straggler-GPU admission budget (concrete type).
    pub fn admission_budget(&self) -> &ClusterAdmissionBudget {
        &self.budget
    }
}

impl ExecutionBackend for ClusterBackend {
    fn engine_kind(&self) -> EngineKind {
        self.sim
            .cluster()
            .engine
            .engine(&self.sim.cluster().device)
            .kind()
    }

    fn model(&self) -> &MoeModelConfig {
        self.sim.model()
    }

    fn supports(&self, config: &MoeModelConfig) -> bool {
        self.sim
            .cluster()
            .engine
            .engine(&self.sim.cluster().device)
            .supports(config)
    }

    fn memory(&self) -> &dyn MemoryBudget {
        &self.budget
    }

    fn step_cost(&self, workload: &StepWorkload<'_>) -> StepCost {
        let cluster = self.sim.cluster();
        let model = self.sim.model();
        let step_tokens = workload.step_tokens();
        let plan = self
            .router
            .route_seeded(self.routing_seed ^ workload.step_index, step_tokens);

        // Serving-path placement: balance the plan's token-count loads (free
        // to compute, unlike the per-expert engine cost profile the static
        // sweeps use — this runs every step) and validate against the rank's
        // *actual* residency: its ceiling share of the running set's KV
        // cache, not just the step's tokens. If the configured strategy
        // cannot place under that (e.g. hot-expert replication without
        // headroom, or a skew-packed rank), fall back to round-robin, whose
        // balanced `ceil(E/g)` expert counts the admission budget guarantees
        // to fit.
        let gpus = cluster.num_gpus.max(1);
        let kv_tokens: usize = workload.running.iter().map(|r| r.context_tokens()).sum();
        let kv_local = kv_tokens.div_ceil(gpus);
        let step_local = step_tokens.div_ceil(gpus);
        let loads = plan.expert_loads();
        let placement = cluster
            .strategy
            .place_on(
                &loads,
                self.sim.topology(),
                self.sim.memory(),
                kv_local,
                step_local,
            )
            .or_else(|_| {
                PlacementStrategy::RoundRobin.place(
                    &loads,
                    gpus,
                    self.sim.memory(),
                    kv_local,
                    step_local,
                )
            });
        let report = placement
            .and_then(|p| self.sim.step_with_placement(&plan, p))
            .expect(
                "admission admitted a step the cluster cannot place \
                 (straggler budget and balanced placement disagree)",
            );

        // Attention and the norm/router auxiliaries are data-parallel: each
        // rank hosts its interleaved share of the requests, so the per-layer
        // cost divides across the pod.
        let g = cluster.num_gpus.max(1) as f64;
        let device = &cluster.device;
        let attention_ms = attention_step_ms(
            device,
            model,
            self.attention,
            workload.batch,
            workload.running,
        ) / g;
        let other_ms = auxiliary_step_ms(device, model, step_tokens) / g;

        let layers = model.num_layers as f64;
        StepCost {
            compute_ms: (report.straggler_ms() + attention_ms + other_ms) * layers
                + self.step_overhead_ms,
            collective_ms: report.all_to_all_ms * layers,
            // Attribution for telemetry: where the collective time went. On
            // an overridden-pair topology intra + spine can undershoot the
            // max-blended all-to-all figure; the exporter reports the legs
            // as measured rather than rescaling them to fit.
            intra_island_ms: report.intra_island_ms * layers,
            spine_ms: report.spine_ms * layers,
            overlap: self.overlap,
        }
    }

    fn describe(&self) -> String {
        let cluster = self.sim.cluster();
        format!(
            "cluster {}x {} ({}) · {} · {} · {}",
            cluster.num_gpus,
            cluster.device.name,
            self.sim.topology().name(),
            cluster.engine.name(),
            cluster.strategy.name(),
            self.sim.model().name,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::ClusterEngine;
    use samoyeds_gpu_sim::DeviceSpec;
    use samoyeds_serve::{Scheduler, TraceConfig};

    fn backend(device: DeviceSpec, gpus: usize, engine: ClusterEngine) -> ClusterBackend {
        ClusterBackend::new(
            ClusterConfig::new(device, gpus, engine),
            MoeModelConfig::qwen2_moe(),
            &SchedulerConfig::default(),
        )
    }

    fn small_trace() -> TraceConfig {
        TraceConfig {
            num_requests: 12,
            arrival_rate_rps: 8.0,
            prompt_len_range: (32, 128),
            output_len_range: (4, 12),
            seed: 5,
        }
    }

    #[test]
    fn cluster_backend_serves_a_trace_with_collective_time() {
        let backend = backend(DeviceSpec::a100_40g(), 4, ClusterEngine::Samoyeds);
        assert!(backend.describe().contains("4x"));
        let scheduler = Scheduler::from_backend(backend, SchedulerConfig::default());
        let result = scheduler.run(&small_trace().generate());
        assert!(result.supported);
        assert!(!result.completed.is_empty());
        assert!(result.rejected.is_empty());
        // Every multi-GPU step pays a nonzero collective share.
        assert!(!result.steps.is_empty());
        for step in &result.steps {
            assert!(step.collective_ms > 0.0, "step without all-to-all");
            assert!(step.collective_ms < step.time_ms);
            assert!(step.memory_bytes <= result.budget_bytes);
        }
        assert!(result.collective_ms() > 0.0);
    }

    #[test]
    fn one_gpu_cluster_pays_no_collectives() {
        let backend = backend(DeviceSpec::a100_40g(), 1, ClusterEngine::Samoyeds);
        let scheduler = Scheduler::from_backend(backend, SchedulerConfig::default());
        let result = scheduler.run(&small_trace().generate());
        assert!(!result.completed.is_empty());
        for step in &result.steps {
            assert_eq!(step.collective_ms, 0.0);
        }
    }

    #[test]
    fn dense_weights_reject_on_the_consumer_pod_where_samoyeds_serves() {
        // The acceptance-criterion cell in backend form: on 1x RTX 4070
        // Super, dense Qwen2 weights overflow the per-GPU budget (trace
        // rejected for memory) while the Samoyeds compressed weights admit
        // and serve the same trace.
        let trace = small_trace().generate();
        let run = |engine| {
            let backend = backend(DeviceSpec::rtx4070_super(), 1, engine);
            Scheduler::from_backend(backend, SchedulerConfig::default()).run(&trace)
        };
        let dense = run(ClusterEngine::Dense);
        assert!(dense.supported, "dense rejects for memory, not kernels");
        assert!(dense.completed.is_empty());
        assert_eq!(dense.rejected.len(), trace.len());
        let samoyeds = run(ClusterEngine::Samoyeds);
        assert_eq!(samoyeds.completed.len(), trace.len());
        assert!(samoyeds.rejected.is_empty());
    }

    #[test]
    fn pipelined_overlap_blends_to_the_max_of_compute_and_collectives() {
        use samoyeds_serve::backend::StepWorkload;
        use samoyeds_serve::batch::{build_step, BatchLimits};
        use samoyeds_serve::request::{Request, RunningRequest};

        // A PCIe pod makes the collective share substantial, so the blend
        // is visibly different from the sum.
        let cluster = ClusterConfig::new(DeviceSpec::a100_40g(), 4, ClusterEngine::Samoyeds)
            .with_link(crate::link::LinkSpec::pcie_gen4());
        let scfg = SchedulerConfig::default();
        let serial = ClusterBackend::new(cluster.clone(), MoeModelConfig::qwen2_moe(), &scfg);
        let pipelined = ClusterBackend::new(cluster, MoeModelConfig::qwen2_moe(), &scfg)
            .with_overlap(samoyeds_serve::OverlapModel::Pipelined);
        assert_eq!(pipelined.overlap(), samoyeds_serve::OverlapModel::Pipelined);

        let running = vec![RunningRequest::new(
            Request {
                id: 0,
                arrival_ms: 0.0,
                prompt_len: 512,
                output_len: 8,
            },
            0.0,
        )];
        let batch = build_step(&running, &BatchLimits::default());
        let workload = StepWorkload {
            batch: &batch,
            running: &running,
            step_index: 0,
        };
        let s = serial.step_cost(&workload);
        let p = pipelined.step_cost(&workload);
        // Identical components, different blend: the pinned overlap law.
        assert_eq!(s.compute_ms, p.compute_ms);
        assert_eq!(s.collective_ms, p.collective_ms);
        assert!(s.collective_ms > 0.0);
        assert_eq!(s.total_ms(), s.compute_ms + s.collective_ms);
        assert_eq!(p.total_ms(), p.compute_ms.max(p.collective_ms));
        assert!(p.total_ms() < s.total_ms());

        // End to end, the pipelined pod drains the same trace no slower.
        let trace = small_trace().generate();
        let t_serial = Scheduler::from_backend(serial, scfg)
            .run(&trace)
            .makespan_ms;
        let t_pipelined = Scheduler::from_backend(pipelined, scfg)
            .run(&trace)
            .makespan_ms;
        assert!(t_pipelined < t_serial, "{t_pipelined} vs {t_serial}");
    }

    #[test]
    fn admission_budget_is_per_gpu_and_shrinks_with_more_gpus() {
        let one = backend(DeviceSpec::a100_40g(), 1, ClusterEngine::Dense);
        let four = backend(DeviceSpec::a100_40g(), 4, ClusterEngine::Dense);
        // Same per-GPU budget, smaller per-GPU footprint at 4 GPUs.
        assert_eq!(one.memory().budget_bytes(), four.memory().budget_bytes());
        assert!(four.memory().footprint_bytes(4096, 512) < one.memory().footprint_bytes(4096, 512));
        // Qwen2-MoE has 60 routed experts: ceil(60 / 4) = 15 per rank.
        assert_eq!(four.admission_budget().max_experts_per_gpu(), 15);
    }

    #[test]
    #[should_panic(expected = "topology spans")]
    fn backend_rejects_a_mismatched_topology_at_construction() {
        use crate::link::LinkSpec;
        use crate::topology::ClusterTopology;
        // A topology over the wrong GPU count must fail while building the
        // backend, not as a misleading admission panic mid-trace.
        let _ = ClusterBackend::new(
            ClusterConfig::new(DeviceSpec::a100_40g(), 4, ClusterEngine::Samoyeds)
                .with_topology(ClusterTopology::flat(8, LinkSpec::nvlink3())),
            MoeModelConfig::qwen2_moe(),
            &SchedulerConfig::default(),
        );
    }

    #[test]
    fn per_island_replication_budget_accounts_for_cold_packing() {
        use crate::link::LinkSpec;
        use crate::topology::ClusterTopology;
        // Regression: a skewed hot load can repel the greedy cold pass
        // entirely onto the non-replica ranks, so the straggler owns more
        // than the balanced `hot + ceil(cold/g)` share.
        let model = MoeModelConfig::qwen2_moe(); // 60 routed experts
        let topology =
            ClusterTopology::symmetric(4, 2, LinkSpec::pcie_gen4(), LinkSpec::infiniband_ndr())
                .unwrap();
        let cluster = ClusterConfig::new(DeviceSpec::a100_40g(), 8, ClusterEngine::Samoyeds)
            .with_topology(topology)
            .with_strategy(PlacementStrategy::ReplicateHotPerIsland { hot: 1 });
        let budget = ClusterAdmissionBudget::new(&cluster, &model);
        // hot=1 over 4 islands leaves 4 non-replica ranks: the cold pass
        // can pack ceil(59/4) = 15 experts on one of them — more than the
        // balanced 1 + ceil(59/8) = 9.
        assert_eq!(budget.max_experts_per_gpu(), 15);
        // On a flat topology the strategy degenerates to hot-first greedy
        // and the bound tightens accordingly.
        let flat = ClusterConfig::new(DeviceSpec::a100_40g(), 8, ClusterEngine::Samoyeds)
            .with_strategy(PlacementStrategy::ReplicateHotPerIsland { hot: 1 });
        assert_eq!(
            ClusterAdmissionBudget::new(&flat, &model).max_experts_per_gpu(),
            9
        );
    }

    #[test]
    fn replicate_hot_budget_accounts_for_the_replicas() {
        let model = MoeModelConfig::qwen2_moe();
        let base = ClusterConfig::new(DeviceSpec::a100_40g(), 4, ClusterEngine::Samoyeds);
        let plain = ClusterAdmissionBudget::new(&base, &model);
        let replicated = ClusterAdmissionBudget::new(
            &base
                .clone()
                .with_strategy(PlacementStrategy::ReplicateHot { hot: 2 }),
            &model,
        );
        assert!(replicated.max_experts_per_gpu() > plain.max_experts_per_gpu());
        assert!(replicated.footprint_bytes(1024, 128) > plain.footprint_bytes(1024, 128));
    }
}
