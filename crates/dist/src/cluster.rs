//! The cluster scheduler: shard a routing plan across expert-parallel GPUs,
//! charge per-GPU compute through the existing engine cost model plus the
//! all-to-all transfer time, and report utilization and straggler effects.
//!
//! One cluster step is one forward pass of the model's MoE layers over a
//! token batch: tokens live interleaved across GPUs (token `t` on GPU
//! `t mod g`), every layer dispatches them to their experts' owners
//! (all-to-all), each GPU runs its expert shard plus the replicated shared
//! experts over its local tokens, and the outputs return (second
//! all-to-all). The step time of a layer is the *slowest* GPU's compute —
//! the collectives synchronise the cluster, so load imbalance turns directly
//! into idle time everywhere else — plus both collectives.

use crate::link::LinkSpec;
use crate::placement::{ClusterEngine, ClusterMemoryModel, ExpertPlacement, PlacementStrategy};
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::router::RoutingPlan;
use samoyeds_sparse::Result;
use serde::{Deserialize, Serialize};

/// A homogeneous expert-parallel cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// The GPU model every rank runs.
    pub device: DeviceSpec,
    /// Number of GPUs.
    pub num_gpus: usize,
    /// Weight representation / execution engine.
    pub engine: ClusterEngine,
    /// Expert placement strategy.
    pub strategy: PlacementStrategy,
    /// The fabric binding the ranks together.
    pub link: LinkSpec,
}

impl ClusterConfig {
    /// A cluster of `num_gpus` × `device` running `engine`, with the
    /// device's native interconnect and capacity-greedy placement.
    pub fn new(device: DeviceSpec, num_gpus: usize, engine: ClusterEngine) -> Self {
        Self {
            link: LinkSpec::for_device(&device),
            device,
            num_gpus,
            engine,
            strategy: PlacementStrategy::CapacityGreedy,
        }
    }

    /// Replace the placement strategy.
    pub fn with_strategy(mut self, strategy: PlacementStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replace the interconnect.
    pub fn with_link(mut self, link: LinkSpec) -> Self {
        self.link = link;
        self
    }
}

/// The outcome of one cluster step over a routing plan.
#[derive(Debug, Clone)]
pub struct ClusterStepReport {
    /// GPUs in the cluster.
    pub num_gpus: usize,
    /// Tokens in the batch.
    pub tokens: usize,
    /// The placement used.
    pub placement: ExpertPlacement,
    /// Per-GPU MoE compute time of one layer (expert shard + shared
    /// experts over local tokens), milliseconds.
    pub per_gpu_compute_ms: Vec<f64>,
    /// Dispatch + combine all-to-all time of one layer, milliseconds.
    pub all_to_all_ms: f64,
    /// One layer's step time: slowest GPU + both collectives.
    pub layer_time_ms: f64,
    /// Full-model step time (`layer_time_ms` × layers).
    pub model_time_ms: f64,
    /// Token-expert assignments actually executed across all shards
    /// (equals the plan's `total_assignments`; the conservation invariant).
    pub sharded_assignments: usize,
}

impl ClusterStepReport {
    /// Compute time of the slowest GPU (the straggler) for one layer.
    pub fn straggler_ms(&self) -> f64 {
        self.per_gpu_compute_ms
            .iter()
            .fold(0.0f64, |m, &t| m.max(t))
    }

    /// Mean per-GPU compute time for one layer.
    pub fn mean_compute_ms(&self) -> f64 {
        self.per_gpu_compute_ms.iter().sum::<f64>() / self.num_gpus.max(1) as f64
    }

    /// Per-GPU utilization: own compute over the layer step time.
    pub fn utilization(&self) -> Vec<f64> {
        self.per_gpu_compute_ms
            .iter()
            .map(|&t| {
                if self.layer_time_ms > 0.0 {
                    t / self.layer_time_ms
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Fraction of the layer step spent in the collectives.
    pub fn all_to_all_fraction(&self) -> f64 {
        if self.layer_time_ms > 0.0 {
            self.all_to_all_ms / self.layer_time_ms
        } else {
            0.0
        }
    }

    /// Batch tokens per second through the full model's MoE stack.
    pub fn tokens_per_s(&self) -> f64 {
        if self.model_time_ms > 0.0 {
            self.tokens as f64 / (self.model_time_ms / 1e3)
        } else {
            0.0
        }
    }
}

/// Deterministic expert-parallel cluster simulator for one (cluster, model)
/// pair.
#[derive(Debug, Clone)]
pub struct ClusterSimulator {
    cluster: ClusterConfig,
    model: MoeModelConfig,
    memory: ClusterMemoryModel,
}

impl ClusterSimulator {
    /// Build the simulator.
    pub fn new(cluster: ClusterConfig, model: MoeModelConfig) -> Self {
        Self {
            memory: ClusterMemoryModel::new(&cluster.device, cluster.engine, &model),
            cluster,
            model,
        }
    }

    /// The cluster description.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// The model being served.
    pub fn model(&self) -> &MoeModelConfig {
        &self.model
    }

    /// The per-GPU memory model placements are validated against.
    pub fn memory(&self) -> &ClusterMemoryModel {
        &self.memory
    }

    /// Tokens resident on each GPU for a batch of `tokens` (interleaved
    /// residency: token `t` on GPU `t mod g`).
    fn local_tokens(&self, tokens: usize) -> Vec<usize> {
        let g = self.cluster.num_gpus;
        (0..g)
            .map(|gpu| tokens / g + usize::from(gpu < tokens % g))
            .collect()
    }

    /// Predicted per-expert cost profile (nanoseconds) under this cluster's
    /// engine — what a load-aware placement actually needs to balance. Raw
    /// token counts are a poor proxy: the SEL-driven kernels pay a
    /// near-fixed cost per expert for indexing the full batch, so an
    /// expert's cost is its fixed share plus its token-dependent share.
    pub fn expert_cost_profile(&self, plan: &RoutingPlan) -> Vec<usize> {
        let engine = self.cluster.engine.engine(&self.cluster.device);
        let mut routed_cfg = self.model.clone();
        routed_cfg.num_shared_experts = 0;
        (0..plan.num_experts())
            .map(|e| {
                let single = RoutingPlan {
                    num_tokens: plan.num_tokens,
                    top_k: plan.top_k,
                    expert_tokens: vec![plan.expert_tokens[e].clone()],
                    expert_weights: vec![plan.expert_weights[e].clone()],
                };
                let ms = engine
                    .moe_layer_cost(&routed_cfg, plan.num_tokens, &single)
                    .time_ms;
                (ms * 1e6) as usize
            })
            .collect()
    }

    /// Place the plan's experts under the configured strategy and budget,
    /// balancing the predicted per-expert cost profile.
    pub fn placement_for(&self, plan: &RoutingPlan) -> Result<ExpertPlacement> {
        let per_gpu = plan.num_tokens.div_ceil(self.cluster.num_gpus.max(1));
        self.cluster.strategy.place(
            &self.expert_cost_profile(plan),
            self.cluster.num_gpus,
            &self.memory,
            per_gpu,
            per_gpu,
        )
    }

    /// Whether the model fits this cluster at all for a batch of `tokens`
    /// (a uniform-load capacity-greedy placement succeeds).
    pub fn fits(&self, tokens: usize) -> bool {
        let per_gpu = tokens.div_ceil(self.cluster.num_gpus.max(1));
        PlacementStrategy::CapacityGreedy
            .place(
                &vec![1usize; self.model.num_experts],
                self.cluster.num_gpus,
                &self.memory,
                per_gpu,
                per_gpu,
            )
            .is_ok()
    }

    /// Execute one cluster step over `plan` with the configured strategy's
    /// placement.
    pub fn step(&self, plan: &RoutingPlan) -> Result<ClusterStepReport> {
        let placement = self.placement_for(plan)?;
        self.step_with_placement(plan, placement)
    }

    /// Execute one cluster step over `plan` under an explicit `placement`
    /// (the serving backend supplies its own, with fallback, so a transient
    /// placement failure never aborts a running trace).
    pub fn step_with_placement(
        &self,
        plan: &RoutingPlan,
        placement: ExpertPlacement,
    ) -> Result<ClusterStepReport> {
        let g = self.cluster.num_gpus;
        let shards = plan.shard(placement.assignments())?;
        let locals = self.local_tokens(plan.num_tokens);
        let engine = self.cluster.engine.engine(&self.cluster.device);

        // Routed experts: each GPU runs its shard; the SEL arrays index the
        // global token batch, so `num_tokens` stays the full batch. Shared
        // experts are replicated and run over the GPU's local tokens only.
        let mut routed_cfg = self.model.clone();
        routed_cfg.num_shared_experts = 0;
        let empty_plan = |local: usize| RoutingPlan {
            num_tokens: local,
            top_k: self.model.top_k,
            expert_tokens: Vec::new(),
            expert_weights: Vec::new(),
        };
        let mut per_gpu_compute_ms = Vec::with_capacity(g);
        let mut sharded_assignments = 0usize;
        for (gpu, shard) in shards.iter().enumerate() {
            sharded_assignments += shard.total_assignments();
            let mut ms = engine
                .moe_layer_cost(&routed_cfg, plan.num_tokens, shard)
                .time_ms;
            if self.model.num_shared_experts > 0 && locals[gpu] > 0 {
                ms += engine
                    .moe_layer_cost(&self.model, locals[gpu], &empty_plan(locals[gpu]))
                    .time_ms;
            }
            per_gpu_compute_ms.push(ms);
        }

        // All-to-all: a token routed to an expert on another GPU crosses
        // the fabric on dispatch and its expert output crosses back on
        // combine. Exact per-endpoint byte counts from the shard map.
        let token_bytes = self.model.hidden_size as f64 * 2.0;
        let mut send = vec![0.0f64; g];
        let mut recv = vec![0.0f64; g];
        for (gpu, shard) in shards.iter().enumerate() {
            for tokens in &shard.expert_tokens {
                for &t in tokens {
                    let src = t as usize % g;
                    if src != gpu {
                        send[src] += token_bytes;
                        recv[gpu] += token_bytes;
                    }
                }
            }
        }
        // Combine moves the same bytes in reverse, and the α-β model is
        // symmetric in its endpoints, so the step pays the dispatch
        // collective twice.
        let all_to_all_ms = 2.0 * self.cluster.link.all_to_all_ms(&send, &recv);

        let straggler = per_gpu_compute_ms.iter().fold(0.0f64, |m, &t| m.max(t));
        let layer_time_ms = straggler + all_to_all_ms;
        Ok(ClusterStepReport {
            num_gpus: g,
            tokens: plan.num_tokens,
            placement,
            per_gpu_compute_ms,
            all_to_all_ms,
            layer_time_ms,
            model_time_ms: layer_time_ms * self.model.num_layers as f64,
            sharded_assignments,
        })
    }
}

/// The smallest cluster of `device` (up to `max_gpus`) that holds `model`
/// under `engine` with a batch of `tokens`. `None` if even `max_gpus` GPUs
/// cannot hold it — the fleet-sizing question the compressed format answers
/// with fewer GPUs (the multi-GPU analogue of Table 3).
pub fn min_gpus_to_fit(
    device: &DeviceSpec,
    engine: ClusterEngine,
    model: &MoeModelConfig,
    tokens: usize,
    max_gpus: usize,
) -> Option<usize> {
    (1..=max_gpus).find(|&g| {
        ClusterSimulator::new(ClusterConfig::new(device.clone(), g, engine), model.clone())
            .fits(tokens)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use samoyeds_moe::router::TopKRouter;

    fn plan(config: &MoeModelConfig, tokens: usize) -> RoutingPlan {
        TopKRouter::for_config(config, 42).route(tokens)
    }

    #[test]
    fn step_includes_nonzero_all_to_all_and_conserves_assignments() {
        let config = MoeModelConfig::qwen2_moe();
        let plan = plan(&config, 1024);
        let sim = ClusterSimulator::new(
            ClusterConfig::new(DeviceSpec::a100_40g(), 4, ClusterEngine::Samoyeds),
            config,
        );
        let report = sim.step(&plan).unwrap();
        assert_eq!(report.num_gpus, 4);
        assert!(report.all_to_all_ms > 0.0);
        assert_eq!(report.sharded_assignments, plan.total_assignments());
        assert!(report.layer_time_ms >= report.straggler_ms());
        assert!(report.model_time_ms > report.layer_time_ms);
        assert!(report.tokens_per_s() > 0.0);
        let util = report.utilization();
        assert_eq!(util.len(), 4);
        assert!(util.iter().all(|&u| (0.0..=1.0).contains(&u)));
    }

    #[test]
    fn zero_duration_steps_report_zero_not_nan() {
        // Regression: a degenerate (empty) routing plan must price to a
        // well-defined zero-ish step — tokens_per_s, utilization and the
        // all-to-all fraction all return 0 rather than NaN/inf when the
        // step has no duration.
        let config = MoeModelConfig::qwen2_moe();
        let empty = TopKRouter::for_config(&config, 42).route(0);
        assert_eq!(empty.num_tokens, 0);
        for engine in ClusterEngine::all() {
            let sim = ClusterSimulator::new(
                ClusterConfig::new(DeviceSpec::a100_40g(), 4, engine),
                config.clone(),
            );
            let report = sim.step(&empty).unwrap();
            assert_eq!(report.tokens, 0);
            assert_eq!(report.all_to_all_ms, 0.0);
            let tps = report.tokens_per_s();
            assert!(tps.is_finite(), "{engine:?} tokens_per_s {tps}");
            assert_eq!(tps, 0.0);
            assert!(report.all_to_all_fraction().is_finite());
            for u in report.utilization() {
                assert!(u.is_finite(), "{engine:?} utilization {u}");
                assert!((0.0..=1.0).contains(&u));
            }
            assert!(report.mean_compute_ms().is_finite());
            assert!(report.straggler_ms().is_finite());
        }
    }

    #[test]
    fn hand_built_zero_time_report_is_guarded() {
        // The guards themselves, independent of the simulator: a report with
        // literally zero step time must not divide by zero.
        let report = ClusterStepReport {
            num_gpus: 2,
            tokens: 0,
            placement: ExpertPlacement {
                strategy: PlacementStrategy::RoundRobin,
                gpu_experts: vec![Vec::new(), Vec::new()],
            },
            per_gpu_compute_ms: vec![0.0, 0.0],
            all_to_all_ms: 0.0,
            layer_time_ms: 0.0,
            model_time_ms: 0.0,
            sharded_assignments: 0,
        };
        assert_eq!(report.tokens_per_s(), 0.0);
        assert_eq!(report.all_to_all_fraction(), 0.0);
        assert_eq!(report.utilization(), vec![0.0, 0.0]);
        assert_eq!(report.mean_compute_ms(), 0.0);
    }

    #[test]
    fn step_with_placement_matches_step_for_the_default_strategy() {
        let config = MoeModelConfig::qwen2_moe();
        let plan = plan(&config, 1024);
        let sim = ClusterSimulator::new(
            ClusterConfig::new(DeviceSpec::a100_40g(), 4, ClusterEngine::Samoyeds),
            config,
        );
        let placement = sim.placement_for(&plan).unwrap();
        let via_step = sim.step(&plan).unwrap();
        let via_explicit = sim.step_with_placement(&plan, placement).unwrap();
        assert_eq!(via_step.layer_time_ms, via_explicit.layer_time_ms);
        assert_eq!(via_step.all_to_all_ms, via_explicit.all_to_all_ms);
        assert_eq!(via_step.per_gpu_compute_ms, via_explicit.per_gpu_compute_ms);
    }

    #[test]
    fn single_gpu_pays_no_interconnect() {
        let config = MoeModelConfig::qwen2_moe();
        let plan = plan(&config, 512);
        let sim = ClusterSimulator::new(
            ClusterConfig::new(DeviceSpec::a100_40g(), 1, ClusterEngine::Samoyeds),
            config,
        );
        let report = sim.step(&plan).unwrap();
        assert_eq!(report.all_to_all_ms, 0.0);
        assert_eq!(report.per_gpu_compute_ms.len(), 1);
    }

    #[test]
    fn pcie_clusters_pay_more_for_dispatch_than_nvlink() {
        let config = MoeModelConfig::qwen2_moe();
        let plan = plan(&config, 2048);
        let base = ClusterConfig::new(DeviceSpec::a100_40g(), 4, ClusterEngine::Samoyeds);
        let nvlink = ClusterSimulator::new(base.clone(), config.clone());
        let pcie = ClusterSimulator::new(base.with_link(LinkSpec::pcie_gen4()), config);
        let t_nv = nvlink.step(&plan).unwrap().all_to_all_ms;
        let t_pcie = pcie.step(&plan).unwrap().all_to_all_ms;
        assert!(t_pcie > 3.0 * t_nv, "pcie {t_pcie} nvlink {t_nv}");
    }

    #[test]
    fn samoyeds_fits_on_fewer_gpus_than_dense() {
        let config = MoeModelConfig::qwen2_moe();
        let device = DeviceSpec::rtx4070_super();
        let dense = min_gpus_to_fit(&device, ClusterEngine::Dense, &config, 1024, 16).unwrap();
        let samoyeds =
            min_gpus_to_fit(&device, ClusterEngine::Samoyeds, &config, 1024, 16).unwrap();
        assert!(
            samoyeds < dense,
            "samoyeds needs {samoyeds} GPUs, dense {dense}"
        );
        assert_eq!(samoyeds, 1);
    }

    #[test]
    fn capacity_greedy_beats_round_robin_on_straggler_time_for_skewed_plans() {
        let config = MoeModelConfig::qwen2_moe();
        let skewed = TopKRouter::for_config(&config, 9)
            .with_skew(1.5)
            .route(2048);
        let base = ClusterConfig::new(DeviceSpec::a100_40g(), 8, ClusterEngine::Samoyeds);
        let rr = ClusterSimulator::new(
            base.clone().with_strategy(PlacementStrategy::RoundRobin),
            config.clone(),
        );
        let greedy = ClusterSimulator::new(
            base.with_strategy(PlacementStrategy::CapacityGreedy),
            config,
        );
        let t_rr = rr.step(&skewed).unwrap();
        let t_greedy = greedy.step(&skewed).unwrap();
        assert!(
            t_greedy.straggler_ms() < t_rr.straggler_ms(),
            "greedy {} vs round-robin {}",
            t_greedy.straggler_ms(),
            t_rr.straggler_ms()
        );
    }

    #[test]
    fn more_gpus_cut_compute_but_not_below_the_interconnect_floor() {
        let config = MoeModelConfig::qwen2_moe();
        let plan = plan(&config, 4096);
        let step = |g: usize| {
            ClusterSimulator::new(
                ClusterConfig::new(DeviceSpec::a100_40g(), g, ClusterEngine::Samoyeds),
                config.clone(),
            )
            .step(&plan)
            .unwrap()
        };
        let two = step(2);
        let eight = step(8);
        // Scaling out shrinks the straggler's compute...
        assert!(eight.straggler_ms() < two.straggler_ms());
        // ...while the collective share of the step grows.
        assert!(eight.all_to_all_fraction() > two.all_to_all_fraction());
    }
}
