//! The cluster scheduler: shard a routing plan across expert-parallel GPUs,
//! charge per-GPU compute through the existing engine cost model plus the
//! all-to-all transfer time, and report utilization and straggler effects.
//!
//! One cluster step is one forward pass of the model's MoE layers over a
//! token batch: tokens live interleaved across GPUs (token `t` on GPU
//! `t mod g`), every layer dispatches them to their experts' owners
//! (all-to-all), each GPU runs its expert shard plus the replicated shared
//! experts over its local tokens, and the outputs return (second
//! all-to-all). The step time of a layer is the *slowest* GPU's compute —
//! the collectives synchronise the cluster, so load imbalance turns directly
//! into idle time everywhere else — plus both collectives.

use crate::link::LinkSpec;
use crate::placement::{ClusterEngine, ClusterMemoryModel, ExpertPlacement, PlacementStrategy};
use crate::topology::{ClusterTopology, FlowMatrix};
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::router::RoutingPlan;
use samoyeds_sparse::{Result, SparseError};
use serde::{Deserialize, Serialize};

/// A homogeneous expert-parallel cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// The GPU model every rank runs.
    pub device: DeviceSpec,
    /// Number of GPUs.
    pub num_gpus: usize,
    /// Weight representation / execution engine.
    pub engine: ClusterEngine,
    /// Expert placement strategy.
    pub strategy: PlacementStrategy,
    /// The fabric binding the ranks together when no explicit topology is
    /// set (a single flat island over this link).
    pub link: LinkSpec,
    /// Optional hierarchical interconnect. `None` means one flat island
    /// over [`ClusterConfig::link`], which reproduces the single-level α-β
    /// collective cost exactly (pinned by `topology_equivalence`).
    pub topology: Option<ClusterTopology>,
}

impl ClusterConfig {
    /// A cluster of `num_gpus` × `device` running `engine`, with the
    /// device's native interconnect (one flat island) and capacity-greedy
    /// placement.
    pub fn new(device: DeviceSpec, num_gpus: usize, engine: ClusterEngine) -> Self {
        Self {
            link: LinkSpec::for_device(&device),
            device,
            num_gpus,
            engine,
            strategy: PlacementStrategy::CapacityGreedy,
            topology: None,
        }
    }

    /// Replace the placement strategy.
    pub fn with_strategy(mut self, strategy: PlacementStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replace the flat interconnect (ignored once
    /// [`ClusterConfig::with_topology`] sets an explicit topology).
    pub fn with_link(mut self, link: LinkSpec) -> Self {
        self.link = link;
        self
    }

    /// Set an explicit hierarchical topology (NVLink islands + spine). Its
    /// GPU count must match `num_gpus`: a mismatch surfaces as a step
    /// error from [`ClusterSimulator::step`] and as a construction panic
    /// from `ClusterBackend::new`.
    pub fn with_topology(mut self, topology: ClusterTopology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Deploy the cluster in its device's natural multi-node form factor:
    /// islands of [`DeviceSpec::gpus_per_node`](samoyeds_gpu_sim::DeviceSpec::gpus_per_node)
    /// on the native fabric, stitched by an InfiniBand NDR spine once the
    /// fleet outgrows one node (see [`ClusterTopology::for_device`]).
    pub fn with_node_topology(mut self) -> Self {
        self.topology = Some(ClusterTopology::for_device(&self.device, self.num_gpus));
        self
    }

    /// The effective topology: the explicit one, or a single flat island
    /// over [`ClusterConfig::link`].
    pub fn resolved_topology(&self) -> ClusterTopology {
        self.topology
            .clone()
            .unwrap_or_else(|| ClusterTopology::flat(self.num_gpus, self.link.clone()))
    }
}

/// The outcome of one cluster step over a routing plan.
#[derive(Debug, Clone)]
pub struct ClusterStepReport {
    /// GPUs in the cluster.
    pub num_gpus: usize,
    /// Tokens in the batch.
    pub tokens: usize,
    /// The placement used.
    pub placement: ExpertPlacement,
    /// Per-GPU MoE compute time of one layer (expert shard + shared
    /// experts over local tokens), milliseconds.
    pub per_gpu_compute_ms: Vec<f64>,
    /// Dispatch + combine all-to-all time of one layer, milliseconds.
    pub all_to_all_ms: f64,
    /// Intra-island share of the collectives (dispatch + combine),
    /// milliseconds. Equals `all_to_all_ms` on a flat topology without
    /// pair overrides.
    pub intra_island_ms: f64,
    /// Spine (inter-island leader exchange) share of the collectives
    /// (dispatch + combine), milliseconds. Exactly 0 on a flat topology or
    /// when no token crosses an island boundary.
    pub spine_ms: f64,
    /// Dedicated pair-override link share of the collectives (dispatch +
    /// combine), milliseconds; runs concurrently with the phases, so
    /// `all_to_all_ms = max(intra_island_ms + spine_ms, override_ms)`.
    pub override_ms: f64,
    /// Bytes crossing island boundaries in one layer (dispatch + combine).
    pub cross_island_bytes: f64,
    /// One layer's step time: slowest GPU + both collectives.
    pub layer_time_ms: f64,
    /// Full-model step time (`layer_time_ms` × layers).
    pub model_time_ms: f64,
    /// Token-expert assignments actually executed across all shards
    /// (equals the plan's `total_assignments`; the conservation invariant).
    pub sharded_assignments: usize,
}

impl ClusterStepReport {
    /// Compute time of the slowest GPU (the straggler) for one layer.
    pub fn straggler_ms(&self) -> f64 {
        self.per_gpu_compute_ms
            .iter()
            .fold(0.0f64, |m, &t| m.max(t))
    }

    /// Mean per-GPU compute time for one layer.
    pub fn mean_compute_ms(&self) -> f64 {
        self.per_gpu_compute_ms.iter().sum::<f64>() / self.num_gpus.max(1) as f64
    }

    /// Per-GPU utilization: own compute over the layer step time.
    pub fn utilization(&self) -> Vec<f64> {
        self.per_gpu_compute_ms
            .iter()
            .map(|&t| {
                if self.layer_time_ms > 0.0 {
                    t / self.layer_time_ms
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Fraction of the layer step spent in the collectives.
    pub fn all_to_all_fraction(&self) -> f64 {
        if self.layer_time_ms > 0.0 {
            self.all_to_all_ms / self.layer_time_ms
        } else {
            0.0
        }
    }

    /// Fraction of the layer step spent on the inter-island spine — the
    /// "spine-bound" diagnostic of the topology sweep.
    pub fn spine_fraction(&self) -> f64 {
        if self.layer_time_ms > 0.0 {
            self.spine_ms / self.layer_time_ms
        } else {
            0.0
        }
    }

    /// Batch tokens per second through the full model's MoE stack.
    pub fn tokens_per_s(&self) -> f64 {
        if self.model_time_ms > 0.0 {
            self.tokens as f64 / (self.model_time_ms / 1e3)
        } else {
            0.0
        }
    }
}

/// Deterministic expert-parallel cluster simulator for one (cluster, model)
/// pair.
#[derive(Debug, Clone)]
pub struct ClusterSimulator {
    cluster: ClusterConfig,
    model: MoeModelConfig,
    memory: ClusterMemoryModel,
    topology: ClusterTopology,
}

impl ClusterSimulator {
    /// Build the simulator.
    pub fn new(cluster: ClusterConfig, model: MoeModelConfig) -> Self {
        Self {
            memory: ClusterMemoryModel::new(&cluster.device, cluster.engine, &model),
            topology: cluster.resolved_topology(),
            cluster,
            model,
        }
    }

    /// The cluster description.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// The interconnect topology collectives are priced over.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    /// The model being served.
    pub fn model(&self) -> &MoeModelConfig {
        &self.model
    }

    /// The per-GPU memory model placements are validated against.
    pub fn memory(&self) -> &ClusterMemoryModel {
        &self.memory
    }

    /// Tokens resident on each GPU for a batch of `tokens` (interleaved
    /// residency: token `t` on GPU `t mod g`).
    fn local_tokens(&self, tokens: usize) -> Vec<usize> {
        let g = self.cluster.num_gpus;
        (0..g)
            .map(|gpu| tokens / g + usize::from(gpu < tokens % g))
            .collect()
    }

    /// Predicted per-expert cost profile (nanoseconds) under this cluster's
    /// engine — what a load-aware placement actually needs to balance. Raw
    /// token counts are a poor proxy: the SEL-driven kernels pay a
    /// near-fixed cost per expert for indexing the full batch, so an
    /// expert's cost is its fixed share plus its token-dependent share.
    pub fn expert_cost_profile(&self, plan: &RoutingPlan) -> Vec<usize> {
        let engine = self.cluster.engine.engine(&self.cluster.device);
        let mut routed_cfg = self.model.clone();
        routed_cfg.num_shared_experts = 0;
        (0..plan.num_experts())
            .map(|e| {
                let single = RoutingPlan {
                    num_tokens: plan.num_tokens,
                    top_k: plan.top_k,
                    expert_tokens: vec![plan.expert_tokens[e].clone()],
                    expert_weights: vec![plan.expert_weights[e].clone()],
                };
                let ms = engine
                    .moe_layer_cost(&routed_cfg, plan.num_tokens, &single)
                    .time_ms;
                (ms * 1e6) as usize
            })
            .collect()
    }

    /// Place the plan's experts under the configured strategy and budget,
    /// balancing the predicted per-expert cost profile (topology-aware:
    /// island-replicating strategies see the island structure).
    pub fn placement_for(&self, plan: &RoutingPlan) -> Result<ExpertPlacement> {
        let per_gpu = plan.num_tokens.div_ceil(self.cluster.num_gpus.max(1));
        self.cluster.strategy.place_on(
            &self.expert_cost_profile(plan),
            &self.topology,
            &self.memory,
            per_gpu,
            per_gpu,
        )
    }

    /// Whether the model fits this cluster at all for a batch of `tokens`
    /// (a uniform-load capacity-greedy placement succeeds).
    pub fn fits(&self, tokens: usize) -> bool {
        let per_gpu = tokens.div_ceil(self.cluster.num_gpus.max(1));
        PlacementStrategy::CapacityGreedy
            .place(
                &vec![1usize; self.model.num_experts],
                self.cluster.num_gpus,
                &self.memory,
                per_gpu,
                per_gpu,
            )
            .is_ok()
    }

    /// Execute one cluster step over `plan` with the configured strategy's
    /// placement.
    pub fn step(&self, plan: &RoutingPlan) -> Result<ClusterStepReport> {
        let placement = self.placement_for(plan)?;
        self.step_with_placement(plan, placement)
    }

    /// Execute one cluster step over `plan` under an explicit `placement`
    /// (the serving backend supplies its own, with fallback, so a transient
    /// placement failure never aborts a running trace).
    pub fn step_with_placement(
        &self,
        plan: &RoutingPlan,
        placement: ExpertPlacement,
    ) -> Result<ClusterStepReport> {
        let g = self.cluster.num_gpus;
        if self.topology.num_gpus() != g {
            return Err(SparseError::config(format!(
                "topology spans {} GPUs but the cluster has {g}",
                self.topology.num_gpus()
            )));
        }
        self.topology.validate()?;
        // On a hierarchical topology a replicated expert's tokens dispatch
        // to a replica inside their own island (zero spine bytes for that
        // expert), round-robin across the island's replicas so a strategy
        // like ReplicateHot keeps splitting the hot load within each
        // island; the flat path keeps the legacy round-robin split so a
        // single-island topology reproduces today's numbers exactly.
        let shards = if self.topology.num_islands() > 1 {
            let island_of = self.topology.island_lookup();
            let islands = self.topology.num_islands();
            // Per (expert, island): the indices (into the expert's owner
            // list, assignment-iteration order — the order `shard_with`
            // presents) of the replicas living in that island, precomputed
            // once so the per-token pick is a table lookup.
            let mut island_replicas: Vec<Vec<Vec<usize>>> =
                vec![vec![Vec::new(); islands]; plan.num_experts()];
            let mut seen = vec![0usize; plan.num_experts()];
            for (rank, owned) in placement.assignments().iter().enumerate() {
                // Out-of-range ids fall through to shard_with's validation.
                for &e in owned.iter().filter(|&&e| e < plan.num_experts()) {
                    island_replicas[e][island_of[rank]].push(seen[e]);
                    seen[e] += 1;
                }
            }
            plan.shard_with(placement.assignments(), |e, t, owners| {
                let same = &island_replicas[e][island_of[t as usize % g]];
                if same.is_empty() {
                    t as usize % owners.len()
                } else {
                    same[t as usize % same.len()]
                }
            })?
        } else {
            plan.shard(placement.assignments())?
        };
        let locals = self.local_tokens(plan.num_tokens);
        let engine = self.cluster.engine.engine(&self.cluster.device);

        // Routed experts: each GPU runs its shard; the SEL arrays index the
        // global token batch, so `num_tokens` stays the full batch. Shared
        // experts are replicated and run over the GPU's local tokens only.
        let mut routed_cfg = self.model.clone();
        routed_cfg.num_shared_experts = 0;
        let empty_plan = |local: usize| RoutingPlan {
            num_tokens: local,
            top_k: self.model.top_k,
            expert_tokens: Vec::new(),
            expert_weights: Vec::new(),
        };
        let mut per_gpu_compute_ms = Vec::with_capacity(g);
        let mut sharded_assignments = 0usize;
        for (gpu, shard) in shards.iter().enumerate() {
            sharded_assignments += shard.total_assignments();
            let mut ms = engine
                .moe_layer_cost(&routed_cfg, plan.num_tokens, shard)
                .time_ms;
            if self.model.num_shared_experts > 0 && locals[gpu] > 0 {
                ms += engine
                    .moe_layer_cost(&self.model, locals[gpu], &empty_plan(locals[gpu]))
                    .time_ms;
            }
            per_gpu_compute_ms.push(ms);
        }

        // All-to-all: a token routed to an expert on another GPU crosses
        // the fabric on dispatch and its expert output crosses back on
        // combine. Exact per-pair byte flows from the shard map, priced by
        // the topology (intra-island phase + spine leader exchange; a flat
        // topology degenerates to the single-level α-β cost over the
        // per-GPU totals — every accumulated value is an exact integer in
        // f64, so the row sums match the legacy per-GPU accumulation bit
        // for bit).
        let token_bytes = self.model.hidden_size as f64 * 2.0;
        let mut flows = FlowMatrix::new(g);
        for (gpu, shard) in shards.iter().enumerate() {
            for tokens in &shard.expert_tokens {
                for &t in tokens {
                    flows.add(t as usize % g, gpu, token_bytes);
                }
            }
        }
        // Combine moves the same bytes in reverse, and both phase costs are
        // symmetric in their endpoints, so the step pays the dispatch
        // collective twice.
        let cost = self.topology.all_to_all_ms(&flows);
        let all_to_all_ms = 2.0 * cost.total_ms();

        let straggler = per_gpu_compute_ms.iter().fold(0.0f64, |m, &t| m.max(t));
        let layer_time_ms = straggler + all_to_all_ms;
        Ok(ClusterStepReport {
            num_gpus: g,
            tokens: plan.num_tokens,
            placement,
            per_gpu_compute_ms,
            all_to_all_ms,
            intra_island_ms: 2.0 * cost.intra_ms,
            spine_ms: 2.0 * cost.spine_ms,
            override_ms: 2.0 * cost.override_ms,
            cross_island_bytes: 2.0 * cost.cross_island_bytes,
            layer_time_ms,
            model_time_ms: layer_time_ms * self.model.num_layers as f64,
            sharded_assignments,
        })
    }
}

/// The smallest cluster of `device` (up to `max_gpus`) that holds `model`
/// under `engine` with a batch of `tokens`. `None` if even `max_gpus` GPUs
/// cannot hold it — the fleet-sizing question the compressed format answers
/// with fewer GPUs (the multi-GPU analogue of Table 3).
pub fn min_gpus_to_fit(
    device: &DeviceSpec,
    engine: ClusterEngine,
    model: &MoeModelConfig,
    tokens: usize,
    max_gpus: usize,
) -> Option<usize> {
    (1..=max_gpus).find(|&g| {
        ClusterSimulator::new(ClusterConfig::new(device.clone(), g, engine), model.clone())
            .fits(tokens)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use samoyeds_moe::router::TopKRouter;

    fn plan(config: &MoeModelConfig, tokens: usize) -> RoutingPlan {
        TopKRouter::for_config(config, 42).route(tokens)
    }

    #[test]
    fn step_includes_nonzero_all_to_all_and_conserves_assignments() {
        let config = MoeModelConfig::qwen2_moe();
        let plan = plan(&config, 1024);
        let sim = ClusterSimulator::new(
            ClusterConfig::new(DeviceSpec::a100_40g(), 4, ClusterEngine::Samoyeds),
            config,
        );
        let report = sim.step(&plan).unwrap();
        assert_eq!(report.num_gpus, 4);
        assert!(report.all_to_all_ms > 0.0);
        assert_eq!(report.sharded_assignments, plan.total_assignments());
        assert!(report.layer_time_ms >= report.straggler_ms());
        assert!(report.model_time_ms > report.layer_time_ms);
        assert!(report.tokens_per_s() > 0.0);
        let util = report.utilization();
        assert_eq!(util.len(), 4);
        assert!(util.iter().all(|&u| (0.0..=1.0).contains(&u)));
    }

    #[test]
    fn zero_duration_steps_report_zero_not_nan() {
        // Regression: a degenerate (empty) routing plan must price to a
        // well-defined zero-ish step — tokens_per_s, utilization and the
        // all-to-all fraction all return 0 rather than NaN/inf when the
        // step has no duration.
        let config = MoeModelConfig::qwen2_moe();
        let empty = TopKRouter::for_config(&config, 42).route(0);
        assert_eq!(empty.num_tokens, 0);
        for engine in ClusterEngine::all() {
            let sim = ClusterSimulator::new(
                ClusterConfig::new(DeviceSpec::a100_40g(), 4, engine),
                config.clone(),
            );
            let report = sim.step(&empty).unwrap();
            assert_eq!(report.tokens, 0);
            assert_eq!(report.all_to_all_ms, 0.0);
            let tps = report.tokens_per_s();
            assert!(tps.is_finite(), "{engine:?} tokens_per_s {tps}");
            assert_eq!(tps, 0.0);
            assert!(report.all_to_all_fraction().is_finite());
            for u in report.utilization() {
                assert!(u.is_finite(), "{engine:?} utilization {u}");
                assert!((0.0..=1.0).contains(&u));
            }
            assert!(report.mean_compute_ms().is_finite());
            assert!(report.straggler_ms().is_finite());
        }
    }

    #[test]
    fn empty_steps_under_a_hierarchical_topology_stay_zero_and_finite() {
        // Regression: the degenerate shapes of the topology model — an
        // empty routing plan over a 2x4 island layout, and a 1-island-of-1
        // topology on a single GPU — price to well-defined zeros, never
        // NaN, and the spine phase of a traffic-free step costs exactly 0.
        let config = MoeModelConfig::qwen2_moe();
        let empty = TopKRouter::for_config(&config, 42).route(0);
        let topology =
            ClusterTopology::symmetric(2, 4, LinkSpec::nvlink3(), LinkSpec::infiniband_ndr())
                .unwrap();
        for engine in ClusterEngine::all() {
            let sim = ClusterSimulator::new(
                ClusterConfig::new(DeviceSpec::a100_40g(), 8, engine)
                    .with_topology(topology.clone()),
                config.clone(),
            );
            let report = sim.step(&empty).unwrap();
            assert_eq!(report.all_to_all_ms, 0.0);
            assert_eq!(report.intra_island_ms, 0.0);
            assert_eq!(report.spine_ms, 0.0);
            assert_eq!(report.cross_island_bytes, 0.0);
            assert_eq!(report.tokens_per_s(), 0.0);
            assert!(report.spine_fraction().is_finite());
            assert!(report.all_to_all_fraction().is_finite());
            for u in report.utilization() {
                assert!(u.is_finite() && (0.0..=1.0).contains(&u));
            }
        }
        // 1 island of 1 GPU: no peers, no phases, but real compute.
        let single = ClusterSimulator::new(
            ClusterConfig::new(DeviceSpec::a100_40g(), 1, ClusterEngine::Samoyeds).with_topology(
                ClusterTopology::symmetric(1, 1, LinkSpec::nvlink3(), LinkSpec::infiniband_ndr())
                    .unwrap(),
            ),
            config.clone(),
        );
        let report = single
            .step(&TopKRouter::for_config(&config, 42).route(512))
            .unwrap();
        assert_eq!(report.all_to_all_ms, 0.0);
        assert_eq!(report.spine_ms, 0.0);
        assert_eq!(report.cross_island_bytes, 0.0);
        assert!(report.straggler_ms() > 0.0);
    }

    #[test]
    fn hand_built_zero_time_report_is_guarded() {
        // The guards themselves, independent of the simulator: a report with
        // literally zero step time must not divide by zero.
        let report = ClusterStepReport {
            num_gpus: 2,
            tokens: 0,
            placement: ExpertPlacement {
                strategy: PlacementStrategy::RoundRobin,
                gpu_experts: vec![Vec::new(), Vec::new()],
            },
            per_gpu_compute_ms: vec![0.0, 0.0],
            all_to_all_ms: 0.0,
            intra_island_ms: 0.0,
            spine_ms: 0.0,
            override_ms: 0.0,
            cross_island_bytes: 0.0,
            layer_time_ms: 0.0,
            model_time_ms: 0.0,
            sharded_assignments: 0,
        };
        assert_eq!(report.tokens_per_s(), 0.0);
        assert_eq!(report.all_to_all_fraction(), 0.0);
        assert_eq!(report.spine_fraction(), 0.0);
        assert_eq!(report.utilization(), vec![0.0, 0.0]);
        assert_eq!(report.mean_compute_ms(), 0.0);
    }

    #[test]
    fn step_with_placement_matches_step_for_the_default_strategy() {
        let config = MoeModelConfig::qwen2_moe();
        let plan = plan(&config, 1024);
        let sim = ClusterSimulator::new(
            ClusterConfig::new(DeviceSpec::a100_40g(), 4, ClusterEngine::Samoyeds),
            config,
        );
        let placement = sim.placement_for(&plan).unwrap();
        let via_step = sim.step(&plan).unwrap();
        let via_explicit = sim.step_with_placement(&plan, placement).unwrap();
        assert_eq!(via_step.layer_time_ms, via_explicit.layer_time_ms);
        assert_eq!(via_step.all_to_all_ms, via_explicit.all_to_all_ms);
        assert_eq!(via_step.per_gpu_compute_ms, via_explicit.per_gpu_compute_ms);
    }

    #[test]
    fn single_gpu_pays_no_interconnect() {
        let config = MoeModelConfig::qwen2_moe();
        let plan = plan(&config, 512);
        let sim = ClusterSimulator::new(
            ClusterConfig::new(DeviceSpec::a100_40g(), 1, ClusterEngine::Samoyeds),
            config,
        );
        let report = sim.step(&plan).unwrap();
        assert_eq!(report.all_to_all_ms, 0.0);
        assert_eq!(report.per_gpu_compute_ms.len(), 1);
    }

    #[test]
    fn pcie_clusters_pay_more_for_dispatch_than_nvlink() {
        let config = MoeModelConfig::qwen2_moe();
        let plan = plan(&config, 2048);
        let base = ClusterConfig::new(DeviceSpec::a100_40g(), 4, ClusterEngine::Samoyeds);
        let nvlink = ClusterSimulator::new(base.clone(), config.clone());
        let pcie = ClusterSimulator::new(base.with_link(LinkSpec::pcie_gen4()), config);
        let t_nv = nvlink.step(&plan).unwrap().all_to_all_ms;
        let t_pcie = pcie.step(&plan).unwrap().all_to_all_ms;
        assert!(t_pcie > 3.0 * t_nv, "pcie {t_pcie} nvlink {t_nv}");
    }

    #[test]
    fn samoyeds_fits_on_fewer_gpus_than_dense() {
        let config = MoeModelConfig::qwen2_moe();
        let device = DeviceSpec::rtx4070_super();
        let dense = min_gpus_to_fit(&device, ClusterEngine::Dense, &config, 1024, 16).unwrap();
        let samoyeds =
            min_gpus_to_fit(&device, ClusterEngine::Samoyeds, &config, 1024, 16).unwrap();
        assert!(
            samoyeds < dense,
            "samoyeds needs {samoyeds} GPUs, dense {dense}"
        );
        assert_eq!(samoyeds, 1);
    }

    #[test]
    fn capacity_greedy_beats_round_robin_on_straggler_time_for_skewed_plans() {
        let config = MoeModelConfig::qwen2_moe();
        let skewed = TopKRouter::for_config(&config, 9)
            .with_skew(1.5)
            .route(2048);
        let base = ClusterConfig::new(DeviceSpec::a100_40g(), 8, ClusterEngine::Samoyeds);
        let rr = ClusterSimulator::new(
            base.clone().with_strategy(PlacementStrategy::RoundRobin),
            config.clone(),
        );
        let greedy = ClusterSimulator::new(
            base.with_strategy(PlacementStrategy::CapacityGreedy),
            config,
        );
        let t_rr = rr.step(&skewed).unwrap();
        let t_greedy = greedy.step(&skewed).unwrap();
        assert!(
            t_greedy.straggler_ms() < t_rr.straggler_ms(),
            "greedy {} vs round-robin {}",
            t_greedy.straggler_ms(),
            t_rr.straggler_ms()
        );
    }

    #[test]
    fn hierarchical_topology_splits_collectives_into_intra_and_spine() {
        let config = MoeModelConfig::qwen2_moe();
        let plan = plan(&config, 2048);
        let base = ClusterConfig::new(DeviceSpec::a100_40g(), 8, ClusterEngine::Samoyeds);
        let flat = ClusterSimulator::new(base.clone(), config.clone());
        let hier = ClusterSimulator::new(
            base.with_topology(
                ClusterTopology::symmetric(2, 4, LinkSpec::nvlink3(), LinkSpec::infiniband_ndr())
                    .unwrap(),
            ),
            config,
        );
        let f = flat.step(&plan).unwrap();
        let h = hier.step(&plan).unwrap();
        // Flat: everything is intra-island, the spine never fires.
        assert_eq!(f.spine_ms, 0.0);
        assert_eq!(f.cross_island_bytes, 0.0);
        assert_eq!(f.intra_island_ms, f.all_to_all_ms);
        // Hierarchical: the interleaved token residency pushes roughly half
        // the dispatch across the 50 GB/s spine, which dominates the step.
        assert!(h.spine_ms > 0.0);
        assert!(h.cross_island_bytes > 0.0);
        assert!(h.spine_fraction() > 0.0);
        assert!(
            h.all_to_all_ms > f.all_to_all_ms,
            "spine-bound {} vs flat {}",
            h.all_to_all_ms,
            f.all_to_all_ms
        );
        // Both paths execute the same token-expert assignments.
        assert_eq!(h.sharded_assignments, f.sharded_assignments);
    }

    #[test]
    fn per_island_replication_cuts_spine_traffic_on_skewed_plans() {
        let config = MoeModelConfig::qwen2_moe();
        let skewed = TopKRouter::for_config(&config, 9)
            .with_skew(1.5)
            .route(2048);
        let topology =
            ClusterTopology::symmetric(2, 4, LinkSpec::nvlink3(), LinkSpec::infiniband_ndr())
                .unwrap();
        let base = ClusterConfig::new(DeviceSpec::a100_40g(), 8, ClusterEngine::Samoyeds)
            .with_topology(topology);
        let greedy = ClusterSimulator::new(base.clone(), config.clone());
        let island = ClusterSimulator::new(
            base.with_strategy(PlacementStrategy::ReplicateHotPerIsland { hot: 4 }),
            config,
        );
        let t_greedy = greedy.step(&skewed).unwrap();
        let t_island = island.step(&skewed).unwrap();
        // The hot experts' tokens now dispatch to the replica inside their
        // own island, so fewer bytes cross the spine.
        assert!(
            t_island.cross_island_bytes < t_greedy.cross_island_bytes,
            "island {} vs greedy {}",
            t_island.cross_island_bytes,
            t_greedy.cross_island_bytes
        );
        assert!(
            t_island.spine_ms < t_greedy.spine_ms,
            "island {} vs greedy {}",
            t_island.spine_ms,
            t_greedy.spine_ms
        );
        // Conservation still holds through the affinity-aware sharding.
        assert_eq!(t_island.sharded_assignments, skewed.total_assignments());
    }

    #[test]
    fn replicated_experts_split_their_load_within_each_island() {
        // Regression: the island-affinity shard must round-robin an
        // island's tokens across ALL of the island's replicas, not pile
        // them on the first one — otherwise ReplicateHot degenerates to
        // one loaded rank per island on hierarchical topologies.
        let mut config = MoeModelConfig::qwen2_moe();
        config.num_shared_experts = 0;
        // Degenerate plan: every token routed to expert 0 only.
        let hot_tokens: Vec<u32> = (0..256).collect();
        let mut expert_tokens = vec![Vec::new(); config.num_experts];
        let mut expert_weights = vec![Vec::new(); config.num_experts];
        expert_weights[0] = vec![1.0; hot_tokens.len()];
        expert_tokens[0] = hot_tokens;
        let plan = RoutingPlan {
            num_tokens: 256,
            top_k: 1,
            expert_tokens,
            expert_weights,
        };
        let sim = ClusterSimulator::new(
            ClusterConfig::new(DeviceSpec::a100_40g(), 4, ClusterEngine::Samoyeds)
                .with_topology(
                    ClusterTopology::symmetric(
                        2,
                        2,
                        LinkSpec::nvlink3(),
                        LinkSpec::infiniband_ndr(),
                    )
                    .unwrap(),
                )
                .with_strategy(PlacementStrategy::ReplicateHot { hot: 1 }),
            config,
        );
        let report = sim.step(&plan).unwrap();
        assert_eq!(report.sharded_assignments, plan.total_assignments());
        // Every rank holds a replica and serves a quarter of the batch.
        let min = report
            .per_gpu_compute_ms
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(min > 0.0);
        assert!(
            report.straggler_ms() < 1.5 * min,
            "per-GPU compute spread too wide: {:?}",
            report.per_gpu_compute_ms
        );
    }

    #[test]
    fn pair_override_time_is_surfaced_on_the_step_report() {
        // A 2-GPU PCIe host with a dedicated NVLink bridge: the whole
        // collective rides the bridge, and the report attributes that time
        // instead of leaving it as phantom all-to-all ms.
        let config = MoeModelConfig::qwen2_moe();
        let plan = plan(&config, 512);
        let sim = ClusterSimulator::new(
            ClusterConfig::new(DeviceSpec::a100_40g(), 2, ClusterEngine::Samoyeds).with_topology(
                ClusterTopology::flat(2, LinkSpec::pcie_gen4()).with_pair_override(
                    0,
                    1,
                    LinkSpec::nvlink3(),
                ),
            ),
            config,
        );
        let report = sim.step(&plan).unwrap();
        assert!(report.override_ms > 0.0);
        assert_eq!(report.intra_island_ms, 0.0);
        assert_eq!(report.spine_ms, 0.0);
        assert_eq!(
            report.all_to_all_ms,
            (report.intra_island_ms + report.spine_ms).max(report.override_ms)
        );
    }

    #[test]
    fn node_topology_deploys_the_device_form_factor() {
        let config = MoeModelConfig::qwen2_moe();
        // Eight consumer cards live in four 2-card PCIe hosts on a spine.
        let consumer = ClusterSimulator::new(
            ClusterConfig::new(DeviceSpec::rtx4070_super(), 8, ClusterEngine::Samoyeds)
                .with_node_topology(),
            config.clone(),
        );
        assert_eq!(consumer.topology().num_islands(), 4);
        assert_eq!(consumer.topology().spine, LinkSpec::infiniband_ndr());
        // An 8-GPU A100 pod stays inside one HGX node: flat NVLink.
        let a100 = ClusterSimulator::new(
            ClusterConfig::new(DeviceSpec::a100_40g(), 8, ClusterEngine::Samoyeds)
                .with_node_topology(),
            config,
        );
        assert!(a100.topology().is_flat());
    }

    #[test]
    fn mismatched_topology_is_a_step_error_not_a_panic() {
        let config = MoeModelConfig::qwen2_moe();
        let plan = plan(&config, 256);
        let sim = ClusterSimulator::new(
            ClusterConfig::new(DeviceSpec::a100_40g(), 4, ClusterEngine::Samoyeds)
                .with_topology(ClusterTopology::flat(8, LinkSpec::nvlink3())),
            config,
        );
        assert!(sim.step(&plan).is_err());
    }

    #[test]
    fn more_gpus_cut_compute_but_not_below_the_interconnect_floor() {
        let config = MoeModelConfig::qwen2_moe();
        let plan = plan(&config, 4096);
        let step = |g: usize| {
            ClusterSimulator::new(
                ClusterConfig::new(DeviceSpec::a100_40g(), g, ClusterEngine::Samoyeds),
                config.clone(),
            )
            .step(&plan)
            .unwrap()
        };
        let two = step(2);
        let eight = step(8);
        // Scaling out shrinks the straggler's compute...
        assert!(eight.straggler_ms() < two.straggler_ms());
        // ...while the collective share of the step grows.
        assert!(eight.all_to_all_fraction() > two.all_to_all_fraction());
    }
}
