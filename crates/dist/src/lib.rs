//! Multi-GPU expert-parallel serving simulator for the Samoyeds
//! reproduction.
//!
//! The paper's headline memory result (Table 3) is single-GPU: dual-side
//! structured sparsity lets one consumer card hold MoE models that OOM in
//! dense form. At production scale MoE serving is *expert-parallel*: the
//! routed experts shard across many GPUs, every MoE layer pays two
//! all-to-all collectives (token dispatch and output combine, the GShard /
//! DeepSpeed-MoE data flow), and placement plus routing imbalance decide
//! the straggler that paces each step. This crate quantifies the paper's
//! compression as a *fleet-sizing* lever — fewer GPUs, or bigger models,
//! for the same traffic:
//!
//! * [`link`] — interconnect presets (NVLink / PCIe / InfiniBand) and the
//!   α-β all-to-all collective cost over per-GPU byte counts;
//! * [`topology`] — [`ClusterTopology`]: GPUs grouped into NVLink/PCIe
//!   islands stitched by an InfiniBand spine (plus heterogeneous per-pair
//!   overrides), priced as a two-phase hierarchical all-to-all over exact
//!   per-pair byte flows; a flat single island reproduces the single-level
//!   α-β cost bit for bit;
//! * [`placement`] — round-robin, capacity-aware greedy and
//!   replicated-hot-expert placement, validated against per-GPU memory
//!   budgets derived from the engines' weight representations;
//! * [`cluster`] — the cluster scheduler: shards a
//!   [`RoutingPlan`](samoyeds_moe::router::RoutingPlan) across GPUs,
//!   charges per-GPU compute through the existing engine/`gpu-sim` cost
//!   model plus all-to-all transfer time, and tracks utilization and
//!   straggler-induced step time;
//! * [`backend`] — [`ClusterBackend`], the expert-parallel implementation
//!   of the `samoyeds-serve`
//!   [`ExecutionBackend`](samoyeds_serve::ExecutionBackend) trait: the
//!   continuous-batching scheduler drives a whole pod (straggler compute +
//!   collectives per step, admission against the straggler GPU's budget);
//! * [`report`] — dense vs VENOM vs Samoyeds GPU-count sweeps, fleet
//!   sizing, placement comparisons and the cluster-serving sweep as
//!   markdown;
//! * [`validate`] — static checks that need both a fault schedule and the
//!   topology it targets (single-island partitions, out-of-range islands),
//!   on the shared `samoyeds_serve::validate` diagnostic engine.
//!
//! ```
//! use samoyeds_dist::{ClusterConfig, ClusterEngine, ClusterSimulator};
//! use samoyeds_gpu_sim::DeviceSpec;
//! use samoyeds_moe::config::MoeModelConfig;
//! use samoyeds_moe::router::TopKRouter;
//!
//! let model = MoeModelConfig::qwen2_moe();
//! let plan = TopKRouter::for_config(&model, 42).route(1024);
//! let sim = ClusterSimulator::new(
//!     ClusterConfig::new(DeviceSpec::a100_40g(), 4, ClusterEngine::Samoyeds),
//!     model,
//! );
//! let step = sim.step(&plan).unwrap();
//! assert!(step.all_to_all_ms > 0.0);
//! assert_eq!(step.sharded_assignments, plan.total_assignments());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cluster;
pub mod link;
pub mod placement;
pub mod report;
pub mod topology;
pub mod validate;

pub use backend::{ClusterAdmissionBudget, ClusterBackend};
pub use cluster::{min_gpus_to_fit, ClusterConfig, ClusterSimulator, ClusterStepReport};
pub use link::LinkSpec;
pub use placement::{
    replan_after_crash, ClusterEngine, ClusterMemoryModel, ExpertMove, ExpertPlacement,
    PlacementStrategy, RecoveryPlan,
};
pub use report::{
    render_fleet_sizing, render_placement_comparison, render_topology_placement, ClusterReport,
    ClusterServingEntry, ClusterServingReport, DisaggSweepEntry, DisaggSweepOutcome,
    DisaggSweepReport, FaultSweepEntry, FaultSweepReport, FleetAutoscaleEntry,
    FleetAutoscaleReport, FleetKind, FleetTraceReport, TopologySweepEntry, TopologySweepOutcome,
    TopologySweepReport,
};
pub use topology::{ClusterTopology, FlowMatrix, HierarchicalCost, Island, PairOverride};
pub use validate::validate_fault_schedule;
