//! Interconnect model: link presets and the all-to-all collective cost.
//!
//! Expert-parallel MoE serving pays two all-to-all collectives per MoE layer
//! (token dispatch to the expert owners, expert outputs back — the GShard
//! data flow). This module prices those collectives with the classic linear
//! (α-β) model: a per-peer startup latency plus a bandwidth term bottlenecked
//! by the busiest endpoint. Presets cover the fabrics of the modeled devices
//! (PCIe through the host for consumer cards, NVLink for the datacenter
//! parts) plus InfiniBand for cross-node scaling.

use samoyeds_gpu_sim::{DeviceSpec, Interconnect};
use serde::{Deserialize, Serialize};

/// One peer-to-peer fabric binding a cluster together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Display name.
    pub name: String,
    /// One-way message latency in microseconds (per peer message of a
    /// collective phase).
    pub latency_us: f64,
    /// Per-GPU unidirectional bandwidth in GB/s.
    pub bandwidth_gbps: f64,
}

impl LinkSpec {
    /// PCIe 4.0 x16 through the host (no peer-to-peer fabric).
    pub fn pcie_gen4() -> Self {
        Self::from_interconnect(Interconnect::PcieGen4)
    }

    /// NVLink 3 (A100-class).
    pub fn nvlink3() -> Self {
        Self::from_interconnect(Interconnect::Nvlink3)
    }

    /// NVLink 4 (H100-class).
    pub fn nvlink4() -> Self {
        Self::from_interconnect(Interconnect::Nvlink4)
    }

    /// InfiniBand NDR, the cross-node spine fabric. The marketing figure is
    /// 400 Gb/s (bits) per port; `bandwidth_gbps` here is **GB/s (bytes)**,
    /// so the preset carries 400 / 8 = 50 GB/s — the value the
    /// [`Interconnect::InfiniBandNdr`] database entry stores.
    pub fn infiniband_ndr() -> Self {
        Self::from_interconnect(Interconnect::InfiniBandNdr)
    }

    /// Build a link from a device-database interconnect entry.
    pub fn from_interconnect(kind: Interconnect) -> Self {
        Self {
            name: kind.name().to_string(),
            latency_us: kind.latency_us(),
            bandwidth_gbps: kind.bandwidth_gbps(),
        }
    }

    /// The link a homogeneous cluster of `device` ships with.
    pub fn for_device(device: &DeviceSpec) -> Self {
        Self::from_interconnect(device.interconnect)
    }

    /// Time (milliseconds) to move `bytes` point-to-point over one link.
    pub fn point_to_point_ms(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        self.latency_us * 1e-3 + bytes / (self.bandwidth_gbps * 1e9) * 1e3
    }

    /// Time (milliseconds) of one all-to-all collective phase given the
    /// bytes each GPU sends to remote peers and the bytes each GPU receives
    /// from remote peers.
    ///
    /// Linear cost model: every GPU exchanges messages with its `p - 1`
    /// peers (startup `α·(p − 1)`), and the bandwidth term is set by the
    /// busiest endpoint, `max_i max(send_i, recv_i) / B` — load imbalance on
    /// a single expert owner therefore stretches the whole collective.
    /// Returns zero for a single GPU or an empty exchange.
    pub fn all_to_all_ms(&self, send_bytes: &[f64], recv_bytes: &[f64]) -> f64 {
        let gpus = send_bytes.len().max(recv_bytes.len());
        if gpus <= 1 {
            return 0.0;
        }
        let busiest = send_bytes
            .iter()
            .chain(recv_bytes.iter())
            .fold(0.0f64, |acc, &b| acc.max(b));
        if busiest <= 0.0 {
            return 0.0;
        }
        self.latency_us * 1e-3 * (gpus - 1) as f64 + busiest / (self.bandwidth_gbps * 1e9) * 1e3
    }

    /// Convenience: an all-to-all where `total_bytes` are spread uniformly —
    /// each of the `gpus` endpoints sends and receives `total_bytes / gpus`,
    /// a fraction `(gpus - 1) / gpus` of it remote.
    pub fn all_to_all_uniform_ms(&self, gpus: usize, total_bytes: f64) -> f64 {
        if gpus <= 1 {
            return 0.0;
        }
        let per_gpu = total_bytes / gpus as f64 * (gpus - 1) as f64 / gpus as f64;
        let v = vec![per_gpu; gpus];
        self.all_to_all_ms(&v, &v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_order_by_fabric_quality() {
        let pcie = LinkSpec::pcie_gen4();
        let nv3 = LinkSpec::nvlink3();
        let nv4 = LinkSpec::nvlink4();
        let ib = LinkSpec::infiniband_ndr();
        assert!(nv4.bandwidth_gbps > nv3.bandwidth_gbps);
        assert!(nv3.bandwidth_gbps > pcie.bandwidth_gbps);
        assert!(ib.latency_us > nv3.latency_us);
        assert_eq!(
            LinkSpec::for_device(&DeviceSpec::a100_40g()),
            LinkSpec::nvlink3()
        );
        assert_eq!(
            LinkSpec::for_device(&DeviceSpec::rtx4070_super()),
            LinkSpec::pcie_gen4()
        );
    }

    #[test]
    fn kv_link_mirror_prices_a_handoff_exactly_like_the_link_it_came_from() {
        // `serve::KvLink` is the dependency-direction-preserving mirror of
        // `LinkSpec` for KV-cache handoffs: same latency floor, same
        // bandwidth term, bit-for-bit. Pin `transfer_ms` against
        // `point_to_point_ms` across the presets and a byte range
        // (including the zero-byte fast path) so the two formulas can never
        // drift apart.
        for spec in [
            LinkSpec::pcie_gen4(),
            LinkSpec::nvlink3(),
            LinkSpec::nvlink4(),
            LinkSpec::infiniband_ndr(),
        ] {
            let kv = samoyeds_serve::KvLink {
                latency_us: spec.latency_us,
                bandwidth_gbps: spec.bandwidth_gbps,
            };
            for bytes in [0.0, 1.0, 4096.0, 1.5e6, 2.0e9] {
                assert_eq!(kv.transfer_ms(bytes), spec.point_to_point_ms(bytes));
            }
        }
    }

    #[test]
    fn presets_match_their_interconnect_database_entries() {
        // Every preset is a thin view over the `gpu-sim` interconnect
        // database, so the two layers can never disagree about a fabric.
        for (preset, entry) in [
            (LinkSpec::pcie_gen4(), Interconnect::PcieGen4),
            (LinkSpec::nvlink3(), Interconnect::Nvlink3),
            (LinkSpec::nvlink4(), Interconnect::Nvlink4),
            (LinkSpec::infiniband_ndr(), Interconnect::InfiniBandNdr),
        ] {
            assert_eq!(preset, LinkSpec::from_interconnect(entry));
            assert_eq!(preset.name, entry.name());
            assert_eq!(preset.latency_us, entry.latency_us());
            assert_eq!(preset.bandwidth_gbps, entry.bandwidth_gbps());
        }
        // The NDR preset is the bytes-converted 400 Gb/s port figure.
        assert_eq!(LinkSpec::infiniband_ndr().bandwidth_gbps, 400.0 / 8.0);
    }

    #[test]
    fn all_to_all_is_zero_for_one_gpu_and_grows_with_bytes() {
        let link = LinkSpec::nvlink3();
        assert_eq!(link.all_to_all_ms(&[1e9], &[1e9]), 0.0);
        assert_eq!(link.all_to_all_ms(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        let small = link.all_to_all_ms(&[1e6, 1e6], &[1e6, 1e6]);
        let large = link.all_to_all_ms(&[1e8, 1e6], &[1e6, 1e8]);
        assert!(small > 0.0);
        assert!(large > small);
        // Busiest endpoint sets the bandwidth term.
        let skewed = link.all_to_all_ms(&[1e8, 0.0], &[0.0, 1e8]);
        assert_eq!(skewed, large);
    }

    #[test]
    fn more_gpus_pay_more_startup_latency() {
        let link = LinkSpec::pcie_gen4();
        let two = link.all_to_all_uniform_ms(2, 1e6);
        let eight = link.all_to_all_uniform_ms(8, 1e6);
        // The same total volume spread over more GPUs lowers the per-GPU
        // bandwidth term but pays more per-peer messages; with a tiny
        // payload the latency term dominates.
        assert!(eight > two * 2.0, "two {two} eight {eight}");
    }

    #[test]
    fn pcie_all_to_all_dwarfs_nvlink_for_the_same_exchange() {
        let bytes = vec![64e6; 4];
        let pcie = LinkSpec::pcie_gen4().all_to_all_ms(&bytes, &bytes);
        let nvlink = LinkSpec::nvlink3().all_to_all_ms(&bytes, &bytes);
        assert!(pcie > 5.0 * nvlink, "pcie {pcie} nvlink {nvlink}");
    }

    #[test]
    fn point_to_point_includes_latency_floor() {
        let link = LinkSpec::nvlink3();
        assert_eq!(link.point_to_point_ms(0.0), 0.0);
        assert!(link.point_to_point_ms(1.0) >= link.latency_us * 1e-3);
    }
}
