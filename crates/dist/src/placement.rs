//! Expert placement: which GPU owns which expert, under per-GPU memory
//! budgets.
//!
//! Expert parallelism shards the routed experts of every MoE layer across
//! the cluster while the attention blocks, the router and any shared experts
//! stay replicated on every GPU (the DeepSpeed-MoE / GShard deployment
//! shape). Placement decides the shard map. Three strategies are modeled:
//!
//! * **round-robin** — expert `e` to GPU `e mod g`; oblivious to load;
//! * **capacity-aware greedy** — experts in descending load order, each to
//!   the least-loaded GPU with memory headroom (LPT scheduling);
//! * **replicated hot experts** — the hottest experts are replicated on
//!   every GPU (splitting their traffic) and the rest placed greedily;
//! * **replicated hot experts per island** — topology-aware: one replica of
//!   each hot expert in every NVLink island (via
//!   [`PlacementStrategy::place_on`]), so their dispatch traffic stays off
//!   the inter-island spine.
//!
//! Every strategy validates the result against the per-GPU memory budget
//! built from the engine's weight representation — the cluster-level analogue
//! of the admission control in `samoyeds_serve::memory` (and the reason the
//! Samoyeds compressed format needs fewer GPUs than dense weights, the
//! fleet-sizing version of Table 3).

use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_kernels::samoyeds_kernel::SamoyedsOptions;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::{Engine, EngineKind};
use samoyeds_serve::MemoryModel as ServeMemoryModel;
use samoyeds_serve::{Diagnostic, ValidationReport};
use samoyeds_sparse::venom::VenomConfig;
use samoyeds_sparse::{Result, SparseError};
use serde::{Deserialize, Serialize};

/// The weight representations compared at the cluster level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClusterEngine {
    /// Dense bf16 weights, Transformers-style execution.
    Dense,
    /// VENOM V:N:M weight sparsity (75%, V64:4:8): compressed weights but
    /// no input-side sparsity — the expert kernels still run on gathered
    /// dense inputs (the "+W" data flow of Figure 17).
    Venom,
    /// Samoyeds dual-side structured sparsity (SEL-driven kernels).
    Samoyeds,
}

impl ClusterEngine {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ClusterEngine::Dense => "Dense",
            ClusterEngine::Venom => "VENOM",
            ClusterEngine::Samoyeds => "Samoyeds",
        }
    }

    /// All cluster engines in presentation order.
    pub fn all() -> [ClusterEngine; 3] {
        [
            ClusterEngine::Dense,
            ClusterEngine::Venom,
            ClusterEngine::Samoyeds,
        ]
    }

    /// The execution engine that prices this representation's compute.
    pub fn engine(&self, device: &DeviceSpec) -> Engine {
        match self {
            ClusterEngine::Dense => Engine::new(EngineKind::Transformers, device.clone()),
            // VENOM-style weight-only sparsity maps onto the Samoyeds
            // engine's "+W" configuration: sparse weight kernels, dense
            // inputs, permute/un-permute round trips.
            ClusterEngine::Venom => Engine::new(EngineKind::Samoyeds, device.clone())
                .with_samoyeds_options(SamoyedsOptions::WEIGHT_ONLY),
            ClusterEngine::Samoyeds => Engine::new(EngineKind::Samoyeds, device.clone()),
        }
    }

    /// Resident MoE weight bytes of one decoder layer under this
    /// representation.
    pub fn moe_weight_bytes_per_layer(&self, device: &DeviceSpec, config: &MoeModelConfig) -> f64 {
        match self {
            // Dense and Samoyeds reuse the engine memory model directly.
            ClusterEngine::Dense | ClusterEngine::Samoyeds => {
                self.engine(device).weight_bytes(config)
            }
            // VENOM stores compressed values + 2:4 metadata (1.125x the
            // kept values) + per-panel column indices (n u16 ids per V x M
            // cell).
            ClusterEngine::Venom => {
                let venom = VenomConfig { v: 64, n: 4, m: 8 };
                let params = config.params_per_moe_layer() as f64;
                let dense = params * 2.0;
                let index_bytes = params * venom.n as f64 / (venom.v * venom.m) as f64 * 2.0;
                dense * (1.0 - venom.sparsity()) * 1.125 + index_bytes
            }
        }
    }
}

/// Per-GPU memory accounting of an expert-parallel deployment.
///
/// Resident on every GPU: the attention projections, the router and the
/// shared experts of every layer (replicated), plus the KV cache of the
/// tokens the GPU hosts and one layer's activation workspace. Resident only
/// on the owning GPU: each routed expert's weights across all layers.
#[derive(Debug, Clone)]
pub struct ClusterMemoryModel {
    engine: Engine,
    config: MoeModelConfig,
    budget_bytes: f64,
    base_bytes: f64,
    expert_bytes: f64,
    kv_bytes_per_token: f64,
}

impl ClusterMemoryModel {
    /// Build the per-GPU memory model.
    pub fn new(device: &DeviceSpec, engine: ClusterEngine, config: &MoeModelConfig) -> Self {
        let compute_engine = engine.engine(device);
        // Budget and KV-cache accounting are shared with the single-GPU
        // serving admission control (both are engine-independent) so the
        // two layers can never disagree about what fits a device.
        let serve_memory = ServeMemoryModel::new(device, compute_engine.kind(), config);
        let layers = config.num_layers as f64;
        let moe_layer = engine.moe_weight_bytes_per_layer(device, config);
        let expert_fraction =
            config.params_per_expert() as f64 / config.params_per_moe_layer() as f64;
        let expert_layer = moe_layer * expert_fraction;
        // Router + shared experts are whatever is left of the MoE layer once
        // the routed experts are taken out; attention weights ride along.
        let base_layer = moe_layer - config.num_experts as f64 * expert_layer
            + config.params_per_attention() as f64 * 2.0;
        Self {
            engine: compute_engine,
            config: config.clone(),
            budget_bytes: serve_memory.budget_bytes(),
            base_bytes: base_layer * layers,
            expert_bytes: expert_layer * layers,
            kv_bytes_per_token: serve_memory.kv_bytes(1),
        }
    }

    /// Usable bytes per GPU.
    pub fn budget_bytes(&self) -> f64 {
        self.budget_bytes
    }

    /// Bytes replicated on every GPU (attention + router + shared experts,
    /// all layers).
    pub fn base_bytes(&self) -> f64 {
        self.base_bytes
    }

    /// Bytes of one routed expert across all layers.
    pub fn expert_bytes(&self) -> f64 {
        self.expert_bytes
    }

    /// KV-cache bytes for `tokens` resident tokens.
    pub fn kv_bytes(&self, tokens: usize) -> f64 {
        tokens as f64 * self.kv_bytes_per_token
    }

    /// Total bytes on a GPU owning `experts` routed experts, hosting
    /// `resident_tokens` KV tokens and running a step over `step_tokens`.
    pub fn gpu_bytes(&self, experts: usize, resident_tokens: usize, step_tokens: usize) -> f64 {
        self.base_bytes
            + experts as f64 * self.expert_bytes
            + self.kv_bytes(resident_tokens)
            + self.engine.activation_bytes(&self.config, step_tokens)
    }

    /// Whether that GPU fits its budget.
    pub fn fits(&self, experts: usize, resident_tokens: usize, step_tokens: usize) -> bool {
        self.gpu_bytes(experts, resident_tokens, step_tokens) <= self.budget_bytes
    }

    /// The largest number of routed experts one GPU can own alongside
    /// `resident_tokens` KV tokens and `step_tokens` in flight (0 when even
    /// the replicated base does not fit).
    pub fn max_experts_per_gpu(&self, resident_tokens: usize, step_tokens: usize) -> usize {
        if !self.fits(0, resident_tokens, step_tokens) {
            return 0;
        }
        let free = self.budget_bytes - self.gpu_bytes(0, resident_tokens, step_tokens);
        (free / self.expert_bytes).floor() as usize
    }
}

/// Expert placement strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// Expert `e` on GPU `e mod g`, oblivious to load.
    RoundRobin,
    /// Experts in descending load order, each to the least-loaded GPU with
    /// memory headroom (LPT scheduling).
    CapacityGreedy,
    /// The `hot` highest-load experts replicated on every GPU (their
    /// traffic splits evenly); the rest placed capacity-greedily.
    ReplicateHot {
        /// How many of the hottest experts to replicate.
        hot: usize,
    },
    /// Topology-aware: the `hot` highest-load experts get one replica in
    /// *every island* of the cluster topology (tokens then dispatch to the
    /// co-located replica, so the hot experts' traffic never crosses the
    /// spine), the rest placed capacity-greedily. On a flat topology this
    /// degenerates to placing the hot experts greedily first — one island
    /// means one replica.
    ReplicateHotPerIsland {
        /// How many of the hottest experts to replicate per island.
        hot: usize,
    },
}

impl PlacementStrategy {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementStrategy::RoundRobin => "round-robin",
            PlacementStrategy::CapacityGreedy => "capacity-greedy",
            PlacementStrategy::ReplicateHot { .. } => "replicate-hot",
            PlacementStrategy::ReplicateHotPerIsland { .. } => "replicate-hot-island",
        }
    }

    /// Place `loads.len()` experts on `num_gpus` GPUs with no topology
    /// information (every GPU in one island). `loads` is the per-expert
    /// load profile the strategy balances against — token counts or,
    /// better, a predicted per-expert cost profile (see
    /// `ClusterSimulator::expert_cost_profile`);
    /// `resident_tokens` / `step_tokens` parameterise the per-GPU memory
    /// headroom check (KV cache + activation workspace alongside weights).
    ///
    /// Errors when any GPU would exceed its memory budget — the caller
    /// decides whether to add GPUs or shrink the model.
    pub fn place(
        &self,
        loads: &[usize],
        num_gpus: usize,
        memory: &ClusterMemoryModel,
        resident_tokens: usize,
        step_tokens: usize,
    ) -> Result<ExpertPlacement> {
        self.place_islands(
            loads,
            &vec![0usize; num_gpus],
            memory,
            resident_tokens,
            step_tokens,
        )
    }

    /// Place experts over the islands of `topology` (the topology-aware
    /// entry point): [`PlacementStrategy::ReplicateHotPerIsland`] puts one
    /// replica of each hot expert in every island; the other strategies
    /// ignore the island structure and behave exactly like
    /// [`PlacementStrategy::place`] over `topology.num_gpus()` GPUs.
    pub fn place_on(
        &self,
        loads: &[usize],
        topology: &crate::topology::ClusterTopology,
        memory: &ClusterMemoryModel,
        resident_tokens: usize,
        step_tokens: usize,
    ) -> Result<ExpertPlacement> {
        self.place_islands(
            loads,
            &topology.island_lookup(),
            memory,
            resident_tokens,
            step_tokens,
        )
    }

    /// Shared core: place over `island_of.len()` GPUs where `island_of[g]`
    /// names GPU `g`'s island.
    fn place_islands(
        &self,
        loads: &[usize],
        island_of: &[usize],
        memory: &ClusterMemoryModel,
        resident_tokens: usize,
        step_tokens: usize,
    ) -> Result<ExpertPlacement> {
        let num_gpus = island_of.len();
        if num_gpus == 0 {
            return Err(SparseError::config("cluster needs at least one GPU"));
        }
        let num_experts = loads.len();
        let capacity = memory.max_experts_per_gpu(resident_tokens, step_tokens);
        let mut gpu_experts: Vec<Vec<usize>> = vec![Vec::new(); num_gpus];

        // The one tie-breaking rule every pass uses: least effective load,
        // then fewest owned experts, then lowest GPU id.
        fn least_loaded(
            candidates: impl Iterator<Item = usize>,
            effective: &[f64],
            gpu_experts: &[Vec<usize>],
        ) -> Option<usize> {
            candidates.min_by(|&a, &b| {
                effective[a]
                    .partial_cmp(&effective[b])
                    .expect("finite loads")
                    .then(gpu_experts[a].len().cmp(&gpu_experts[b].len()))
                    .then(a.cmp(&b))
            })
        }

        // Shared greedy core: experts in descending load order, least
        // effective load first, bounded by the per-GPU expert capacity.
        let greedy = |experts: &mut dyn Iterator<Item = usize>,
                      gpu_experts: &mut Vec<Vec<usize>>,
                      effective: &mut Vec<f64>|
         -> Result<()> {
            for e in experts {
                let candidate = least_loaded(
                    (0..num_gpus).filter(|&g| gpu_experts[g].len() < capacity),
                    effective,
                    gpu_experts,
                );
                match candidate {
                    Some(g) => {
                        gpu_experts[g].push(e);
                        effective[g] += loads[e] as f64;
                    }
                    None => {
                        return Err(SparseError::config(format!(
                            "no GPU has memory headroom for expert {e} \
                             (capacity {capacity} experts/GPU over {num_gpus} GPUs)"
                        )))
                    }
                }
            }
            Ok(())
        };

        match self {
            PlacementStrategy::RoundRobin => {
                for e in 0..num_experts {
                    gpu_experts[e % num_gpus].push(e);
                }
            }
            PlacementStrategy::CapacityGreedy => {
                let mut order: Vec<usize> = (0..num_experts).collect();
                order.sort_by_key(|&e| (std::cmp::Reverse(loads[e]), e));
                let mut effective = vec![0.0f64; num_gpus];
                greedy(&mut order.into_iter(), &mut gpu_experts, &mut effective)?;
            }
            PlacementStrategy::ReplicateHot { hot } => {
                let mut order: Vec<usize> = (0..num_experts).collect();
                order.sort_by_key(|&e| (std::cmp::Reverse(loads[e]), e));
                let hot_set: Vec<usize> = order.iter().take(*hot).copied().collect();
                let mut effective = vec![0.0f64; num_gpus];
                for &e in &hot_set {
                    // A replica on every GPU; the traffic splits g ways.
                    for (g, owned) in gpu_experts.iter_mut().enumerate() {
                        owned.push(e);
                        effective[g] += loads[e] as f64 / num_gpus as f64;
                    }
                }
                greedy(
                    &mut order.into_iter().skip(*hot),
                    &mut gpu_experts,
                    &mut effective,
                )?;
            }
            PlacementStrategy::ReplicateHotPerIsland { hot } => {
                let num_islands = island_of.iter().copied().max().unwrap_or(0) + 1;
                let mut order: Vec<usize> = (0..num_experts).collect();
                order.sort_by_key(|&e| (std::cmp::Reverse(loads[e]), e));
                let hot_set: Vec<usize> = order.iter().take(*hot).copied().collect();
                let mut effective = vec![0.0f64; num_gpus];
                for &e in &hot_set {
                    // One replica per island, on the island's least-loaded
                    // GPU with headroom; intra-island dispatch splits the
                    // expert's traffic across the islands.
                    for island in 0..num_islands {
                        let candidate = least_loaded(
                            (0..num_gpus).filter(|&g| {
                                island_of[g] == island && gpu_experts[g].len() < capacity
                            }),
                            &effective,
                            &gpu_experts,
                        );
                        match candidate {
                            Some(g) => {
                                gpu_experts[g].push(e);
                                effective[g] += loads[e] as f64 / num_islands as f64;
                            }
                            None => {
                                return Err(SparseError::config(format!(
                                    "island {island} has no memory headroom for a replica of \
                                     hot expert {e} (capacity {capacity} experts/GPU)"
                                )))
                            }
                        }
                    }
                }
                greedy(
                    &mut order.into_iter().skip(*hot),
                    &mut gpu_experts,
                    &mut effective,
                )?;
            }
        }

        let placement = ExpertPlacement {
            strategy: *self,
            gpu_experts,
        };
        placement.validate(memory, resident_tokens, step_tokens)?;
        Ok(placement)
    }
}

/// A concrete expert-to-GPU shard map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpertPlacement {
    /// The strategy that produced the map.
    pub strategy: PlacementStrategy,
    /// For each GPU, the global expert ids it owns (an expert on several
    /// GPUs is a replicated hot expert).
    pub gpu_experts: Vec<Vec<usize>>,
}

impl ExpertPlacement {
    /// Number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.gpu_experts.len()
    }

    /// The shard map in the shape [`samoyeds_moe::router::RoutingPlan::shard`]
    /// consumes.
    pub fn assignments(&self) -> &[Vec<usize>] {
        &self.gpu_experts
    }

    /// How many replicas each of `num_experts` experts has.
    pub fn replica_counts(&self, num_experts: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_experts];
        for owned in &self.gpu_experts {
            for &e in owned {
                counts[e] += 1;
            }
        }
        counts
    }

    /// Per-GPU effective token load under `loads` (a replicated expert's
    /// load splits evenly across its replicas).
    pub fn effective_gpu_loads(&self, loads: &[usize]) -> Vec<f64> {
        let replicas = self.replica_counts(loads.len());
        self.gpu_experts
            .iter()
            .map(|owned| {
                owned
                    .iter()
                    .map(|&e| loads[e] as f64 / replicas[e].max(1) as f64)
                    .sum()
            })
            .collect()
    }

    /// Load imbalance across GPUs: max effective load over the mean.
    pub fn imbalance(&self, loads: &[usize]) -> f64 {
        let effective = self.effective_gpu_loads(loads);
        let total: f64 = effective.iter().sum();
        // simlint::allow(float-eq): division guard — a sum of non-negative
        // loads is exactly 0.0 only when every load is zero
        if total == 0.0 {
            return 1.0;
        }
        let mean = total / effective.len() as f64;
        effective.iter().fold(0.0f64, |m, &l| m.max(l)) / mean
    }

    /// Per-GPU resident weight bytes under `memory` (base + owned experts).
    pub fn per_gpu_weight_bytes(&self, memory: &ClusterMemoryModel) -> Vec<f64> {
        self.gpu_experts
            .iter()
            .map(|owned| memory.base_bytes() + owned.len() as f64 * memory.expert_bytes())
            .collect()
    }

    /// Check every GPU against its memory budget, reporting *every*
    /// over-budget GPU (code `placement::over-budget`) instead of stopping
    /// at the first — the diagnostic form of [`Self::validate`].
    pub fn validate_diagnostics(
        &self,
        memory: &ClusterMemoryModel,
        resident_tokens: usize,
        step_tokens: usize,
    ) -> ValidationReport {
        let mut report = ValidationReport::new();
        for (g, owned) in self.gpu_experts.iter().enumerate() {
            if !memory.fits(owned.len(), resident_tokens, step_tokens) {
                report.push(Diagnostic::deny(
                    "placement::over-budget",
                    format!("ExpertPlacement gpu[{g}]"),
                    format!(
                        "GPU {g} exceeds its memory budget: {} experts need {:.2} GiB of {:.2} GiB",
                        owned.len(),
                        memory.gpu_bytes(owned.len(), resident_tokens, step_tokens)
                            / (1u64 << 30) as f64,
                        memory.budget_bytes() / (1u64 << 30) as f64,
                    ),
                    "spread experts across more GPUs, compress the weights, or shrink the \
                     resident token pool",
                ));
            }
        }
        report
    }

    /// Check every GPU against its memory budget, failing on the first
    /// over-budget GPU. Use [`Self::validate_diagnostics`] to see them all.
    pub fn validate(
        &self,
        memory: &ClusterMemoryModel,
        resident_tokens: usize,
        step_tokens: usize,
    ) -> Result<()> {
        match self
            .validate_diagnostics(memory, resident_tokens, step_tokens)
            .diagnostics()
            .first()
        {
            Some(d) => Err(SparseError::config(d.message.clone())),
            None => Ok(()),
        }
    }
}

/// One expert weight transfer in a [`RecoveryPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpertMove {
    /// The expert being re-placed.
    pub expert: usize,
    /// The GPU the weights stream from (a surviving replica, or the
    /// checkpoint-staging GPU for sole-copy experts).
    pub from: usize,
    /// The surviving GPU that takes the new copy.
    pub to: usize,
}

/// The re-placement a crashed GPU's experts get, with the weight-transfer
/// bill priced over the cluster topology.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPlan {
    /// The post-recovery shard map: the crashed GPU's slot is kept (empty)
    /// so GPU ids stay stable; every lost expert has a new home among the
    /// survivors.
    pub placement: ExpertPlacement,
    /// One entry per re-placed expert copy.
    pub moves: Vec<ExpertMove>,
    /// Total weight bytes transferred.
    pub transfer_bytes: f64,
    /// The transfer priced as one all-to-all over the topology: intra-island
    /// moves ride the island fabric, cross-island moves pay the spine.
    pub cost: crate::topology::HierarchicalCost,
}

impl RecoveryPlan {
    /// Wall-clock of the weight transfer.
    pub fn transfer_ms(&self) -> f64 {
        self.cost.total_ms()
    }
}

/// Re-place the experts lost when `crashed_gpu` dies, from surviving
/// replicas where they exist.
///
/// Every expert copy the crashed GPU owned gets a new home on a surviving
/// GPU with memory headroom that does not already own it — least effective
/// load first, then fewest owned experts, then lowest GPU id (the same
/// tie-break as the greedy placement core), taking the hottest experts
/// first. The weights stream from a surviving replica of the same expert
/// (preferring one in the destination's island, so the copy stays off the
/// spine); a *sole-copy* expert has no survivor, so its weights stream from
/// `checkpoint_gpu` — the GPU staging host checkpoints — and the call fails
/// if none is given. The resulting transfer is priced as one all-to-all
/// over `topology`, honoring dedicated pair links.
///
/// Errors if `crashed_gpu` is out of range, if no survivor remains, if a
/// sole-copy expert is lost without a `checkpoint_gpu`, or if the surviving
/// GPUs lack the memory headroom to absorb the lost experts.
#[allow(clippy::too_many_arguments)]
pub fn replan_after_crash(
    placement: &ExpertPlacement,
    crashed_gpu: usize,
    loads: &[usize],
    topology: &crate::topology::ClusterTopology,
    memory: &ClusterMemoryModel,
    resident_tokens: usize,
    step_tokens: usize,
    checkpoint_gpu: Option<usize>,
) -> Result<RecoveryPlan> {
    let num_gpus = placement.num_gpus();
    if crashed_gpu >= num_gpus {
        return Err(SparseError::config(format!(
            "crashed GPU {crashed_gpu} out of range for a {num_gpus}-GPU placement"
        )));
    }
    if num_gpus < 2 {
        return Err(SparseError::config(
            "recovery needs at least one surviving GPU",
        ));
    }
    if topology.num_gpus() != num_gpus {
        return Err(SparseError::config(format!(
            "topology covers {} GPUs but the placement has {num_gpus}",
            topology.num_gpus()
        )));
    }
    let capacity = memory.max_experts_per_gpu(resident_tokens, step_tokens);
    let island_of = topology.island_lookup();

    let mut gpu_experts = placement.gpu_experts.clone();
    let mut lost: Vec<usize> = std::mem::take(&mut gpu_experts[crashed_gpu]);
    // Hottest first, ties by id: the order the greedy core would use.
    lost.sort_by_key(|&e| (std::cmp::Reverse(loads.get(e).copied().unwrap_or(0)), e));

    // Effective load per survivor under the post-crash replica counts.
    let interim = ExpertPlacement {
        strategy: placement.strategy,
        gpu_experts: gpu_experts.clone(),
    };
    let mut effective = interim.effective_gpu_loads(loads);

    let mut moves = Vec::with_capacity(lost.len());
    let mut flows = crate::topology::FlowMatrix::new(num_gpus);
    let expert_bytes = memory.expert_bytes();
    for e in lost {
        let load = loads.get(e).copied().unwrap_or(0) as f64;
        let dest = (0..num_gpus)
            .filter(|&g| {
                g != crashed_gpu && gpu_experts[g].len() < capacity && !gpu_experts[g].contains(&e)
            })
            .min_by(|&a, &b| {
                effective[a]
                    .partial_cmp(&effective[b])
                    .expect("finite loads")
                    .then(gpu_experts[a].len().cmp(&gpu_experts[b].len()))
                    .then(a.cmp(&b))
            })
            .ok_or_else(|| {
                SparseError::config(format!(
                    "no surviving GPU has memory headroom for expert {e} \
                     (capacity {capacity} experts/GPU)"
                ))
            })?;
        // Source: a surviving replica, same island as the destination if one
        // exists; otherwise the checkpoint-staging GPU.
        let survivors: Vec<usize> = (0..num_gpus)
            .filter(|&g| g != crashed_gpu && gpu_experts[g].contains(&e))
            .collect();
        let source = survivors
            .iter()
            .copied()
            .find(|&g| island_of[g] == island_of[dest])
            .or_else(|| survivors.first().copied())
            .or(checkpoint_gpu)
            .ok_or_else(|| {
                SparseError::config(format!(
                    "expert {e} lost its only replica and no checkpoint GPU is staged"
                ))
            })?;
        gpu_experts[dest].push(e);
        effective[dest] += load;
        if source != dest {
            flows.add(source, dest, expert_bytes);
        }
        moves.push(ExpertMove {
            expert: e,
            from: source,
            to: dest,
        });
    }

    let placement = ExpertPlacement {
        strategy: placement.strategy,
        gpu_experts,
    };
    placement.validate(memory, resident_tokens, step_tokens)?;
    let cost = topology.all_to_all_ms(&flows);
    Ok(RecoveryPlan {
        placement,
        transfer_bytes: moves.len() as f64 * expert_bytes,
        moves,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qwen_on_a100() -> (ClusterMemoryModel, MoeModelConfig) {
        let config = MoeModelConfig::qwen2_moe();
        (
            ClusterMemoryModel::new(&DeviceSpec::a100_40g(), ClusterEngine::Samoyeds, &config),
            config,
        )
    }

    #[test]
    fn memory_model_orders_representations() {
        let device = DeviceSpec::a100_40g();
        let config = MoeModelConfig::qwen2_moe();
        let dense = ClusterMemoryModel::new(&device, ClusterEngine::Dense, &config);
        let venom = ClusterMemoryModel::new(&device, ClusterEngine::Venom, &config);
        let samoyeds = ClusterMemoryModel::new(&device, ClusterEngine::Samoyeds, &config);
        // Compressed experts are a fraction of dense; VENOM and Samoyeds
        // land in the same ballpark (both keep 25% of values + metadata).
        assert!(samoyeds.expert_bytes() < dense.expert_bytes() * 0.4);
        assert!(venom.expert_bytes() < dense.expert_bytes() * 0.4);
        let ratio = venom.expert_bytes() / samoyeds.expert_bytes();
        assert!((0.8..1.2).contains(&ratio), "venom/samoyeds ratio {ratio}");
        // More compression -> more experts per GPU.
        assert!(samoyeds.max_experts_per_gpu(4096, 4096) > dense.max_experts_per_gpu(4096, 4096));
    }

    #[test]
    fn round_robin_and_greedy_place_every_expert_exactly_once() {
        let (memory, config) = qwen_on_a100();
        let loads = vec![100usize; config.num_experts];
        for strategy in [
            PlacementStrategy::RoundRobin,
            PlacementStrategy::CapacityGreedy,
        ] {
            let placement = strategy.place(&loads, 4, &memory, 1024, 1024).unwrap();
            assert_eq!(placement.num_gpus(), 4);
            let replicas = placement.replica_counts(config.num_experts);
            assert!(
                replicas.iter().all(|&c| c == 1),
                "{strategy:?} {replicas:?}"
            );
            placement.validate(&memory, 1024, 1024).unwrap();
        }
    }

    #[test]
    fn greedy_balances_skewed_loads_better_than_round_robin() {
        let (memory, config) = qwen_on_a100();
        // Zipf-ish load profile: expert 0 is hot.
        let loads: Vec<usize> = (0..config.num_experts)
            .map(|e| (4096.0 / ((e + 1) as f64).powf(1.3)) as usize)
            .collect();
        let rr = PlacementStrategy::RoundRobin
            .place(&loads, 8, &memory, 1024, 1024)
            .unwrap();
        let greedy = PlacementStrategy::CapacityGreedy
            .place(&loads, 8, &memory, 1024, 1024)
            .unwrap();
        assert!(
            greedy.imbalance(&loads) < rr.imbalance(&loads),
            "greedy {} vs rr {}",
            greedy.imbalance(&loads),
            rr.imbalance(&loads)
        );
    }

    #[test]
    fn replicating_the_hot_expert_cuts_the_straggler_load() {
        let (memory, config) = qwen_on_a100();
        let loads: Vec<usize> = (0..config.num_experts)
            .map(|e| if e == 0 { 4096 } else { 32 })
            .collect();
        let greedy = PlacementStrategy::CapacityGreedy
            .place(&loads, 8, &memory, 1024, 1024)
            .unwrap();
        let replicated = PlacementStrategy::ReplicateHot { hot: 1 }
            .place(&loads, 8, &memory, 1024, 1024)
            .unwrap();
        let max = |p: &ExpertPlacement| {
            p.effective_gpu_loads(&loads)
                .into_iter()
                .fold(0.0f64, f64::max)
        };
        // Greedy cannot split expert 0; replication divides it by 8.
        assert!(max(&replicated) < max(&greedy) * 0.5);
        assert_eq!(replicated.replica_counts(config.num_experts)[0], 8);
    }

    #[test]
    fn per_island_replication_puts_one_replica_in_every_island() {
        use crate::link::LinkSpec;
        use crate::topology::ClusterTopology;
        let (memory, config) = qwen_on_a100();
        let loads: Vec<usize> = (0..config.num_experts)
            .map(|e| if e < 2 { 4096 } else { 32 })
            .collect();
        let topology =
            ClusterTopology::symmetric(2, 4, LinkSpec::nvlink3(), LinkSpec::infiniband_ndr())
                .unwrap();
        let placement = PlacementStrategy::ReplicateHotPerIsland { hot: 2 }
            .place_on(&loads, &topology, &memory, 1024, 1024)
            .unwrap();
        let replicas = placement.replica_counts(config.num_experts);
        assert_eq!(&replicas[..2], &[2, 2], "one replica per island");
        assert!(replicas[2..].iter().all(|&c| c == 1));
        for island in 0..2 {
            for e in 0..2 {
                let members = topology.island_members(island);
                let owners = members
                    .filter(|&g| placement.gpu_experts[g].contains(&e))
                    .count();
                assert_eq!(owners, 1, "island {island} expert {e}");
            }
        }
        placement.validate(&memory, 1024, 1024).unwrap();
        // Without topology information there is one island, hence one
        // replica: the strategy degenerates to hot-first greedy.
        let flat = PlacementStrategy::ReplicateHotPerIsland { hot: 2 }
            .place(&loads, 8, &memory, 1024, 1024)
            .unwrap();
        assert!(flat
            .replica_counts(config.num_experts)
            .iter()
            .all(|&c| c == 1));
    }

    #[test]
    fn replan_after_crash_rehomes_every_lost_expert_within_budget() {
        use crate::link::LinkSpec;
        use crate::topology::ClusterTopology;
        let (memory, config) = qwen_on_a100();
        let loads: Vec<usize> = (0..config.num_experts)
            .map(|e| (4096.0 / ((e + 1) as f64).powf(1.3)) as usize)
            .collect();
        let topology =
            ClusterTopology::symmetric(2, 4, LinkSpec::nvlink3(), LinkSpec::infiniband_ndr())
                .unwrap();
        let placement = PlacementStrategy::CapacityGreedy
            .place_on(&loads, &topology, &memory, 1024, 1024)
            .unwrap();
        // Sole-copy experts everywhere: recovery needs the checkpoint GPU.
        assert!(
            replan_after_crash(&placement, 0, &loads, &topology, &memory, 1024, 1024, None)
                .is_err()
        );
        let plan = replan_after_crash(
            &placement,
            0,
            &loads,
            &topology,
            &memory,
            1024,
            1024,
            Some(7),
        )
        .unwrap();
        // The crashed slot is kept but empty; every expert still has a copy.
        assert!(plan.placement.gpu_experts[0].is_empty());
        let replicas = plan.placement.replica_counts(config.num_experts);
        assert!(replicas.iter().all(|&c| c >= 1), "{replicas:?}");
        assert_eq!(plan.moves.len(), placement.gpu_experts[0].len());
        assert!(plan.moves.iter().all(|m| m.from == 7 && m.to != 0));
        assert!(plan.transfer_bytes > 0.0);
        assert!(plan.transfer_ms() > 0.0 && plan.transfer_ms().is_finite());
        plan.placement.validate(&memory, 1024, 1024).unwrap();
    }

    #[test]
    fn replan_prefers_surviving_replicas_in_the_destination_island() {
        use crate::link::LinkSpec;
        use crate::topology::ClusterTopology;
        let (memory, config) = qwen_on_a100();
        let loads: Vec<usize> = (0..config.num_experts)
            .map(|e| if e < 2 { 4096 } else { 32 })
            .collect();
        let topology =
            ClusterTopology::symmetric(2, 4, LinkSpec::nvlink3(), LinkSpec::infiniband_ndr())
                .unwrap();
        // Hot experts have a replica in each island, so a crash can always
        // re-clone them from a survivor without touching the checkpoint.
        let placement = PlacementStrategy::ReplicateHotPerIsland { hot: 2 }
            .place_on(&loads, &topology, &memory, 1024, 1024)
            .unwrap();
        let plan = replan_after_crash(
            &placement,
            0,
            &loads,
            &topology,
            &memory,
            1024,
            1024,
            Some(4),
        )
        .unwrap();
        for m in &plan.moves {
            if m.expert < 2 {
                // A replicated expert streams from a surviving replica, and
                // the survivor chosen shares the destination's island when
                // one exists there.
                assert!(placement.gpu_experts[m.from].contains(&m.expert));
            }
        }
        // Nothing exceeds budget and the crashed GPU stays empty.
        plan.placement.validate(&memory, 1024, 1024).unwrap();
        assert!(plan.placement.gpu_experts[0].is_empty());
        // Degenerate calls fail loudly.
        assert!(
            replan_after_crash(&placement, 99, &loads, &topology, &memory, 1024, 1024, None)
                .is_err()
        );
        let one_gpu = ExpertPlacement {
            strategy: PlacementStrategy::RoundRobin,
            gpu_experts: vec![vec![0]],
        };
        let flat = ClusterTopology::flat(1, LinkSpec::nvlink3());
        assert!(
            replan_after_crash(&one_gpu, 0, &[1], &flat, &memory, 1024, 1024, Some(0)).is_err()
        );
    }

    #[test]
    fn placement_errors_when_the_cluster_is_too_small() {
        let config = MoeModelConfig::qwen2_moe();
        let memory =
            ClusterMemoryModel::new(&DeviceSpec::rtx4070_super(), ClusterEngine::Dense, &config);
        let loads = vec![100usize; config.num_experts];
        // Dense Qwen2 cannot fit a 12 GiB card with one GPU.
        assert!(PlacementStrategy::CapacityGreedy
            .place(&loads, 1, &memory, 1024, 1024)
            .is_err());
        assert!(PlacementStrategy::RoundRobin
            .place(&loads, 1, &memory, 1024, 1024)
            .is_err());
    }
}
