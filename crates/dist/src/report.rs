//! Cluster-level comparison reports: GPU-count sweeps over the weight
//! representations, the cluster-serving sweep (continuous batching over the
//! cluster backend) and the fleet-autoscale sweep (the online control plane
//! over heterogeneous fleets on a bursty trace), rendered as markdown.
//!
//! Every sweep cell is deterministic and independent of its neighbours, so
//! each sweep enumerates its cell descriptors up front and prices them with
//! a rayon `par_iter` — cells fill all cores and the entry order stays the
//! canonical (outer × inner) enumeration order either way.

use crate::backend::ClusterBackend;
use crate::cluster::{min_gpus_to_fit, ClusterConfig, ClusterSimulator};
use crate::link::LinkSpec;
use crate::placement::{replan_after_crash, ClusterEngine, ClusterMemoryModel, PlacementStrategy};
use crate::topology::ClusterTopology;
use rayon::prelude::*;
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_kernels::samoyeds_kernel::SamoyedsOptions;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::{Engine, EngineKind};
use samoyeds_moe::router::TopKRouter;
use samoyeds_serve::{
    chrome_trace_json, request_timelines, AttributionSummary, BurstyTraceConfig,
    DisaggregationConfig, DispatchPolicy, ExecutionBackend, FaultKind, FaultSchedule, FaultSpec,
    FleetConfig, FleetController, FleetMetrics, KvLink, MemoryModel, MetricsRegistry,
    RecoveryPolicy, Request, RequestTimeline, Scheduler, SchedulerConfig, ServingMetrics,
    SharedSink, SingleGpuBackend, SloAutoscaler, TraceConfig, TraceEvent, TraceRecorder, TraceSink,
};

/// One (device, engine, GPU-count) cell of the sweep.
#[derive(Debug, Clone)]
pub struct ClusterSweepEntry {
    /// Device name.
    pub device: String,
    /// Weight representation.
    pub engine: ClusterEngine,
    /// GPUs in the cluster.
    pub num_gpus: usize,
    /// `None` when no placement fits the per-GPU memory budgets (the OOM
    /// cells); otherwise the step outcome.
    pub outcome: Option<ClusterSweepOutcome>,
}

/// The measured quantities of one feasible cell.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSweepOutcome {
    /// Full-model step time over the batch, milliseconds.
    pub model_time_ms: f64,
    /// One layer's all-to-all time, milliseconds.
    pub all_to_all_ms: f64,
    /// Collective share of the layer step.
    pub all_to_all_fraction: f64,
    /// Batch tokens per second through the MoE stack.
    pub tokens_per_s: f64,
    /// Lowest per-GPU utilization in the step.
    pub min_utilization: f64,
}

/// A GPU-count sweep of one model over devices × engines.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// The model swept.
    pub model: String,
    /// Tokens in the step batch.
    pub tokens: usize,
    /// All sweep cells, in (device, engine, gpus) order.
    pub entries: Vec<ClusterSweepEntry>,
}

impl ClusterReport {
    /// Sweep `model` over 1/2/4/8 GPUs of the paper's consumer card (RTX
    /// 4070 Super, PCIe) and the datacenter A100 (NVLink), comparing dense
    /// vs VENOM vs Samoyeds weights. The routing plan is deterministic in
    /// `seed`.
    pub fn gpu_count_sweep(model: &MoeModelConfig, tokens: usize, seed: u64) -> Self {
        let plan = TopKRouter::for_config(model, seed).route(tokens);
        let mut cells = Vec::new();
        for device in [DeviceSpec::rtx4070_super(), DeviceSpec::a100_40g()] {
            for engine in ClusterEngine::all() {
                for num_gpus in [1usize, 2, 4, 8] {
                    cells.push((device.clone(), engine, num_gpus));
                }
            }
        }
        let entries: Vec<ClusterSweepEntry> = cells
            .par_iter()
            .map(|(device, engine, num_gpus)| {
                let sim = ClusterSimulator::new(
                    ClusterConfig::new(device.clone(), *num_gpus, *engine),
                    model.clone(),
                );
                let outcome = sim.step(&plan).ok().map(|report| ClusterSweepOutcome {
                    model_time_ms: report.model_time_ms,
                    all_to_all_ms: report.all_to_all_ms,
                    all_to_all_fraction: report.all_to_all_fraction(),
                    tokens_per_s: report.tokens_per_s(),
                    min_utilization: report.utilization().into_iter().fold(1.0f64, f64::min),
                });
                ClusterSweepEntry {
                    device: device.name.clone(),
                    engine: *engine,
                    num_gpus: *num_gpus,
                    outcome,
                }
            })
            .collect();
        Self {
            model: model.name.clone(),
            tokens,
            entries,
        }
    }

    /// Smallest swept GPU count at which (device, engine) fits, if any.
    pub fn min_feasible_gpus(&self, device: &str, engine: ClusterEngine) -> Option<usize> {
        self.entries
            .iter()
            .filter(|e| e.device == device && e.engine == engine && e.outcome.is_some())
            .map(|e| e.num_gpus)
            .min()
    }

    /// Render the sweep as a markdown table.
    pub fn render_markdown(&self) -> Vec<String> {
        let mut rows = vec![
            format!(
                "Cluster sweep: {} ({} tokens/batch, expert-parallel)",
                self.model, self.tokens
            ),
            "| Device | Engine | GPUs | Model step ms | All-to-all ms/layer | A2A share | tok/s | Min util |"
                .to_string(),
            "|---|---|---|---|---|---|---|---|".to_string(),
        ];
        for e in &self.entries {
            match e.outcome {
                None => rows.push(format!(
                    "| {} | {} | {} | OOM | - | - | - | - |",
                    e.device,
                    e.engine.name(),
                    e.num_gpus
                )),
                Some(o) => rows.push(format!(
                    "| {} | {} | {} | {:.2} | {:.4} | {:.0}% | {:.0} | {:.0}% |",
                    e.device,
                    e.engine.name(),
                    e.num_gpus,
                    o.model_time_ms,
                    o.all_to_all_ms,
                    o.all_to_all_fraction * 100.0,
                    o.tokens_per_s,
                    o.min_utilization * 100.0,
                )),
            }
        }
        rows
    }
}

/// Fleet-sizing table: minimum GPUs per (device, engine) for `model`.
pub fn render_fleet_sizing(model: &MoeModelConfig, tokens: usize) -> Vec<String> {
    let mut rows = vec![
        format!("Fleet sizing: minimum GPUs holding {}", model.name),
        "| Device | Dense | VENOM | Samoyeds |".to_string(),
        "|---|---|---|---|".to_string(),
    ];
    for device in [DeviceSpec::rtx4070_super(), DeviceSpec::a100_40g()] {
        let min = |engine| match min_gpus_to_fit(&device, engine, model, tokens, 16) {
            Some(g) => g.to_string(),
            None => ">16".to_string(),
        };
        rows.push(format!(
            "| {} | {} | {} | {} |",
            device.name,
            min(ClusterEngine::Dense),
            min(ClusterEngine::Venom),
            min(ClusterEngine::Samoyeds),
        ));
    }
    rows
}

/// Placement-strategy comparison on a skewed routing plan: straggler step
/// time per strategy.
pub fn render_placement_comparison(
    model: &MoeModelConfig,
    device: &DeviceSpec,
    num_gpus: usize,
    tokens: usize,
    skew: f64,
    seed: u64,
) -> Vec<String> {
    let plan = TopKRouter::for_config(model, seed)
        .with_skew(skew)
        .route(tokens);
    let mut rows = vec![
        format!(
            "Placement comparison: {} on {} x {} (skew {:.1}, imbalance {:.2})",
            model.name,
            num_gpus,
            device.name,
            skew,
            plan.imbalance()
        ),
        "| Strategy | Straggler ms/layer | Mean ms/layer | Layer step ms | GPU imbalance |"
            .to_string(),
        "|---|---|---|---|---|".to_string(),
    ];
    for strategy in [
        PlacementStrategy::RoundRobin,
        PlacementStrategy::CapacityGreedy,
        PlacementStrategy::ReplicateHot { hot: 2 },
    ] {
        let sim = ClusterSimulator::new(
            ClusterConfig::new(device.clone(), num_gpus, ClusterEngine::Samoyeds)
                .with_strategy(strategy),
            model.clone(),
        );
        match sim.step(&plan) {
            Ok(report) => rows.push(format!(
                "| {} | {:.2} | {:.2} | {:.2} | {:.2} |",
                strategy.name(),
                report.straggler_ms(),
                report.mean_compute_ms(),
                report.layer_time_ms,
                report.placement.imbalance(&plan.expert_loads()),
            )),
            Err(_) => rows.push(format!("| {} | OOM | - | - | - |", strategy.name())),
        }
    }
    rows
}

/// One (topology, engine) cell of the topology sweep.
#[derive(Debug, Clone)]
pub struct TopologySweepEntry {
    /// Topology label (e.g. `"2×4 NVLink 3 + InfiniBand NDR spine"`).
    pub topology: String,
    /// Number of islands.
    pub num_islands: usize,
    /// Weight representation.
    pub engine: ClusterEngine,
    /// `None` when no placement fits the per-GPU budgets; otherwise the
    /// step outcome.
    pub outcome: Option<TopologySweepOutcome>,
}

/// The measured quantities of one feasible topology-sweep cell.
#[derive(Debug, Clone, Copy)]
pub struct TopologySweepOutcome {
    /// Full-model step time over the batch, milliseconds.
    pub model_time_ms: f64,
    /// Dispatch + combine all-to-all per layer, milliseconds.
    pub all_to_all_ms: f64,
    /// Intra-island share of the collectives, milliseconds.
    pub intra_island_ms: f64,
    /// Spine share of the collectives, milliseconds.
    pub spine_ms: f64,
    /// Spine share of the layer step time.
    pub spine_fraction: f64,
    /// Batch tokens per second through the MoE stack.
    pub tokens_per_s: f64,
}

/// The topology sweep: the same 8-GPU fleet and skewed routing plan priced
/// as one flat NVLink island, as 2×4 NVLink islands on an InfiniBand
/// spine, and as 4×2 PCIe hosts on the same spine — dense vs VENOM vs
/// Samoyeds. The headline is *where the spine becomes the straggler*: the
/// moment GPUs leave one island, roughly half the dispatch bytes cross a
/// fabric an order of magnitude slower, and the collective share of the
/// step jumps past the flat-NVLink baseline.
#[derive(Debug, Clone)]
pub struct TopologySweepReport {
    /// The model swept.
    pub model: String,
    /// Tokens in the step batch.
    pub tokens: usize,
    /// Routing skew of the shared plan.
    pub skew: f64,
    /// All sweep cells, in (topology, engine) order.
    pub entries: Vec<TopologySweepEntry>,
}

impl TopologySweepReport {
    /// The swept island layouts over an 8-GPU A100 fleet: flat NVLink,
    /// NVLink islands on an InfiniBand NDR spine, and PCIe hosts on the
    /// same spine.
    fn layouts() -> Vec<ClusterTopology> {
        vec![
            ClusterTopology::flat(8, LinkSpec::nvlink3()),
            ClusterTopology::symmetric(2, 4, LinkSpec::nvlink3(), LinkSpec::infiniband_ndr())
                .expect("2x4 is a valid layout"),
            ClusterTopology::symmetric(4, 2, LinkSpec::pcie_gen4(), LinkSpec::infiniband_ndr())
                .expect("4x2 is a valid layout"),
        ]
    }

    /// Price a skewed `model` routing plan over every (topology, engine)
    /// cell. The plan is deterministic in `seed` and shared by all cells.
    pub fn sweep(model: &MoeModelConfig, tokens: usize, skew: f64, seed: u64) -> Self {
        let plan = TopKRouter::for_config(model, seed)
            .with_skew(skew)
            .route(tokens);
        let device = DeviceSpec::a100_40g();
        let mut cells = Vec::new();
        for topology in Self::layouts() {
            for engine in ClusterEngine::all() {
                cells.push((topology.clone(), engine));
            }
        }
        let entries: Vec<TopologySweepEntry> = cells
            .par_iter()
            .map(|(topology, engine)| {
                let sim = ClusterSimulator::new(
                    ClusterConfig::new(device.clone(), topology.num_gpus(), *engine)
                        .with_topology(topology.clone()),
                    model.clone(),
                );
                let outcome = sim.step(&plan).ok().map(|r| TopologySweepOutcome {
                    model_time_ms: r.model_time_ms,
                    all_to_all_ms: r.all_to_all_ms,
                    intra_island_ms: r.intra_island_ms,
                    spine_ms: r.spine_ms,
                    spine_fraction: r.spine_fraction(),
                    tokens_per_s: r.tokens_per_s(),
                });
                TopologySweepEntry {
                    topology: topology.name(),
                    num_islands: topology.num_islands(),
                    engine: *engine,
                    outcome,
                }
            })
            .collect();
        Self {
            model: model.name.clone(),
            tokens,
            skew,
            entries,
        }
    }

    /// The acceptance cell: the 2×4 NVLink + InfiniBand layout's collective
    /// time vs the flat NVLink baseline, for the Samoyeds engine —
    /// `(hierarchical_a2a_ms, flat_a2a_ms, spine_ms)`. The spine-bound
    /// hierarchical collective exceeds the flat baseline on skewed routing.
    pub fn spine_bound_contrast(&self) -> Option<(f64, f64, f64)> {
        let cell = |islands: usize| {
            self.entries
                .iter()
                .find(|e| e.num_islands == islands && e.engine == ClusterEngine::Samoyeds)
                .and_then(|e| e.outcome)
        };
        let hier = cell(2)?;
        let flat = cell(1)?;
        Some((hier.all_to_all_ms, flat.all_to_all_ms, hier.spine_ms))
    }

    /// Render the sweep as a markdown table.
    pub fn render_markdown(&self) -> Vec<String> {
        let mut rows = vec![
            format!(
                "Topology sweep: {} ({} tokens/batch, routing skew {:.1}, 8 GPUs)",
                self.model, self.tokens, self.skew
            ),
            "| Topology | Engine | Model step ms | A2A ms/layer | intra ms | spine ms | Spine share | tok/s |"
                .to_string(),
            "|---|---|---|---|---|---|---|---|".to_string(),
        ];
        for e in &self.entries {
            match e.outcome {
                None => rows.push(format!(
                    "| {} | {} | OOM | - | - | - | - | - |",
                    e.topology,
                    e.engine.name()
                )),
                Some(o) => rows.push(format!(
                    "| {} | {} | {:.2} | {:.4} | {:.4} | {:.4} | {:.0}% | {:.0} |",
                    e.topology,
                    e.engine.name(),
                    o.model_time_ms,
                    o.all_to_all_ms,
                    o.intra_island_ms,
                    o.spine_ms,
                    o.spine_fraction * 100.0,
                    o.tokens_per_s,
                )),
            }
        }
        rows
    }
}

/// Placement-strategy comparison on a hierarchical topology: spine traffic
/// and step time per strategy on a skewed plan — the table that shows
/// island-aware replication keeping hot-expert traffic off the spine.
pub fn render_topology_placement(
    model: &MoeModelConfig,
    topology: &ClusterTopology,
    tokens: usize,
    skew: f64,
    seed: u64,
) -> Vec<String> {
    let plan = TopKRouter::for_config(model, seed)
        .with_skew(skew)
        .route(tokens);
    let device = DeviceSpec::a100_40g();
    let mut rows = vec![
        format!(
            "Topology-aware placement: {} on {} (skew {:.1})",
            model.name,
            topology.name(),
            skew
        ),
        "| Strategy | Spine ms/layer | Cross-island MB/layer | A2A ms/layer | Layer step ms |"
            .to_string(),
        "|---|---|---|---|---|".to_string(),
    ];
    for strategy in [
        PlacementStrategy::CapacityGreedy,
        PlacementStrategy::ReplicateHot { hot: 2 },
        PlacementStrategy::ReplicateHotPerIsland { hot: 2 },
    ] {
        let sim = ClusterSimulator::new(
            ClusterConfig::new(device.clone(), topology.num_gpus(), ClusterEngine::Samoyeds)
                .with_topology(topology.clone())
                .with_strategy(strategy),
            model.clone(),
        );
        match sim.step(&plan) {
            Ok(r) => rows.push(format!(
                "| {} | {:.4} | {:.1} | {:.4} | {:.2} |",
                strategy.name(),
                r.spine_ms,
                r.cross_island_bytes / 1e6,
                r.all_to_all_ms,
                r.layer_time_ms,
            )),
            Err(_) => rows.push(format!("| {} | OOM | - | - | - |", strategy.name())),
        }
    }
    rows
}

/// One (device, link, engine, GPU-count) cell of the cluster-serving sweep.
#[derive(Debug, Clone)]
pub struct ClusterServingEntry {
    /// Device name.
    pub device: String,
    /// Interconnect name.
    pub link: String,
    /// Weight representation.
    pub engine: ClusterEngine,
    /// GPUs in the pod.
    pub num_gpus: usize,
    /// Serving metrics of the run, including completed/rejected counts
    /// (`servable == false` marks a pod whose straggler GPU cannot admit
    /// the trace — the OOM cells).
    pub metrics: ServingMetrics,
    /// Share of executed step time spent in the all-to-all collectives.
    pub collective_fraction: f64,
}

/// The cluster-serving sweep: one shared request trace pushed through the
/// continuous-batching scheduler over [`ClusterBackend`]s of every
/// (device/link, engine, GPU-count) combination — the serving-level version
/// of the static GPU-count sweep, where infeasible cells show up as
/// *rejected traces* instead of OOM table entries.
#[derive(Debug, Clone)]
pub struct ClusterServingReport {
    /// The model served.
    pub model: String,
    /// Requests in the shared trace.
    pub num_requests: usize,
    /// All sweep cells, in (device, engine, gpus) order.
    pub entries: Vec<ClusterServingEntry>,
}

impl ClusterServingReport {
    /// Serve `trace` with `model` on 1/2/4/8-GPU pods of the consumer RTX
    /// 4070 Super (PCIe) and the datacenter A100 (NVLink and, for the
    /// fabric contrast, PCIe), under dense vs VENOM vs Samoyeds weights.
    pub fn sweep(model: &MoeModelConfig, trace: &TraceConfig, scfg: &SchedulerConfig) -> Self {
        let requests = trace.generate();
        let fabrics: [(DeviceSpec, LinkSpec); 3] = [
            (DeviceSpec::rtx4070_super(), LinkSpec::pcie_gen4()),
            (DeviceSpec::a100_40g(), LinkSpec::nvlink3()),
            (DeviceSpec::a100_40g(), LinkSpec::pcie_gen4()),
        ];
        let mut cells = Vec::new();
        for (device, link) in &fabrics {
            for engine in ClusterEngine::all() {
                for num_gpus in [1usize, 2, 4, 8] {
                    cells.push((device.clone(), link.clone(), engine, num_gpus));
                }
            }
        }
        let entries: Vec<ClusterServingEntry> = cells
            .par_iter()
            .map(|(device, link, engine, num_gpus)| {
                let cluster =
                    ClusterConfig::new(device.clone(), *num_gpus, *engine).with_link(link.clone());
                let backend = ClusterBackend::new(cluster, model.clone(), scfg);
                let result = Scheduler::from_backend(backend, *scfg).run(&requests);
                let step_ms: f64 = result.steps.iter().map(|s| s.time_ms).sum();
                ClusterServingEntry {
                    device: device.name.clone(),
                    link: link.name.clone(),
                    engine: *engine,
                    num_gpus: *num_gpus,
                    collective_fraction: if step_ms > 0.0 {
                        result.collective_ms() / step_ms
                    } else {
                        0.0
                    },
                    metrics: ServingMetrics::from_result(&result),
                }
            })
            .collect();
        Self {
            model: model.name.clone(),
            num_requests: requests.len(),
            entries,
        }
    }

    /// A cell where the Samoyeds weights admit the trace while dense
    /// weights reject it for memory, if any: `(device, link, num_gpus)`.
    pub fn admission_contrast(&self) -> Option<(String, String, usize)> {
        self.entries
            .iter()
            .filter(|e| e.engine == ClusterEngine::Samoyeds && e.metrics.servable)
            .find(|s| {
                self.entries.iter().any(|d| {
                    d.engine == ClusterEngine::Dense
                        && d.device == s.device
                        && d.link == s.link
                        && d.num_gpus == s.num_gpus
                        && !d.metrics.servable
                        && d.metrics.rejected > 0
                })
            })
            .map(|s| (s.device.clone(), s.link.clone(), s.num_gpus))
    }

    /// Render the sweep as a markdown table.
    pub fn render_markdown(&self) -> Vec<String> {
        let mut rows = vec![
            format!(
                "Cluster serving: {} ({} requests, continuous batching over the cluster backend)",
                self.model, self.num_requests
            ),
            "| Device | Link | Engine | GPUs | Served | Rejected | tok/s (output) | p95 ms | TTFT p95 ms | A2A share | Peak GiB/GPU |"
                .to_string(),
            "|---|---|---|---|---|---|---|---|---|---|---|".to_string(),
        ];
        for e in &self.entries {
            if !e.metrics.servable {
                rows.push(format!(
                    "| {} | {} | {} | {} | OOM | {} | - | - | - | - | - |",
                    e.device,
                    e.link,
                    e.engine.name(),
                    e.num_gpus,
                    e.metrics.rejected,
                ));
                continue;
            }
            rows.push(format!(
                "| {} | {} | {} | {} | {} | {} | {:.0} | {:.0} | {:.0} | {:.0}% | {:.1} |",
                e.device,
                e.link,
                e.engine.name(),
                e.num_gpus,
                e.metrics.completed,
                e.metrics.rejected,
                e.metrics.output_tokens_per_s,
                e.metrics.request_latency.p95_ms,
                e.metrics.ttft.p95_ms,
                e.collective_fraction * 100.0,
                e.metrics.peak_memory_gib,
            ));
        }
        rows
    }
}

/// The fleet compositions the autoscale sweep compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetKind {
    /// Homogeneous A100 singles running the Samoyeds engine.
    SamoyedsSingles,
    /// Homogeneous A100 singles running dense (Transformers) weights.
    DenseSingles,
    /// Heterogeneous: a 2x A100 expert-parallel Samoyeds pod next to an RTX
    /// 4070 Super single; scale-out adds more consumer singles.
    Mixed,
}

impl FleetKind {
    /// All compositions, in report order.
    pub fn all() -> [FleetKind; 3] {
        [
            FleetKind::SamoyedsSingles,
            FleetKind::DenseSingles,
            FleetKind::Mixed,
        ]
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            FleetKind::SamoyedsSingles => "A100 Samoyeds singles",
            FleetKind::DenseSingles => "A100 dense singles",
            FleetKind::Mixed => "A100 pod + 4070S (Samoyeds)",
        }
    }

    /// Build the control plane for this composition: the initial fleet plus
    /// the factory scale-out draws from.
    pub fn controller(
        &self,
        model: &MoeModelConfig,
        config: FleetConfig,
        slo: &SloAutoscaler,
    ) -> FleetController {
        let scfg = config.scheduler;
        let single = move |device: DeviceSpec, engine: EngineKind, model: &MoeModelConfig| {
            Box::new(SingleGpuBackend::new(device, model, engine, &scfg))
                as Box<dyn ExecutionBackend>
        };
        let controller = FleetController::new(config).with_autoscaler(slo.clone());
        match self {
            FleetKind::SamoyedsSingles => {
                let factory_model = model.clone();
                controller
                    .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, model))
                    .with_factory(move || {
                        single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &factory_model)
                    })
            }
            FleetKind::DenseSingles => {
                let factory_model = model.clone();
                controller
                    .with_replica(single(
                        DeviceSpec::a100_40g(),
                        EngineKind::Transformers,
                        model,
                    ))
                    .with_factory(move || {
                        single(
                            DeviceSpec::a100_40g(),
                            EngineKind::Transformers,
                            &factory_model,
                        )
                    })
            }
            FleetKind::Mixed => {
                let pod = ClusterBackend::new(
                    ClusterConfig::new(DeviceSpec::a100_40g(), 2, ClusterEngine::Samoyeds),
                    model.clone(),
                    &scfg,
                );
                let factory_model = model.clone();
                controller
                    .with_replica(Box::new(pod))
                    .with_replica(single(
                        DeviceSpec::rtx4070_super(),
                        EngineKind::Samoyeds,
                        model,
                    ))
                    .with_factory(move || {
                        single(
                            DeviceSpec::rtx4070_super(),
                            EngineKind::Samoyeds,
                            &factory_model,
                        )
                    })
            }
        }
    }
}

/// One (fleet, policy, SLO) cell of the autoscale sweep.
#[derive(Debug, Clone)]
pub struct FleetAutoscaleEntry {
    /// Fleet composition.
    pub fleet: FleetKind,
    /// Dispatch policy.
    pub policy: DispatchPolicy,
    /// The p95-TTFT SLO target, milliseconds.
    pub slo_ms: f64,
    /// The run's fleet metrics, including the scaling timeline.
    pub metrics: FleetMetrics,
}

/// The fleet-autoscale sweep: one shared bursty (calm → spike → calm) trace
/// served by the online control plane under every combination of fleet
/// composition × dispatch policy × SLO target. The headline is fleet
/// sizing *in time*: under the same SLO, Samoyeds fleets absorb the spike
/// with fewer scale-out events than dense, because each compressed replica
/// has more serving capacity.
#[derive(Debug, Clone)]
pub struct FleetAutoscaleReport {
    /// The model served.
    pub model: String,
    /// Requests in the shared trace.
    pub num_requests: usize,
    /// All sweep cells, in (fleet, policy, slo) order.
    pub entries: Vec<FleetAutoscaleEntry>,
}

impl FleetAutoscaleReport {
    /// The canonical calm → spike → calm demonstration trace: the numbers
    /// behind the pinned scale-out contrast (Samoyeds fleets absorbing the
    /// spike with fewer scale-outs than dense) — shared by the bench
    /// experiment, the `fleet_autoscale` example and the report tests so
    /// they can never drift apart.
    pub fn demo_trace() -> BurstyTraceConfig {
        BurstyTraceConfig {
            prompt_len_range: (64, 256),
            output_len_range: (16, 48),
            seed: 17,
            ..BurstyTraceConfig::spike(2.0, 300.0, 6, 80)
        }
    }

    /// Run the sweep over `trace` with the fleet knobs used everywhere in
    /// the autoscale story (200 ms ticks, 1 s window, 1.5 s warm-up, at
    /// most 6 replicas; the mixed fleet keeps a floor of two replicas).
    pub fn sweep(
        model: &MoeModelConfig,
        trace: &BurstyTraceConfig,
        scfg: &SchedulerConfig,
    ) -> Self {
        let requests = trace.generate();
        let slos = [400.0f64, 1_500.0];
        let policies = [
            DispatchPolicy::least_outstanding(),
            DispatchPolicy::RoundRobin,
            DispatchPolicy::LeastOutstandingTokensFrozen,
        ];
        let mut cells = Vec::new();
        for fleet in FleetKind::all() {
            for policy in policies {
                for slo_ms in slos {
                    cells.push((fleet, policy, slo_ms));
                }
            }
        }
        let entries: Vec<FleetAutoscaleEntry> = cells
            .par_iter()
            .map(|&(fleet, policy, slo_ms)| {
                let config = FleetConfig {
                    scheduler: *scfg,
                    policy,
                    tick_ms: 200.0,
                    window_ms: 1_000.0,
                    warmup_ms: 1_500.0,
                    min_replicas: if fleet == FleetKind::Mixed { 2 } else { 1 },
                    max_replicas: 6,
                    ..FleetConfig::default()
                };
                let controller = fleet.controller(model, config, &SloAutoscaler::new(slo_ms));
                FleetAutoscaleEntry {
                    fleet,
                    policy,
                    slo_ms,
                    metrics: controller.run(&requests),
                }
            })
            .collect();
        Self {
            model: model.name.clone(),
            num_requests: requests.len(),
            entries,
        }
    }

    /// The headline contrast: scale-out counts of the Samoyeds vs dense
    /// homogeneous fleets at the tightest SLO under the decaying
    /// least-outstanding policy, if both cells exist.
    pub fn scale_out_contrast(&self) -> Option<(usize, usize)> {
        let cell = |kind: FleetKind| {
            self.entries
                .iter()
                .filter(|e| {
                    e.fleet == kind
                        && matches!(e.policy, DispatchPolicy::LeastOutstandingTokens { .. })
                })
                .min_by(|a, b| a.slo_ms.partial_cmp(&b.slo_ms).expect("finite SLOs"))
                .map(|e| e.metrics.scale_outs())
        };
        Some((
            cell(FleetKind::SamoyedsSingles)?,
            cell(FleetKind::DenseSingles)?,
        ))
    }

    /// Render the sweep as a markdown table.
    pub fn render_markdown(&self) -> Vec<String> {
        let mut rows = vec![
            format!(
                "Fleet autoscale: {} ({} requests, bursty trace, online control plane)",
                self.model, self.num_requests
            ),
            "| Fleet | Policy | SLO ms | Served | Rejected | tok/s | TTFT p95 ms | Peak replicas | Scale-outs | Scale-ins |"
                .to_string(),
            "|---|---|---|---|---|---|---|---|---|---|".to_string(),
        ];
        for e in &self.entries {
            rows.push(format!(
                "| {} | {} | {:.0} | {} | {} | {:.0} | {:.0} | {} | {} | {} |",
                e.fleet.name(),
                e.policy.name(),
                e.slo_ms,
                e.metrics.completed,
                e.metrics.rejected,
                e.metrics.output_tokens_per_s,
                e.metrics.ttft.p95_ms,
                e.metrics.replicas,
                e.metrics.scale_outs(),
                e.metrics.scale_ins(),
            ));
        }
        rows
    }
}

/// The observability demo: the heterogeneous autoscaled fleet from the
/// autoscale story, re-run with a recording telemetry sink — per-request
/// latency attribution ([`RequestTimeline`]), the metrics-registry counters
/// and tick series, and a Perfetto-loadable Chrome trace, behind one report.
#[derive(Debug, Clone)]
pub struct FleetTraceReport {
    /// The model served.
    pub model: String,
    /// Requests in the demo trace.
    pub num_requests: usize,
    /// The run's fleet metrics (bit-identical to the sink-free run).
    pub metrics: FleetMetrics,
    /// The full recorded event stream, in simulation order.
    pub events: Vec<TraceEvent>,
    /// Counters, histograms and per-replica tick series replayed from the
    /// event stream.
    pub registry: MetricsRegistry,
    /// Per-request queue/prefill/decode attribution, in completion order.
    pub timelines: Vec<RequestTimeline>,
    /// Pooled attribution over all completed requests.
    pub attribution: AttributionSummary,
}

impl FleetTraceReport {
    /// Trace the canonical autoscale demo: the mixed fleet (A100 pod +
    /// 4070S single) serving [`FleetAutoscaleReport::demo_trace`] under the
    /// tight 400 ms SLO, with an unbounded recorder installed. The registry
    /// is replayed from the recorded stream afterwards, so the run itself
    /// carries exactly one sink.
    pub fn demo(model: &MoeModelConfig, scfg: &SchedulerConfig) -> Self {
        let requests = FleetAutoscaleReport::demo_trace().generate();
        let config = FleetConfig {
            scheduler: *scfg,
            policy: DispatchPolicy::least_outstanding(),
            tick_ms: 200.0,
            window_ms: 1_000.0,
            warmup_ms: 1_500.0,
            min_replicas: 2,
            max_replicas: 6,
            ..FleetConfig::default()
        };
        let (sink, recorder) = SharedSink::new(TraceRecorder::new());
        let metrics = FleetKind::Mixed
            .controller(model, config, &SloAutoscaler::new(400.0))
            .with_sink(sink)
            .run(&requests);
        let events = recorder.borrow().events();
        let mut registry = MetricsRegistry::new();
        for event in &events {
            registry.record(*event);
        }
        let timelines = request_timelines(&events);
        let attribution = AttributionSummary::from_timelines(&timelines);
        Self {
            model: model.name.clone(),
            num_requests: requests.len(),
            metrics,
            events,
            registry,
            timelines,
            attribution,
        }
    }

    /// The Chrome trace-event JSON of the run: one track per replica
    /// (named by its backend description), a span per engine step, instants
    /// for request and replica lifecycle events. Load it in
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn chrome_trace(&self) -> String {
        let names: Vec<String> = self
            .metrics
            .per_replica
            .iter()
            .map(|r| r.description.clone())
            .collect();
        chrome_trace_json(&self.events, &names)
    }

    /// Render the attribution and counter summary as markdown rows.
    pub fn render_markdown(&self) -> Vec<String> {
        let mut rows = vec![format!(
            "Fleet trace: {} ({} requests, mixed fleet, {} events recorded)",
            self.model,
            self.num_requests,
            self.events.len()
        )];
        rows.push(format!(
            "served {} · rejected {} · {} steps · {} scale-outs / {} scale-ins · \
             {} control-tick snapshots",
            self.metrics.completed,
            self.metrics.rejected,
            self.registry.steps,
            self.registry.scale_outs,
            self.registry.scale_ins,
            self.registry.snapshots.len(),
        ));
        rows.push(String::new());
        rows.extend(self.attribution.render_markdown());
        rows.push(String::new());
        rows.push(format!(
            "p95 TTFT {:.0} ms exact vs {:.0} ms from the log-linear histogram \
             ({} samples)",
            self.metrics.ttft.p95_ms,
            self.registry.ttft_ms.value_at_quantile(0.95),
            self.registry.ttft_ms.count(),
        ));
        rows
    }
}

/// One recovery-policy cell of the fault sweep.
#[derive(Debug, Clone)]
pub struct FaultSweepEntry {
    /// Human-readable recovery-policy name.
    pub policy: &'static str,
    /// The weight-transfer time the policy charges before re-admission.
    pub transfer_ms: f64,
    /// The run's fleet metrics, including the fault timeline.
    pub metrics: FleetMetrics,
    /// p95-TTFT SLO attainment over requests arriving before the first
    /// fault (`None` when no requests arrive in the phase).
    pub slo_before: Option<f64>,
    /// Attainment over requests arriving between the first fault and the
    /// last recovery.
    pub slo_during: Option<f64>,
    /// Attainment over requests arriving after the last recovery.
    pub slo_after: Option<f64>,
}

/// The fault sweep: one shared bursty trace served by the same fleet under
/// an identical scripted fault schedule (a replica crash mid-spike plus a
/// later link degradation) with three recovery policies — fail-fast,
/// re-admission, and re-admission plus a cold replacement. The re-admission
/// weight-transfer time is not a free parameter: it is priced by
/// [`replan_after_crash`] over a two-island cluster topology, so the
/// recovery bill the control plane pays is the one the placement layer
/// computes (intra-island copies ride NVLink, sole-copy experts stream
/// cross-island over the spine).
#[derive(Debug, Clone)]
pub struct FaultSweepReport {
    /// The model served.
    pub model: String,
    /// Requests in the shared trace.
    pub num_requests: usize,
    /// The p95-TTFT SLO the attainment phases are measured against.
    pub slo_ms: f64,
    /// When the replica crash fires.
    pub fault_at_ms: f64,
    /// The dist-priced weight-transfer time charged on re-admission.
    pub transfer_ms: f64,
    /// Weight bytes the recovery plan moves.
    pub transfer_bytes: f64,
    /// One entry per recovery policy, in fail-fast / re-admit /
    /// re-admit + replace order.
    pub entries: Vec<FaultSweepEntry>,
    /// The re-admission run's recorded event stream (fault and recovery
    /// instants included), for the Chrome trace export.
    pub events: Vec<TraceEvent>,
    /// Replica track names for the Chrome trace export.
    pub replica_names: Vec<String>,
}

impl FaultSweepReport {
    /// The scripted schedule every cell replays: the first replica crashes
    /// at `fault_at_ms` (mid-spike), and a second replica's link degrades
    /// for 750 ms two seconds later.
    fn schedule(fault_at_ms: f64) -> FaultSchedule {
        FaultSchedule::Scripted(vec![
            FaultSpec {
                at_ms: fault_at_ms,
                kind: FaultKind::ReplicaCrash { replica: 0 },
            },
            FaultSpec {
                at_ms: fault_at_ms + 2_000.0,
                kind: FaultKind::LinkDegrade {
                    replica: 1,
                    duration_ms: 750.0,
                },
            },
        ])
    }

    /// SLO attainment over requests arriving in `[lo, hi)`: completions
    /// within the TTFT target over requests offered, so a request the crash
    /// destroys (or delays past the target) counts against the phase it
    /// arrived in.
    fn attainment(
        offered: &[Request],
        timelines: &[RequestTimeline],
        slo_ms: f64,
        lo: f64,
        hi: f64,
    ) -> Option<f64> {
        // Phase membership is the *original* arrival time: a re-admitted
        // request's timeline restarts its clock at the recovery instant, but
        // it still counts against the phase it first arrived in (matched by
        // id), with its TTFT charged from that original arrival — so the
        // crash's delay shows up in the phase it hit, and attainment can
        // never exceed 100%.
        let offered: Vec<(u64, f64)> = offered
            .iter()
            .filter(|r| r.arrival_ms >= lo && r.arrival_ms < hi)
            .map(|r| (r.id, r.arrival_ms))
            .collect();
        if offered.is_empty() {
            return None;
        }
        let attained = offered
            .iter()
            .filter(|(id, arrival_ms)| {
                timelines
                    .iter()
                    .any(|t| t.id == *id && t.arrival_ms + t.ttft_ms() - arrival_ms <= slo_ms)
            })
            .count();
        Some(attained as f64 / offered.len() as f64)
    }

    /// Run the sweep: three A100 Samoyeds singles (plus a factory for the
    /// replacement policy) serving [`FleetAutoscaleReport::demo_trace`],
    /// crash at 3.4 s (the spike backlog is in flight), SLO 400 ms.
    pub fn sweep(model: &MoeModelConfig, scfg: &SchedulerConfig) -> Self {
        let requests = FleetAutoscaleReport::demo_trace().generate();
        let fault_at_ms = 3_400.0;
        let slo_ms = 400.0;

        // Price the recovery transfer with the placement layer: a 2×4
        // cluster, capacity-greedy placement, GPU 0 dies, checkpoint staged
        // behind GPU 4 (the other island's leader).
        let device = DeviceSpec::a100_40g();
        let memory = ClusterMemoryModel::new(&device, ClusterEngine::Samoyeds, model);
        let topology =
            ClusterTopology::symmetric(2, 4, LinkSpec::nvlink3(), LinkSpec::infiniband_ndr())
                .expect("2×4 demo topology is valid");
        let loads = vec![1_024usize; model.num_experts];
        let plan = PlacementStrategy::CapacityGreedy
            .place_on(&loads, &topology, &memory, 1_024, 1_024)
            .and_then(|p| {
                replan_after_crash(&p, 0, &loads, &topology, &memory, 1_024, 1_024, Some(4))
            })
            .expect("demo recovery plan is feasible");
        let transfer_ms = plan.transfer_ms();
        let transfer_bytes = plan.transfer_bytes;

        // Static gate: reject an ill-formed schedule once, before the first
        // of the three policy runs — not mid-sweep. Pure analysis; a passing
        // schedule leaves every run bit-for-bit unchanged.
        crate::validate::validate_fault_schedule(&Self::schedule(fault_at_ms), &topology, 3)
            .assert_valid();

        let policies: [(&'static str, RecoveryPolicy); 3] = [
            ("fail-fast", RecoveryPolicy::fail_fast()),
            ("re-admit", RecoveryPolicy::readmit_after(transfer_ms)),
            (
                "re-admit + replace",
                RecoveryPolicy::readmit_and_replace(transfer_ms),
            ),
        ];
        let mut entries = Vec::with_capacity(policies.len());
        let mut events = Vec::new();
        let mut replica_names = Vec::new();
        for (name, policy) in policies {
            let config = FleetConfig {
                scheduler: *scfg,
                policy: DispatchPolicy::least_outstanding(),
                tick_ms: 200.0,
                window_ms: 1_000.0,
                warmup_ms: 1_500.0,
                min_replicas: 1,
                max_replicas: 4,
                ..FleetConfig::default()
            };
            let factory_model = model.clone();
            let factory_device = device.clone();
            let factory_scfg = *scfg;
            let single = move || {
                Box::new(SingleGpuBackend::new(
                    factory_device.clone(),
                    &factory_model,
                    EngineKind::Samoyeds,
                    &factory_scfg,
                )) as Box<dyn ExecutionBackend>
            };
            let (sink, recorder) = SharedSink::new(TraceRecorder::new());
            let metrics = FleetController::new(config)
                .with_replica(single())
                .with_replica(single())
                .with_replica(single())
                .with_factory(single)
                .with_faults(Self::schedule(fault_at_ms), policy)
                .with_sink(sink)
                .run(&requests);
            let run_events = recorder.borrow().events();
            let timelines = request_timelines(&run_events);
            // Phase boundary: the last recovery the run saw (the link
            // restoration at minimum, the crash recovery when enabled).
            let recovered = metrics
                .faults
                .iter()
                .filter_map(|f| f.recovered_at_ms)
                .fold(fault_at_ms, f64::max);
            let slo_before = Self::attainment(&requests, &timelines, slo_ms, 0.0, fault_at_ms);
            let slo_during =
                Self::attainment(&requests, &timelines, slo_ms, fault_at_ms, recovered);
            let slo_after =
                Self::attainment(&requests, &timelines, slo_ms, recovered, f64::INFINITY);
            if name == "re-admit" {
                events = run_events;
                replica_names = metrics
                    .per_replica
                    .iter()
                    .map(|r| r.description.clone())
                    .collect();
            }
            entries.push(FaultSweepEntry {
                policy: name,
                transfer_ms: policy.transfer_ms,
                metrics,
                slo_before,
                slo_during,
                slo_after,
            });
        }
        Self {
            model: model.name.clone(),
            num_requests: requests.len(),
            slo_ms,
            fault_at_ms,
            transfer_ms,
            transfer_bytes,
            entries,
            events,
            replica_names,
        }
    }

    /// The acceptance-criterion cell: the re-admission run's crash-recovery
    /// time and failed-request count (finite and zero respectively when
    /// recovery works).
    pub fn readmit_recovery(&self) -> Option<(f64, usize)> {
        let entry = self.entries.iter().find(|e| e.policy == "re-admit")?;
        let crash = entry
            .metrics
            .faults
            .iter()
            .find(|f| matches!(f.kind, FaultKind::ReplicaCrash { .. }))?;
        Some((crash.recovery_ms()?, entry.metrics.failed()))
    }

    /// The Chrome trace-event JSON of the re-admission run (fault and
    /// recovery instants included).
    pub fn chrome_trace(&self) -> String {
        chrome_trace_json(&self.events, &self.replica_names)
    }

    /// Render the sweep as markdown: the policy table plus the re-admission
    /// run's fault timeline and drain status.
    pub fn render_markdown(&self) -> Vec<String> {
        let pct = |v: Option<f64>| match v {
            Some(f) => format!("{:.0}%", f * 100.0),
            None => "-".to_string(),
        };
        let mut rows = vec![
            format!(
                "Fault sweep: {} ({} requests, crash at {:.1} s, transfer {:.1} ms \
                 / {:.0} MiB priced over the 2×4 topology)",
                self.model,
                self.num_requests,
                self.fault_at_ms / 1e3,
                self.transfer_ms,
                self.transfer_bytes / (1u64 << 20) as f64,
            ),
            format!(
                "| policy | served | failed | re-admitted | recovery (ms) | \
                 SLO {:.0} ms before | during | after |",
                self.slo_ms
            ),
            "|---|---|---|---|---|---|---|---|".to_string(),
        ];
        for e in &self.entries {
            let crash = e
                .metrics
                .faults
                .iter()
                .find(|f| matches!(f.kind, FaultKind::ReplicaCrash { .. }));
            let recovery = match crash.and_then(|f| f.recovery_ms()) {
                Some(ms) => format!("{ms:.1}"),
                None => "-".to_string(),
            };
            rows.push(format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} |",
                e.policy,
                e.metrics.completed,
                e.metrics.failed(),
                crash.map(|f| f.readmitted).unwrap_or(0),
                recovery,
                pct(e.slo_before),
                pct(e.slo_during),
                pct(e.slo_after),
            ));
        }
        if let Some(readmit) = self.entries.iter().find(|e| e.policy == "re-admit") {
            rows.push(String::new());
            rows.extend(readmit.metrics.render_fault_timeline());
            rows.push(format!("drain: {}", readmit.metrics.drain_status()));
        }
        rows
    }
}

/// One (engine, prefill:decode split) cell of the disaggregation sweep.
#[derive(Debug, Clone)]
pub struct DisaggSweepEntry {
    /// Weight representation serving the cell.
    pub engine: ClusterEngine,
    /// Prefill pods: A100 singles on the leading global slots.
    pub prefill_pods: usize,
    /// Decode pods: RTX 4070 Super singles on the remaining slots.
    pub decode_pods: usize,
    /// `None` when static validation rejects the cell before anything runs
    /// (`disagg::decode-cannot-hold-model` — the 12 GiB decode pods cannot
    /// hold the dense weights); otherwise the run's measurements.
    pub outcome: Option<DisaggSweepOutcome>,
}

/// The measured quantities of one feasible disaggregation cell.
#[derive(Debug, Clone)]
pub struct DisaggSweepOutcome {
    /// The run's fleet metrics.
    pub metrics: FleetMetrics,
    /// Per-request latency attribution (queue / prefill / transfer / decode).
    pub attribution: AttributionSummary,
    /// KV handoffs that stayed inside an island (NVLink-priced).
    pub intra_transfers: usize,
    /// Bytes those intra-island handoffs moved.
    pub intra_bytes: f64,
    /// KV handoffs that crossed the spine (InfiniBand-priced).
    pub spine_transfers: usize,
    /// Bytes those spine handoffs moved.
    pub spine_bytes: f64,
}

/// The prefill/decode disaggregation sweep: one shared bursty trace served
/// by a four-pod fleet (A100 prefill pods, RTX 4070 Super decode pods —
/// slot *i* on GPU *i* of a 2×2 two-island topology), sweeping the
/// prefill:decode split 1:3 / 2:2 / 3:1 under dense, VENOM and Samoyeds
/// weights. Every KV handoff is priced by the topology the pods actually
/// sit on: pairs sharing an island ride NVLink 3, pairs split across
/// islands pay the InfiniBand NDR spine — the same `point_to_point_ms`
/// formula the placement layer charges for weight transfers, mirrored into
/// the serve-side [`KvLink`] (pinned by a test in `link`).
///
/// The dense cells are where the paper's memory story bites: Qwen2-MoE's
/// bf16 weights do not fit a 12 GiB decode pod, so every dense split
/// validates as infeasible and dense serving cannot disaggregate on this
/// hardware at all, while the compressed representations (VENOM, Samoyeds)
/// both fit and free KV headroom on top — the ratio-shift contrast
/// [`DisaggSweepReport::ratio_contrast`] reports.
#[derive(Debug, Clone)]
pub struct DisaggSweepReport {
    /// The model served.
    pub model: String,
    /// Requests in the shared trace.
    pub num_requests: usize,
    /// Pods in every cell's fleet.
    pub slots: usize,
    /// All sweep cells, in (engine, prefill-pod-count) order.
    pub entries: Vec<DisaggSweepEntry>,
    /// The designated run's recorded event stream (the Samoyeds 1:3 cell —
    /// the split with both intra-island and spine handoffs), for the
    /// Chrome trace export.
    pub events: Vec<TraceEvent>,
    /// Replica track names for the Chrome trace export.
    pub replica_names: Vec<String>,
}

impl DisaggSweepReport {
    /// Pods in every cell's fleet: GPUs of the 2×2 demo topology.
    const SLOTS: usize = 4;

    /// The serve-side mirror of a dist link: same latency, same bandwidth,
    /// so [`KvLink::transfer_ms`] and [`LinkSpec::point_to_point_ms`] price
    /// a handoff identically.
    fn kv_link(spec: &LinkSpec) -> KvLink {
        KvLink {
            latency_us: spec.latency_us,
            bandwidth_gbps: spec.bandwidth_gbps,
        }
    }

    /// The serve-level engine a [`ClusterEngine`]'s memory accounting maps
    /// onto (VENOM stores the same compressed weights Samoyeds does).
    fn memory_kind(engine: ClusterEngine) -> EngineKind {
        match engine {
            ClusterEngine::Dense => EngineKind::Transformers,
            ClusterEngine::Venom | ClusterEngine::Samoyeds => EngineKind::Samoyeds,
        }
    }

    /// One pod: the representation's memory model with its compute pricing
    /// — VENOM swaps in the weight-only ("+W") Samoyeds kernels.
    fn backend(
        engine: ClusterEngine,
        device: &DeviceSpec,
        model: &MoeModelConfig,
        scfg: &SchedulerConfig,
    ) -> Box<dyn ExecutionBackend> {
        let backend = SingleGpuBackend::new(device.clone(), model, Self::memory_kind(engine), scfg);
        match engine {
            ClusterEngine::Venom => Box::new(
                backend.with_engine(
                    Engine::new(EngineKind::Samoyeds, device.clone())
                        .with_samoyeds_options(SamoyedsOptions::WEIGHT_ONLY),
                ),
            ),
            _ => Box::new(backend),
        }
    }

    /// Run the sweep over [`FleetAutoscaleReport::demo_trace`]. Every cell
    /// is validated first: an infeasible cell (decode pods that cannot hold
    /// the weights) is reported as such instead of running, so the dense
    /// column degrades into `OOM` rows rather than panics.
    pub fn sweep(model: &MoeModelConfig, scfg: &SchedulerConfig) -> Self {
        let requests = FleetAutoscaleReport::demo_trace().generate();
        let topology =
            ClusterTopology::symmetric(2, 2, LinkSpec::nvlink3(), LinkSpec::infiniband_ndr())
                .expect("2×2 disaggregation topology is valid");
        let mut cells = Vec::new();
        for engine in ClusterEngine::all() {
            for prefill in 1..Self::SLOTS {
                cells.push((engine, prefill));
            }
        }
        type Captured = Option<(Vec<TraceEvent>, Vec<String>)>;
        let results: Vec<(DisaggSweepEntry, Captured)> = cells
            .par_iter()
            .map(|&(engine, prefill)| {
                let prefill_ids: Vec<usize> = (0..prefill).collect();
                let decode_ids: Vec<usize> = (prefill..Self::SLOTS).collect();
                // Slot i sits on GPU i: price each prefill→decode pair by
                // whether it crosses the island boundary.
                let links: Vec<Vec<KvLink>> = prefill_ids
                    .iter()
                    .map(|&p| {
                        decode_ids
                            .iter()
                            .map(|&d| {
                                if topology.island_of(p) == topology.island_of(d) {
                                    Self::kv_link(&LinkSpec::nvlink3())
                                } else {
                                    Self::kv_link(&LinkSpec::infiniband_ndr())
                                }
                            })
                            .collect()
                    })
                    .collect();
                let decode_device = DeviceSpec::rtx4070_super();
                let disagg = DisaggregationConfig {
                    prefill: prefill_ids,
                    decode: decode_ids,
                    memory: MemoryModel::new(&decode_device, Self::memory_kind(engine), model),
                    links,
                };
                let config = FleetConfig {
                    scheduler: *scfg,
                    max_replicas: Self::SLOTS,
                    ..FleetConfig::default()
                };
                let (sink, recorder) = SharedSink::new(TraceRecorder::new());
                let mut controller = FleetController::new(config);
                for slot in 0..Self::SLOTS {
                    let device = if slot < prefill {
                        DeviceSpec::a100_40g()
                    } else {
                        decode_device.clone()
                    };
                    controller =
                        controller.with_replica(Self::backend(engine, &device, model, scfg));
                }
                let controller = controller.with_disaggregation(disagg).with_sink(sink);
                let entry = |outcome| DisaggSweepEntry {
                    engine,
                    prefill_pods: prefill,
                    decode_pods: Self::SLOTS - prefill,
                    outcome,
                };
                let report = controller.validate(&requests);
                if report.has("disagg::decode-cannot-hold-model") {
                    return (entry(None), None);
                }
                report.assert_valid();
                let metrics = controller.run(&requests);
                let run_events = recorder.borrow().events();
                let timelines = request_timelines(&run_events);
                let attribution = AttributionSummary::from_timelines(&timelines);
                let (mut intra, mut intra_bytes, mut spine, mut spine_bytes) =
                    (0usize, 0.0f64, 0usize, 0.0f64);
                for e in &run_events {
                    if let TraceEvent::KvTransferStarted {
                        from, to, bytes, ..
                    } = *e
                    {
                        if topology.island_of(from) == topology.island_of(to) {
                            intra += 1;
                            intra_bytes += bytes;
                        } else {
                            spine += 1;
                            spine_bytes += bytes;
                        }
                    }
                }
                let captured = (engine == ClusterEngine::Samoyeds && prefill == 1).then(|| {
                    let names = metrics
                        .per_replica
                        .iter()
                        .map(|r| r.description.clone())
                        .collect();
                    (run_events, names)
                });
                (
                    entry(Some(DisaggSweepOutcome {
                        metrics,
                        attribution,
                        intra_transfers: intra,
                        intra_bytes,
                        spine_transfers: spine,
                        spine_bytes,
                    })),
                    captured,
                )
            })
            .collect();
        let mut entries = Vec::with_capacity(results.len());
        let mut events = Vec::new();
        let mut replica_names = Vec::new();
        for (entry, captured) in results {
            if let Some((e, names)) = captured {
                events = e;
                replica_names = names;
            }
            entries.push(entry);
        }
        Self {
            model: model.name.clone(),
            num_requests: requests.len(),
            slots: Self::SLOTS,
            entries,
            events,
            replica_names,
        }
    }

    /// The best feasible prefill:decode split for `engine`: most requests
    /// served, output throughput breaking ties. `None` when every split is
    /// infeasible for the engine (the dense column).
    pub fn best_ratio(&self, engine: ClusterEngine) -> Option<(usize, usize)> {
        self.entries
            .iter()
            .filter(|e| e.engine == engine)
            .filter_map(|e| e.outcome.as_ref().map(|o| (e, o)))
            .max_by(|(_, a), (_, b)| {
                (a.metrics.completed, a.metrics.output_tokens_per_s)
                    .partial_cmp(&(b.metrics.completed, b.metrics.output_tokens_per_s))
                    .expect("throughputs are finite")
            })
            .map(|(e, _)| (e.prefill_pods, e.decode_pods))
    }

    /// The acceptance contrast: Samoyeds' best feasible split against
    /// dense's — `None` on the dense side when no dense split is feasible,
    /// i.e. the compressed weights are what makes the 12 GiB decode pods
    /// usable at all, shifting the achievable prefill:decode ratio.
    #[allow(clippy::type_complexity)]
    pub fn ratio_contrast(&self) -> Option<((usize, usize), Option<(usize, usize)>)> {
        Some((
            self.best_ratio(ClusterEngine::Samoyeds)?,
            self.best_ratio(ClusterEngine::Dense),
        ))
    }

    /// The Chrome trace-event JSON of the designated run (KV-transfer
    /// instants included).
    pub fn chrome_trace(&self) -> String {
        chrome_trace_json(&self.events, &self.replica_names)
    }

    /// Render the sweep as markdown: the cell table plus the best-split
    /// contrast line.
    pub fn render_markdown(&self) -> Vec<String> {
        let mib = |b: f64| b / (1u64 << 20) as f64;
        let mut rows = vec![
            format!(
                "Disaggregation sweep: {} ({} requests over {} pods — A100 prefill, \
                 RTX 4070 Super decode; KV handoffs ride NVLink 3 inside an island, \
                 InfiniBand NDR across the spine)",
                self.model, self.num_requests, self.slots
            ),
            "| engine | prefill:decode | served | failed | p95 TTFT (ms) | out tok/s | \
             handoff mean (ms) | KV intra (n / MiB) | KV spine (n / MiB) |"
                .to_string(),
            "|---|---|---|---|---|---|---|---|---|".to_string(),
        ];
        for e in &self.entries {
            match &e.outcome {
                None => rows.push(format!(
                    "| {} | {}:{} | OOM | - | - | - | - | - | - |",
                    e.engine.name(),
                    e.prefill_pods,
                    e.decode_pods
                )),
                Some(o) => rows.push(format!(
                    "| {} | {}:{} | {} | {} | {:.1} | {:.0} | {:.2} | {} / {:.0} | {} / {:.0} |",
                    e.engine.name(),
                    e.prefill_pods,
                    e.decode_pods,
                    o.metrics.completed,
                    o.metrics.failed(),
                    o.metrics.ttft.p95_ms,
                    o.metrics.output_tokens_per_s,
                    o.attribution.transfer.mean_ms,
                    o.intra_transfers,
                    mib(o.intra_bytes),
                    o.spine_transfers,
                    mib(o.spine_bytes),
                )),
            }
        }
        if let Some((samoyeds, dense)) = self.ratio_contrast() {
            rows.push(String::new());
            rows.push(match dense {
                Some(d) => format!(
                    "best split — Samoyeds {}:{} vs dense {}:{}",
                    samoyeds.0, samoyeds.1, d.0, d.1
                ),
                None => format!(
                    "best split — Samoyeds {}:{}; no dense split is feasible (the decode \
                     pods cannot hold dense weights)",
                    samoyeds.0, samoyeds.1
                ),
            });
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reproduces_the_fleet_sizing_story() {
        let report = ClusterReport::gpu_count_sweep(&MoeModelConfig::qwen2_moe(), 1024, 42);
        assert_eq!(report.entries.len(), 2 * 3 * 4);
        let consumer = &DeviceSpec::rtx4070_super().name;
        // Samoyeds holds the model on a single consumer card; dense needs a
        // strictly larger cluster.
        let samoyeds = report
            .min_feasible_gpus(consumer, ClusterEngine::Samoyeds)
            .unwrap();
        let dense = report
            .min_feasible_gpus(consumer, ClusterEngine::Dense)
            .unwrap();
        assert_eq!(samoyeds, 1);
        assert!(dense > samoyeds, "dense {dense} vs samoyeds {samoyeds}");
        // Every feasible multi-GPU cell has a nonzero all-to-all component.
        for e in &report.entries {
            if let Some(o) = e.outcome {
                if e.num_gpus > 1 {
                    assert!(o.all_to_all_ms > 0.0, "{} {:?}", e.device, e.engine);
                }
                assert!(o.tokens_per_s > 0.0);
            }
        }
        let rows = report.render_markdown();
        assert!(rows.iter().any(|r| r.contains("OOM")));
        assert!(rows.len() >= 3 + 24);
    }

    #[test]
    fn fleet_sizing_table_shows_the_compression_lever() {
        let rows = render_fleet_sizing(&MoeModelConfig::qwen2_moe(), 1024);
        assert_eq!(rows.len(), 5);
        let consumer_row = &rows[3];
        // Dense needs more GPUs than Samoyeds on the 12 GiB card.
        assert!(consumer_row.contains("4070"), "{consumer_row}");
    }

    fn serving_sweep_fixture() -> ClusterServingReport {
        let trace = TraceConfig {
            num_requests: 10,
            arrival_rate_rps: 8.0,
            prompt_len_range: (32, 128),
            output_len_range: (4, 12),
            seed: 11,
        };
        ClusterServingReport::sweep(
            &MoeModelConfig::qwen2_moe(),
            &trace,
            &SchedulerConfig::default(),
        )
    }

    #[test]
    fn cluster_serving_sweep_has_the_admission_contrast_cell() {
        let report = serving_sweep_fixture();
        // 3 fabrics x 3 engines x 4 GPU counts.
        assert_eq!(report.entries.len(), 3 * 3 * 4);
        // The acceptance-criterion cell: Samoyeds admits where dense is
        // rejected for memory — on the 12 GiB consumer card.
        let (device, _, gpus) = report.admission_contrast().expect("contrast cell exists");
        assert!(device.contains("4070"), "{device}");
        assert_eq!(gpus, 1);
        let rows = report.render_markdown();
        assert!(rows.iter().any(|r| r.contains("OOM")));
        assert!(rows.len() >= 3 + 36);
    }

    #[test]
    fn cluster_serving_collectives_grow_with_the_fabric_penalty() {
        let report = serving_sweep_fixture();
        let share = |device: &str, link: &str, gpus: usize| {
            report
                .entries
                .iter()
                .find(|e| {
                    e.device.contains(device)
                        && e.link.contains(link)
                        && e.num_gpus == gpus
                        && e.engine == ClusterEngine::Samoyeds
                })
                .expect("cell exists")
                .collective_fraction
        };
        // Single-GPU pods pay no collectives; PCIe pays more than NVLink
        // for the same pod size on the same device.
        assert_eq!(share("A100", "NVLink", 1), 0.0);
        assert!(share("A100", "NVLink", 4) > 0.0);
        assert!(share("A100", "PCIe", 4) > share("A100", "NVLink", 4));
    }

    fn autoscale_fixture() -> FleetAutoscaleReport {
        FleetAutoscaleReport::sweep(
            &MoeModelConfig::qwen2_moe(),
            &FleetAutoscaleReport::demo_trace(),
            &SchedulerConfig::default(),
        )
    }

    #[test]
    fn autoscale_sweep_shows_samoyeds_absorbing_the_spike_with_fewer_scale_outs() {
        let report = autoscale_fixture();
        // 3 fleets x 3 policies x 2 SLOs.
        assert_eq!(report.entries.len(), 18);
        // Every cell conserves the trace.
        for e in &report.entries {
            assert_eq!(
                e.metrics.completed + e.metrics.rejected,
                report.num_requests,
                "{} {} {}",
                e.fleet.name(),
                e.policy.name(),
                e.slo_ms
            );
            assert_eq!(e.metrics.rejected, 0);
        }
        // The headline: at the tight SLO, the dense fleet needs more
        // scale-outs than the Samoyeds fleet to absorb the same spike.
        let (samoyeds, dense) = report.scale_out_contrast().expect("both cells exist");
        assert!(
            samoyeds < dense,
            "samoyeds {samoyeds} scale-outs vs dense {dense}"
        );
        let rows = report.render_markdown();
        assert!(rows.len() >= 3 + 18);
        assert!(rows.iter().any(|r| r.contains("A100 pod + 4070S")));
    }

    #[test]
    fn mixed_fleet_scales_out_on_breach_and_back_in_with_a_timeline() {
        let report = autoscale_fixture();
        let mixed = report
            .entries
            .iter()
            .find(|e| {
                e.fleet == FleetKind::Mixed
                    // simlint::allow(float-eq): selects the sweep cell built
                    // from this exact literal — no arithmetic in between
                    && e.slo_ms == 400.0
                    && matches!(e.policy, DispatchPolicy::LeastOutstandingTokens { .. })
            })
            .expect("mixed cell exists");
        let m = &mixed.metrics;
        // The heterogeneous pair is the floor; the burst pushes past it and
        // the fleet comes back down afterwards.
        assert!(m.scale_outs() >= 1, "{:?}", m.scale_events);
        assert!(m.scale_ins() >= 1, "{:?}", m.scale_events);
        assert!(m.replicas > 2);
        let first_out = m
            .scale_events
            .iter()
            .find(|e| e.kind == samoyeds_serve::ScaleKind::Out)
            .expect("scale-out happened");
        assert!(m
            .scale_events
            .iter()
            .any(|e| e.kind == samoyeds_serve::ScaleKind::In && e.at_ms > first_out.at_ms));
        for e in &m.scale_events {
            assert!(e.replicas_after >= 2, "floor violated: {e:?}");
        }
        // Both device classes took traffic.
        assert!(m.per_replica[0].description.contains("cluster 2x"));
        assert!(m.per_replica[1].description.contains("4070"));
        assert!(m.per_replica[0].assigned > 0);
        assert!(m.per_replica[1].assigned > 0);
        // The timeline renders with one row per event.
        assert_eq!(m.render_timeline().len(), 2 + m.scale_events.len());
    }

    #[test]
    fn fault_sweep_recovers_with_zero_lost_requests_under_readmission() {
        let report =
            FaultSweepReport::sweep(&MoeModelConfig::qwen2_moe(), &SchedulerConfig::default());
        assert_eq!(report.entries.len(), 3);
        // The transfer bill comes from the placement layer and is real.
        assert!(report.transfer_ms > 0.0 && report.transfer_ms.is_finite());
        assert!(report.transfer_bytes > 0.0);
        // Acceptance criterion: finite recovery time, zero lost requests
        // when re-admission is on.
        let (recovery_ms, failed) = report.readmit_recovery().expect("crash recovered");
        assert!(recovery_ms.is_finite() && recovery_ms >= report.transfer_ms - 1e-6);
        assert_eq!(failed, 0);
        for e in &report.entries {
            // Conservation in every cell: served + rejected + failed covers
            // the offered trace.
            assert_eq!(
                e.metrics.completed + e.metrics.rejected + e.metrics.failed(),
                report.num_requests,
                "{}",
                e.policy
            );
            assert_eq!(e.metrics.faults.len(), 2, "{}", e.policy);
        }
        // Fail-fast loses the crashed replica's in-flight work; the
        // re-admission policies do not.
        let fail_fast = &report.entries[0];
        assert!(fail_fast.metrics.failed() > 0);
        assert_eq!(report.entries[1].metrics.failed(), 0);
        assert_eq!(report.entries[2].metrics.failed(), 0);
        // The replacement policy commissions a new replica.
        let crash = report.entries[2]
            .metrics
            .faults
            .iter()
            .find(|f| matches!(f.kind, FaultKind::ReplicaCrash { .. }))
            .unwrap();
        assert!(crash.replacement.is_some());
        // The re-admission run's trace carries fault + recovery instants.
        let json = report.chrome_trace();
        assert!(json.contains("\"replica crashed\""));
        assert!(json.contains("\"recovery started\""));
        assert!(json.contains("\"recovery complete\""));
        assert!(json.contains("\"link degraded\""));
        assert!(json.contains("\"link restored\""));
        let rows = report.render_markdown();
        assert!(rows.iter().any(|r| r.contains("fail-fast")));
        assert!(rows.iter().any(|r| r.contains("re-admit + replace")));
        assert!(rows.iter().any(|r| r.starts_with("drain:")));
    }

    #[test]
    fn disagg_sweep_shows_compression_unlocking_the_decode_pods() {
        let report =
            DisaggSweepReport::sweep(&MoeModelConfig::qwen2_moe(), &SchedulerConfig::default());
        // 3 engines x 3 prefill:decode splits.
        assert_eq!(report.entries.len(), 9);
        for e in &report.entries {
            assert_eq!(e.prefill_pods + e.decode_pods, report.slots);
            match e.engine {
                // The memory story: dense bf16 weights do not fit the
                // 12 GiB decode pods, so every dense split is rejected by
                // validation before anything runs.
                ClusterEngine::Dense => assert!(e.outcome.is_none()),
                ClusterEngine::Venom | ClusterEngine::Samoyeds => {
                    let o = e.outcome.as_ref().expect("compressed cells run");
                    // Conservation in every feasible cell.
                    assert_eq!(
                        o.metrics.completed + o.metrics.rejected + o.metrics.failed(),
                        report.num_requests,
                        "{} {}:{}",
                        e.engine.name(),
                        e.prefill_pods,
                        e.decode_pods
                    );
                    // Every completion decoded remotely, so handoffs flowed
                    // and the transfer phase showed up in the attribution.
                    assert!(o.intra_transfers + o.spine_transfers > 0);
                    assert!(o.intra_bytes + o.spine_bytes > 0.0);
                    assert!(o.attribution.transfer.mean_ms > 0.0);
                    // Topology pricing: the 2:2 split puts all prefill in
                    // island 0 and all decode in island 1, so every handoff
                    // crosses the spine; the 1:3 and 3:1 splits each keep
                    // one prefill-decode pair inside an island (GPU 0 - 1
                    // and GPU 2 - 3 respectively) and see both kinds.
                    if e.prefill_pods == 2 {
                        assert_eq!(o.intra_transfers, 0);
                    } else {
                        assert!(o.intra_transfers > 0 && o.spine_transfers > 0);
                    }
                }
            }
        }
        // The acceptance contrast: Samoyeds has a best feasible split,
        // dense has none at all.
        let (samoyeds, dense) = report
            .ratio_contrast()
            .expect("samoyeds cells are feasible");
        assert!(samoyeds.1 >= 1);
        assert!(dense.is_none());
        // The designated run's trace carries the transfer spans.
        let json = report.chrome_trace();
        assert!(json.contains("\"kv transfer started\""));
        assert!(json.contains("\"kv transfer complete\""));
        let rows = report.render_markdown();
        assert!(rows.iter().any(|r| r.contains("| Dense | 1:3 | OOM |")));
        assert!(rows.iter().any(|r| r.contains("best split")));
    }

    #[test]
    fn topology_sweep_shows_the_spine_becoming_the_straggler() {
        let report = TopologySweepReport::sweep(&MoeModelConfig::qwen2_moe(), 4096, 1.5, 42);
        // 3 layouts x 3 engines.
        assert_eq!(report.entries.len(), 9);
        // The acceptance cell: on skewed routing the 2x4 NVLink+IB layout's
        // collective time is spine-bound and exceeds the flat-NVLink
        // baseline.
        let (hier, flat, spine) = report.spine_bound_contrast().expect("cells exist");
        assert!(hier > flat, "hierarchical {hier} vs flat {flat}");
        assert!(spine > 0.0);
        assert!(spine > hier - spine, "spine {spine} of {hier} is the bound");
        // Flat cells never pay the spine; hierarchical cells always do.
        for e in &report.entries {
            if let Some(o) = e.outcome {
                if e.num_islands == 1 {
                    assert_eq!(o.spine_ms, 0.0, "{}", e.topology);
                    assert_eq!(o.intra_island_ms, o.all_to_all_ms);
                } else {
                    assert!(o.spine_ms > 0.0, "{}", e.topology);
                }
            }
        }
        let rows = report.render_markdown();
        assert!(rows.len() >= 3 + 9);
        assert!(rows.iter().any(|r| r.contains("InfiniBand NDR spine")));
    }

    #[test]
    fn topology_placement_table_shows_island_replication_cutting_spine_traffic() {
        let topology =
            ClusterTopology::symmetric(2, 4, LinkSpec::nvlink3(), LinkSpec::infiniband_ndr())
                .unwrap();
        let rows = render_topology_placement(&MoeModelConfig::qwen2_moe(), &topology, 2048, 1.5, 9);
        assert_eq!(rows.len(), 6);
        let spine = |row: &String| {
            row.split('|')
                .nth(2)
                .unwrap()
                .trim()
                .parse::<f64>()
                .unwrap()
        };
        let greedy = spine(&rows[3]);
        let per_island = spine(&rows[5]);
        assert!(
            per_island < greedy,
            "replicate-hot-island {per_island} vs capacity-greedy {greedy}"
        );
    }

    #[test]
    fn placement_comparison_prefers_load_aware_strategies() {
        let rows = render_placement_comparison(
            &MoeModelConfig::qwen2_moe(),
            &DeviceSpec::a100_40g(),
            8,
            2048,
            1.5,
            9,
        );
        assert_eq!(rows.len(), 6);
        let straggler = |row: &String| {
            row.split('|')
                .nth(2)
                .unwrap()
                .trim()
                .parse::<f64>()
                .unwrap()
        };
        let rr = straggler(&rows[3]);
        let greedy = straggler(&rows[4]);
        assert!(greedy < rr, "greedy {greedy} vs round-robin {rr}");
    }

    #[test]
    fn fleet_trace_demo_records_the_full_lifecycle() {
        let report =
            FleetTraceReport::demo(&MoeModelConfig::qwen2_moe(), &SchedulerConfig::default());
        assert!(report.metrics.completed > 0, "demo must serve requests");
        assert_eq!(
            report.timelines.len(),
            report.metrics.completed,
            "one timeline per completed request"
        );
        assert_eq!(report.registry.completed, report.metrics.completed as u64);
        assert!(
            report.registry.snapshots.len() > 1,
            "control ticks must be snapshotted"
        );
        // Attribution telescopes: phases sum to end-to-end latency.
        for t in &report.timelines {
            let sum = t.queue_ms() + t.prefill_ms() + t.decode_ms();
            assert!(
                (sum - t.latency_ms()).abs() <= 1e-9 * t.latency_ms().max(1.0),
                "attribution drift: {sum} vs {}",
                t.latency_ms()
            );
        }
        let rows = report.render_markdown();
        assert!(rows[0].starts_with("Fleet trace:"), "{}", rows[0]);

        // The Chrome trace carries one named track per replica and at least
        // one step span on every replica that executed steps.
        let json = report.chrome_trace();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        for (slot, replica) in report.metrics.per_replica.iter().enumerate() {
            assert!(
                json.contains(&format!(
                    "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{}",
                    slot + 1
                )),
                "missing thread-name metadata for slot {slot}"
            );
            if replica.metrics.completed > 0 {
                assert!(
                    json.contains(&format!("\"ph\":\"X\",\"pid\":1,\"tid\":{}", slot + 1)),
                    "missing step spans for slot {slot}"
                );
            }
        }
    }
}
