//! Hierarchical interconnect topology: NVLink islands stitched by an
//! InfiniBand spine.
//!
//! Real multi-node fleets are not one homogeneous fabric: GPUs inside a
//! node exchange over NVLink (or PCIe through the host) at hundreds of
//! GB/s, while traffic between nodes crosses an InfiniBand spine an order
//! of magnitude slower. Collapsing that to a single [`LinkSpec`] either
//! wildly over-prices intra-node traffic or wildly under-prices cross-node
//! traffic — and the per-layer dispatch/combine all-to-all is the dominant
//! cost of expert-parallel MoE serving, so the error distorts every
//! placement, admission and autoscaling decision downstream.
//!
//! [`ClusterTopology`] groups the GPUs of a cluster into *islands* (each
//! with its own intra-island [`LinkSpec`]) bound by a *spine*
//! [`LinkSpec`], with optional heterogeneous per-pair overrides for
//! dedicated point-to-point links. The all-to-all is priced in two phases,
//! the classic hierarchical decomposition:
//!
//! 1. **intra-island** — every island runs a local all-to-all over its own
//!    fabric, concurrently with the other islands (the phase costs the
//!    slowest island);
//! 2. **spine** — each island's leader exchanges the island's aggregated
//!    cross-island bytes with the other leaders over the spine, an
//!    all-to-all whose endpoints are the islands themselves.
//!
//! A single flat island reproduces the single-level α-β cost **exactly**:
//! phase 1 degenerates to [`LinkSpec::all_to_all_ms`] over the full
//! per-GPU byte vectors and phase 2 carries zero bytes (the spine phase of
//! any topology with no cross-island traffic costs exactly 0). The
//! `topology_equivalence` suite pins this bit for bit against the frozen
//! pre-refactor formula.

use crate::link::LinkSpec;
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_serve::{Diagnostic, Validate, ValidationReport};
use samoyeds_sparse::{Result, SparseError};
use serde::{Deserialize, Serialize};

/// One NVLink/PCIe island: a group of GPUs sharing an intra-node fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Island {
    /// GPUs in the island.
    pub gpus: usize,
    /// The fabric binding the island's GPUs together.
    pub link: LinkSpec,
}

/// A dedicated heterogeneous link between one specific GPU pair,
/// overriding whatever phase its traffic would normally ride (an NVLink
/// bridge between two otherwise-PCIe consumer cards, or a degraded cable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairOverride {
    /// First endpoint (global GPU id).
    pub a: usize,
    /// Second endpoint (global GPU id).
    pub b: usize,
    /// The dedicated link the pair's traffic uses instead.
    pub link: LinkSpec,
}

/// GPUs grouped into islands bound by a spine, with optional per-pair
/// overrides. Global GPU ids are assigned contiguously in island order:
/// island 0 owns GPUs `0..islands[0].gpus`, island 1 the next block, etc.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterTopology {
    /// The islands, in GPU-id order.
    pub islands: Vec<Island>,
    /// The inter-island spine fabric (unused when there is one island).
    pub spine: LinkSpec,
    /// Dedicated per-pair links carved out of the standard phases.
    pub pair_overrides: Vec<PairOverride>,
}

/// The two-phase cost of one hierarchical all-to-all (one direction:
/// dispatch *or* combine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchicalCost {
    /// Slowest island's local all-to-all, milliseconds (islands run
    /// concurrently).
    pub intra_ms: f64,
    /// Island-leader exchange over the spine, milliseconds.
    pub spine_ms: f64,
    /// Slowest dedicated pair link, milliseconds (overridden pairs run
    /// concurrently with the standard phases).
    pub override_ms: f64,
    /// Total bytes crossing island boundaries (one direction).
    pub cross_island_bytes: f64,
}

impl HierarchicalCost {
    /// End-to-end collective time: the two serial phases, overlapped with
    /// the dedicated pair links.
    pub fn total_ms(&self) -> f64 {
        (self.intra_ms + self.spine_ms).max(self.override_ms)
    }
}

/// Exact per-pair byte flows of one collective direction: `bytes[src][dst]`
/// for `src != dst`. Built by the cluster simulator from the sharded
/// routing plan, consumed by [`ClusterTopology::all_to_all_ms`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlowMatrix {
    gpus: usize,
    bytes: Vec<f64>,
}

impl FlowMatrix {
    /// An all-zero matrix over `gpus` endpoints.
    pub fn new(gpus: usize) -> Self {
        Self {
            gpus,
            bytes: vec![0.0; gpus * gpus],
        }
    }

    /// Number of endpoints.
    pub fn gpus(&self) -> usize {
        self.gpus
    }

    /// Add `bytes` to the `src → dst` flow. Self-flows (`src == dst`) are
    /// local copies and are ignored.
    pub fn add(&mut self, src: usize, dst: usize, bytes: f64) {
        if src != dst {
            self.bytes[src * self.gpus + dst] += bytes;
        }
    }

    /// The `src → dst` flow in bytes.
    pub fn get(&self, src: usize, dst: usize) -> f64 {
        self.bytes[src * self.gpus + dst]
    }

    /// Total bytes sent by `src` (its row sum).
    pub fn sent_by(&self, src: usize) -> f64 {
        (0..self.gpus).map(|dst| self.get(src, dst)).sum()
    }

    /// Total bytes received by `dst` (its column sum).
    pub fn received_by(&self, dst: usize) -> f64 {
        (0..self.gpus).map(|src| self.get(src, dst)).sum()
    }
}

impl ClusterTopology {
    /// A single flat island: every GPU on one fabric. Reproduces the
    /// single-level α-β all-to-all exactly.
    pub fn flat(num_gpus: usize, link: LinkSpec) -> Self {
        Self {
            spine: link.clone(),
            islands: vec![Island {
                gpus: num_gpus,
                link,
            }],
            pair_overrides: Vec::new(),
        }
    }

    /// `num_islands` islands of `gpus_per_island` GPUs each, every island
    /// on `intra`, leaders bound by `spine`.
    pub fn symmetric(
        num_islands: usize,
        gpus_per_island: usize,
        intra: LinkSpec,
        spine: LinkSpec,
    ) -> Result<Self> {
        if num_islands == 0 || gpus_per_island == 0 {
            return Err(SparseError::config(
                "topology needs at least one island of at least one GPU",
            ));
        }
        Ok(Self {
            islands: (0..num_islands)
                .map(|_| Island {
                    gpus: gpus_per_island,
                    link: intra.clone(),
                })
                .collect(),
            spine,
            pair_overrides: Vec::new(),
        })
    }

    /// The topology a fleet of `num_gpus` × `device` deploys as: islands of
    /// [`DeviceSpec::gpus_per_node`] on the device's native fabric, stitched
    /// by an InfiniBand NDR spine once the cluster outgrows one node.
    pub fn for_device(device: &DeviceSpec, num_gpus: usize) -> Self {
        let node = device.gpus_per_node().max(1);
        let link = LinkSpec::for_device(device);
        if num_gpus <= node {
            return Self::flat(num_gpus, link);
        }
        let mut islands = Vec::new();
        let mut remaining = num_gpus;
        while remaining > 0 {
            islands.push(Island {
                gpus: remaining.min(node),
                link: link.clone(),
            });
            remaining -= remaining.min(node);
        }
        Self {
            islands,
            spine: LinkSpec::infiniband_ndr(),
            pair_overrides: Vec::new(),
        }
    }

    /// Add a dedicated link between GPUs `a` and `b` (global ids); their
    /// traffic leaves the standard phases and rides this link concurrently.
    /// At most one override per pair — [`ClusterTopology::validate`]
    /// rejects duplicates (to swap a pair's link, replace its entry).
    pub fn with_pair_override(mut self, a: usize, b: usize, link: LinkSpec) -> Self {
        self.pair_overrides.push(PairOverride { a, b, link });
        self
    }

    /// [`ClusterTopology::with_pair_override`] with the endpoint checks
    /// applied eagerly: rejects out-of-range GPU ids, self-links, and a
    /// second override for a pair that already has one — the same rules
    /// [`ClusterTopology::validate`] enforces, but at the construction site
    /// instead of whenever validation eventually runs.
    pub fn try_with_pair_override(self, a: usize, b: usize, link: LinkSpec) -> Result<Self> {
        let n = self.num_gpus();
        if a >= n || b >= n || a == b {
            return Err(SparseError::config(format!(
                "pair override ({a}, {b}) invalid for a {n}-GPU topology"
            )));
        }
        if self
            .pair_overrides
            .iter()
            .any(|p| (p.a == a && p.b == b) || (p.a == b && p.b == a))
        {
            return Err(SparseError::config(format!(
                "duplicate pair override for GPUs ({a}, {b}); replace the \
                 existing entry instead of stacking a second link"
            )));
        }
        Ok(self.with_pair_override(a, b, link))
    }

    /// Total GPUs across all islands.
    pub fn num_gpus(&self) -> usize {
        self.islands.iter().map(|i| i.gpus).sum()
    }

    /// Number of islands.
    pub fn num_islands(&self) -> usize {
        self.islands.len()
    }

    /// Whether the topology collapses to the single-level model: one
    /// island, no overrides.
    pub fn is_flat(&self) -> bool {
        self.islands.len() == 1 && self.pair_overrides.is_empty()
    }

    /// The island owning GPU `gpu` (ids are contiguous in island order).
    pub fn island_of(&self, gpu: usize) -> usize {
        let mut base = 0usize;
        for (k, island) in self.islands.iter().enumerate() {
            base += island.gpus;
            if gpu < base {
                return k;
            }
        }
        self.islands.len().saturating_sub(1)
    }

    /// Per-GPU island ids as a dense lookup (`lookup[gpu] ==
    /// island_of(gpu)`), for hot loops that would otherwise re-scan the
    /// island list per GPU.
    pub fn island_lookup(&self) -> Vec<usize> {
        let mut lookup = Vec::with_capacity(self.num_gpus());
        for (k, island) in self.islands.iter().enumerate() {
            lookup.extend(std::iter::repeat_n(k, island.gpus));
        }
        lookup
    }

    /// The global GPU ids of island `island`.
    pub fn island_members(&self, island: usize) -> std::ops::Range<usize> {
        let start: usize = self.islands[..island].iter().map(|i| i.gpus).sum();
        start..start + self.islands[island].gpus
    }

    /// Human-readable label, e.g. `"2×4 NVLink 3 + InfiniBand NDR spine"`
    /// (a flat topology is just its fabric name).
    pub fn name(&self) -> String {
        if self.islands.len() == 1 {
            return self.islands[0].link.name.clone();
        }
        let sizes_match = self.islands.windows(2).all(|w| w[0].gpus == w[1].gpus);
        let links_match = self.islands.windows(2).all(|w| w[0].link == w[1].link);
        if sizes_match && links_match {
            format!(
                "{}×{} {} + {} spine",
                self.islands.len(),
                self.islands[0].gpus,
                self.islands[0].link.name,
                self.spine.name
            )
        } else {
            format!(
                "{} mixed islands + {} spine",
                self.islands.len(),
                self.spine.name
            )
        }
    }

    /// Check internal consistency: override endpoints in range and
    /// distinct, and at most one override per (unordered) GPU pair — a
    /// duplicate would charge the pair's traffic once per entry.
    pub fn validate(&self) -> Result<()> {
        if self.islands.is_empty() || self.num_gpus() == 0 {
            return Err(SparseError::config(
                "topology needs at least one island of at least one GPU",
            ));
        }
        let n = self.num_gpus();
        for (i, o) in self.pair_overrides.iter().enumerate() {
            if o.a >= n || o.b >= n || o.a == o.b {
                return Err(SparseError::config(format!(
                    "pair override ({}, {}) invalid for a {}-GPU topology",
                    o.a, o.b, n
                )));
            }
            if self.pair_overrides[..i]
                .iter()
                .any(|p| (p.a == o.a && p.b == o.b) || (p.a == o.b && p.b == o.a))
            {
                return Err(SparseError::config(format!(
                    "duplicate pair override for GPUs ({}, {}); replace the \
                     existing entry instead of stacking a second link",
                    o.a, o.b
                )));
            }
        }
        Ok(())
    }

    /// Whether a dedicated link covers the `(a, b)` pair (in either
    /// direction).
    fn override_for(&self, a: usize, b: usize) -> Option<&LinkSpec> {
        self.pair_overrides
            .iter()
            .find(|o| (o.a == a && o.b == b) || (o.a == b && o.b == a))
            .map(|o| &o.link)
    }
}

impl Validate for ClusterTopology {
    /// The diagnostic form of [`ClusterTopology::validate`]: the same
    /// invariants, but every violation is reported at once instead of
    /// stopping at the first. Codes: `topology::empty`,
    /// `topology::override-out-of-range`, `topology::override-self-link`,
    /// `topology::override-duplicate`.
    fn validate_into(&self, report: &mut ValidationReport) {
        if self.islands.is_empty() || self.num_gpus() == 0 {
            report.push(Diagnostic::deny(
                "topology::empty",
                "ClusterTopology",
                "topology needs at least one island of at least one GPU",
                "add an island with gpus >= 1",
            ));
            return;
        }
        let n = self.num_gpus();
        for (i, o) in self.pair_overrides.iter().enumerate() {
            let ctx = format!("pair_overrides[{i}] ({}, {})", o.a, o.b);
            if o.a >= n || o.b >= n {
                report.push(Diagnostic::deny(
                    "topology::override-out-of-range",
                    ctx.clone(),
                    format!("endpoint out of range for a {n}-GPU topology"),
                    "use GPU ids below num_gpus()",
                ));
            }
            if o.a == o.b {
                report.push(Diagnostic::deny(
                    "topology::override-self-link",
                    ctx.clone(),
                    format!("GPU {} cannot have a dedicated link to itself", o.a),
                    "use two distinct GPU ids",
                ));
            }
            if self.pair_overrides[..i]
                .iter()
                .any(|p| (p.a == o.a && p.b == o.b) || (p.a == o.b && p.b == o.a))
            {
                report.push(Diagnostic::deny(
                    "topology::override-duplicate",
                    ctx,
                    format!(
                        "duplicate pair override for GPUs ({}, {}) — the pair's traffic \
                         would be charged once per entry",
                        o.a, o.b
                    ),
                    "replace the existing entry instead of stacking a second link",
                ));
            }
        }
    }
}

impl ClusterTopology {
    /// Price one all-to-all direction over the per-pair `flows`.
    ///
    /// Phase 1 runs every island's local all-to-all concurrently (cost =
    /// slowest island); phase 2 exchanges the aggregated cross-island bytes
    /// between island leaders over the spine. Traffic between overridden
    /// pairs is removed from both phases and charged on its dedicated link,
    /// overlapped with the phases. A flat topology prices to exactly the
    /// single-level `LinkSpec::all_to_all_ms` over the per-GPU byte
    /// vectors; zero cross-island traffic makes the spine phase exactly 0.
    pub fn all_to_all_ms(&self, flows: &FlowMatrix) -> HierarchicalCost {
        let n = self.num_gpus();
        // A mismatched matrix would silently drop (or misattribute) traffic;
        // it is a caller bug, so fail loudly in release builds too.
        assert_eq!(
            flows.gpus(),
            n,
            "flow matrix spans {} GPUs but the topology has {n}",
            flows.gpus()
        );

        // Dedicated pair links first: their traffic leaves the phases.
        let mut override_ms = 0.0f64;
        for o in &self.pair_overrides {
            let forward = o.link.point_to_point_ms(flows.get(o.a, o.b));
            let backward = o.link.point_to_point_ms(flows.get(o.b, o.a));
            // Full-duplex dedicated link: both directions in parallel.
            override_ms = override_ms.max(forward.max(backward));
        }
        let rides_phases = |a: usize, b: usize| {
            self.pair_overrides.is_empty() || self.override_for(a, b).is_none()
        };

        // Phase 1: each island's local all-to-all over its own fabric.
        let mut intra_ms = 0.0f64;
        for (k, island) in self.islands.iter().enumerate() {
            let members = self.island_members(k);
            let mut send = Vec::with_capacity(island.gpus);
            let mut recv = Vec::with_capacity(island.gpus);
            for i in members.clone() {
                let mut s = 0.0;
                let mut r = 0.0;
                for j in members.clone() {
                    if i != j && rides_phases(i, j) {
                        s += flows.get(i, j);
                        r += flows.get(j, i);
                    }
                }
                send.push(s);
                recv.push(r);
            }
            intra_ms = intra_ms.max(island.link.all_to_all_ms(&send, &recv));
        }

        // Phase 2: island leaders exchange the aggregated cross-island
        // bytes over the spine (endpoints are the islands themselves).
        let islands = self.islands.len();
        let island_lookup = self.island_lookup();
        let mut island_send = vec![0.0f64; islands];
        let mut island_recv = vec![0.0f64; islands];
        for src in 0..n {
            let src_island = island_lookup[src];
            for dst in 0..n {
                if src == dst || island_lookup[dst] == src_island || !rides_phases(src, dst) {
                    continue;
                }
                let b = flows.get(src, dst);
                island_send[src_island] += b;
                island_recv[island_lookup[dst]] += b;
            }
        }
        let cross_island_bytes: f64 = island_send.iter().sum();
        let spine_ms = self.spine.all_to_all_ms(&island_send, &island_recv);

        HierarchicalCost {
            intra_ms,
            spine_ms,
            override_ms,
            cross_island_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A uniform exchange: every GPU sends `bytes` to every other GPU.
    fn uniform_flows(gpus: usize, bytes: f64) -> FlowMatrix {
        let mut flows = FlowMatrix::new(gpus);
        for src in 0..gpus {
            for dst in 0..gpus {
                flows.add(src, dst, bytes);
            }
        }
        flows
    }

    #[test]
    fn flat_topology_prices_exactly_like_the_single_level_model() {
        let link = LinkSpec::nvlink3();
        let topo = ClusterTopology::flat(4, link.clone());
        assert!(topo.is_flat());
        assert_eq!(topo.name(), "NVLink 3");
        let mut flows = FlowMatrix::new(4);
        // A skewed exchange: GPU 0 is the hot endpoint.
        flows.add(0, 1, 3e8);
        flows.add(0, 2, 1e8);
        flows.add(1, 0, 2e8);
        flows.add(3, 0, 5e7);
        let send: Vec<f64> = (0..4).map(|g| flows.sent_by(g)).collect();
        let recv: Vec<f64> = (0..4).map(|g| flows.received_by(g)).collect();
        let cost = topo.all_to_all_ms(&flows);
        assert_eq!(cost.total_ms(), link.all_to_all_ms(&send, &recv));
        assert_eq!(cost.spine_ms, 0.0);
        assert_eq!(cost.cross_island_bytes, 0.0);
    }

    #[test]
    fn spine_phase_is_exactly_zero_without_cross_island_traffic() {
        let topo =
            ClusterTopology::symmetric(2, 4, LinkSpec::nvlink3(), LinkSpec::infiniband_ndr())
                .unwrap();
        let mut flows = FlowMatrix::new(8);
        // Only intra-island traffic: 0..4 exchange, 4..8 exchange.
        for island in [0usize, 4] {
            for i in island..island + 4 {
                for j in island..island + 4 {
                    flows.add(i, j, 1e7);
                }
            }
        }
        let cost = topo.all_to_all_ms(&flows);
        assert!(cost.intra_ms > 0.0);
        assert_eq!(cost.spine_ms, 0.0);
        assert_eq!(cost.cross_island_bytes, 0.0);
        assert_eq!(cost.total_ms(), cost.intra_ms);
    }

    #[test]
    fn slow_spine_dominates_the_same_exchange_on_a_hierarchical_topology() {
        let flat = ClusterTopology::flat(8, LinkSpec::nvlink3());
        let hier =
            ClusterTopology::symmetric(2, 4, LinkSpec::nvlink3(), LinkSpec::infiniband_ndr())
                .unwrap();
        let flows = uniform_flows(8, 16e6);
        let t_flat = flat.all_to_all_ms(&flows).total_ms();
        let cost = hier.all_to_all_ms(&flows);
        // Half the traffic crosses the 50 GB/s spine instead of 300 GB/s
        // NVLink, and the leaders carry their whole island's share.
        assert!(cost.spine_ms > cost.intra_ms, "{cost:?}");
        assert!(cost.total_ms() > t_flat, "{} vs {t_flat}", cost.total_ms());
        // 2 islands × 4 GPUs × 4 remote peers × 16 MB, each direction.
        assert_eq!(cost.cross_island_bytes, 2.0 * 4.0 * 4.0 * 16e6);
    }

    #[test]
    fn for_device_splits_at_the_node_boundary() {
        let a100 = DeviceSpec::a100_40g();
        assert!(ClusterTopology::for_device(&a100, 8).is_flat());
        let two_node = ClusterTopology::for_device(&a100, 16);
        assert_eq!(two_node.num_islands(), 2);
        assert_eq!(two_node.num_gpus(), 16);
        assert_eq!(two_node.spine, LinkSpec::infiniband_ndr());
        // Consumer hosts carry 2 cards: 8 GPUs = 4 PCIe islands.
        let consumer = ClusterTopology::for_device(&DeviceSpec::rtx4070_super(), 8);
        assert_eq!(consumer.num_islands(), 4);
        assert_eq!(consumer.name(), "4×2 PCIe 4.0 x16 + InfiniBand NDR spine");
        // A ragged tail island keeps every GPU accounted for.
        let ragged = ClusterTopology::for_device(&a100, 11);
        assert_eq!(ragged.num_islands(), 2);
        assert_eq!(ragged.islands[1].gpus, 3);
        assert_eq!(ragged.island_of(10), 1);
        assert_eq!(ragged.island_members(1), 8..11);
    }

    #[test]
    fn pair_overrides_reroute_traffic_onto_the_dedicated_link() {
        let nvlink_bridge = LinkSpec::nvlink3();
        let topo = ClusterTopology::flat(2, LinkSpec::pcie_gen4()).with_pair_override(
            0,
            1,
            nvlink_bridge.clone(),
        );
        topo.validate().unwrap();
        let mut flows = FlowMatrix::new(2);
        flows.add(0, 1, 1e8);
        flows.add(1, 0, 1e8);
        let cost = topo.all_to_all_ms(&flows);
        // All traffic rides the bridge: the PCIe phase is empty and the
        // total is the full-duplex point-to-point time on NVLink.
        assert_eq!(cost.intra_ms, 0.0);
        assert_eq!(cost.spine_ms, 0.0);
        assert_eq!(cost.override_ms, nvlink_bridge.point_to_point_ms(1e8));
        let plain = ClusterTopology::flat(2, LinkSpec::pcie_gen4());
        assert!(cost.total_ms() < plain.all_to_all_ms(&flows).total_ms());
    }

    #[test]
    fn degenerate_topologies_cost_nothing() {
        // 1 GPU, and 1 island of 1: no peers, no phases.
        for topo in [
            ClusterTopology::flat(1, LinkSpec::nvlink3()),
            ClusterTopology::symmetric(1, 1, LinkSpec::pcie_gen4(), LinkSpec::infiniband_ndr())
                .unwrap(),
        ] {
            let cost = topo.all_to_all_ms(&FlowMatrix::new(1));
            assert_eq!(cost.total_ms(), 0.0);
            assert_eq!(cost.intra_ms, 0.0);
            assert_eq!(cost.spine_ms, 0.0);
        }
        assert!(
            ClusterTopology::symmetric(0, 4, LinkSpec::nvlink3(), LinkSpec::nvlink3()).is_err()
        );
        assert!(
            ClusterTopology::symmetric(2, 0, LinkSpec::nvlink3(), LinkSpec::nvlink3()).is_err()
        );
    }

    #[test]
    fn validate_rejects_out_of_range_overrides() {
        let topo = ClusterTopology::flat(2, LinkSpec::nvlink3());
        assert!(topo
            .clone()
            .with_pair_override(0, 5, LinkSpec::nvlink3())
            .validate()
            .is_err());
        assert!(topo
            .clone()
            .with_pair_override(1, 1, LinkSpec::nvlink3())
            .validate()
            .is_err());
        // One link per pair: a second override for the same (unordered)
        // pair would charge the traffic twice, so validate rejects it.
        assert!(topo
            .with_pair_override(0, 1, LinkSpec::pcie_gen4())
            .with_pair_override(1, 0, LinkSpec::nvlink3())
            .validate()
            .is_err());
    }

    #[test]
    fn try_with_pair_override_rejects_bad_endpoints_at_construction() {
        let topo = ClusterTopology::flat(2, LinkSpec::nvlink3());
        // Out of range, self-link, duplicate (either direction): rejected
        // eagerly instead of waiting for validate().
        assert!(topo
            .clone()
            .try_with_pair_override(0, 5, LinkSpec::nvlink3())
            .is_err());
        assert!(topo
            .clone()
            .try_with_pair_override(1, 1, LinkSpec::nvlink3())
            .is_err());
        let with_link = topo
            .clone()
            .try_with_pair_override(0, 1, LinkSpec::pcie_gen4())
            .expect("in-range distinct pair is accepted");
        assert!(with_link
            .clone()
            .try_with_pair_override(1, 0, LinkSpec::nvlink3())
            .is_err());
        // The accepted topology passes full validation and prices traffic
        // over the dedicated link like the unchecked builder would.
        assert!(with_link.validate().is_ok());
        assert_eq!(with_link.pair_overrides.len(), 1);
    }
}
