//! Cross-cutting static validation for cluster experiments: checks that
//! need both a fault schedule *and* the topology it is injected into.
//!
//! `samoyeds_serve::validate` owns the engine ([`Diagnostic`] /
//! [`ValidationReport`]) and the controller-local checks; this module adds
//! the checks only the distributed layer can make, because only it knows
//! the cluster's island structure:
//!
//! * `fault::partition-single-island` (deny) — an
//!   [`IslandPartition`](samoyeds_serve::FaultKind::IslandPartition) on a
//!   single-island topology: there is no spine for the island to partition
//!   away from, so the fault models nothing physical;
//! * `fault::island-out-of-range` (deny) — a partition naming an island id
//!   the topology does not have;
//! * `fault::partition-replica-out-of-range` (deny) — a partition listing
//!   a replica slot at or beyond the fleet size.
//!
//! Sweep drivers ([`FaultSweepReport::sweep`](crate::report::FaultSweepReport::sweep))
//! call [`validate_fault_schedule`] and assert on it before building a
//! single controller, so an ill-formed schedule is rejected once, up
//! front, with every problem listed — not three policies deep into a
//! sweep.

use crate::topology::ClusterTopology;
use samoyeds_serve::{Diagnostic, FaultKind, FaultSchedule, ValidationReport};

/// Statically check `schedule` against the cluster `topology` it will be
/// injected into and the number of `replicas` in the initial fleet.
///
/// Pure analysis: the schedule is resolved exactly as
/// [`FleetController::run`](samoyeds_serve::FleetController::run) resolves
/// it (deterministically), nothing is simulated, and a schedule that
/// validates cleanly leaves the sweep bit-for-bit identical to one that
/// was never validated.
pub fn validate_fault_schedule(
    schedule: &FaultSchedule,
    topology: &ClusterTopology,
    replicas: usize,
) -> ValidationReport {
    let mut report = ValidationReport::new();
    for (i, spec) in schedule.resolve(replicas).iter().enumerate() {
        let FaultKind::IslandPartition {
            island,
            replicas: members,
            ..
        } = &spec.kind
        else {
            continue;
        };
        let ctx = format!("fault[{i}] island partition at {} ms", spec.at_ms);
        if topology.num_islands() == 1 {
            report.push(Diagnostic::deny(
                "fault::partition-single-island",
                ctx.clone(),
                format!(
                    "the topology '{}' has a single island — there is no spine for it to \
                     partition away from",
                    topology.name()
                ),
                "use a multi-island topology, or model the outage as per-replica link \
                 degradations instead",
            ));
        } else if *island >= topology.num_islands() {
            report.push(Diagnostic::deny(
                "fault::island-out-of-range",
                ctx.clone(),
                format!(
                    "island {island} does not exist: the topology '{}' has {} islands",
                    topology.name(),
                    topology.num_islands()
                ),
                "target an island id below num_islands()",
            ));
        }
        for &member in members {
            if member >= replicas {
                report.push(Diagnostic::deny(
                    "fault::partition-replica-out-of-range",
                    ctx.clone(),
                    format!(
                        "the partition lists replica {member} but the fleet has {replicas} \
                         replicas"
                    ),
                    "list only commissioned replica slots",
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use samoyeds_serve::FaultSpec;

    fn partition(island: usize, members: Vec<usize>) -> FaultSchedule {
        FaultSchedule::Scripted(vec![FaultSpec {
            at_ms: 100.0,
            kind: FaultKind::IslandPartition {
                island,
                replicas: members,
                duration_ms: 500.0,
            },
        }])
    }

    #[test]
    fn partition_on_single_island_topology_is_denied() {
        let flat = ClusterTopology::flat(4, LinkSpec::nvlink3());
        let report = validate_fault_schedule(&partition(0, vec![0, 1]), &flat, 3);
        assert!(report.has("fault::partition-single-island"));
        assert!(!report.passes());
    }

    fn two_islands() -> ClusterTopology {
        ClusterTopology::symmetric(2, 2, LinkSpec::nvlink3(), LinkSpec::infiniband_ndr())
            .expect("2×2 topology is valid")
    }

    #[test]
    fn partition_on_multi_island_topology_passes() {
        let report = validate_fault_schedule(&partition(1, vec![0, 1]), &two_islands(), 3);
        assert!(report.is_clean(), "unexpected: {}", report.render());
    }

    #[test]
    fn out_of_range_island_and_replica_are_both_reported() {
        let report = validate_fault_schedule(&partition(7, vec![9]), &two_islands(), 3);
        assert!(report.has("fault::island-out-of-range"));
        assert!(report.has("fault::partition-replica-out-of-range"));
        assert_eq!(report.deny_count(), 2);
    }

    #[test]
    fn crashes_and_degrades_are_not_this_modules_business() {
        let flat = ClusterTopology::flat(4, LinkSpec::nvlink3());
        let schedule = FaultSchedule::Scripted(vec![FaultSpec {
            at_ms: 50.0,
            kind: FaultKind::ReplicaCrash { replica: 99 },
        }]);
        // Replica-range checks for crashes/degrades live in
        // FleetController::validate; this pass only owns island semantics.
        assert!(validate_fault_schedule(&schedule, &flat, 2).is_clean());
    }
}
