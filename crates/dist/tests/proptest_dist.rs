//! Property-based invariants of the distributed layer: token conservation
//! across all-to-all sharding (flat and island-sharded), memory-budget
//! safety of every placement (topology-aware included), and monotonicity
//! of the hierarchical collective cost.

use proptest::prelude::*;
use samoyeds_dist::{
    replan_after_crash, ClusterBackend, ClusterConfig, ClusterEngine, ClusterMemoryModel,
    ClusterSimulator, ClusterTopology, FlowMatrix, LinkSpec, PlacementStrategy,
};
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::router::TopKRouter;
use samoyeds_serve::{ExecutionBackend, Scheduler, SchedulerConfig, TraceConfig};

fn arb_strategy() -> impl Strategy<Value = PlacementStrategy> {
    (0usize..4, 1usize..4).prop_map(|(which, hot)| match which {
        0 => PlacementStrategy::RoundRobin,
        1 => PlacementStrategy::CapacityGreedy,
        2 => PlacementStrategy::ReplicateHot { hot },
        _ => PlacementStrategy::ReplicateHotPerIsland { hot },
    })
}

/// A uniform exchange over `gpus` endpoints with intra-island per-pair
/// bytes `intra` and cross-island per-pair bytes `cross` under `topology`.
fn split_flows(topology: &ClusterTopology, intra: f64, cross: f64) -> FlowMatrix {
    let gpus = topology.num_gpus();
    let mut flows = FlowMatrix::new(gpus);
    for src in 0..gpus {
        for dst in 0..gpus {
            if src == dst {
                continue;
            }
            if topology.island_of(src) == topology.island_of(dst) {
                flows.add(src, dst, intra);
            } else {
                flows.add(src, dst, cross);
            }
        }
    }
    flows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharding a routing plan across any assignment (including replicated
    /// experts) never creates or drops token-expert assignments.
    #[test]
    fn sharding_conserves_tokens(
        num_experts in 2usize..24,
        top_k_raw in 1usize..6,
        tokens in 1usize..400,
        gpus in 1usize..9,
        replicate_first in any::<bool>(),
        skew in 0.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let top_k = top_k_raw.min(num_experts);
        let plan = TopKRouter::new(num_experts, top_k, seed)
            .unwrap()
            .with_skew(skew)
            .route(tokens);
        // Synthetic assignment: round-robin, optionally replicating expert 0
        // on every GPU.
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); gpus];
        for e in 0..num_experts {
            assignments[e % gpus].push(e);
        }
        if replicate_first {
            for (g, owned) in assignments.iter_mut().enumerate() {
                if g != 0 {
                    owned.push(0);
                }
            }
        }
        let shards = plan.shard(&assignments).unwrap();
        let sharded: usize = shards.iter().map(|s| s.total_assignments()).sum();
        prop_assert_eq!(sharded, plan.total_assignments());
        prop_assert_eq!(plan.total_assignments(), tokens * top_k);
        // Every shard's token lists stay strictly ascending (valid SEL
        // arrays over the global batch).
        for shard in &shards {
            for et in &shard.expert_tokens {
                prop_assert!(et.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    /// The full cluster step conserves assignments end to end, through
    /// placement, sharding and the all-to-all accounting.
    #[test]
    fn cluster_step_conserves_tokens(
        tokens in 16usize..512,
        gpus in 1usize..9,
        strategy in arb_strategy(),
        skew in 0.0f64..1.6,
        seed in any::<u64>(),
    ) {
        let model = MoeModelConfig::qwen2_moe();
        let plan = TopKRouter::for_config(&model, seed).with_skew(skew).route(tokens);
        let sim = ClusterSimulator::new(
            ClusterConfig::new(DeviceSpec::a100_40g(), gpus, ClusterEngine::Samoyeds)
                .with_strategy(strategy),
            model,
        );
        // Placement can legitimately fail (e.g. replicating hot experts on
        // a cluster with no headroom); when it succeeds, conservation and
        // the step-time structure must hold.
        if let Ok(report) = sim.step(&plan) {
            prop_assert_eq!(report.sharded_assignments, plan.total_assignments());
            prop_assert!(report.layer_time_ms >= report.straggler_ms());
            if gpus == 1 {
                prop_assert_eq!(report.all_to_all_ms, 0.0);
            }
            for u in report.utilization() {
                prop_assert!((0.0..=1.0).contains(&u));
            }
        }
    }

    /// Continuous batching over the cluster backend never admits past the
    /// straggler GPU's memory budget: every executed step's footprint (and
    /// the run's peak) stays within per-GPU usable memory, whatever the
    /// trace, pod size, fabric or weight representation.
    #[test]
    fn cluster_backend_admission_respects_the_per_gpu_budget(
        num_requests in 1usize..20,
        rate in 1.0f64..32.0,
        prompt_hi in 16usize..384,
        output_hi in 2usize..24,
        gpus in 1usize..9,
        engine_idx in 0usize..3,
        device_idx in 0usize..2,
        seed in any::<u64>(),
    ) {
        let engine = ClusterEngine::all()[engine_idx];
        let device = if device_idx == 0 {
            DeviceSpec::rtx4070_super()
        } else {
            DeviceSpec::a100_40g()
        };
        let model = MoeModelConfig::qwen2_moe();
        let trace = TraceConfig {
            num_requests,
            arrival_rate_rps: rate,
            prompt_len_range: (8, prompt_hi.max(9)),
            output_len_range: (1, output_hi),
            seed,
        }
        .generate();
        let scfg = SchedulerConfig::default();
        let backend = ClusterBackend::new(
            ClusterConfig::new(device, gpus, engine),
            model.clone(),
            &scfg,
        );
        let budget_bytes = backend.memory().budget_bytes();
        let result = Scheduler::from_backend(backend, scfg).run(&trace);
        // Request conservation still holds behind the cluster backend.
        prop_assert_eq!(result.completed.len() + result.rejected.len(), trace.len());
        prop_assert_eq!(result.budget_bytes, budget_bytes);
        for step in &result.steps {
            prop_assert!(
                step.memory_bytes <= budget_bytes,
                "step used {:.2} of {:.2} GiB on the straggler GPU",
                step.memory_bytes / (1u64 << 30) as f64,
                budget_bytes / (1u64 << 30) as f64,
            );
            prop_assert!(step.time_ms.is_finite() && step.time_ms > 0.0);
            prop_assert!(step.collective_ms >= 0.0);
            if gpus == 1 {
                prop_assert_eq!(step.collective_ms, 0.0);
            }
        }
        prop_assert!(result.peak_memory_bytes <= budget_bytes);
    }

    /// The hierarchical collective cost never decreases when more bytes
    /// cross the island boundary (intra-island traffic held fixed).
    #[test]
    fn hierarchical_cost_is_monotone_in_cross_island_bytes(
        islands in 2usize..5,
        gpus_per_island in 1usize..5,
        intra_kb in 0u32..4096,
        cross_kb in 0u32..4096,
        extra_kb in 1u32..4096,
    ) {
        let topology = ClusterTopology::symmetric(
            islands,
            gpus_per_island,
            LinkSpec::nvlink3(),
            LinkSpec::infiniband_ndr(),
        )
        .unwrap();
        let intra = intra_kb as f64 * 1024.0;
        let cross = cross_kb as f64 * 1024.0;
        let base = topology.all_to_all_ms(&split_flows(&topology, intra, cross));
        let more = topology.all_to_all_ms(&split_flows(
            &topology,
            intra,
            cross + extra_kb as f64 * 1024.0,
        ));
        prop_assert!(more.spine_ms >= base.spine_ms);
        prop_assert!(more.total_ms() >= base.total_ms());
        prop_assert!(more.cross_island_bytes > base.cross_island_bytes);
        // Intra-island traffic did not change, so neither does its phase.
        prop_assert_eq!(more.intra_ms, base.intra_ms);
    }

    /// Growing a fleet by whole islands (fixed island size, uniform
    /// per-pair traffic) never makes the collective cheaper: every added
    /// island adds spine endpoints and cross-island bytes.
    #[test]
    fn hierarchical_cost_is_monotone_in_island_count(
        gpus_per_island in 1usize..5,
        bytes_kb in 1u32..8192,
        max_islands in 2usize..6,
    ) {
        let bytes = bytes_kb as f64 * 1024.0;
        let mut previous = 0.0f64;
        for islands in 1..=max_islands {
            let topology = ClusterTopology::symmetric(
                islands,
                gpus_per_island,
                LinkSpec::nvlink3(),
                LinkSpec::infiniband_ndr(),
            )
            .unwrap();
            let cost = topology.all_to_all_ms(&split_flows(&topology, bytes, bytes));
            prop_assert!(
                cost.total_ms() >= previous,
                "islands {} cost {} < previous {}",
                islands,
                cost.total_ms(),
                previous
            );
            if islands == 1 {
                prop_assert_eq!(cost.spine_ms, 0.0);
                prop_assert_eq!(cost.cross_island_bytes, 0.0);
            } else if gpus_per_island > 0 {
                prop_assert!(cost.spine_ms > 0.0);
            }
            previous = cost.total_ms();
        }
    }

    /// Token conservation holds across island-sharded routing plans: the
    /// full hierarchical cluster step executes exactly the plan's
    /// token-expert assignments, whatever the island layout, placement
    /// strategy or skew — and a single-island layout never touches the
    /// spine.
    #[test]
    fn island_sharded_steps_conserve_tokens(
        tokens in 16usize..512,
        islands in 1usize..5,
        gpus_per_island in 1usize..4,
        strategy in arb_strategy(),
        skew in 0.0f64..1.6,
        seed in any::<u64>(),
    ) {
        let model = MoeModelConfig::qwen2_moe();
        let plan = TopKRouter::for_config(&model, seed).with_skew(skew).route(tokens);
        let gpus = islands * gpus_per_island;
        let topology = ClusterTopology::symmetric(
            islands,
            gpus_per_island,
            LinkSpec::nvlink3(),
            LinkSpec::infiniband_ndr(),
        )
        .unwrap();
        let sim = ClusterSimulator::new(
            ClusterConfig::new(DeviceSpec::a100_40g(), gpus, ClusterEngine::Samoyeds)
                .with_topology(topology)
                .with_strategy(strategy),
            model,
        );
        if let Ok(report) = sim.step(&plan) {
            prop_assert_eq!(report.sharded_assignments, plan.total_assignments());
            prop_assert!(report.layer_time_ms >= report.straggler_ms());
            prop_assert!(report.spine_ms >= 0.0 && report.intra_island_ms >= 0.0);
            if islands == 1 {
                prop_assert_eq!(report.spine_ms, 0.0);
                prop_assert_eq!(report.cross_island_bytes, 0.0);
            }
            if gpus == 1 {
                prop_assert_eq!(report.all_to_all_ms, 0.0);
            }
            for u in report.utilization() {
                prop_assert!((0.0..=1.0).contains(&u));
            }
        }
    }

    /// Topology-aware placement never violates per-GPU memory budgets:
    /// whenever `place_on` succeeds over an island layout, every GPU —
    /// including those carrying per-island hot replicas — fits weights, KV
    /// share and activation workspace.
    #[test]
    fn topology_placement_respects_memory_budgets(
        islands in 1usize..5,
        gpus_per_island in 1usize..4,
        hot in 1usize..5,
        resident_tokens in 0usize..8192,
        step_tokens in 1usize..4096,
        engine_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let engine = ClusterEngine::all()[engine_idx];
        let model = MoeModelConfig::qwen2_moe();
        let device = DeviceSpec::a100_40g();
        let memory = ClusterMemoryModel::new(&device, engine, &model);
        let topology = ClusterTopology::symmetric(
            islands,
            gpus_per_island,
            LinkSpec::nvlink3(),
            LinkSpec::infiniband_ndr(),
        )
        .unwrap();
        let loads = TopKRouter::for_config(&model, seed).route(256).expert_loads();
        let strategy = PlacementStrategy::ReplicateHotPerIsland { hot };
        if let Ok(placement) = strategy.place_on(
            &loads,
            &topology,
            &memory,
            resident_tokens,
            step_tokens,
        ) {
            prop_assert_eq!(placement.num_gpus(), topology.num_gpus());
            // Hot experts own exactly one replica per island, the rest one
            // replica total.
            let replicas = placement.replica_counts(model.num_experts);
            prop_assert!(replicas.iter().all(|&c| c == 1 || c == islands));
            if islands > 1 {
                prop_assert!(
                    replicas.iter().filter(|&&c| c == islands).count()
                        >= hot.min(model.num_experts)
                );
            }
            for owned in placement.assignments() {
                let bytes = memory.gpu_bytes(owned.len(), resident_tokens, step_tokens);
                prop_assert!(
                    bytes <= memory.budget_bytes(),
                    "GPU with {} experts uses {:.2} of {:.2} GiB",
                    owned.len(),
                    bytes / (1u64 << 30) as f64,
                    memory.budget_bytes() / (1u64 << 30) as f64,
                );
            }
            prop_assert!(placement
                .validate(&memory, resident_tokens, step_tokens)
                .is_ok());
        }
    }

    /// Whenever a placement is produced, no GPU exceeds its memory budget —
    /// weights, KV share and activation workspace included.
    #[test]
    fn placement_respects_memory_budgets(
        gpus in 1usize..9,
        strategy in arb_strategy(),
        resident_tokens in 0usize..8192,
        step_tokens in 1usize..4096,
        engine_idx in 0usize..3,
        device_idx in 0usize..2,
        seed in any::<u64>(),
    ) {
        let engine = ClusterEngine::all()[engine_idx];
        let device = if device_idx == 0 {
            DeviceSpec::rtx4070_super()
        } else {
            DeviceSpec::a100_40g()
        };
        let model = MoeModelConfig::qwen2_moe();
        let memory = ClusterMemoryModel::new(&device, engine, &model);
        let loads = TopKRouter::for_config(&model, seed).route(256).expert_loads();
        match strategy.place(&loads, gpus, &memory, resident_tokens, step_tokens) {
            Ok(placement) => {
                prop_assert_eq!(placement.num_gpus(), gpus);
                // Every routed expert is owned by at least one GPU.
                let replicas = placement.replica_counts(model.num_experts);
                prop_assert!(replicas.iter().all(|&c| c >= 1));
                // Direct budget check, not just validate()'s word.
                for owned in placement.assignments() {
                    let bytes = memory.gpu_bytes(owned.len(), resident_tokens, step_tokens);
                    prop_assert!(
                        bytes <= memory.budget_bytes(),
                        "GPU with {} experts uses {:.2} of {:.2} GiB",
                        owned.len(),
                        bytes / (1u64 << 30) as f64,
                        memory.budget_bytes() / (1u64 << 30) as f64,
                    );
                }
                prop_assert!(placement.validate(&memory, resident_tokens, step_tokens).is_ok());
            }
            Err(_) => {
                // An error must mean the dense-est GPU really cannot fit:
                // the per-GPU expert capacity is short of a balanced share
                // (or replication inflated the requirement).
                let capacity = memory.max_experts_per_gpu(resident_tokens, step_tokens);
                let needed = model.num_experts.div_ceil(gpus);
                prop_assert!(
                    capacity < needed + 3,
                    "placement failed with capacity {capacity} and balanced need {needed}"
                );
            }
        }
    }

    /// Post-recovery placements never exceed per-GPU memory budgets:
    /// whenever `replan_after_crash` produces a plan, every survivor —
    /// including those that absorbed the crashed GPU's experts — still fits
    /// weights, KV share and activation workspace; the crashed GPU is left
    /// empty; no expert lost coverage; and the priced weight transfer is
    /// finite.
    #[test]
    fn recovery_replans_respect_memory_budgets(
        islands in 1usize..5,
        gpus_per_island in 1usize..4,
        strategy in arb_strategy(),
        crashed_raw in 0usize..16,
        resident_tokens in 0usize..8192,
        step_tokens in 1usize..4096,
        engine_idx in 0usize..3,
        use_checkpoint in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let engine = ClusterEngine::all()[engine_idx];
        let model = MoeModelConfig::qwen2_moe();
        let device = DeviceSpec::a100_40g();
        let memory = ClusterMemoryModel::new(&device, engine, &model);
        let topology = ClusterTopology::symmetric(
            islands,
            gpus_per_island,
            LinkSpec::nvlink3(),
            LinkSpec::infiniband_ndr(),
        )
        .unwrap();
        let loads = TopKRouter::for_config(&model, seed).route(256).expert_loads();
        // Nothing to crash if the healthy placement doesn't fit.
        let healthy = strategy.place_on(&loads, &topology, &memory, resident_tokens, step_tokens);
        let plan = healthy.ok().and_then(|placement| {
            let crashed = crashed_raw % topology.num_gpus();
            // The checkpoint host is modelled as a surviving GPU endpoint.
            let checkpoint = if use_checkpoint {
                Some((crashed + 1) % topology.num_gpus())
            } else {
                None
            };
            replan_after_crash(
                &placement,
                crashed,
                &loads,
                &topology,
                &memory,
                resident_tokens,
                step_tokens,
                checkpoint,
            )
            .ok()
            .map(|plan| (crashed, plan))
        });
        if let Some((crashed, plan)) = plan {
            // The crashed slot is kept (stable GPU ids) but owns nothing.
            prop_assert_eq!(plan.placement.num_gpus(), topology.num_gpus());
            prop_assert!(plan.placement.assignments()[crashed].is_empty());
            // No expert lost coverage in the recovered placement.
            let replicas = plan.placement.replica_counts(model.num_experts);
            prop_assert!(replicas.iter().all(|&c| c >= 1));
            // Direct budget check on every survivor, not just validate().
            for (gpu, owned) in plan.placement.assignments().iter().enumerate() {
                if gpu == crashed {
                    continue;
                }
                let bytes = memory.gpu_bytes(owned.len(), resident_tokens, step_tokens);
                prop_assert!(
                    bytes <= memory.budget_bytes(),
                    "survivor {} with {} experts uses {:.2} of {:.2} GiB",
                    gpu,
                    owned.len(),
                    bytes / (1u64 << 30) as f64,
                    memory.budget_bytes() / (1u64 << 30) as f64,
                );
            }
            // Every move re-homes onto a survivor, never the crashed GPU.
            for m in &plan.moves {
                prop_assert!(m.to != crashed);
                prop_assert!(m.to < topology.num_gpus());
            }
            prop_assert!(plan.transfer_ms().is_finite());
            prop_assert!(plan.transfer_ms() >= 0.0);
            if !plan.moves.is_empty() {
                prop_assert!(plan.transfer_bytes > 0.0);
            }
        }
    }
}
