//! Topology-equivalence suite: a single flat island must reproduce the
//! pre-refactor single-level α-β all-to-all **bit for bit**.
//!
//! `legacy` below freezes the collective cost path exactly as it existed
//! before the hierarchical-topology refactor: the per-GPU send/recv
//! accumulation of `ClusterSimulator::step_with_placement` and the
//! single-level `LinkSpec::all_to_all_ms` formula, copied line for line.
//! Running both over shared flow patterns, presets and whole simulator
//! steps and asserting exact `f64` equality proves the refactor moved the
//! collective pricing behind `ClusterTopology` without changing a single
//! predicted number — the same pattern as `backend_equivalence` /
//! `fleet_equivalence` in `samoyeds-serve`.

use samoyeds_dist::{
    ClusterConfig, ClusterEngine, ClusterSimulator, ClusterTopology, FlowMatrix, LinkSpec,
};
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::router::{RoutingPlan, TopKRouter};

/// The pre-refactor collective pricing, frozen for comparison.
mod legacy {
    use samoyeds_dist::LinkSpec;
    use samoyeds_moe::router::RoutingPlan;

    /// Verbatim pre-refactor `LinkSpec::all_to_all_ms`: per-peer startup
    /// latency plus a bandwidth term set by the busiest endpoint.
    pub fn all_to_all_ms(link: &LinkSpec, send_bytes: &[f64], recv_bytes: &[f64]) -> f64 {
        let gpus = send_bytes.len().max(recv_bytes.len());
        if gpus <= 1 {
            return 0.0;
        }
        let busiest = send_bytes
            .iter()
            .chain(recv_bytes.iter())
            .fold(0.0f64, |acc, &b| acc.max(b));
        if busiest <= 0.0 {
            return 0.0;
        }
        link.latency_us * 1e-3 * (gpus - 1) as f64 + busiest / (link.bandwidth_gbps * 1e9) * 1e3
    }

    /// Verbatim pre-refactor step collective: accumulate per-GPU send/recv
    /// bytes from the shard map (token `t` resides on GPU `t mod g`), pay
    /// the dispatch collective twice (combine moves the same bytes back).
    pub fn step_all_to_all_ms(
        link: &LinkSpec,
        shards: &[RoutingPlan],
        g: usize,
        token_bytes: f64,
    ) -> f64 {
        let mut send = vec![0.0f64; g];
        let mut recv = vec![0.0f64; g];
        for (gpu, shard) in shards.iter().enumerate() {
            for tokens in &shard.expert_tokens {
                for &t in tokens {
                    let src = t as usize % g;
                    if src != gpu {
                        send[src] += token_bytes;
                        recv[gpu] += token_bytes;
                    }
                }
            }
        }
        2.0 * all_to_all_ms(link, &send, &recv)
    }
}

/// The presets the satellite pins: both NVLink generations, PCIe and the
/// InfiniBand spine.
fn presets() -> [LinkSpec; 4] {
    [
        LinkSpec::nvlink3(),
        LinkSpec::nvlink4(),
        LinkSpec::pcie_gen4(),
        LinkSpec::infiniband_ndr(),
    ]
}

/// Flow patterns exercising uniform, skewed, one-hot, zero and
/// single-endpoint exchanges. Byte values are integer-valued (every real
/// flow is a token count times an integer token width), matching the exact
/// arithmetic the simulator produces.
fn flow_patterns() -> Vec<FlowMatrix> {
    let mut patterns = Vec::new();
    // Uniform 4-GPU exchange.
    let mut uniform = FlowMatrix::new(4);
    for s in 0..4 {
        for d in 0..4 {
            uniform.add(s, d, 4096.0 * 131.0);
        }
    }
    patterns.push(uniform);
    // Skewed: GPU 0 is the hot owner (the imbalanced-expert shape).
    let mut skewed = FlowMatrix::new(4);
    for s in 1..4 {
        skewed.add(s, 0, 4096.0 * (977.0 + s as f64));
        skewed.add(0, s, 4096.0 * 13.0);
    }
    patterns.push(skewed);
    // One-hot: a single pair exchanges.
    let mut one_hot = FlowMatrix::new(8);
    one_hot.add(6, 1, 4096.0 * 50021.0);
    patterns.push(one_hot);
    // Empty exchange.
    patterns.push(FlowMatrix::new(4));
    // Single GPU: no peers at all.
    patterns.push(FlowMatrix::new(1));
    patterns
}

#[test]
fn flat_topology_reproduces_the_single_level_cost_across_presets() {
    for link in presets() {
        for flows in flow_patterns() {
            let n = flows.gpus();
            let send: Vec<f64> = (0..n).map(|g| flows.sent_by(g)).collect();
            let recv: Vec<f64> = (0..n).map(|g| flows.received_by(g)).collect();
            let frozen = legacy::all_to_all_ms(&link, &send, &recv);
            let cost = ClusterTopology::flat(n, link.clone()).all_to_all_ms(&flows);
            assert_eq!(
                cost.total_ms(),
                frozen,
                "{} over {n} GPUs drifted from the frozen formula",
                link.name
            );
            assert_eq!(cost.spine_ms, 0.0);
            assert_eq!(cost.override_ms, 0.0);
            assert_eq!(cost.cross_island_bytes, 0.0);
            // The live LinkSpec formula itself must also still match its
            // frozen copy.
            assert_eq!(link.all_to_all_ms(&send, &recv), frozen);
        }
    }
}

#[test]
fn flat_topology_matches_skewed_send_recv_vectors_exactly() {
    // The satellite's literal shape: skewed per-GPU send/recv vectors,
    // realised as one-flow-per-endpoint matrices so the row/column sums
    // are exactly the target vectors.
    let send = [6.0e8, 0.0, 3.2e7, 1.6e5];
    let recv = [0.0, 5.9e8, 4.1e7, 2.0e5];
    for link in presets() {
        let mut flows = FlowMatrix::new(4);
        for (g, &bytes) in send.iter().enumerate() {
            // GPU g sends its whole budget to its neighbour and receives
            // its whole budget from the other side; sums stay exact.
            flows.add(g, (g + 1) % 4, bytes);
        }
        let actual_send: Vec<f64> = (0..4).map(|g| flows.sent_by(g)).collect();
        let actual_recv: Vec<f64> = (0..4).map(|g| flows.received_by(g)).collect();
        let cost = ClusterTopology::flat(4, link.clone()).all_to_all_ms(&flows);
        assert_eq!(
            cost.total_ms(),
            legacy::all_to_all_ms(&link, &actual_send, &actual_recv)
        );
        // And the direct vector form, for the recv-heavy shape too.
        assert_eq!(
            link.all_to_all_ms(&send, &recv),
            legacy::all_to_all_ms(&link, &send, &recv)
        );
    }
}

fn plan_for(model: &MoeModelConfig, tokens: usize, skew: f64, seed: u64) -> RoutingPlan {
    TopKRouter::for_config(model, seed)
        .with_skew(skew)
        .route(tokens)
}

#[test]
fn simulator_steps_are_bit_identical_with_an_explicit_flat_topology() {
    let model = MoeModelConfig::qwen2_moe();
    for engine in ClusterEngine::all() {
        for gpus in [1usize, 2, 4, 8] {
            for skew in [0.0f64, 1.5] {
                let plan = plan_for(&model, 1024, skew, 42);
                let base = ClusterConfig::new(DeviceSpec::a100_40g(), gpus, engine);
                let implicit = ClusterSimulator::new(base.clone(), model.clone());
                let explicit = ClusterSimulator::new(
                    base.clone()
                        .with_topology(ClusterTopology::flat(gpus, base.link.clone())),
                    model.clone(),
                );
                let a = implicit.step(&plan).unwrap();
                let b = explicit.step(&plan).unwrap();
                assert_eq!(a.all_to_all_ms, b.all_to_all_ms, "{engine:?} {gpus} {skew}");
                assert_eq!(a.intra_island_ms, b.intra_island_ms);
                assert_eq!(a.spine_ms, b.spine_ms);
                assert_eq!(a.layer_time_ms, b.layer_time_ms);
                assert_eq!(a.model_time_ms, b.model_time_ms);
                assert_eq!(a.per_gpu_compute_ms, b.per_gpu_compute_ms);
                assert_eq!(a.sharded_assignments, b.sharded_assignments);
            }
        }
    }
}

#[test]
fn simulator_collectives_match_the_frozen_per_gpu_accumulation() {
    // End to end: the (default, flat) simulator's collective time equals
    // the frozen pre-refactor accumulation recomputed from the same
    // placement and shard map — across devices, engines, pod sizes, skew
    // and fabric presets.
    let model = MoeModelConfig::qwen2_moe();
    let token_bytes = model.hidden_size as f64 * 2.0;
    for (device, engines) in [
        (DeviceSpec::a100_40g(), ClusterEngine::all().to_vec()),
        (DeviceSpec::rtx4070_super(), vec![ClusterEngine::Samoyeds]),
    ] {
        for engine in engines {
            for gpus in [2usize, 4, 8] {
                for link in presets() {
                    for skew in [0.0f64, 1.5] {
                        let plan = plan_for(&model, 768, skew, 7);
                        let sim = ClusterSimulator::new(
                            ClusterConfig::new(device.clone(), gpus, engine)
                                .with_link(link.clone()),
                            model.clone(),
                        );
                        let placement = sim.placement_for(&plan).unwrap();
                        let shards = plan.shard(placement.assignments()).unwrap();
                        let frozen = legacy::step_all_to_all_ms(&link, &shards, gpus, token_bytes);
                        let report = sim.step_with_placement(&plan, placement).unwrap();
                        assert_eq!(
                            report.all_to_all_ms, frozen,
                            "{} {engine:?} {gpus} GPUs {} skew {skew}",
                            device.name, link.name
                        );
                        assert_eq!(report.intra_island_ms, frozen);
                        assert_eq!(report.spine_ms, 0.0);
                    }
                }
            }
        }
    }
}
