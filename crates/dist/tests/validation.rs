//! Static-validation coverage for the distributed layer: topology
//! invariants surfaced all at once, over-budget placements listing every
//! offending GPU, and fault schedules checked against the island structure
//! they target — each rejected before any simulation runs.

use samoyeds_dist::{
    validate_fault_schedule, ClusterEngine, ClusterMemoryModel, ClusterTopology, ExpertPlacement,
    LinkSpec, PairOverride, PlacementStrategy,
};
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_serve::{FaultKind, FaultSchedule, FaultSpec, Validate};

fn two_islands() -> ClusterTopology {
    ClusterTopology::symmetric(2, 4, LinkSpec::nvlink3(), LinkSpec::infiniband_ndr())
        .expect("2×4 topology is valid")
}

#[test]
fn topology_reports_every_override_problem_at_once() {
    let mut topology = two_islands();
    topology.pair_overrides = vec![
        // Out of range for 8 GPUs.
        PairOverride {
            a: 0,
            b: 12,
            link: LinkSpec::nvlink3(),
        },
        // Self link.
        PairOverride {
            a: 3,
            b: 3,
            link: LinkSpec::nvlink3(),
        },
        // A valid link...
        PairOverride {
            a: 1,
            b: 2,
            link: LinkSpec::nvlink3(),
        },
        // ...duplicated in reverse orientation.
        PairOverride {
            a: 2,
            b: 1,
            link: LinkSpec::nvlink3(),
        },
    ];
    let report = topology.validation();
    assert!(report.has("topology::override-out-of-range"));
    assert!(report.has("topology::override-self-link"));
    assert!(report.has("topology::override-duplicate"));
    assert_eq!(report.deny_count(), 3, "{}", report.render());
    // The first-error Result form still rejects it too.
    assert!(topology.validate().is_err());
}

#[test]
fn empty_topology_is_denied() {
    let topology = ClusterTopology {
        islands: Vec::new(),
        spine: LinkSpec::infiniband_ndr(),
        pair_overrides: Vec::new(),
    };
    let report = topology.validation();
    assert!(report.has("topology::empty"));
    assert!(topology.validate().is_err());
}

#[test]
fn clean_topology_produces_no_diagnostics() {
    assert!(two_islands().validation().is_clean());
}

#[test]
fn over_budget_placement_lists_every_offending_gpu() {
    let device = DeviceSpec::a100_40g();
    let model = MoeModelConfig::qwen2_moe();
    let memory = ClusterMemoryModel::new(&device, ClusterEngine::Dense, &model);
    // One expert more than a GPU can hold, on GPUs 0 and 2 (replicated
    // entries count against the budget like any owned expert); GPUs 1 and 3
    // stay empty. Both overloaded GPUs must be named.
    let too_many = memory.max_experts_per_gpu(4_096, 1_024) + 1;
    let over: Vec<usize> = (0..model.num_experts).cycle().take(too_many).collect();
    let placement = ExpertPlacement {
        strategy: PlacementStrategy::RoundRobin,
        gpu_experts: vec![over.clone(), Vec::new(), over, Vec::new()],
    };
    let report = placement.validate_diagnostics(&memory, 4_096, 1_024);
    let over: Vec<&str> = report
        .diagnostics()
        .iter()
        .filter(|d| d.code == "placement::over-budget")
        .map(|d| d.context.as_str())
        .collect();
    assert_eq!(
        over,
        vec!["ExpertPlacement gpu[0]", "ExpertPlacement gpu[2]"],
        "{}",
        report.render()
    );
    // The first-error Result form keeps its original message shape.
    let err = placement
        .validate(&memory, 4_096, 1_024)
        .expect_err("over budget");
    assert!(
        err.to_string().contains("GPU 0 exceeds its memory budget"),
        "unexpected message: {err}"
    );
}

#[test]
fn partition_on_single_island_topology_is_rejected_up_front() {
    let flat = ClusterTopology::flat(8, LinkSpec::nvlink3());
    let schedule = FaultSchedule::Scripted(vec![FaultSpec {
        at_ms: 1_000.0,
        kind: FaultKind::IslandPartition {
            island: 0,
            replicas: vec![0, 1],
            duration_ms: 500.0,
        },
    }]);
    let report = validate_fault_schedule(&schedule, &flat, 4);
    assert!(report.has("fault::partition-single-island"));
    assert!(!report.passes());
    // The same schedule against a real multi-island topology is fine.
    assert!(validate_fault_schedule(&schedule, &two_islands(), 4).is_clean());
}
