//! The analytical cost model that converts a kernel's work and traffic
//! profile into a predicted execution time on a device.
//!
//! The model is a pipelined roofline:
//!
//! 1. compute time  = FLOPs / (peak rate of the unit that executes them);
//! 2. DRAM time     = effective DRAM bytes / bandwidth, with L2 hits served
//!    at L2 bandwidth;
//! 3. shared time   = staged bytes x bank passes / shared bandwidth;
//! 4. the three streams overlap according to the software pipeline quality
//!    (`cp.async` double buffering), so the body time is the maximum of the
//!    three plus the *exposed* part of the others;
//! 5. the body is scaled by wave quantisation (tail waves) and by the
//!    latency-hiding factor of the achieved occupancy;
//! 6. a fixed launch overhead is added.
//!
//! All of the paper's first-order performance arguments — the 2x SpTC rate,
//! I/O amplification, uncoalesced access, padding overhead, tail waves, L2
//! pressure — enter through these terms.

use crate::device::DeviceSpec;
use crate::memory::Traffic;
use crate::occupancy::{LaunchConfig, Occupancy};
use crate::stats::KernelStats;
use serde::{Deserialize, Serialize};

/// The work and traffic profile of one simulated kernel execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Human-readable kernel name (appears in stats and experiment output).
    pub name: String,
    /// FLOPs executed on the dense tensor-core path.
    pub flops_tensor_dense: f64,
    /// Logical FLOPs executed through `mma.sp` (the sparse tensor path, which
    /// retires them at twice the dense rate).
    pub flops_tensor_sparse: f64,
    /// FLOPs executed on the ordinary CUDA cores (e.g. Sputnik's scalar FMAs,
    /// epilogue activations, index arithmetic folded into an FLOP count).
    pub flops_cuda: f64,
    /// Memory traffic of the kernel.
    pub traffic: Traffic,
    /// Fraction of DRAM reads served by the L2 cache, in `[0, 1)`.
    pub l2_hit_fraction: f64,
    /// Launch configuration (drives occupancy and wave quantisation).
    pub launch: LaunchConfig,
    /// Fraction of memory latency hidden behind compute by the software
    /// pipeline, in `[0, 1]` (0 = fully serialised, 1 = perfectly
    /// overlapped).
    pub pipeline_overlap: f64,
    /// Fraction of peak unit throughput a well-formed inner loop reaches
    /// (accounts for issue overhead and epilogues), in `(0, 1]`.
    pub compute_efficiency: f64,
    /// Fixed per-launch overhead in microseconds.
    pub fixed_overhead_us: f64,
}

impl KernelProfile {
    /// A profile with no work — useful as a starting point for builders.
    pub fn empty(name: impl Into<String>, launch: LaunchConfig) -> Self {
        Self {
            name: name.into(),
            flops_tensor_dense: 0.0,
            flops_tensor_sparse: 0.0,
            flops_cuda: 0.0,
            traffic: Traffic::ideal(),
            l2_hit_fraction: 0.0,
            launch,
            pipeline_overlap: 0.0,
            compute_efficiency: 0.8,
            fixed_overhead_us: 5.0,
        }
    }

    /// Total useful FLOPs regardless of the unit that executes them.
    pub fn total_flops(&self) -> f64 {
        self.flops_tensor_dense + self.flops_tensor_sparse + self.flops_cuda
    }

    /// Merge another profile executed back-to-back in the same launch (used
    /// when a fused kernel chains several GEMMs).
    pub fn merge_sequential(&mut self, other: &KernelProfile) {
        self.flops_tensor_dense += other.flops_tensor_dense;
        self.flops_tensor_sparse += other.flops_tensor_sparse;
        self.flops_cuda += other.flops_cuda;
        self.traffic.merge(&other.traffic);
        // Weighted by DRAM traffic for the cache behaviour.
        let a = self.traffic.dram_bytes() - other.traffic.dram_bytes();
        let b = other.traffic.dram_bytes();
        if a + b > 0.0 {
            self.l2_hit_fraction =
                (self.l2_hit_fraction * a.max(0.0) + other.l2_hit_fraction * b) / (a.max(0.0) + b);
        }
        self.launch.grid_blocks += other.launch.grid_blocks;
    }
}

/// The cost model: device plus evaluation knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    device: DeviceSpec,
}

impl CostModel {
    /// Build a cost model for the given device.
    pub fn new(device: DeviceSpec) -> Self {
        Self { device }
    }

    /// The device this model evaluates on.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Time (seconds) spent on compute units, ignoring memory.
    pub fn compute_time_s(&self, p: &KernelProfile) -> f64 {
        let eff = p.compute_efficiency.clamp(0.05, 1.0);
        let dense_rate = self.device.tensor_tflops_dense * 1e12 * eff;
        let sparse_rate = self.device.tensor_tflops_sparse() * 1e12 * eff;
        let cuda_rate = self.device.cuda_tflops_fp32 * 1e12 * eff;
        p.flops_tensor_dense / dense_rate
            + p.flops_tensor_sparse / sparse_rate
            + p.flops_cuda / cuda_rate
    }

    /// Time (seconds) spent moving data through DRAM and L2.
    pub fn memory_time_s(&self, p: &KernelProfile) -> f64 {
        let hit = p.l2_hit_fraction.clamp(0.0, 0.99);
        let effective = p.traffic.effective_dram_bytes();
        let dram_part = effective * (1.0 - hit);
        let l2_part = effective * hit + p.traffic.l2_read_bytes;
        dram_part / (self.device.mem_bandwidth_gbps * 1e9)
            + l2_part / (self.device.l2_bandwidth_gbps() * 1e9)
    }

    /// Time (seconds) spent on shared-memory traffic (including serialised
    /// bank passes).
    pub fn shared_time_s(&self, p: &KernelProfile) -> f64 {
        let passes = p.traffic.smem_bank_passes.max(1.0);
        p.traffic.smem_bytes * passes / (self.device.shared_bandwidth_gbps() * 1e9)
    }

    /// Predict the execution time of the kernel in seconds.
    pub fn execution_time_s(&self, p: &KernelProfile) -> f64 {
        let compute = self.compute_time_s(p);
        let memory = self.memory_time_s(p);
        let shared = self.shared_time_s(p);

        let dominant = compute.max(memory).max(shared);
        let others = compute + memory + shared - dominant;
        let overlap = p.pipeline_overlap.clamp(0.0, 1.0);
        let body = dominant + (1.0 - overlap) * others;

        let occ = Occupancy::compute(&self.device, &p.launch);
        let latency = occ.latency_hiding_factor();
        let tail = occ.tail_efficiency.max(1e-3);

        body / latency / tail + p.fixed_overhead_us * 1e-6
    }

    /// Full statistics record for one kernel execution.
    pub fn evaluate(&self, p: &KernelProfile) -> KernelStats {
        let time_s = self.execution_time_s(p);
        let occ = Occupancy::compute(&self.device, &p.launch);
        KernelStats {
            kernel: p.name.clone(),
            device: self.device.name.clone(),
            time_ms: time_s * 1e3,
            total_flops: p.total_flops(),
            achieved_tflops: p.total_flops() / time_s / 1e12,
            dram_bytes: p.traffic.dram_bytes(),
            effective_dram_bytes: p.traffic.effective_dram_bytes(),
            smem_bytes: p.traffic.smem_bytes,
            l2_hit_fraction: p.l2_hit_fraction,
            coalescing_efficiency: p.traffic.coalescing_efficiency,
            occupancy_fraction: occ.fraction,
            waves: occ.waves,
            tail_efficiency: occ.tail_efficiency,
            pipeline_overlap: p.pipeline_overlap,
            compute_time_ms: self.compute_time_s(p) * 1e3,
            memory_time_ms: self.memory_time_s(p) * 1e3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn launch(blocks: usize) -> LaunchConfig {
        LaunchConfig {
            grid_blocks: blocks,
            block_threads: 256,
            regs_per_thread: 128,
            shared_bytes_per_block: 48 * 1024,
        }
    }

    fn gemm_profile(m: usize, n: usize, k: usize, sparse: bool) -> KernelProfile {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let bytes = 2.0 * (m * k + k * n + m * n * 2) as f64;
        let mut p = KernelProfile::empty("test", launch((m / 128).max(1) * (n / 128).max(1)));
        if sparse {
            p.flops_tensor_sparse = flops;
            p.traffic.gmem_read_bytes = bytes * 0.6;
        } else {
            p.flops_tensor_dense = flops;
            p.traffic.gmem_read_bytes = bytes;
        }
        p.traffic.gmem_write_bytes = (m * n * 2) as f64;
        p.l2_hit_fraction = 0.5;
        p.pipeline_overlap = 0.9;
        p
    }

    #[test]
    fn bigger_problems_achieve_higher_throughput() {
        let model = CostModel::new(DeviceSpec::rtx4070_super());
        let small = model.evaluate(&gemm_profile(256, 256, 256, false));
        let large = model.evaluate(&gemm_profile(8192, 8192, 8192, false));
        assert!(large.achieved_tflops > small.achieved_tflops * 2.0);
        assert!(large.time_ms > small.time_ms);
    }

    #[test]
    fn sparse_path_is_faster_than_dense_for_same_logical_work() {
        let model = CostModel::new(DeviceSpec::rtx4070_super());
        let dense = model.execution_time_s(&gemm_profile(4096, 4096, 4096, false));
        let sparse = model.execution_time_s(&gemm_profile(4096, 4096, 4096, true));
        assert!(sparse < dense, "sparse {sparse} dense {dense}");
    }

    #[test]
    fn achieved_throughput_never_exceeds_peak() {
        let model = CostModel::new(DeviceSpec::rtx4070_super());
        for size in [512usize, 1024, 4096, 8192] {
            let stats = model.evaluate(&gemm_profile(size, size, size, false));
            assert!(stats.achieved_tflops <= model.device().tensor_tflops_dense);
        }
        // Sparse path may exceed the dense peak but not the sparse peak.
        let s = model.evaluate(&gemm_profile(8192, 8192, 8192, true));
        assert!(s.achieved_tflops <= model.device().tensor_tflops_sparse());
    }

    #[test]
    fn uncoalesced_traffic_increases_time() {
        let model = CostModel::new(DeviceSpec::rtx4070_super());
        let mut good = gemm_profile(2048, 2048, 2048, false);
        good.traffic.coalescing_efficiency = 1.0;
        let mut bad = good.clone();
        bad.traffic.coalescing_efficiency = 0.25;
        assert!(model.execution_time_s(&bad) > model.execution_time_s(&good));
    }

    #[test]
    fn pipeline_overlap_reduces_time() {
        let model = CostModel::new(DeviceSpec::rtx4070_super());
        let mut overlapped = gemm_profile(2048, 2048, 2048, false);
        overlapped.pipeline_overlap = 0.95;
        let mut serial = overlapped.clone();
        serial.pipeline_overlap = 0.0;
        assert!(model.execution_time_s(&overlapped) < model.execution_time_s(&serial));
    }

    #[test]
    fn l2_hits_reduce_time() {
        let model = CostModel::new(DeviceSpec::rtx4070_super());
        let mut cold = gemm_profile(2048, 2048, 2048, false);
        cold.l2_hit_fraction = 0.0;
        let mut warm = cold.clone();
        warm.l2_hit_fraction = 0.9;
        assert!(model.execution_time_s(&warm) < model.execution_time_s(&cold));
    }

    #[test]
    fn fixed_overhead_dominates_tiny_kernels() {
        let model = CostModel::new(DeviceSpec::rtx4070_super());
        let mut p = KernelProfile::empty("tiny", launch(1));
        p.fixed_overhead_us = 5.0;
        let t = model.execution_time_s(&p);
        assert!(t >= 4.9e-6);
        assert!(t < 1e-4);
    }

    #[test]
    fn merge_sequential_accumulates_work() {
        let mut a = gemm_profile(1024, 1024, 1024, false);
        let b = gemm_profile(1024, 1024, 1024, true);
        let flops_before = a.total_flops();
        let blocks_before = a.launch.grid_blocks;
        a.merge_sequential(&b);
        assert!(a.total_flops() > flops_before);
        assert_eq!(a.launch.grid_blocks, blocks_before + b.launch.grid_blocks);
        assert!(a.flops_tensor_sparse > 0.0);
    }

    #[test]
    fn evaluate_populates_stats_consistently() {
        let model = CostModel::new(DeviceSpec::a100_40g());
        let p = gemm_profile(4096, 4096, 4096, true);
        let s = model.evaluate(&p);
        assert_eq!(s.kernel, "test");
        assert!(s.device.contains("A100"));
        assert!(s.time_ms > 0.0);
        assert!((s.total_flops - p.total_flops()).abs() < 1.0);
        assert!(s.compute_time_ms > 0.0 && s.memory_time_ms > 0.0);
        assert!(s.occupancy_fraction > 0.0 && s.occupancy_fraction <= 1.0);
    }
}
