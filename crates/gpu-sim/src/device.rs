//! GPU device specifications.
//!
//! The presets cover every platform the paper touches: the RTX 4070 Super
//! used for the main evaluation (§6), the RTX 3090 / RTX 4090 / A100 used in
//! the portability study (§6.6, Figure 18, Table 6), plus H100 and AMD MI300
//! entries for the hardware-support discussion of Table 1.
//!
//! The numbers are public specifications (boost clock, SM count, memory
//! bandwidth, cache sizes, tensor-core peak rates). Only *relative* accuracy
//! matters for reproducing the paper's trends: e.g. the A100 pairs higher
//! memory bandwidth with lower per-SM tensor throughput than the Ada cards,
//! which is exactly the "memory-computation imbalance" §6.6 attributes
//! VENOM's portability loss to.

use serde::{Deserialize, Serialize};

/// GPU micro-architecture families relevant to SpTC support (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuArch {
    /// NVIDIA Ampere (A100, RTX 30 series).
    Ampere,
    /// NVIDIA Ada Lovelace (RTX 40 series).
    AdaLovelace,
    /// NVIDIA Hopper (H100).
    Hopper,
    /// AMD RDNA3 (consumer; no sparse ALU).
    Rdna3,
    /// AMD CDNA3 (Instinct MI300; has a sparse ALU).
    Cdna3,
}

/// Whether a fabric binds GPUs inside one node (an island) or stitches
/// nodes together (the spine). Hierarchical all-to-all models
/// (`samoyeds-dist::topology`) run an intra-island phase over an
/// [`LinkScope::IntraNode`] fabric and a leader exchange over an
/// [`LinkScope::InterNode`] one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkScope {
    /// Binds GPUs inside one node: NVLink, PCIe through the host, XGMI.
    IntraNode,
    /// Stitches nodes together: InfiniBand and friends.
    InterNode,
}

/// The interconnect a GPU model ships with in its usual deployment form
/// factor. Consumer cards talk to their peers over PCIe through the host,
/// datacenter parts have dedicated point-to-point fabrics; the distinction
/// drives the all-to-all dispatch cost of expert-parallel MoE serving
/// (`samoyeds-dist`).
///
/// All bandwidths in this database are **GB/s (bytes)**. Marketing figures
/// for network fabrics are quoted in Gb/s (bits); entries here carry the
/// ÷8 conversion already applied (e.g. InfiniBand NDR's 400 Gb/s per port
/// is stored as 50 GB/s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Interconnect {
    /// PCIe 4.0 x16 through the host (consumer cards, no P2P fabric).
    PcieGen4,
    /// NVLink 3 (A100: 12 links, 600 GB/s aggregate bidirectional).
    Nvlink3,
    /// NVLink 4 (H100: 18 links, 900 GB/s aggregate bidirectional).
    Nvlink4,
    /// AMD Infinity Fabric (MI300-class accelerator mesh).
    InfinityFabric,
    /// InfiniBand NDR, the cross-node spine: 400 Gb/s per port, i.e.
    /// 400 / 8 = 50 GB/s of payload bandwidth per endpoint.
    InfiniBandNdr,
}

impl Interconnect {
    /// Per-GPU unidirectional peer bandwidth in GB/s (bytes — network
    /// fabrics quoted in Gb/s carry the ÷8 bits-to-bytes conversion here).
    pub fn bandwidth_gbps(&self) -> f64 {
        match self {
            Interconnect::PcieGen4 => 32.0,
            Interconnect::Nvlink3 => 300.0,
            Interconnect::Nvlink4 => 450.0,
            Interconnect::InfinityFabric => 448.0,
            // 400 Gb/s NDR port ÷ 8 bits per byte.
            Interconnect::InfiniBandNdr => 50.0,
        }
    }

    /// One-way message latency in microseconds (per collective phase, not
    /// per byte).
    pub fn latency_us(&self) -> f64 {
        match self {
            Interconnect::PcieGen4 => 5.0,
            Interconnect::Nvlink3 => 1.9,
            Interconnect::Nvlink4 => 1.8,
            Interconnect::InfinityFabric => 2.0,
            Interconnect::InfiniBandNdr => 12.0,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Interconnect::PcieGen4 => "PCIe 4.0 x16",
            Interconnect::Nvlink3 => "NVLink 3",
            Interconnect::Nvlink4 => "NVLink 4",
            Interconnect::InfinityFabric => "Infinity Fabric",
            Interconnect::InfiniBandNdr => "InfiniBand NDR",
        }
    }

    /// Whether the fabric lives inside a node or between nodes.
    pub fn scope(&self) -> LinkScope {
        match self {
            Interconnect::PcieGen4
            | Interconnect::Nvlink3
            | Interconnect::Nvlink4
            | Interconnect::InfinityFabric => LinkScope::IntraNode,
            Interconnect::InfiniBandNdr => LinkScope::InterNode,
        }
    }

    /// How many GPUs the fabric typically binds into one island in its
    /// usual deployment form factor (the NVLink domain of an HGX board,
    /// the handful of PCIe slots of a consumer host). Inter-node fabrics
    /// return 1: each spine endpoint is its own "island" boundary.
    pub fn node_radix(&self) -> usize {
        match self {
            Interconnect::PcieGen4 => 2,
            Interconnect::Nvlink3 | Interconnect::Nvlink4 => 8,
            Interconnect::InfinityFabric => 8,
            Interconnect::InfiniBandNdr => 1,
        }
    }
}

/// Static description of one GPU model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. "NVIDIA GeForce RTX 4070 Super".
    pub name: String,
    /// Micro-architecture family.
    pub arch: GpuArch,
    /// Number of streaming multiprocessors (compute units on AMD).
    pub sm_count: usize,
    /// Boost clock in GHz.
    pub boost_clock_ghz: f64,
    /// Peak dense tensor-core throughput in TFLOPS (bf16 inputs, f32
    /// accumulate).
    pub tensor_tflops_dense: f64,
    /// Peak CUDA-core (non-tensor) FP32 throughput in TFLOPS.
    pub cuda_tflops_fp32: f64,
    /// Off-chip memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Total device memory in GiB.
    pub mem_capacity_gib: f64,
    /// L2 cache size in bytes.
    pub l2_bytes: usize,
    /// Combined L1/shared-memory size per SM in bytes.
    pub shared_mem_per_sm: usize,
    /// Maximum shared memory usable by a single thread block in bytes.
    pub max_shared_per_block: usize,
    /// 32-bit registers per SM.
    pub registers_per_sm: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: usize,
    /// True if the device has a sparse ALU (Sparse Tensor Core or CDNA3
    /// equivalent) giving 2x throughput on 2:4 operands.
    pub has_sparse_alu: bool,
    /// True if the device supports asynchronous global→shared copies
    /// (`cp.async` or equivalent).
    pub has_async_copy: bool,
    /// True if the device supports collective matrix loads (`ldmatrix`).
    pub has_ldmatrix: bool,
    /// Peer-to-peer interconnect of the usual deployment form factor.
    pub interconnect: Interconnect,
}

impl DeviceSpec {
    /// Peak sparse tensor throughput in TFLOPS (2x dense when the sparse ALU
    /// exists, otherwise equal to dense — the kernel then simply cannot use
    /// `mma.sp`).
    pub fn tensor_tflops_sparse(&self) -> f64 {
        if self.has_sparse_alu {
            self.tensor_tflops_dense * 2.0
        } else {
            self.tensor_tflops_dense
        }
    }

    /// Aggregate shared-memory bandwidth in GB/s, modeled as 128 bytes per SM
    /// per clock (one 32-bank access of 4 bytes each).
    pub fn shared_bandwidth_gbps(&self) -> f64 {
        self.sm_count as f64 * 128.0 * self.boost_clock_ghz
    }

    /// L2 bandwidth in GB/s, modeled as a fixed multiple of DRAM bandwidth
    /// (roughly 6x on the modeled parts, in line with published
    /// microbenchmarks of Ampere/Ada L2 throughput).
    pub fn l2_bandwidth_gbps(&self) -> f64 {
        self.mem_bandwidth_gbps * 6.0
    }

    /// Ratio of compute capability to memory bandwidth (FLOP per byte at the
    /// roofline ridge point) for dense tensor work. Devices with a low ridge
    /// point are "memory rich" — the imbalance axis of §6.6.
    pub fn ridge_point_dense(&self) -> f64 {
        self.tensor_tflops_dense * 1e12 / (self.mem_bandwidth_gbps * 1e9)
    }

    /// Whether the Samoyeds kernel's mandatory requirement (sparse ALU) is
    /// satisfied on this device (Table 1).
    pub fn supports_samoyeds(&self) -> bool {
        self.has_sparse_alu
    }

    /// GPUs per node in this device's usual deployment form factor — the
    /// island size a multi-node cluster of this device decomposes into
    /// (8 for HGX-style NVLink boards, 2 for consumer PCIe hosts). Anything
    /// beyond this count crosses the node boundary onto the spine fabric.
    pub fn gpus_per_node(&self) -> usize {
        self.interconnect.node_radix()
    }

    /// NVIDIA GeForce RTX 4070 Super — the paper's primary platform.
    pub fn rtx4070_super() -> Self {
        Self {
            name: "NVIDIA GeForce RTX 4070 Super".to_string(),
            arch: GpuArch::AdaLovelace,
            sm_count: 56,
            boost_clock_ghz: 2.475,
            tensor_tflops_dense: 141.0,
            cuda_tflops_fp32: 35.5,
            mem_bandwidth_gbps: 504.0,
            mem_capacity_gib: 12.0,
            l2_bytes: 48 * 1024 * 1024,
            shared_mem_per_sm: 100 * 1024,
            max_shared_per_block: 99 * 1024,
            registers_per_sm: 65536,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 24,
            has_sparse_alu: true,
            has_async_copy: true,
            has_ldmatrix: true,
            interconnect: Interconnect::PcieGen4,
        }
    }

    /// NVIDIA GeForce RTX 3090 (Ampere, GA102).
    pub fn rtx3090() -> Self {
        Self {
            name: "NVIDIA GeForce RTX 3090".to_string(),
            arch: GpuArch::Ampere,
            sm_count: 82,
            boost_clock_ghz: 1.695,
            tensor_tflops_dense: 71.0,
            cuda_tflops_fp32: 35.6,
            mem_bandwidth_gbps: 936.0,
            mem_capacity_gib: 24.0,
            l2_bytes: 6 * 1024 * 1024,
            shared_mem_per_sm: 128 * 1024,
            max_shared_per_block: 99 * 1024,
            registers_per_sm: 65536,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 16,
            has_sparse_alu: true,
            has_async_copy: true,
            has_ldmatrix: true,
            interconnect: Interconnect::PcieGen4,
        }
    }

    /// NVIDIA GeForce RTX 4090 (Ada Lovelace, AD102).
    pub fn rtx4090() -> Self {
        Self {
            name: "NVIDIA GeForce RTX 4090".to_string(),
            arch: GpuArch::AdaLovelace,
            sm_count: 128,
            boost_clock_ghz: 2.52,
            tensor_tflops_dense: 330.0,
            cuda_tflops_fp32: 82.6,
            mem_bandwidth_gbps: 1008.0,
            mem_capacity_gib: 24.0,
            l2_bytes: 72 * 1024 * 1024,
            shared_mem_per_sm: 100 * 1024,
            max_shared_per_block: 99 * 1024,
            registers_per_sm: 65536,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 24,
            has_sparse_alu: true,
            has_async_copy: true,
            has_ldmatrix: true,
            interconnect: Interconnect::PcieGen4,
        }
    }

    /// NVIDIA A100 40GB (Ampere, GA100).
    pub fn a100_40g() -> Self {
        Self {
            name: "NVIDIA A100 40GB".to_string(),
            arch: GpuArch::Ampere,
            sm_count: 108,
            boost_clock_ghz: 1.41,
            tensor_tflops_dense: 312.0,
            cuda_tflops_fp32: 19.5,
            mem_bandwidth_gbps: 1555.0,
            mem_capacity_gib: 40.0,
            l2_bytes: 40 * 1024 * 1024,
            shared_mem_per_sm: 164 * 1024,
            max_shared_per_block: 163 * 1024,
            registers_per_sm: 65536,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            has_sparse_alu: true,
            has_async_copy: true,
            has_ldmatrix: true,
            interconnect: Interconnect::Nvlink3,
        }
    }

    /// NVIDIA H100 SXM (Hopper).
    pub fn h100() -> Self {
        Self {
            name: "NVIDIA H100 SXM".to_string(),
            arch: GpuArch::Hopper,
            sm_count: 132,
            boost_clock_ghz: 1.98,
            tensor_tflops_dense: 989.0,
            cuda_tflops_fp32: 67.0,
            mem_bandwidth_gbps: 3350.0,
            mem_capacity_gib: 80.0,
            l2_bytes: 50 * 1024 * 1024,
            shared_mem_per_sm: 228 * 1024,
            max_shared_per_block: 227 * 1024,
            registers_per_sm: 65536,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            has_sparse_alu: true,
            has_async_copy: true,
            has_ldmatrix: true,
            interconnect: Interconnect::Nvlink4,
        }
    }

    /// AMD Radeon PRO W7900 (RDNA3) — no sparse ALU, listed in Table 1 as
    /// unable to run the Samoyeds kernel's mandatory path.
    pub fn amd_w7900() -> Self {
        Self {
            name: "AMD Radeon PRO W7900".to_string(),
            arch: GpuArch::Rdna3,
            sm_count: 96,
            boost_clock_ghz: 2.495,
            tensor_tflops_dense: 122.0,
            cuda_tflops_fp32: 61.3,
            mem_bandwidth_gbps: 864.0,
            mem_capacity_gib: 48.0,
            l2_bytes: 6 * 1024 * 1024,
            shared_mem_per_sm: 64 * 1024,
            max_shared_per_block: 64 * 1024,
            registers_per_sm: 65536,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 16,
            has_sparse_alu: false,
            has_async_copy: false,
            has_ldmatrix: false,
            interconnect: Interconnect::PcieGen4,
        }
    }

    /// AMD Instinct MI300 (CDNA3) — has a sparse ALU but lacks native async
    /// copy / collective loads (Table 1 ✗* entries).
    pub fn amd_mi300() -> Self {
        Self {
            name: "AMD Instinct MI300".to_string(),
            arch: GpuArch::Cdna3,
            sm_count: 228,
            boost_clock_ghz: 2.1,
            tensor_tflops_dense: 383.0,
            cuda_tflops_fp32: 61.3,
            mem_bandwidth_gbps: 5300.0,
            mem_capacity_gib: 128.0,
            l2_bytes: 16 * 1024 * 1024,
            shared_mem_per_sm: 64 * 1024,
            max_shared_per_block: 64 * 1024,
            registers_per_sm: 65536,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            has_sparse_alu: true,
            has_async_copy: false,
            has_ldmatrix: false,
            interconnect: Interconnect::InfinityFabric,
        }
    }

    /// All NVIDIA devices used in the portability study (Figure 18), in the
    /// order the paper presents them.
    pub fn portability_set() -> Vec<DeviceSpec> {
        vec![
            Self::rtx3090(),
            Self::rtx4070_super(),
            Self::rtx4090(),
            Self::a100_40g(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_rate_is_double_dense_when_supported() {
        let d = DeviceSpec::rtx4070_super();
        assert_eq!(d.tensor_tflops_sparse(), 2.0 * d.tensor_tflops_dense);
        let w = DeviceSpec::amd_w7900();
        assert_eq!(w.tensor_tflops_sparse(), w.tensor_tflops_dense);
    }

    #[test]
    fn table1_support_matrix() {
        assert!(DeviceSpec::a100_40g().supports_samoyeds());
        assert!(DeviceSpec::rtx4090().supports_samoyeds());
        assert!(DeviceSpec::h100().supports_samoyeds());
        assert!(!DeviceSpec::amd_w7900().supports_samoyeds());
        assert!(DeviceSpec::amd_mi300().supports_samoyeds());
        // AMD parts lack the optional features.
        assert!(!DeviceSpec::amd_mi300().has_async_copy);
        assert!(!DeviceSpec::amd_mi300().has_ldmatrix);
    }

    #[test]
    fn portability_relationships_match_section_6_6() {
        let a100 = DeviceSpec::a100_40g();
        let s4070 = DeviceSpec::rtx4070_super();
        let r3090 = DeviceSpec::rtx3090();
        // A100: more SMs, smaller L2 than the 4070 Super (Table 6 row 1).
        assert!(a100.sm_count > s4070.sm_count);
        assert!(a100.l2_bytes < s4070.l2_bytes);
        // 3090: slower tensor cores, higher bandwidth (Table 6 row 2).
        assert!(r3090.tensor_tflops_dense < s4070.tensor_tflops_dense);
        assert!(r3090.mem_bandwidth_gbps > s4070.mem_bandwidth_gbps);
        // A100 is memory-rich relative to the Ada cards (lower ridge point).
        assert!(a100.ridge_point_dense() < s4070.ridge_point_dense());
    }

    #[test]
    fn bandwidth_helpers_are_positive_and_ordered() {
        for d in DeviceSpec::portability_set() {
            assert!(d.shared_bandwidth_gbps() > d.mem_bandwidth_gbps);
            assert!(d.l2_bandwidth_gbps() > d.mem_bandwidth_gbps);
            assert!(d.ridge_point_dense() > 0.0);
        }
    }

    #[test]
    fn interconnect_presets_separate_fabric_from_pcie() {
        // Consumer cards cross PCIe; datacenter parts have a fabric that is
        // an order of magnitude faster and lower latency.
        assert_eq!(
            DeviceSpec::rtx4070_super().interconnect,
            Interconnect::PcieGen4
        );
        assert_eq!(DeviceSpec::rtx4090().interconnect, Interconnect::PcieGen4);
        assert_eq!(DeviceSpec::a100_40g().interconnect, Interconnect::Nvlink3);
        assert_eq!(DeviceSpec::h100().interconnect, Interconnect::Nvlink4);
        let pcie = Interconnect::PcieGen4;
        let nvlink = Interconnect::Nvlink3;
        assert!(nvlink.bandwidth_gbps() > 5.0 * pcie.bandwidth_gbps());
        assert!(nvlink.latency_us() < pcie.latency_us());
        for link in [
            Interconnect::PcieGen4,
            Interconnect::Nvlink3,
            Interconnect::Nvlink4,
            Interconnect::InfinityFabric,
            Interconnect::InfiniBandNdr,
        ] {
            assert!(link.bandwidth_gbps() > 0.0);
            assert!(link.latency_us() > 0.0);
            assert!(!link.name().is_empty());
            assert!(link.node_radix() >= 1);
        }
    }

    #[test]
    fn node_boundary_metadata_separates_islands_from_the_spine() {
        // Intra-node fabrics bind more than one GPU into an island; the
        // spine fabric is the node boundary itself.
        assert_eq!(Interconnect::InfiniBandNdr.scope(), LinkScope::InterNode);
        assert_eq!(Interconnect::InfiniBandNdr.node_radix(), 1);
        for intra in [
            Interconnect::PcieGen4,
            Interconnect::Nvlink3,
            Interconnect::Nvlink4,
            Interconnect::InfinityFabric,
        ] {
            assert_eq!(intra.scope(), LinkScope::IntraNode);
            assert!(intra.node_radix() >= 2, "{intra:?}");
        }
        // The NDR figure is the bits-to-bytes conversion of the 400 Gb/s
        // marketing number, pinned so the doc and the database cannot
        // drift apart.
        assert_eq!(Interconnect::InfiniBandNdr.bandwidth_gbps(), 400.0 / 8.0);
        // HGX NVLink domains are 8-wide; consumer PCIe hosts carry 2 cards.
        assert_eq!(DeviceSpec::a100_40g().gpus_per_node(), 8);
        assert_eq!(DeviceSpec::h100().gpus_per_node(), 8);
        assert_eq!(DeviceSpec::rtx4070_super().gpus_per_node(), 2);
    }

    #[test]
    fn portability_set_contains_the_four_paper_gpus() {
        let names: Vec<String> = DeviceSpec::portability_set()
            .into_iter()
            .map(|d| d.name)
            .collect();
        assert_eq!(names.len(), 4);
        assert!(names.iter().any(|n| n.contains("3090")));
        assert!(names.iter().any(|n| n.contains("4070")));
        assert!(names.iter().any(|n| n.contains("4090")));
        assert!(names.iter().any(|n| n.contains("A100")));
    }
}
