//! Analytical GPU performance model for the Samoyeds reproduction.
//!
//! The paper evaluates its kernels on real NVIDIA GPUs. In this reproduction
//! the kernels are executed *functionally* on the CPU (see
//! `samoyeds-kernels`), and this crate predicts how long the same instruction
//! stream and memory traffic would take on a given GPU. The model is
//! deliberately analytical — a roofline extended with the effects the paper's
//! analysis leans on:
//!
//! * device database ([`device`]) — RTX 4070 Super (the paper's main
//!   platform), RTX 3090, RTX 4090, A100, H100 and MI300, with the
//!   SM/L2/bandwidth/tensor-core parameters that drive §6.6's portability
//!   discussion;
//! * occupancy ([`occupancy`]) — warps per SM from register / shared-memory /
//!   thread limits, plus wave quantisation (tail effect);
//! * memory hierarchy ([`memory`]) — coalescing efficiency, L2 hit modelling,
//!   shared-memory bank passes;
//! * cost model ([`cost`]) — combines a kernel's [`cost::KernelProfile`] into
//!   a predicted execution time on a [`device::DeviceSpec`];
//! * kernel statistics ([`stats`]) — the measurement record every simulated
//!   kernel returns (time, traffic, utilisation), used by all experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod device;
pub mod memory;
pub mod occupancy;
pub mod stats;

pub use cost::{CostModel, KernelProfile};
pub use device::{DeviceSpec, GpuArch, Interconnect, LinkScope};
pub use occupancy::{LaunchConfig, Occupancy};
pub use stats::KernelStats;
