//! Memory-hierarchy traffic modelling: global-memory coalescing, L2 reuse
//! and shared-memory bank behaviour.
//!
//! The quantities computed here are the ones the paper's arguments are built
//! on: I/O amplification when a VENOM-style kernel must load full input tiles
//! although only a few rows survive (§3.3, Figure 6 ➋/➌), uncoalesced access
//! when the surviving data is scattered (Figure 6 ➍), and the L2 hit-rate
//! effects behind the 4096-size throughput dip (§6.1.2).

use serde::{Deserialize, Serialize};

/// Size of one global-memory transaction in bytes (a full cache sector burst).
pub const GMEM_TRANSACTION_BYTES: usize = 128;

/// How the addresses of a warp-level global access relate to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Threads access consecutive addresses — one transaction per 128 bytes.
    Coalesced,
    /// Threads access addresses with a fixed stride of `stride_bytes`.
    Strided {
        /// Distance between consecutive threads' addresses in bytes.
        stride_bytes: usize,
    },
    /// Threads access unrelated addresses (gather) — one transaction each.
    Random,
}

impl AccessPattern {
    /// The coalescing efficiency of this pattern: the fraction of each
    /// transferred transaction that carries useful data, in `(0, 1]`.
    pub fn efficiency(&self, element_bytes: usize) -> f64 {
        match self {
            AccessPattern::Coalesced => 1.0,
            AccessPattern::Strided { stride_bytes } => {
                if *stride_bytes <= element_bytes {
                    1.0
                } else {
                    (element_bytes as f64 / *stride_bytes as f64)
                        .max(element_bytes as f64 / GMEM_TRANSACTION_BYTES as f64)
                }
            }
            AccessPattern::Random => element_bytes as f64 / GMEM_TRANSACTION_BYTES as f64,
        }
    }

    /// Number of 128-byte transactions needed to move `useful_bytes` of data
    /// with this pattern.
    pub fn transactions(&self, useful_bytes: usize, element_bytes: usize) -> usize {
        let eff = self.efficiency(element_bytes);
        let moved = useful_bytes as f64 / eff;
        (moved / GMEM_TRANSACTION_BYTES as f64).ceil() as usize
    }
}

/// Aggregate data-movement record of one kernel execution, at every level of
/// the hierarchy. Produced by the simulated kernels, consumed by the cost
/// model and reported in [`crate::stats::KernelStats`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Traffic {
    /// Useful bytes read from global memory (DRAM side, after L2 misses).
    pub gmem_read_bytes: f64,
    /// Useful bytes written to global memory.
    pub gmem_write_bytes: f64,
    /// Bytes served from L2 (reuse across thread blocks).
    pub l2_read_bytes: f64,
    /// Bytes staged through shared memory.
    pub smem_bytes: f64,
    /// Average coalescing efficiency of the global accesses, in `(0, 1]`.
    pub coalescing_efficiency: f64,
    /// Average number of serialised shared-memory bank passes (1 = ideal).
    pub smem_bank_passes: f64,
}

impl Traffic {
    /// A traffic record with ideal efficiency and no bytes moved.
    pub fn ideal() -> Self {
        Self {
            coalescing_efficiency: 1.0,
            smem_bank_passes: 1.0,
            ..Default::default()
        }
    }

    /// Total DRAM bytes (reads + writes).
    pub fn dram_bytes(&self) -> f64 {
        self.gmem_read_bytes + self.gmem_write_bytes
    }

    /// Effective DRAM bytes after dividing by coalescing efficiency (what the
    /// memory controller actually transfers).
    pub fn effective_dram_bytes(&self) -> f64 {
        let eff = if self.coalescing_efficiency > 0.0 {
            self.coalescing_efficiency
        } else {
            1.0
        };
        self.dram_bytes() / eff
    }

    /// Merge another record into this one (weighted by bytes for the
    /// efficiency fields).
    pub fn merge(&mut self, other: &Traffic) {
        let self_bytes = self.dram_bytes();
        let other_bytes = other.dram_bytes();
        let total = self_bytes + other_bytes;
        if total > 0.0 {
            self.coalescing_efficiency = (self.coalescing_efficiency.max(1e-9) * self_bytes
                + other.coalescing_efficiency.max(1e-9) * other_bytes)
                / total;
        } else {
            self.coalescing_efficiency = 1.0;
        }
        let self_smem = self.smem_bytes;
        let other_smem = other.smem_bytes;
        let total_smem = self_smem + other_smem;
        if total_smem > 0.0 {
            self.smem_bank_passes = (self.smem_bank_passes.max(1.0) * self_smem
                + other.smem_bank_passes.max(1.0) * other_smem)
                / total_smem;
        } else {
            self.smem_bank_passes = 1.0;
        }
        self.gmem_read_bytes += other.gmem_read_bytes;
        self.gmem_write_bytes += other.gmem_write_bytes;
        self.l2_read_bytes += other.l2_read_bytes;
        self.smem_bytes += other.smem_bytes;
    }
}

/// Estimate the L2 hit fraction of a tiled GEMM-like kernel: thread blocks
/// along the same output row re-read the same `A` tile and blocks along the
/// same output column re-read the same `B` tile; those re-reads hit in L2 as
/// long as the working set (one row of `A` tiles + one column of `B` tiles)
/// fits in the cache.
pub fn l2_hit_fraction(working_set_bytes: f64, l2_bytes: usize, reuse_factor: f64) -> f64 {
    if working_set_bytes <= 0.0 || reuse_factor <= 1.0 {
        return 0.0;
    }
    // Fraction of the working set that stays resident.
    let resident = (l2_bytes as f64 / working_set_bytes).min(1.0);
    // Of `reuse_factor` total touches, the first is a compulsory miss; the
    // remaining hits are scaled by how much of the set is resident.
    let hits = (reuse_factor - 1.0) * resident;
    (hits / reuse_factor).clamp(0.0, 0.99)
}

/// L2 hit fraction of a tiled GEMM whose thread blocks are scheduled in
/// waves of `concurrent_blocks` adjacent output tiles.
///
/// Within one wave the blocks form a roughly square region of the output, so
/// each `A` row panel and `B` column panel loaded from DRAM is reused by
/// about `sqrt(concurrent_blocks)` blocks — provided the wave's working set
/// (those panels) fits in L2. This captures the inter-block reuse that makes
/// vendor GEMMs DRAM-efficient, and its breakdown when the panels outgrow the
/// cache (the large-`k` / small-L2 regimes of §6.6).
pub fn tiled_gemm_l2_hit(
    k: usize,
    tile_m: usize,
    tile_n: usize,
    concurrent_blocks: usize,
    l2_bytes: usize,
) -> f64 {
    if concurrent_blocks <= 1 {
        return 0.0;
    }
    let side = (concurrent_blocks as f64).sqrt().max(1.0);
    let wave_a = side * tile_m as f64 * k as f64 * 2.0;
    let wave_b = side * tile_n as f64 * k as f64 * 2.0;
    let wave_set = wave_a + wave_b;
    let resident = (l2_bytes as f64 / wave_set.max(1.0)).min(1.0);
    ((side - 1.0) / side * resident).clamp(0.0, 0.98)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_access_is_fully_efficient() {
        let p = AccessPattern::Coalesced;
        assert_eq!(p.efficiency(2), 1.0);
        assert_eq!(p.transactions(1024, 2), 8);
    }

    #[test]
    fn strided_access_degrades_with_stride() {
        let small = AccessPattern::Strided { stride_bytes: 4 };
        let large = AccessPattern::Strided { stride_bytes: 256 };
        assert!(small.efficiency(4) > large.efficiency(4));
        assert!(large.efficiency(4) >= 4.0 / 128.0);
        // A stride no larger than the element keeps full efficiency.
        assert_eq!(
            AccessPattern::Strided { stride_bytes: 2 }.efficiency(2),
            1.0
        );
    }

    #[test]
    fn random_access_wastes_most_of_each_transaction() {
        let p = AccessPattern::Random;
        assert!((p.efficiency(2) - 2.0 / 128.0).abs() < 1e-12);
        assert!(p.transactions(256, 2) >= 128);
    }

    #[test]
    fn traffic_merge_accumulates_and_averages() {
        let mut a = Traffic {
            gmem_read_bytes: 1000.0,
            gmem_write_bytes: 0.0,
            l2_read_bytes: 500.0,
            smem_bytes: 100.0,
            coalescing_efficiency: 1.0,
            smem_bank_passes: 1.0,
        };
        let b = Traffic {
            gmem_read_bytes: 1000.0,
            gmem_write_bytes: 500.0,
            l2_read_bytes: 0.0,
            smem_bytes: 300.0,
            coalescing_efficiency: 0.5,
            smem_bank_passes: 3.0,
        };
        a.merge(&b);
        assert_eq!(a.gmem_read_bytes, 2000.0);
        assert_eq!(a.gmem_write_bytes, 500.0);
        assert_eq!(a.l2_read_bytes, 500.0);
        assert_eq!(a.smem_bytes, 400.0);
        // Weighted averages fall between the inputs.
        assert!(a.coalescing_efficiency < 1.0 && a.coalescing_efficiency > 0.5);
        assert!(a.smem_bank_passes > 1.0 && a.smem_bank_passes < 3.0);
        // Effective DRAM traffic exceeds useful traffic when uncoalesced.
        assert!(a.effective_dram_bytes() > a.dram_bytes());
    }

    #[test]
    fn ideal_traffic_is_neutral() {
        let t = Traffic::ideal();
        assert_eq!(t.dram_bytes(), 0.0);
        assert_eq!(t.coalescing_efficiency, 1.0);
        assert_eq!(t.smem_bank_passes, 1.0);
    }

    #[test]
    fn l2_hit_fraction_behaviour() {
        let l2 = 48 * 1024 * 1024;
        // Small working set with heavy reuse: high hit rate.
        let high = l2_hit_fraction(1e6, l2, 16.0);
        assert!(high > 0.8);
        // Working set much larger than L2: low hit rate.
        let low = l2_hit_fraction(1e9, l2, 16.0);
        assert!(low < 0.1);
        // No reuse: nothing can hit.
        assert_eq!(l2_hit_fraction(1e6, l2, 1.0), 0.0);
        assert_eq!(l2_hit_fraction(0.0, l2, 8.0), 0.0);
        // Monotone in reuse.
        assert!(l2_hit_fraction(1e7, l2, 32.0) >= l2_hit_fraction(1e7, l2, 4.0));
    }

    #[test]
    fn tiled_gemm_l2_hit_behaviour() {
        let l2 = 48 * 1024 * 1024;
        // A healthy wave of 112 blocks on moderate k: most panel reuse hits.
        let good = tiled_gemm_l2_hit(8192, 128, 64, 112, l2);
        assert!(good > 0.8, "good {good}");
        // A single concurrent block cannot reuse anything across blocks.
        assert_eq!(tiled_gemm_l2_hit(8192, 128, 64, 1, l2), 0.0);
        // Gigantic k blows the wave working set out of L2.
        let huge_k = tiled_gemm_l2_hit(4_000_000, 128, 64, 112, l2);
        assert!(huge_k < good);
        // Smaller L2 (3090-like) yields a lower hit rate for the same wave.
        let small_l2 = tiled_gemm_l2_hit(8192, 128, 64, 112, 6 * 1024 * 1024);
        assert!(small_l2 < good);
    }
}
