//! Occupancy and wave-quantisation modelling.
//!
//! Occupancy — how many warps are resident per SM — determines how well the
//! hardware can hide memory and pipeline latency by switching between warps.
//! The paper leans on this in §6.1.2 (throughput grows with `m`/`n` because
//! more warps become available, small kernels under-utilise the GPU) and in
//! the tail-wave discussion (performance dip at 4096, recovery at 8192).

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Threads per warp on every modeled device.
pub const WARP_SIZE: usize = 32;

/// A kernel launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub grid_blocks: usize,
    /// Threads per block.
    pub block_threads: usize,
    /// 32-bit registers used per thread.
    pub regs_per_thread: usize,
    /// Shared memory used per block in bytes.
    pub shared_bytes_per_block: usize,
}

/// The occupancy achieved by a launch on a particular device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Thread blocks resident per SM.
    pub blocks_per_sm: usize,
    /// Warps resident per SM.
    pub warps_per_sm: usize,
    /// Fraction of the device's maximum resident warps, in `[0, 1]`.
    pub fraction: f64,
    /// Number of waves needed to execute the whole grid.
    pub waves: usize,
    /// Efficiency lost to the final partial wave, in `(0, 1]`. 1.0 means the
    /// grid fills every wave exactly.
    pub tail_efficiency: f64,
}

impl Occupancy {
    /// Compute the occupancy of `launch` on `device`.
    pub fn compute(device: &DeviceSpec, launch: &LaunchConfig) -> Occupancy {
        let block_threads = launch.block_threads.max(WARP_SIZE);
        let warps_per_block = block_threads.div_ceil(WARP_SIZE);

        // Limit 1: threads per SM.
        let limit_threads = device.max_threads_per_sm / block_threads;
        // Limit 2: registers per SM (allocated per warp, 256-register
        // granularity approximated away).
        let regs_per_block = launch.regs_per_thread.max(16) * block_threads;
        let limit_regs = device
            .registers_per_sm
            .checked_div(regs_per_block)
            .unwrap_or(device.max_blocks_per_sm);
        // Limit 3: shared memory per SM.
        let limit_shared = device
            .shared_mem_per_sm
            .checked_div(launch.shared_bytes_per_block)
            .unwrap_or(device.max_blocks_per_sm);
        // Limit 4: hardware block slots.
        let blocks_per_sm = limit_threads
            .min(limit_regs)
            .min(limit_shared)
            .min(device.max_blocks_per_sm);

        let warps_per_sm = blocks_per_sm * warps_per_block;
        let max_warps = device.max_threads_per_sm / WARP_SIZE;
        let fraction = if max_warps == 0 {
            0.0
        } else {
            (warps_per_sm as f64 / max_warps as f64).min(1.0)
        };

        // Wave quantisation.
        let concurrent_blocks = (blocks_per_sm * device.sm_count).max(1);
        let waves = launch.grid_blocks.div_ceil(concurrent_blocks).max(1);
        let tail_efficiency = if launch.grid_blocks == 0 {
            1.0
        } else {
            launch.grid_blocks as f64 / (waves * concurrent_blocks) as f64
        };

        Occupancy {
            blocks_per_sm,
            warps_per_sm,
            fraction,
            waves,
            tail_efficiency: tail_efficiency.min(1.0),
        }
    }

    /// A latency-hiding multiplier in `(0, 1]`: with plentiful resident warps
    /// the SM can cover instruction and memory latency (multiplier 1); with
    /// very few warps the pipeline exposes stalls. The 25%-occupancy knee
    /// follows the usual CUDA guidance that a handful of warps per scheduler
    /// suffices for arithmetic-bound kernels.
    pub fn latency_hiding_factor(&self) -> f64 {
        let knee = 0.25;
        if self.fraction >= knee {
            1.0
        } else if self.fraction <= 0.0 {
            0.1
        } else {
            0.1 + 0.9 * (self.fraction / knee)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::rtx4070_super()
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let launch = LaunchConfig {
            grid_blocks: 1000,
            block_threads: 128,
            regs_per_thread: 64,
            shared_bytes_per_block: 48 * 1024,
        };
        let occ = Occupancy::compute(&dev(), &launch);
        // 100 KiB of shared memory fits two 48 KiB blocks.
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.warps_per_sm, 8);
        assert!(occ.fraction > 0.15 && occ.fraction < 0.2);
    }

    #[test]
    fn occupancy_limited_by_registers() {
        let launch = LaunchConfig {
            grid_blocks: 1000,
            block_threads: 256,
            regs_per_thread: 255,
            shared_bytes_per_block: 1024,
        };
        let occ = Occupancy::compute(&dev(), &launch);
        // 255 regs x 256 threads = 65280 regs, only one block fits.
        assert_eq!(occ.blocks_per_sm, 1);
    }

    #[test]
    fn occupancy_limited_by_threads() {
        let launch = LaunchConfig {
            grid_blocks: 10,
            block_threads: 1024,
            regs_per_thread: 32,
            shared_bytes_per_block: 0,
        };
        let occ = Occupancy::compute(&dev(), &launch);
        // 1536 threads/SM allows only one 1024-thread block.
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.warps_per_sm, 32);
    }

    #[test]
    fn wave_quantisation_and_tail() {
        let launch = LaunchConfig {
            grid_blocks: 57, // one more than the SM count with 1 block/SM
            block_threads: 1024,
            regs_per_thread: 64,
            shared_bytes_per_block: 90 * 1024,
        };
        let occ = Occupancy::compute(&dev(), &launch);
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.waves, 2);
        assert!(occ.tail_efficiency < 0.55);

        let launch_full = LaunchConfig {
            grid_blocks: 112,
            ..launch
        };
        let occ_full = Occupancy::compute(&dev(), &launch_full);
        assert_eq!(occ_full.waves, 2);
        assert!((occ_full.tail_efficiency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_hiding_saturates_above_knee() {
        let high = Occupancy {
            blocks_per_sm: 8,
            warps_per_sm: 32,
            fraction: 0.67,
            waves: 1,
            tail_efficiency: 1.0,
        };
        assert_eq!(high.latency_hiding_factor(), 1.0);
        let low = Occupancy {
            blocks_per_sm: 1,
            warps_per_sm: 2,
            fraction: 0.04,
            waves: 1,
            tail_efficiency: 1.0,
        };
        assert!(low.latency_hiding_factor() < 0.5);
        assert!(low.latency_hiding_factor() > 0.0);
    }

    #[test]
    fn bigger_grids_never_reduce_tail_efficiency_to_zero() {
        for blocks in [1usize, 3, 57, 113, 1000, 4096] {
            let launch = LaunchConfig {
                grid_blocks: blocks,
                block_threads: 256,
                regs_per_thread: 64,
                shared_bytes_per_block: 32 * 1024,
            };
            let occ = Occupancy::compute(&dev(), &launch);
            assert!(occ.tail_efficiency > 0.0 && occ.tail_efficiency <= 1.0);
            assert!(occ.waves >= 1);
        }
    }
}
