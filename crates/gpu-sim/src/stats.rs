//! The measurement record returned by every simulated kernel execution.

use serde::{Deserialize, Serialize};

/// Per-execution statistics: predicted time plus the profile quantities the
/// prediction was derived from. Experiments aggregate these into the rows and
/// series of the paper's tables and figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Kernel name, e.g. `samoyeds_ssmm` or `cublas_gemm`.
    pub kernel: String,
    /// Device the prediction was made for.
    pub device: String,
    /// Predicted execution time in milliseconds.
    pub time_ms: f64,
    /// Useful floating-point operations performed.
    pub total_flops: f64,
    /// Achieved throughput in TFLOPS.
    pub achieved_tflops: f64,
    /// Useful DRAM traffic in bytes.
    pub dram_bytes: f64,
    /// DRAM traffic after coalescing inefficiency in bytes.
    pub effective_dram_bytes: f64,
    /// Bytes staged through shared memory.
    pub smem_bytes: f64,
    /// Modeled L2 hit fraction.
    pub l2_hit_fraction: f64,
    /// Modeled global-memory coalescing efficiency.
    pub coalescing_efficiency: f64,
    /// Achieved occupancy as a fraction of maximum resident warps.
    pub occupancy_fraction: f64,
    /// Number of waves the grid needed.
    pub waves: usize,
    /// Efficiency of the final (partial) wave.
    pub tail_efficiency: f64,
    /// Fraction of memory latency hidden by the software pipeline.
    pub pipeline_overlap: f64,
    /// Compute-only time in milliseconds (roofline numerator).
    pub compute_time_ms: f64,
    /// Memory-only time in milliseconds (roofline denominator).
    pub memory_time_ms: f64,
}

impl KernelStats {
    /// Speedup of `self` over `other` (ratio of their predicted times).
    pub fn speedup_over(&self, other: &KernelStats) -> f64 {
        if self.time_ms <= 0.0 {
            return f64::INFINITY;
        }
        other.time_ms / self.time_ms
    }

    /// Whether the kernel is memory-bound under the model (memory term
    /// exceeds the compute term).
    pub fn memory_bound(&self) -> bool {
        self.memory_time_ms > self.compute_time_ms
    }

    /// Throughput in tera-operations per second for a given logical operation
    /// count (used when an experiment wants to report logical rather than
    /// executed work, e.g. counting pruned FLOPs).
    pub fn logical_tflops(&self, logical_flops: f64) -> f64 {
        if self.time_ms <= 0.0 {
            return 0.0;
        }
        logical_flops / (self.time_ms * 1e-3) / 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(time_ms: f64, compute: f64, memory: f64) -> KernelStats {
        KernelStats {
            kernel: "k".into(),
            device: "d".into(),
            time_ms,
            total_flops: 1e12,
            achieved_tflops: 1.0,
            dram_bytes: 1e9,
            effective_dram_bytes: 1e9,
            smem_bytes: 0.0,
            l2_hit_fraction: 0.0,
            coalescing_efficiency: 1.0,
            occupancy_fraction: 0.5,
            waves: 1,
            tail_efficiency: 1.0,
            pipeline_overlap: 0.9,
            compute_time_ms: compute,
            memory_time_ms: memory,
        }
    }

    #[test]
    fn speedup_is_ratio_of_times() {
        let fast = stats(1.0, 0.5, 0.4);
        let slow = stats(2.0, 1.0, 0.8);
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.5).abs() < 1e-12);
        assert_eq!(stats(0.0, 0.0, 0.0).speedup_over(&fast), f64::INFINITY);
    }

    #[test]
    fn memory_bound_classification() {
        assert!(stats(1.0, 0.2, 0.8).memory_bound());
        assert!(!stats(1.0, 0.8, 0.2).memory_bound());
    }

    #[test]
    fn logical_tflops_uses_supplied_count() {
        let s = stats(1.0, 0.5, 0.5);
        // 2e12 FLOPs in 1 ms is 2e15 FLOP/s = 2000 TFLOPS.
        assert!((s.logical_tflops(2e12) - 2000.0).abs() < 1e-6);
        assert_eq!(stats(0.0, 0.0, 0.0).logical_tflops(1e12), 0.0);
    }
}
