//! Tiling-configuration selection and the per-device adaptation rules of
//! §6.6 / Table 6.
//!
//! The paper observes that the kernel configuration tuned on the RTX 4070
//! Super is not optimal elsewhere: the A100's larger SM count and smaller L2
//! favour *smaller tiles*, while the RTX 3090's slower tensor cores and
//! higher memory bandwidth favour a *deeper pipeline*. [`adapt_for_device`]
//! encodes exactly those two rules; [`autotune`] does an exhaustive search
//! over a small candidate set using the cost model, which is what a real
//! autotuner would do offline.

use crate::problem::GemmProblem;
use crate::samoyeds_kernel::{SamoyedsKernel, SamoyedsOptions};
use crate::tiling::TilingConfig;
use samoyeds_gpu_sim::DeviceSpec;

/// The adaptation of Table 6 applied when porting from the development
/// platform (RTX 4070 Super) to `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adaptation {
    /// No change: the development configuration is kept.
    None,
    /// Reduce the tile size (A100: more SMs, smaller L2).
    SmallerTiles,
    /// Increase the pipeline stage count (RTX 3090: slower tensor cores,
    /// higher bandwidth).
    MoreStages,
}

/// Decide which Table-6 adaptation applies when porting the 4070S
/// configuration to `target`.
pub fn suggested_adaptation(target: &DeviceSpec) -> Adaptation {
    let reference = DeviceSpec::rtx4070_super();
    // The tensor-core/bandwidth imbalance rule is checked first: a device
    // with slower tensor cores but more bandwidth (RTX 3090) benefits from a
    // deeper pipeline regardless of its cache geometry.
    if target.tensor_tflops_dense < reference.tensor_tflops_dense
        && target.mem_bandwidth_gbps > reference.mem_bandwidth_gbps
    {
        Adaptation::MoreStages
    } else if target.sm_count > reference.sm_count && target.l2_bytes < reference.l2_bytes {
        Adaptation::SmallerTiles
    } else {
        Adaptation::None
    }
}

/// Apply the suggested adaptation to the development-platform tiling.
pub fn adapt_for_device(target: &DeviceSpec) -> TilingConfig {
    let base = TilingConfig::DEFAULT_4070S;
    let adapted = match suggested_adaptation(target) {
        Adaptation::None => base,
        Adaptation::SmallerTiles => TilingConfig::SMALL_TILE,
        Adaptation::MoreStages => TilingConfig::DEEP_PIPELINE,
    };
    adapted.shrink_to_fit(target, true)
}

/// Candidate tilings explored by the exhaustive autotuner.
pub fn candidate_tilings() -> Vec<TilingConfig> {
    let mut out = Vec::new();
    for (mb, nb) in [(64, 64), (128, 64), (128, 128), (64, 32), (256, 64)] {
        for stages in [2usize, 3, 4] {
            out.push(TilingConfig {
                mb,
                nb,
                kb: 32,
                mw: (mb / 2).clamp(16, 64),
                nw: (nb / 2).clamp(8, 64),
                stages,
            });
        }
    }
    out.retain(|t| t.validate(Some(32)).is_ok());
    out
}

/// Pick the fastest candidate tiling for `problem` on `device` according to
/// the cost model.
pub fn autotune(device: &DeviceSpec, problem: &GemmProblem) -> TilingConfig {
    let mut best = TilingConfig::DEFAULT_4070S.shrink_to_fit(device, true);
    let mut best_time = f64::INFINITY;
    for cand in candidate_tilings() {
        let cand = cand.shrink_to_fit(device, true);
        if !cand.fits(device, true) {
            continue;
        }
        let kernel =
            SamoyedsKernel::with_options(device.clone(), SamoyedsOptions::FULL).with_tiling(cand);
        let t = kernel.stats(problem).time_ms;
        if t < best_time {
            best_time = t;
            best = cand;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use samoyeds_sparse::samoyeds::SamoyedsConfig;

    #[test]
    fn table6_adaptations_are_recovered() {
        assert_eq!(
            suggested_adaptation(&DeviceSpec::a100_40g()),
            Adaptation::SmallerTiles
        );
        assert_eq!(
            suggested_adaptation(&DeviceSpec::rtx3090()),
            Adaptation::MoreStages
        );
        assert_eq!(
            suggested_adaptation(&DeviceSpec::rtx4070_super()),
            Adaptation::None
        );
    }

    #[test]
    fn adapted_configs_differ_from_the_base_where_expected() {
        let a100 = adapt_for_device(&DeviceSpec::a100_40g());
        assert!(a100.mb < TilingConfig::DEFAULT_4070S.mb);
        let r3090 = adapt_for_device(&DeviceSpec::rtx3090());
        assert!(r3090.stages > TilingConfig::DEFAULT_4070S.stages);
        let same = adapt_for_device(&DeviceSpec::rtx4070_super());
        assert_eq!(same, TilingConfig::DEFAULT_4070S);
    }

    #[test]
    fn candidates_are_all_valid_and_nonempty() {
        let c = candidate_tilings();
        assert!(c.len() >= 10);
        for t in &c {
            t.validate(Some(32)).unwrap();
        }
    }

    #[test]
    fn autotune_never_picks_something_slower_than_the_default() {
        let device = DeviceSpec::a100_40g();
        let problem = GemmProblem::samoyeds(4096, 4096, 2048, 1024, SamoyedsConfig::DEFAULT);
        let tuned = autotune(&device, &problem);
        let default_kernel = SamoyedsKernel::new(device.clone());
        let tuned_kernel = SamoyedsKernel::new(device).with_tiling(tuned);
        assert!(
            tuned_kernel.stats(&problem).time_ms <= default_kernel.stats(&problem).time_ms + 1e-9
        );
    }

    #[test]
    fn autotune_prefers_smaller_tiles_for_small_problems() {
        let device = DeviceSpec::rtx4070_super();
        let small = GemmProblem::samoyeds(256, 1024, 256, 256, SamoyedsConfig::DEFAULT);
        let tuned = autotune(&device, &small);
        // A 256x256 output cannot fill 128x64 tiles across 56 SMs; the tuner
        // should pick something no larger than the default block tile.
        assert!(
            tuned.mb * tuned.nb <= TilingConfig::DEFAULT_4070S.mb * TilingConfig::DEFAULT_4070S.nb
        );
    }
}
