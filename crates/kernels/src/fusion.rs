//! Operator fusion for the MoE expert epilogue (§4.3, last paragraph).
//!
//! The Samoyeds kernel fuses the activation function with its producing
//! projection, and the weighted accumulation (router weight broadcast + dot
//! product) with the final projection. Fusion removes one full round-trip of
//! the intermediate tensor through global memory per fused operator and
//! eliminates the extra kernel launch.

use samoyeds_gpu_sim::KernelProfile;
use samoyeds_sparse::DenseMatrix;
use serde::{Deserialize, Serialize};

/// Activation functions used by the evaluated MoE models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// SiLU / swish (Mixtral, Qwen2-MoE, DeepSeek-MoE, MiniCPM-MoE).
    Silu,
    /// GELU (tanh approximation).
    Gelu,
    /// SwiGLU-style gated activation computed outside (identity here).
    Identity,
    /// ReLU (OpenMoE's distinct activation that MegaBlocks / vLLM-DS kernels
    /// do not support — the `NS` entries of Figure 14).
    Relu,
}

impl Activation {
    /// Apply the activation to a scalar.
    pub fn apply(&self, x: f32) -> f32 {
        match self {
            Activation::Silu => x / (1.0 + (-x).exp()),
            Activation::Gelu => 0.5 * x * (1.0 + (0.797_884_6 * (x + 0.044715 * x * x * x)).tanh()),
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
        }
    }

    /// Apply element-wise to a matrix.
    pub fn apply_matrix(&self, m: &DenseMatrix) -> DenseMatrix {
        m.map(|x| self.apply(x))
    }

    /// FLOPs charged per element for this activation when it runs as its own
    /// CUDA-core pass.
    pub fn flops_per_element(&self) -> f64 {
        match self {
            Activation::Silu => 6.0,
            Activation::Gelu => 10.0,
            Activation::Identity => 0.0,
            Activation::Relu => 1.0,
        }
    }
}

/// Fuse an element-wise epilogue (activation over an `m x n` bf16 tensor)
/// into a producing kernel's profile: the epilogue FLOPs are added to the
/// CUDA-core stream but the intermediate write + re-read disappears.
pub fn fuse_elementwise_epilogue(profile: &mut KernelProfile, m: usize, n: usize, act: Activation) {
    profile.flops_cuda += act.flops_per_element() * (m * n) as f64;
    // No extra traffic: the values are transformed while still in registers.
}

/// The cost of running the same epilogue as a standalone kernel: read the
/// intermediate, write the result, plus a launch overhead. Returns
/// `(extra_read_bytes, extra_write_bytes, extra_cuda_flops, overhead_us)`.
pub fn standalone_epilogue_cost(m: usize, n: usize, act: Activation) -> (f64, f64, f64, f64) {
    let bytes = (m * n) as f64 * 2.0;
    (bytes, bytes, act.flops_per_element() * (m * n) as f64, 5.0)
}

/// Fuse the weighted-accumulation epilogue (scale each output column by its
/// router weight and accumulate into the shared output) into the profile.
pub fn fuse_weighted_accumulation(profile: &mut KernelProfile, m: usize, n: usize) {
    // One multiply + one add per element, still on the CUDA cores, and the
    // accumulation target is written once (already counted by the producing
    // kernel) instead of read-modify-written by a separate kernel.
    profile.flops_cuda += 2.0 * (m * n) as f64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use samoyeds_gpu_sim::LaunchConfig;

    fn launch() -> LaunchConfig {
        LaunchConfig {
            grid_blocks: 64,
            block_threads: 128,
            regs_per_thread: 128,
            shared_bytes_per_block: 32 * 1024,
        }
    }

    #[test]
    fn activation_values_are_sane() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Identity.apply(3.5), 3.5);
        // SiLU(0) = 0, SiLU(large) ~ large.
        assert_eq!(Activation::Silu.apply(0.0), 0.0);
        assert!((Activation::Silu.apply(10.0) - 10.0).abs() < 1e-2);
        // GELU(0) = 0 and is monotone around the origin.
        assert_eq!(Activation::Gelu.apply(0.0), 0.0);
        assert!(Activation::Gelu.apply(1.0) > Activation::Gelu.apply(-1.0));
    }

    #[test]
    fn apply_matrix_is_elementwise() {
        let m = DenseMatrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]).unwrap();
        let r = Activation::Relu.apply_matrix(&m);
        assert_eq!(r.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn fusing_adds_flops_but_no_traffic() {
        let mut p = KernelProfile::empty("k", launch());
        let before_traffic = p.traffic.dram_bytes();
        fuse_elementwise_epilogue(&mut p, 128, 256, Activation::Silu);
        assert!(p.flops_cuda > 0.0);
        assert_eq!(p.traffic.dram_bytes(), before_traffic);
        fuse_weighted_accumulation(&mut p, 128, 256);
        assert!(p.flops_cuda >= 6.0 * 128.0 * 256.0 + 2.0 * 128.0 * 256.0);
    }

    #[test]
    fn standalone_epilogue_costs_a_round_trip() {
        let (r, w, f, o) = standalone_epilogue_cost(128, 256, Activation::Gelu);
        assert_eq!(r, 128.0 * 256.0 * 2.0);
        assert_eq!(w, r);
        assert!(f > 0.0);
        assert!(o > 0.0);
    }

    #[test]
    fn identity_epilogue_is_free_compute() {
        assert_eq!(Activation::Identity.flops_per_element(), 0.0);
    }
}
