//! Dense GEMM kernel standing in for cuBLAS.
//!
//! cuBLAS is the vendor-tuned dense baseline of §6.1: it runs on the dense
//! tensor cores, enjoys near-ideal memory behaviour (hand-tuned tiling,
//! swizzled shared memory, deep software pipelines), but performs the full
//! `2*m*k*n` FLOPs regardless of any sparsity in the operands.

use crate::problem::GemmProblem;
use crate::tiling::TilingConfig;
use samoyeds_gpu_sim::memory::tiled_gemm_l2_hit;
use samoyeds_gpu_sim::{CostModel, DeviceSpec, KernelProfile, KernelStats, Occupancy};
use samoyeds_sparse::{DenseMatrix, Result};

/// Simulated cuBLAS-like dense GEMM.
#[derive(Debug, Clone)]
pub struct DenseGemm {
    device: DeviceSpec,
    tiling: TilingConfig,
}

impl DenseGemm {
    /// Create the kernel for a device with the default (vendor-quality)
    /// tiling.
    pub fn new(device: DeviceSpec) -> Self {
        let tiling = TilingConfig::VENDOR_LARGE.shrink_to_fit(&device, false);
        Self { device, tiling }
    }

    /// The device this kernel targets.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Build the performance profile for a problem (uses all `n` logical
    /// columns: a dense kernel cannot exploit routing sparsity).
    pub fn profile(&self, problem: &GemmProblem) -> KernelProfile {
        let (m, k, n) = (problem.m, problem.k, problem.n);
        let t = self.tiling;
        let launch = t.launch_for(m, n, false);

        let mut p = KernelProfile::empty("cublas_gemm", launch);
        p.flops_tensor_dense = 2.0 * m as f64 * k as f64 * n as f64;

        // Tile traffic: every block walks the whole K dimension.
        let k_steps = (k as f64 / t.kb as f64).ceil().max(1.0);
        let per_block = (t.mb * t.kb + t.kb * t.nb) as f64 * 2.0;
        let total_reads = launch.grid_blocks as f64 * k_steps * per_block;
        p.traffic.gmem_read_bytes = total_reads;
        p.traffic.gmem_write_bytes = (m * n) as f64 * 2.0;
        p.traffic.smem_bytes = total_reads;
        p.traffic.coalescing_efficiency = 1.0;
        p.traffic.smem_bank_passes = 1.0;
        let occ = Occupancy::compute(&self.device, &launch);
        let concurrent = occ.blocks_per_sm * self.device.sm_count;
        p.l2_hit_fraction = tiled_gemm_l2_hit(k, t.mb, t.nb, concurrent, self.device.l2_bytes);

        // Vendor-library quality.
        p.compute_efficiency = 0.85;
        p.pipeline_overlap = 0.92;
        p.fixed_overhead_us = 5.0;
        p
    }

    /// Predicted statistics for a problem.
    pub fn stats(&self, problem: &GemmProblem) -> KernelStats {
        CostModel::new(self.device.clone()).evaluate(&self.profile(problem))
    }

    /// Functionally execute `C = A * B` and return the result together with
    /// the predicted statistics.
    pub fn execute(&self, a: &DenseMatrix, b: &DenseMatrix) -> Result<(DenseMatrix, KernelStats)> {
        let out = a.matmul(b)?;
        let problem = GemmProblem::dense(a.rows(), a.cols(), b.cols());
        Ok((out, self.stats(&problem)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_matches_reference() {
        let kernel = DenseGemm::new(DeviceSpec::rtx4070_super());
        let a = DenseMatrix::random(64, 96, 1);
        let b = DenseMatrix::random(96, 48, 2);
        let (c, stats) = kernel.execute(&a, &b).unwrap();
        assert!(c.allclose(&a.matmul(&b).unwrap(), 1e-5, 1e-5));
        assert!(stats.time_ms > 0.0);
        assert_eq!(stats.kernel, "cublas_gemm");
    }

    #[test]
    fn throughput_grows_with_size_then_saturates() {
        let kernel = DenseGemm::new(DeviceSpec::rtx4070_super());
        let mut last = 0.0;
        let mut tflops = Vec::new();
        for size in [256usize, 1024, 4096, 8192] {
            let s = kernel.stats(&GemmProblem::dense(size, size, size));
            tflops.push(s.achieved_tflops);
            assert!(s.achieved_tflops <= kernel.device().tensor_tflops_dense);
            last = s.achieved_tflops;
        }
        assert!(tflops[1] > tflops[0]);
        assert!(last > 0.3 * kernel.device().tensor_tflops_dense);
    }

    #[test]
    fn dense_kernel_ignores_input_sparsity() {
        let kernel = DenseGemm::new(DeviceSpec::rtx4070_super());
        let dense_problem = GemmProblem::dense(2048, 2048, 2048);
        let mut routed = dense_problem;
        routed.selected_n = 256;
        let a = kernel.stats(&dense_problem);
        let b = kernel.stats(&routed);
        assert!((a.time_ms - b.time_ms).abs() / a.time_ms < 1e-9);
    }

    #[test]
    fn profile_shapes_are_consistent() {
        let kernel = DenseGemm::new(DeviceSpec::a100_40g());
        let p = kernel.profile(&GemmProblem::dense(4096, 4096, 4096));
        assert_eq!(p.flops_tensor_sparse, 0.0);
        assert!(p.flops_tensor_dense > 0.0);
        assert!(p.traffic.gmem_read_bytes >= (4096.0f64 * 4096.0 * 2.0) * 2.0);
        assert!(p.l2_hit_fraction >= 0.0 && p.l2_hit_fraction < 1.0);
    }
}
