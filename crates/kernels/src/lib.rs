//! Simulated GPU matrix-multiplication kernels.
//!
//! Each kernel in this crate plays the role of one of the libraries compared
//! in the paper's evaluation (§6.1):
//!
//! | module | stands in for | operands |
//! |---|---|---|
//! | [`gemm_dense`] | cuBLAS | dense x dense |
//! | [`spmm_csr`] | Sputnik | unstructured CSR x dense |
//! | [`spmm_nm`] | cuSPARSELt | 2:4 x dense |
//! | [`spmm_venom`] | VENOM | V:N:M x dense |
//! | [`samoyeds_kernel`] | Samoyeds (this paper) | (N,M,V) weight x SEL-sparse input |
//!
//! Every kernel provides the same two things:
//!
//! * an `execute(..)` entry point that computes a numerically correct result
//!   on the CPU (validated against the dense reference in the test suites),
//!   and
//! * a `profile(..)` entry point that derives the kernel's
//!   [`samoyeds_gpu_sim::KernelProfile`] (FLOPs, traffic, launch shape,
//!   pipeline behaviour) from the problem dimensions alone, which the cost
//!   model turns into a predicted GPU execution time.
//!
//! Keeping the two separate lets the correctness tests use small matrices
//! while the benchmark harness sweeps the paper's full 238-point size grid
//! analytically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autotune;
pub mod fusion;
pub mod gemm_dense;
pub mod problem;
pub mod samoyeds_kernel;
pub mod spmm_csr;
pub mod spmm_nm;
pub mod spmm_venom;
pub mod tiling;

pub use problem::{GemmProblem, SparsityKind};
pub use samoyeds_kernel::{SamoyedsKernel, SamoyedsOptions};
pub use tiling::TilingConfig;
