//! Description of the matrix-multiplication problems the kernels solve.

use samoyeds_sparse::samoyeds::SamoyedsConfig;
use serde::{Deserialize, Serialize};

/// The weight-side sparsity a kernel exploits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SparsityKind {
    /// Dense weights (cuBLAS baseline).
    Dense,
    /// Unstructured sparsity at the given ratio (Sputnik baseline).
    Unstructured {
        /// Fraction of zero weights in `[0, 1)`.
        sparsity: f64,
    },
    /// Hardware 2:4 sparsity (cuSPARSELt baseline), i.e. 50%.
    TwoFour,
    /// VENOM V:N:M sparsity at the given total ratio.
    Venom {
        /// Total fraction of zero weights (vector + 2:4 combined).
        sparsity: f64,
    },
    /// Samoyeds (N,M,V) sparsity.
    Samoyeds(SamoyedsConfig),
}

impl SparsityKind {
    /// Fraction of the logical weight values that survives pruning.
    pub fn keep_fraction(&self) -> f64 {
        match self {
            SparsityKind::Dense => 1.0,
            SparsityKind::Unstructured { sparsity } => 1.0 - sparsity,
            SparsityKind::TwoFour => 0.5,
            SparsityKind::Venom { sparsity } => 1.0 - sparsity,
            SparsityKind::Samoyeds(cfg) => 1.0 - cfg.sparsity(),
        }
    }
}

/// One `C[m x n] = A[m x k] * B[k x n]` problem, with optional input-side
/// column sparsity (the MoE routing selection).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GemmProblem {
    /// Output rows (weight rows in the MoE expert projection).
    pub m: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Logical output columns (tokens in the MoE layer).
    pub n: usize,
    /// Number of input columns that are actually selected by routing
    /// (`len_d` in Figure 8). Equal to `n` when the input is dense.
    pub selected_n: usize,
    /// Weight-side sparsity.
    pub weight_sparsity: SparsityKind,
}

impl GemmProblem {
    /// A dense problem (all columns selected, dense weights).
    pub fn dense(m: usize, k: usize, n: usize) -> Self {
        Self {
            m,
            k,
            n,
            selected_n: n,
            weight_sparsity: SparsityKind::Dense,
        }
    }

    /// A Samoyeds dual-side sparse problem.
    pub fn samoyeds(m: usize, k: usize, n: usize, selected_n: usize, cfg: SamoyedsConfig) -> Self {
        Self {
            m,
            k,
            n,
            selected_n: selected_n.min(n),
            weight_sparsity: SparsityKind::Samoyeds(cfg),
        }
    }

    /// Logical FLOPs of the dense-equivalent product over the *selected*
    /// columns (`2 * m * k * selected_n`).
    pub fn logical_flops(&self) -> f64 {
        2.0 * self.m as f64 * self.k as f64 * self.selected_n as f64
    }

    /// Logical FLOPs if every column of the input were computed.
    pub fn full_flops(&self) -> f64 {
        2.0 * self.m as f64 * self.k as f64 * self.n as f64
    }

    /// Fraction of input columns selected.
    pub fn input_density(&self) -> f64 {
        if self.n == 0 {
            return 1.0;
        }
        self.selected_n as f64 / self.n as f64
    }

    /// Dense weight bytes (bf16).
    pub fn weight_bytes_dense(&self) -> f64 {
        (self.m * self.k * 2) as f64
    }

    /// Dense input bytes over all logical columns (bf16).
    pub fn input_bytes_dense(&self) -> f64 {
        (self.k * self.n * 2) as f64
    }

    /// Output bytes over the selected columns (bf16).
    pub fn output_bytes_selected(&self) -> f64 {
        (self.m * self.selected_n * 2) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_fraction_per_kind() {
        assert_eq!(SparsityKind::Dense.keep_fraction(), 1.0);
        assert_eq!(SparsityKind::TwoFour.keep_fraction(), 0.5);
        assert!((SparsityKind::Unstructured { sparsity: 0.9 }.keep_fraction() - 0.1).abs() < 1e-12);
        assert!(
            (SparsityKind::Samoyeds(SamoyedsConfig::DEFAULT).keep_fraction() - 0.25).abs() < 1e-12
        );
        assert!((SparsityKind::Venom { sparsity: 0.75 }.keep_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn problem_flop_accounting() {
        let p = GemmProblem::dense(128, 256, 512);
        assert_eq!(p.logical_flops(), 2.0 * 128.0 * 256.0 * 512.0);
        assert_eq!(p.logical_flops(), p.full_flops());
        assert_eq!(p.input_density(), 1.0);

        let sp = GemmProblem::samoyeds(128, 256, 512, 128, SamoyedsConfig::DEFAULT);
        assert_eq!(sp.selected_n, 128);
        assert!((sp.input_density() - 0.25).abs() < 1e-12);
        assert!(sp.logical_flops() < sp.full_flops());
    }

    #[test]
    fn byte_accounting_uses_bf16() {
        let p = GemmProblem::dense(64, 128, 32);
        assert_eq!(p.weight_bytes_dense(), 64.0 * 128.0 * 2.0);
        assert_eq!(p.input_bytes_dense(), 128.0 * 32.0 * 2.0);
        assert_eq!(p.output_bytes_selected(), 64.0 * 32.0 * 2.0);
    }

    #[test]
    fn selected_n_is_clamped_to_n() {
        let p = GemmProblem::samoyeds(64, 64, 32, 100, SamoyedsConfig::DEFAULT);
        assert_eq!(p.selected_n, 32);
    }
}
