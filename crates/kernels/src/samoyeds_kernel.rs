//! The Samoyeds dual-side sparse-sparse matrix-multiplication kernel
//! (Algorithm 1), with every optimisation of §4 individually toggleable so
//! that the breakdown (Figure 17) and ablation studies can be reproduced.
//!
//! The functional path executes the kernel the way the GPU would: block tiles
//! over the compressed weight, `mma.sp.m16n8k32` fragments inside, and the
//! data-stationary scatter of partial accumulators into the correct output
//! rows at every Sub-Row boundary (Figure 9). The performance path derives a
//! [`KernelProfile`] from the problem shape and the enabled optimisations.

use crate::problem::GemmProblem;
use crate::tiling::TilingConfig;
use samoyeds_gpu_sim::memory::tiled_gemm_l2_hit;
use samoyeds_gpu_sim::{CostModel, DeviceSpec, KernelProfile, KernelStats, Occupancy};
use samoyeds_sparse::{DenseMatrix, Result, SamoyedsWeight, SelInput, SparseError, SparseFormat};
use samoyeds_sptc::ldmatrix::{staging_report, SharedLayout};
use samoyeds_sptc::mma::{mma_sp_m16n8k32, MmaTile, SparseATile, MMA_K_SPARSE, MMA_M, MMA_N};

/// Which of the §4 optimisations are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamoyedsOptions {
    /// Consume the routing selection (`SEL`) directly instead of a gathered
    /// input copy (§3.1 / §4.1 input side). Off = the "+W" configuration of
    /// the breakdown.
    pub input_sparsity: bool,
    /// Compressed output layout and in-kernel transposition (§4.5).
    pub optimized_layout: bool,
    /// Intermediate-register accumulation with the Sub-Row shuffle (§4.3);
    /// off = accumulators spill to local memory when Sub-Rows change.
    pub data_stationary: bool,
    /// Reorganised 2-bit metadata packing (§4.4).
    pub metadata_packing: bool,
    /// Swizzled shared-memory staging to avoid bank conflicts (§4.4).
    pub swizzled_smem: bool,
}

impl SamoyedsOptions {
    /// Everything on — the full Samoyeds kernel.
    pub const FULL: SamoyedsOptions = SamoyedsOptions {
        input_sparsity: true,
        optimized_layout: true,
        data_stationary: true,
        metadata_packing: true,
        swizzled_smem: true,
    };

    /// Weight sparsity only (the `Samoyeds+W` breakdown point): sparse-dense
    /// kernel inside the conventional permute/un-permute data flow.
    pub const WEIGHT_ONLY: SamoyedsOptions = SamoyedsOptions {
        input_sparsity: false,
        optimized_layout: false,
        data_stationary: false,
        metadata_packing: true,
        swizzled_smem: true,
    };

    /// Weight + input sparsity (`Samoyeds+WI`).
    pub const WEIGHT_INPUT: SamoyedsOptions = SamoyedsOptions {
        input_sparsity: true,
        optimized_layout: false,
        data_stationary: false,
        metadata_packing: true,
        swizzled_smem: true,
    };

    /// Weight + input sparsity + layout (`Samoyeds+WIT`).
    pub const WEIGHT_INPUT_LAYOUT: SamoyedsOptions = SamoyedsOptions {
        input_sparsity: true,
        optimized_layout: true,
        data_stationary: false,
        metadata_packing: true,
        swizzled_smem: true,
    };
}

impl Default for SamoyedsOptions {
    fn default() -> Self {
        Self::FULL
    }
}

/// The Samoyeds sparse-sparse matrix-multiplication kernel.
#[derive(Debug, Clone)]
pub struct SamoyedsKernel {
    device: DeviceSpec,
    tiling: TilingConfig,
    options: SamoyedsOptions,
}

impl SamoyedsKernel {
    /// Create the full kernel for a device with the default tiling.
    pub fn new(device: DeviceSpec) -> Self {
        Self::with_options(device, SamoyedsOptions::FULL)
    }

    /// Create the kernel with explicit optimisation toggles.
    pub fn with_options(device: DeviceSpec, options: SamoyedsOptions) -> Self {
        let tiling = TilingConfig::DEFAULT_4070S.shrink_to_fit(&device, true);
        Self {
            device,
            tiling,
            options,
        }
    }

    /// Override the tiling configuration (used by the autotuner and the
    /// portability experiments).
    pub fn with_tiling(mut self, tiling: TilingConfig) -> Self {
        self.tiling = tiling;
        self
    }

    /// The device this kernel targets.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The active optimisation set.
    pub fn options(&self) -> SamoyedsOptions {
        self.options
    }

    /// The active tiling configuration.
    pub fn tiling(&self) -> TilingConfig {
        self.tiling
    }

    /// Weight keep-fraction for a problem (N/M of the Samoyeds config, 1.0
    /// for non-Samoyeds sparsity kinds).
    fn weight_keep(problem: &GemmProblem) -> f64 {
        match problem.weight_sparsity {
            crate::problem::SparsityKind::Samoyeds(cfg) => cfg.n as f64 / cfg.m as f64,
            other => other.keep_fraction() * 2.0, // undo the 2:4 half, handled by mma.sp
        }
        .clamp(0.05, 1.0)
    }

    /// Build the performance profile for a problem.
    pub fn profile(&self, problem: &GemmProblem) -> KernelProfile {
        let (m, k) = (problem.m, problem.k);
        let cols = if self.options.input_sparsity {
            problem.selected_n
        } else {
            problem.n
        };
        let keep = Self::weight_keep(problem);
        let t = self.tiling;
        let launch = t.launch_for(m, cols, true);

        let mut p = KernelProfile::empty("samoyeds_ssmm", launch);
        // The surviving Sub-Rows are retired through mma.sp; the pruned ones
        // are skipped entirely.
        p.flops_tensor_sparse = 2.0 * m as f64 * k as f64 * cols as f64 * keep;

        let k_steps = (k as f64 * keep / t.kb as f64).ceil().max(1.0);
        // Compressed A tile: half the values (2:4) + 2-bit metadata + the
        // Sub-Row indices (1 byte per V-wide window per row).
        let sub_row_v = match problem.weight_sparsity {
            crate::problem::SparsityKind::Samoyeds(cfg) => cfg.v,
            _ => 32,
        } as f64;
        let meta_factor = if self.options.metadata_packing {
            0.125
        } else {
            0.5
        };
        let a_tile = (t.mb * t.kb) as f64 * (2.0 * 0.5 + meta_factor)
            + t.mb as f64 * (t.kb as f64 / sub_row_v);
        let b_tile = (t.kb * t.nb) as f64 * 2.0;
        let total_reads = launch.grid_blocks as f64 * k_steps * (a_tile + b_tile);

        p.traffic.gmem_read_bytes = total_reads;
        // Compressed output layout writes only the selected columns; without
        // it the kernel writes the full logical width and pays the explicit
        // input/output transposition passes of §4.5.
        p.traffic.gmem_write_bytes = (m * cols) as f64 * 2.0;
        if !self.options.optimized_layout {
            // Without the optimized layout the kernel pays the explicit
            // input and output transposition passes of §4.5 (reads + writes
            // of the operands outside the kernel).
            let transpose_extra = (k * cols) as f64 * 2.0 * 2.0 + (m * cols) as f64 * 2.0 * 2.0;
            p.traffic.gmem_read_bytes += transpose_extra * 0.5;
            p.traffic.gmem_write_bytes += transpose_extra * 0.5;
        }
        p.traffic.smem_bytes = total_reads;

        // Without the data-stationary registers the accumulators spill to
        // local memory at every Sub-Row boundary.
        if !self.options.data_stationary {
            // Each Sub-Row boundary forces the accumulators of the active
            // tiles to take a round trip through local memory; the L1/L2
            // capture most of it, so the exposed cost grows sub-linearly with
            // the number of boundaries.
            let boundaries = (k as f64 * keep / sub_row_v).ceil().max(1.0);
            let spill_round_trips = boundaries.sqrt().min(6.0);
            let spill_bytes = (m * cols) as f64 * 4.0 * 2.0 * spill_round_trips;
            p.traffic.gmem_read_bytes += spill_bytes * 0.5;
            p.traffic.gmem_write_bytes += spill_bytes * 0.5;
        }

        let layout = if self.options.swizzled_smem {
            SharedLayout::Swizzled
        } else {
            SharedLayout::Naive
        };
        p.traffic.smem_bank_passes = staging_report(layout, t.kb, t.nb).passes as f64;
        p.traffic.coalescing_efficiency = if self.options.metadata_packing {
            1.0
        } else {
            0.8
        };
        let occ = Occupancy::compute(&self.device, &launch);
        let concurrent = occ.blocks_per_sm * self.device.sm_count;
        // The reduction the wave actually walks is the compressed one.
        let effective_k = ((k as f64 * keep).ceil() as usize).max(1);
        p.l2_hit_fraction =
            tiled_gemm_l2_hit(effective_k, t.mb, t.nb, concurrent, self.device.l2_bytes);

        p.compute_efficiency = if self.options.data_stationary {
            0.8
        } else {
            0.62
        };
        p.pipeline_overlap = if self.device.has_async_copy {
            (0.7 + 0.08 * t.stages as f64).min(0.95)
        } else {
            0.4
        };
        p.fixed_overhead_us = 5.0;
        p
    }

    /// Predicted statistics for a problem.
    pub fn stats(&self, problem: &GemmProblem) -> KernelStats {
        CostModel::new(self.device.clone()).evaluate(&self.profile(problem))
    }

    /// Functionally execute `C = W * B[:, SEL]` (or `W * B` when input
    /// sparsity is disabled), fragment by fragment through `mma.sp`, and
    /// return the result with the predicted statistics.
    ///
    /// The fragment path requires the Sub-Row length `V` to be a multiple of
    /// the `mma.sp` logical depth (32); other configurations fall back to the
    /// reference compressed-format product (numerically identical).
    pub fn execute(
        &self,
        weight: &SamoyedsWeight,
        input: &SelInput,
    ) -> Result<(DenseMatrix, KernelStats)> {
        if weight.cols() != input.rows() {
            return Err(SparseError::shape(format!(
                "samoyeds kernel: weight {}x{} vs input rows {}",
                weight.rows(),
                weight.cols(),
                input.rows()
            )));
        }
        let b = if self.options.input_sparsity {
            input.gather()
        } else {
            input.matrix().clone()
        };
        let out = if weight.config().v.is_multiple_of(MMA_K_SPARSE) {
            self.execute_fragmentwise(weight, &b)?
        } else {
            weight.spmm(&b)?
        };
        let problem = GemmProblem::samoyeds(
            weight.rows(),
            weight.cols(),
            input.matrix().cols(),
            input.selected_cols(),
            weight.config(),
        );
        Ok((out, self.stats(&problem)))
    }

    /// The tile/fragment execution path of Algorithm 1.
    fn execute_fragmentwise(
        &self,
        weight: &SamoyedsWeight,
        b: &DenseMatrix,
    ) -> Result<DenseMatrix> {
        let cfg = weight.config();
        let cols = b.cols();
        let comp_rows = weight.compressed_rows();
        let frags_per_window = cfg.v / MMA_K_SPARSE;
        let mut out = DenseMatrix::zeros(weight.rows(), cols);

        for comp_r0 in (0..comp_rows).step_by(MMA_M) {
            for j0 in (0..cols).step_by(MMA_N) {
                // Walk the reduction dimension one Sub-Row window (V logical
                // columns) at a time; the partial accumulator is scattered to
                // the owning output rows at every window boundary — the
                // data-stationary shuffle of Figure 9.
                for cb in 0..weight.col_blocks() {
                    let mut c_frag = MmaTile::zeros(MMA_M, MMA_N);
                    for w in 0..frags_per_window {
                        let a = self.build_a_fragment(weight, comp_r0, cb, w)?;
                        let b_frag = MmaTile::from_matrix(
                            b,
                            cb * cfg.v + w * MMA_K_SPARSE,
                            j0,
                            MMA_K_SPARSE,
                            MMA_N,
                        );
                        mma_sp_m16n8k32(&a, &b_frag, &mut c_frag, false)?;
                    }
                    // Scatter/accumulate into the original rows this window's
                    // Sub-Rows belong to.
                    for i in 0..MMA_M {
                        let comp_r = comp_r0 + i;
                        if comp_r >= comp_rows {
                            break;
                        }
                        let orig_r = weight.original_row(comp_r, cb);
                        for j in 0..MMA_N {
                            if j0 + j >= cols {
                                break;
                            }
                            let cur = out.get(orig_r, j0 + j);
                            out.set(orig_r, j0 + j, cur + c_frag.get(i, j));
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Assemble the compressed `A` fragment for 16 compressed rows starting
    /// at `comp_r0`, column block `cb`, fragment window `w`.
    fn build_a_fragment(
        &self,
        weight: &SamoyedsWeight,
        comp_r0: usize,
        cb: usize,
        w: usize,
    ) -> Result<SparseATile> {
        let cfg = weight.config();
        let comp_rows = weight.compressed_rows();
        let half_k = MMA_K_SPARSE / 2; // 16 stored values per fragment row
        let start = (cb * cfg.v + w * MMA_K_SPARSE) / 2;
        let mut values = vec![0.0f32; MMA_M * half_k];
        let mut metadata = vec![0u8; MMA_M * half_k];
        for i in 0..MMA_M {
            let comp_r = comp_r0 + i;
            if comp_r < comp_rows {
                let vals = weight.data_row(comp_r);
                let meta = weight.metadata_row(comp_r);
                values[i * half_k..(i + 1) * half_k].copy_from_slice(&vals[start..start + half_k]);
                metadata[i * half_k..(i + 1) * half_k]
                    .copy_from_slice(&meta[start..start + half_k]);
            } else {
                // Zero padding must still satisfy the strictly-increasing
                // metadata constraint.
                for g in 0..half_k / 2 {
                    metadata[i * half_k + 2 * g] = 0;
                    metadata[i * half_k + 2 * g + 1] = 1;
                }
            }
        }
        SparseATile::new(values, metadata)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmm_venom::VenomSpmm;
    use samoyeds_sparse::samoyeds::SamoyedsConfig;
    use samoyeds_sparse::SelectionArray;

    fn make_weight(m: usize, k: usize, cfg: SamoyedsConfig, seed: u64) -> SamoyedsWeight {
        let dense = DenseMatrix::random(m, k, seed);
        SamoyedsWeight::prune_from_dense(&dense, cfg).unwrap()
    }

    #[test]
    fn fragmentwise_execution_matches_reference() {
        let cfg = SamoyedsConfig::N1_M2_V32;
        let weight = make_weight(64, 128, cfg, 1);
        let b = DenseMatrix::random(128, 40, 2);
        let sel = SelectionArray::new(40, (0..40).step_by(2).map(|x| x as u32).collect()).unwrap();
        let input = SelInput::new(b.clone(), sel.clone()).unwrap();
        let kernel = SamoyedsKernel::new(DeviceSpec::rtx4070_super());
        let (out, stats) = kernel.execute(&weight, &input).unwrap();

        let expected = weight
            .spmm(&b.select_columns(&sel.indices_usize()).unwrap())
            .unwrap();
        assert!(
            out.allclose(&expected, 1e-3, 1e-3),
            "max diff {}",
            out.max_abs_diff(&expected)
        );
        assert_eq!(out.cols(), 20);
        assert_eq!(stats.kernel, "samoyeds_ssmm");
    }

    #[test]
    fn v64_configuration_also_matches_reference() {
        let cfg = SamoyedsConfig { n: 1, m: 2, v: 64 };
        let weight = make_weight(32, 128, cfg, 3);
        let b = DenseMatrix::random(128, 16, 4);
        let input = SelInput::dense(b.clone());
        let kernel = SamoyedsKernel::new(DeviceSpec::rtx4070_super());
        let (out, _) = kernel.execute(&weight, &input).unwrap();
        let expected = weight.spmm(&b).unwrap();
        assert!(out.allclose(&expected, 1e-3, 1e-3));
    }

    #[test]
    fn v16_configuration_falls_back_to_reference_path() {
        let cfg = SamoyedsConfig::N1_M2_V16;
        let weight = make_weight(32, 64, cfg, 5);
        let b = DenseMatrix::random(64, 24, 6);
        let input = SelInput::dense(b.clone());
        let kernel = SamoyedsKernel::new(DeviceSpec::rtx4070_super());
        let (out, _) = kernel.execute(&weight, &input).unwrap();
        assert!(out.allclose(&weight.spmm(&b).unwrap(), 1e-3, 1e-3));
    }

    #[test]
    fn weight_only_mode_computes_all_columns() {
        let cfg = SamoyedsConfig::N1_M2_V32;
        let weight = make_weight(32, 64, cfg, 7);
        let b = DenseMatrix::random(64, 32, 8);
        let sel = SelectionArray::new(32, vec![1, 5, 9]).unwrap();
        let input = SelInput::new(b.clone(), sel).unwrap();
        let kernel =
            SamoyedsKernel::with_options(DeviceSpec::rtx4070_super(), SamoyedsOptions::WEIGHT_ONLY);
        let (out, _) = kernel.execute(&weight, &input).unwrap();
        assert_eq!(out.cols(), 32);
        assert!(out.allclose(&weight.spmm(&b).unwrap(), 1e-3, 1e-3));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let cfg = SamoyedsConfig::N1_M2_V32;
        let weight = make_weight(32, 64, cfg, 9);
        let input = SelInput::dense(DenseMatrix::random(32, 8, 10));
        let kernel = SamoyedsKernel::new(DeviceSpec::rtx4070_super());
        assert!(kernel.execute(&weight, &input).is_err());
    }

    #[test]
    fn beats_venom_on_the_same_dense_input_problem() {
        let device = DeviceSpec::rtx4070_super();
        let samoyeds = SamoyedsKernel::new(device.clone());
        let venom = VenomSpmm::new(device);
        let problem = GemmProblem::samoyeds(4096, 4096, 4096, 4096, SamoyedsConfig::DEFAULT);
        let t_s = samoyeds.stats(&problem).time_ms;
        let t_v = venom.stats(&problem).time_ms;
        let speedup = t_v / t_s;
        assert!(
            speedup > 1.0 && speedup < 3.0,
            "speedup over VENOM {speedup}"
        );
    }

    #[test]
    fn input_sparsity_reduces_time_proportionally() {
        let kernel = SamoyedsKernel::new(DeviceSpec::rtx4070_super());
        let full = GemmProblem::samoyeds(4096, 4096, 4096, 4096, SamoyedsConfig::DEFAULT);
        let quarter = GemmProblem::samoyeds(4096, 4096, 4096, 1024, SamoyedsConfig::DEFAULT);
        let t_full = kernel.stats(&full).time_ms;
        let t_quarter = kernel.stats(&quarter).time_ms;
        assert!(
            t_quarter < t_full * 0.45,
            "full {t_full} quarter {t_quarter}"
        );
    }

    #[test]
    fn every_disabled_optimisation_costs_time() {
        let device = DeviceSpec::rtx4070_super();
        let problem = GemmProblem::samoyeds(4096, 4096, 2048, 512, SamoyedsConfig::DEFAULT);
        let full = SamoyedsKernel::new(device.clone()).stats(&problem).time_ms;
        let degraded = [
            SamoyedsOptions {
                optimized_layout: false,
                ..SamoyedsOptions::FULL
            },
            SamoyedsOptions {
                data_stationary: false,
                ..SamoyedsOptions::FULL
            },
            SamoyedsOptions {
                metadata_packing: false,
                ..SamoyedsOptions::FULL
            },
            SamoyedsOptions {
                swizzled_smem: false,
                ..SamoyedsOptions::FULL
            },
        ];
        for opts in degraded {
            let t = SamoyedsKernel::with_options(device.clone(), opts)
                .stats(&problem)
                .time_ms;
            assert!(
                t > full,
                "disabling {opts:?} should cost time: full {full} degraded {t}"
            );
        }
    }

    #[test]
    fn breakdown_configurations_are_ordered() {
        // W < WI < WIT < WITS in performance (decreasing time) for a routed
        // MoE-like problem.
        let device = DeviceSpec::rtx4070_super();
        let problem = GemmProblem::samoyeds(2048, 2048, 8192, 1024, SamoyedsConfig::DEFAULT);
        let t_w = SamoyedsKernel::with_options(device.clone(), SamoyedsOptions::WEIGHT_ONLY)
            .stats(&problem)
            .time_ms;
        let t_wi = SamoyedsKernel::with_options(device.clone(), SamoyedsOptions::WEIGHT_INPUT)
            .stats(&problem)
            .time_ms;
        let t_wit =
            SamoyedsKernel::with_options(device.clone(), SamoyedsOptions::WEIGHT_INPUT_LAYOUT)
                .stats(&problem)
                .time_ms;
        let t_wits = SamoyedsKernel::new(device).stats(&problem).time_ms;
        assert!(t_wi < t_w, "WI {t_wi} should beat W {t_w}");
        assert!(t_wit < t_wi, "WIT {t_wit} should beat WI {t_wi}");
        assert!(t_wits < t_wit, "WITS {t_wits} should beat WIT {t_wit}");
    }

    #[test]
    fn no_async_copy_device_loses_pipeline_overlap() {
        let problem = GemmProblem::samoyeds(2048, 2048, 2048, 2048, SamoyedsConfig::DEFAULT);
        let ada = SamoyedsKernel::new(DeviceSpec::rtx4070_super()).profile(&problem);
        let mi300 = SamoyedsKernel::new(DeviceSpec::amd_mi300()).profile(&problem);
        assert!(mi300.pipeline_overlap < ada.pipeline_overlap);
    }
}
