//! Unstructured CSR SpMM kernel standing in for Sputnik.
//!
//! Sputnik executes the sparse product on the ordinary CUDA cores: it skips
//! the pruned weights but pays for index decoding, irregular (gather-style)
//! accesses into the dense operand and row-length load imbalance. This is why
//! the paper finds it profitable only at the very high sparsity ratios of HPC
//! workloads, not at the 50-90% ratios of LLMs (§3.2), and why Samoyeds beats
//! it by an order of magnitude (§6.1.1).

use crate::problem::GemmProblem;
use samoyeds_gpu_sim::memory::{l2_hit_fraction, AccessPattern};
use samoyeds_gpu_sim::{CostModel, DeviceSpec, KernelProfile, KernelStats, LaunchConfig};
use samoyeds_sparse::{CsrMatrix, DenseMatrix, Result, SparseFormat};

/// Simulated Sputnik-like CSR x dense kernel.
#[derive(Debug, Clone)]
pub struct CsrSpmm {
    device: DeviceSpec,
}

impl CsrSpmm {
    /// Create the kernel for a device.
    pub fn new(device: DeviceSpec) -> Self {
        Self { device }
    }

    /// The device this kernel targets.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Build the performance profile for a problem with the given
    /// unstructured weight sparsity.
    pub fn profile(&self, problem: &GemmProblem, sparsity: f64) -> KernelProfile {
        let (m, k, n) = (problem.m, problem.k, problem.n);
        let keep = (1.0 - sparsity).clamp(0.01, 1.0);
        let nnz = (m as f64 * k as f64 * keep).max(1.0);

        // Row-parallel launch: one warp per output row, 64 rows per block.
        let rows_per_block = 64usize;
        let launch = LaunchConfig {
            grid_blocks: m.div_ceil(rows_per_block).max(1),
            block_threads: 256,
            regs_per_thread: 64,
            shared_bytes_per_block: 16 * 1024,
        };

        let mut p = KernelProfile::empty("sputnik_spmm", launch);
        // All useful FLOPs run on CUDA cores; index decode adds roughly one
        // integer op per value which we fold in as an extra 50% FLOP charge.
        p.flops_cuda = 2.0 * nnz * n as f64 * 1.5;

        // Traffic: CSR values + column indices, and a gather of B rows. Each
        // nonzero touches a row segment of B; reuse across rows is limited to
        // what survives in L2.
        let csr_bytes = nnz * (2.0 + 4.0) + (m as f64 + 1.0) * 4.0;
        let b_touch = nnz * n as f64 * 2.0 / 8.0; // 8-way register blocking over columns
        p.traffic.gmem_read_bytes = csr_bytes + b_touch;
        p.traffic.gmem_write_bytes = (m * n) as f64 * 2.0;
        p.traffic.smem_bytes = csr_bytes;
        // Gathered B rows are not coalesced across the sparse column indices.
        p.traffic.coalescing_efficiency = AccessPattern::Strided { stride_bytes: 32 }
            .efficiency(2)
            .max(0.25);
        p.traffic.smem_bank_passes = 1.5;
        let unique = (k * n) as f64 * 2.0;
        p.l2_hit_fraction =
            l2_hit_fraction(unique, self.device.l2_bytes, (nnz / k as f64).max(1.0));

        // CUDA-core kernel without tensor pipelines: modest efficiency, no
        // cp.async double buffering in the modeled version.
        p.compute_efficiency = 0.45;
        p.pipeline_overlap = 0.5;
        p.fixed_overhead_us = 6.0;
        p
    }

    /// Predicted statistics for a problem at the given sparsity.
    pub fn stats(&self, problem: &GemmProblem, sparsity: f64) -> KernelStats {
        CostModel::new(self.device.clone()).evaluate(&self.profile(problem, sparsity))
    }

    /// Functionally execute `C = A_csr * B`.
    pub fn execute(&self, a: &CsrMatrix, b: &DenseMatrix) -> Result<(DenseMatrix, KernelStats)> {
        let out = a.spmm(b)?;
        let problem = GemmProblem::dense(a.rows(), a.cols(), b.cols());
        Ok((out, self.stats(&problem, a.sparsity())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm_dense::DenseGemm;

    #[test]
    fn execute_matches_reference() {
        let kernel = CsrSpmm::new(DeviceSpec::rtx4070_super());
        let dense = DenseMatrix::random_sparse(64, 96, 0.75, 3);
        let a = CsrMatrix::from_dense(&dense);
        let b = DenseMatrix::random(96, 48, 4);
        let (c, stats) = kernel.execute(&a, &b).unwrap();
        assert!(c.allclose(&dense.matmul(&b).unwrap(), 1e-4, 1e-4));
        assert_eq!(stats.kernel, "sputnik_spmm");
    }

    #[test]
    fn slower_than_dense_tensor_cores_at_llm_sparsity() {
        // At 75% sparsity the CUDA-core kernel should NOT beat cuBLAS on
        // tensor cores — the paper's §3.2 point.
        let device = DeviceSpec::rtx4070_super();
        let csr = CsrSpmm::new(device.clone());
        let dense = DenseGemm::new(device);
        let problem = GemmProblem::dense(4096, 4096, 4096);
        let t_csr = csr.stats(&problem, 0.75).time_ms;
        let t_dense = dense.stats(&problem).time_ms;
        assert!(t_csr > t_dense, "csr {t_csr} dense {t_dense}");
    }

    #[test]
    fn higher_sparsity_is_faster() {
        let kernel = CsrSpmm::new(DeviceSpec::rtx4070_super());
        let problem = GemmProblem::dense(4096, 4096, 4096);
        let t50 = kernel.stats(&problem, 0.5).time_ms;
        let t95 = kernel.stats(&problem, 0.95).time_ms;
        assert!(t95 < t50);
    }

    #[test]
    fn profile_runs_on_cuda_cores_only() {
        let kernel = CsrSpmm::new(DeviceSpec::rtx4070_super());
        let p = kernel.profile(&GemmProblem::dense(1024, 1024, 1024), 0.8);
        assert_eq!(p.flops_tensor_dense, 0.0);
        assert_eq!(p.flops_tensor_sparse, 0.0);
        assert!(p.flops_cuda > 0.0);
        assert!(p.traffic.coalescing_efficiency < 1.0);
    }
}
