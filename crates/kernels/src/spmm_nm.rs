//! 2:4 structured SpMM kernel standing in for cuSPARSELt.
//!
//! cuSPARSELt is NVIDIA's vendor library for the hardware 2:4 format: it runs
//! on the Sparse Tensor Cores at twice the dense peak rate and halves the
//! weight traffic, but its sparsity ratio is fixed at 50% — the limitation
//! that motivates both VENOM and Samoyeds (§3.3).

use crate::problem::GemmProblem;
use crate::tiling::TilingConfig;
use samoyeds_gpu_sim::memory::tiled_gemm_l2_hit;
use samoyeds_gpu_sim::{CostModel, DeviceSpec, KernelProfile, KernelStats, Occupancy};
use samoyeds_sparse::{DenseMatrix, NmMatrix, Result, SparseFormat};

/// Simulated cuSPARSELt-like 2:4 x dense kernel.
#[derive(Debug, Clone)]
pub struct NmSpmm {
    device: DeviceSpec,
    tiling: TilingConfig,
}

impl NmSpmm {
    /// Create the kernel for a device.
    pub fn new(device: DeviceSpec) -> Self {
        let tiling = TilingConfig::VENDOR_LARGE.shrink_to_fit(&device, true);
        Self { device, tiling }
    }

    /// The device this kernel targets.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Build the performance profile (2:4 weights, dense input, all `n`
    /// columns computed).
    pub fn profile(&self, problem: &GemmProblem) -> KernelProfile {
        let (m, k, n) = (problem.m, problem.k, problem.n);
        let t = self.tiling;
        let launch = t.launch_for(m, n, true);

        let mut p = KernelProfile::empty("cusparselt_spmm", launch);
        // The whole logical product is retired through mma.sp.
        p.flops_tensor_sparse = 2.0 * m as f64 * k as f64 * n as f64;

        let k_steps = (k as f64 / t.kb as f64).ceil().max(1.0);
        // A tile is 2:4 compressed (half the values) plus 2-bit metadata.
        let a_tile = (t.mb * t.kb) as f64 * (2.0 * 0.5 + 0.25 * 0.5);
        let b_tile = (t.kb * t.nb) as f64 * 2.0;
        let total_reads = launch.grid_blocks as f64 * k_steps * (a_tile + b_tile);

        p.traffic.gmem_read_bytes = total_reads;
        p.traffic.gmem_write_bytes = (m * n) as f64 * 2.0;
        p.traffic.smem_bytes = total_reads;
        p.traffic.coalescing_efficiency = 1.0;
        p.traffic.smem_bank_passes = 1.0;
        let occ = Occupancy::compute(&self.device, &launch);
        let concurrent = occ.blocks_per_sm * self.device.sm_count;
        // The compressed A tile halves the wave working set on the A side.
        p.l2_hit_fraction =
            tiled_gemm_l2_hit(k / 2 + k / 2, t.mb, t.nb, concurrent, self.device.l2_bytes);

        // Vendor-library quality, marginally below cuBLAS because the sparse
        // pipeline has extra metadata staging.
        p.compute_efficiency = 0.82;
        p.pipeline_overlap = 0.9;
        p.fixed_overhead_us = 5.0;
        p
    }

    /// Predicted statistics for a problem.
    pub fn stats(&self, problem: &GemmProblem) -> KernelStats {
        CostModel::new(self.device.clone()).evaluate(&self.profile(problem))
    }

    /// Functionally execute `C = A_2:4 * B`.
    pub fn execute(&self, a: &NmMatrix, b: &DenseMatrix) -> Result<(DenseMatrix, KernelStats)> {
        let out = a.spmm(b)?;
        let problem = GemmProblem::dense(a.rows(), a.cols(), b.cols());
        Ok((out, self.stats(&problem)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm_dense::DenseGemm;
    use samoyeds_sparse::nm::NmConfig;

    #[test]
    fn execute_matches_pruned_reference() {
        let kernel = NmSpmm::new(DeviceSpec::rtx4070_super());
        let dense = DenseMatrix::random(64, 128, 7);
        let a = NmMatrix::prune_from_dense(&dense, NmConfig::TWO_FOUR).unwrap();
        let b = DenseMatrix::random(128, 32, 8);
        let (c, stats) = kernel.execute(&a, &b).unwrap();
        assert!(c.allclose(&a.to_dense().matmul(&b).unwrap(), 1e-4, 1e-4));
        assert_eq!(stats.kernel, "cusparselt_spmm");
    }

    #[test]
    fn faster_than_dense_on_large_compute_bound_problems() {
        let device = DeviceSpec::rtx4070_super();
        let sp = NmSpmm::new(device.clone());
        let dn = DenseGemm::new(device);
        let problem = GemmProblem::dense(8192, 8192, 8192);
        let t_sp = sp.stats(&problem).time_ms;
        let t_dn = dn.stats(&problem).time_ms;
        let speedup = t_dn / t_sp;
        // The hardware bound is 2x; library overheads keep it below that.
        assert!(speedup > 1.2 && speedup <= 2.1, "speedup {speedup}");
    }

    #[test]
    fn weight_traffic_is_roughly_halved_versus_dense() {
        let device = DeviceSpec::rtx4070_super();
        let sp = NmSpmm::new(device.clone());
        let dn = DenseGemm::new(device);
        // Weight-dominated problem (small n).
        let problem = GemmProblem::dense(8192, 8192, 128);
        let p_sp = sp.profile(&problem);
        let p_dn = dn.profile(&problem);
        assert!(p_sp.traffic.gmem_read_bytes < p_dn.traffic.gmem_read_bytes * 0.8);
    }

    #[test]
    fn all_flops_go_through_the_sparse_path() {
        let kernel = NmSpmm::new(DeviceSpec::a100_40g());
        let p = kernel.profile(&GemmProblem::dense(1024, 2048, 512));
        assert_eq!(p.flops_tensor_dense, 0.0);
        assert_eq!(p.flops_cuda, 0.0);
        assert_eq!(p.flops_tensor_sparse, 2.0 * 1024.0 * 2048.0 * 512.0);
    }
}
