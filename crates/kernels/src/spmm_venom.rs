//! V:N:M SpMM kernel standing in for VENOM (Castro et al., SC'23).
//!
//! VENOM reaches arbitrary sparsity ratios on the Sparse Tensor Cores by
//! combining vector-wise column pruning with 2:4, and is the strongest
//! baseline in the paper's kernel study. Its remaining inefficiencies — which
//! the Samoyeds kernel removes — are:
//!
//! * the gathered columns of the dense operand are addressed through the
//!   per-panel index list, which breaks perfect coalescing (Figure 6 ➍);
//! * its shared-memory staging is not swizzled for `ldmatrix`, costing bank
//!   passes;
//! * its metadata is stored in the naive order, costing extra transactions;
//! * its software pipeline is shallower, overlapping less of the fetch
//!   latency;
//! * it has no notion of input-side (routing) sparsity: all `n` logical
//!   columns are computed even if only a fraction was routed to the expert.

use crate::problem::GemmProblem;
use crate::tiling::TilingConfig;
use samoyeds_gpu_sim::memory::tiled_gemm_l2_hit;
use samoyeds_gpu_sim::{CostModel, DeviceSpec, KernelProfile, KernelStats, Occupancy};
use samoyeds_sparse::{DenseMatrix, Result, SparseFormat, VenomMatrix};

/// Simulated VENOM-like V:N:M x dense kernel.
#[derive(Debug, Clone)]
pub struct VenomSpmm {
    device: DeviceSpec,
    tiling: TilingConfig,
    /// Weight keep-fraction after the vector-wise step (N/M of the V:N:M
    /// config); the 2:4 step inside is handled by the sparse tensor path.
    vector_keep: f64,
}

impl VenomSpmm {
    /// Create the kernel for a device at the paper's 75% total sparsity
    /// (vector keep 1/2 combined with 2:4).
    pub fn new(device: DeviceSpec) -> Self {
        Self::with_keep(device, 0.5)
    }

    /// Create the kernel with an explicit vector-wise keep fraction.
    pub fn with_keep(device: DeviceSpec, vector_keep: f64) -> Self {
        let tiling = TilingConfig::DEFAULT_4070S.shrink_to_fit(&device, true);
        Self {
            device,
            tiling,
            vector_keep: vector_keep.clamp(0.05, 1.0),
        }
    }

    /// The device this kernel targets.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Total weight sparsity this kernel instance models.
    pub fn weight_sparsity(&self) -> f64 {
        1.0 - self.vector_keep * 0.5
    }

    /// Build the performance profile. VENOM computes every logical column of
    /// the input (`problem.n`), ignoring `selected_n`.
    pub fn profile(&self, problem: &GemmProblem) -> KernelProfile {
        let (m, k, n) = (problem.m, problem.k, problem.n);
        let t = self.tiling;
        let launch = t.launch_for(m, n, true);

        let mut p = KernelProfile::empty("venom_spmm", launch);
        // The vector-pruned part of the reduction is skipped entirely; the
        // surviving part is retired through mma.sp.
        p.flops_tensor_sparse = 2.0 * m as f64 * k as f64 * n as f64 * self.vector_keep;

        let k_steps = (k as f64 * self.vector_keep / t.kb as f64).ceil().max(1.0);
        // Compressed A values + metadata + per-panel column indices.
        let a_tile = (t.mb * t.kb) as f64 * (2.0 * 0.5 + 0.25 * 0.5) + (t.kb as f64 / 8.0) * 2.0;
        let b_tile = (t.kb * t.nb) as f64 * 2.0;
        let total_reads = launch.grid_blocks as f64 * k_steps * (a_tile + b_tile);

        p.traffic.gmem_read_bytes = total_reads;
        p.traffic.gmem_write_bytes = (m * n) as f64 * 2.0;
        p.traffic.smem_bytes = total_reads;
        // Column gathering through the index list breaks part of the
        // coalescing; un-swizzled staging costs extra bank passes; naive
        // metadata layout costs extra transactions (folded into coalescing).
        p.traffic.coalescing_efficiency = 0.88;
        p.traffic.smem_bank_passes = 1.3;
        let occ = Occupancy::compute(&self.device, &launch);
        let concurrent = occ.blocks_per_sm * self.device.sm_count;
        // VENOM's tiling is not orchestrated around the index structures, so
        // it captures slightly less of the inter-block panel reuse.
        p.l2_hit_fraction =
            tiled_gemm_l2_hit(k, t.mb, t.nb, concurrent, self.device.l2_bytes) * 0.9;

        // Research-prototype quality: good but below the vendor libraries on
        // issue efficiency, shallower pipeline.
        p.compute_efficiency = 0.75;
        p.pipeline_overlap = 0.85;
        p.fixed_overhead_us = 6.0;
        p
    }

    /// Predicted statistics for a problem.
    pub fn stats(&self, problem: &GemmProblem) -> KernelStats {
        CostModel::new(self.device.clone()).evaluate(&self.profile(problem))
    }

    /// Functionally execute `C = A_venom * B`.
    pub fn execute(&self, a: &VenomMatrix, b: &DenseMatrix) -> Result<(DenseMatrix, KernelStats)> {
        let out = a.spmm(b)?;
        let problem = GemmProblem::dense(a.rows(), a.cols(), b.cols());
        Ok((out, self.stats(&problem)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm_dense::DenseGemm;
    use crate::spmm_nm::NmSpmm;
    use samoyeds_sparse::venom::VenomConfig;

    #[test]
    fn execute_matches_pruned_reference() {
        let kernel = VenomSpmm::new(DeviceSpec::rtx4070_super());
        let dense = DenseMatrix::random(64, 128, 11);
        let a = VenomMatrix::prune_from_dense(&dense, VenomConfig { v: 8, n: 2, m: 8 }).unwrap();
        let b = DenseMatrix::random(128, 32, 12);
        let (c, stats) = kernel.execute(&a, &b).unwrap();
        assert!(c.allclose(&a.to_dense().matmul(&b).unwrap(), 1e-4, 1e-4));
        assert_eq!(stats.kernel, "venom_spmm");
    }

    #[test]
    fn venom_beats_both_vendor_libraries_on_large_problems() {
        // The VENOM paper reports ~1.38x over cuSPARSELt; our model should
        // land in the same direction.
        let device = DeviceSpec::rtx4070_super();
        let venom = VenomSpmm::new(device.clone());
        let nm = NmSpmm::new(device.clone());
        let dense = DenseGemm::new(device);
        let problem = GemmProblem::dense(8192, 8192, 4096);
        let t_v = venom.stats(&problem).time_ms;
        let t_nm = nm.stats(&problem).time_ms;
        let t_d = dense.stats(&problem).time_ms;
        assert!(t_v < t_nm, "venom {t_v} cusparselt {t_nm}");
        assert!(t_v < t_d, "venom {t_v} cublas {t_d}");
        let over_nm = t_nm / t_v;
        assert!(over_nm > 1.1 && over_nm < 2.5, "ratio {over_nm}");
    }

    #[test]
    fn ignores_input_selection() {
        let kernel = VenomSpmm::new(DeviceSpec::rtx4070_super());
        let full = GemmProblem::dense(4096, 4096, 4096);
        let mut routed = full;
        routed.selected_n = 512;
        assert!((kernel.stats(&full).time_ms - kernel.stats(&routed).time_ms).abs() < 1e-9);
    }

    #[test]
    fn weight_sparsity_accounting() {
        let k = VenomSpmm::new(DeviceSpec::rtx4070_super());
        assert!((k.weight_sparsity() - 0.75).abs() < 1e-12);
        let k90 = VenomSpmm::with_keep(DeviceSpec::rtx4070_super(), 0.2);
        assert!((k90.weight_sparsity() - 0.9).abs() < 1e-12);
        // Higher sparsity means less work and a faster kernel.
        let problem = GemmProblem::dense(4096, 4096, 4096);
        assert!(k90.stats(&problem).time_ms < k.stats(&problem).time_ms);
    }
}
