//! Hierarchical tiling configuration (§4.2, Figure 8).
//!
//! A thread block computes an `mb x nb` tile of `C`, iterating over the
//! reduction dimension in steps of `kb`; inside the block each warp owns an
//! `mw x nw` sub-tile; inside the warp the SpTC instruction computes
//! `16 x 8 x 32` fragments. The configuration also carries the software
//! pipeline depth (`stages`) used for the `cp.async` fetch/compute overlap.

use samoyeds_gpu_sim::{DeviceSpec, LaunchConfig};
use samoyeds_sparse::{Result, SparseError};
use serde::{Deserialize, Serialize};

/// Fragment shape of the sparse tensor instruction (`mma.sp.m16n8k32`).
pub const FRAG_M: usize = 16;
/// Fragment N dimension.
pub const FRAG_N: usize = 8;
/// Fragment logical K dimension.
pub const FRAG_K: usize = 32;

/// A three-level tiling configuration plus pipeline depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TilingConfig {
    /// Thread-block tile rows of `C`.
    pub mb: usize,
    /// Thread-block tile columns of `C`.
    pub nb: usize,
    /// Reduction-step depth per iteration.
    pub kb: usize,
    /// Warp tile rows.
    pub mw: usize,
    /// Warp tile columns.
    pub nw: usize,
    /// Software pipeline stages (`num_pipe` in Algorithm 1).
    pub stages: usize,
}

impl TilingConfig {
    /// The default configuration tuned for the RTX 4070 Super (the paper's
    /// development platform): 128x64 block tiles, 32-deep reduction steps,
    /// 64x32 warp tiles, 3-stage pipeline.
    pub const DEFAULT_4070S: TilingConfig = TilingConfig {
        mb: 128,
        nb: 64,
        kb: 32,
        mw: 64,
        nw: 32,
        stages: 3,
    };

    /// The large-tile configuration vendor libraries (cuBLAS / cuSPARSELt)
    /// reach with their hand-tuned register blocking.
    pub const VENDOR_LARGE: TilingConfig = TilingConfig {
        mb: 256,
        nb: 128,
        kb: 32,
        mw: 64,
        nw: 64,
        stages: 3,
    };

    /// A smaller-tile configuration (the A100 adaptation of Table 6: more
    /// SMs + smaller L2 favour smaller tiles).
    pub const SMALL_TILE: TilingConfig = TilingConfig {
        mb: 64,
        nb: 64,
        kb: 32,
        mw: 32,
        nw: 32,
        stages: 3,
    };

    /// A deeper-pipeline configuration (the RTX 3090 adaptation of Table 6:
    /// slower tensor cores + higher bandwidth favour more stages).
    pub const DEEP_PIPELINE: TilingConfig = TilingConfig {
        mb: 128,
        nb: 64,
        kb: 32,
        mw: 64,
        nw: 32,
        stages: 4,
    };

    /// Validate internal consistency and compatibility with the SpTC
    /// fragment shape and the Samoyeds Sub-Row length `v` (the constraint
    /// `kb <= V` of §4.2).
    pub fn validate(&self, sub_row_v: Option<usize>) -> Result<()> {
        if self.mb == 0 || self.nb == 0 || self.kb == 0 || self.mw == 0 || self.nw == 0 {
            return Err(SparseError::config("tiling dimensions must be non-zero"));
        }
        if !self.mb.is_multiple_of(self.mw) || !self.nb.is_multiple_of(self.nw) {
            return Err(SparseError::config(format!(
                "block tile {}x{} not divisible by warp tile {}x{}",
                self.mb, self.nb, self.mw, self.nw
            )));
        }
        if !self.mw.is_multiple_of(FRAG_M) || !self.nw.is_multiple_of(FRAG_N) {
            return Err(SparseError::config(format!(
                "warp tile {}x{} not divisible by the {}x{} fragment",
                self.mw, self.nw, FRAG_M, FRAG_N
            )));
        }
        if !self.kb.is_multiple_of(FRAG_K) {
            return Err(SparseError::config(format!(
                "kb={} must be a multiple of the fragment depth {}",
                self.kb, FRAG_K
            )));
        }
        if self.stages == 0 || self.stages > 8 {
            return Err(SparseError::config(format!(
                "pipeline depth {} out of the supported 1..=8 range",
                self.stages
            )));
        }
        if let Some(v) = sub_row_v {
            if self.kb > v && !self.kb.is_multiple_of(v) {
                return Err(SparseError::config(format!(
                    "kb={} must divide into Sub-Row length V={v} windows",
                    self.kb
                )));
            }
            if v % self.kb != 0 && !self.kb.is_multiple_of(v) {
                return Err(SparseError::config(format!(
                    "kb={} and V={v} must be multiples of one another",
                    self.kb
                )));
            }
        }
        Ok(())
    }

    /// Number of warps per thread block under this tiling.
    pub fn warps_per_block(&self) -> usize {
        (self.mb / self.mw) * (self.nb / self.nw)
    }

    /// Threads per block.
    pub fn block_threads(&self) -> usize {
        self.warps_per_block() * 32
    }

    /// Shared-memory bytes per block for bf16 operands: `stages` buffers of
    /// an `mb x kb` A tile (already 2:4-compressed to half width when
    /// `compressed_a` is set) and a `kb x nb` B tile.
    pub fn shared_bytes(&self, compressed_a: bool) -> usize {
        let a_cols = if compressed_a { self.kb / 2 } else { self.kb };
        let a_tile = self.mb * a_cols * 2;
        let b_tile = self.kb * self.nb * 2;
        self.stages * (a_tile + b_tile)
    }

    /// Registers per thread: accumulators (`mw x nw` f32 spread over the 32
    /// threads of the warp) plus operand fragments and the intermediate
    /// registers of the data-stationary optimisation.
    pub fn regs_per_thread(&self, with_intermediate: bool) -> usize {
        let acc = self.mw * self.nw / 32; // f32 accumulators per thread
        let operands = 32; // A/B fragments + metadata + indices
        let extra = if with_intermediate { acc / 2 } else { 0 };
        (acc + operands + extra).min(255)
    }

    /// The launch configuration for a problem of `m x n` outputs.
    pub fn launch_for(&self, m: usize, n: usize, compressed_a: bool) -> LaunchConfig {
        let grid_blocks = m.div_ceil(self.mb) * n.div_ceil(self.nb);
        LaunchConfig {
            grid_blocks,
            block_threads: self.block_threads(),
            regs_per_thread: self.regs_per_thread(true),
            shared_bytes_per_block: self.shared_bytes(compressed_a),
        }
    }

    /// Fraction of the launched output tile area that is useful work (the
    /// padding overhead when `m`/`n` are not multiples of the tile sizes —
    /// the effect §6.2 blames for the reduced advantage on many-expert
    /// models).
    pub fn tile_utilization(&self, m: usize, n: usize) -> f64 {
        if m == 0 || n == 0 {
            return 1.0;
        }
        let padded_m = m.div_ceil(self.mb) * self.mb;
        let padded_n = n.div_ceil(self.nb) * self.nb;
        (m * n) as f64 / (padded_m * padded_n) as f64
    }

    /// Whether this configuration's shared-memory demand fits the device.
    pub fn fits(&self, device: &DeviceSpec, compressed_a: bool) -> bool {
        self.shared_bytes(compressed_a) <= device.max_shared_per_block
    }

    /// Shrink the tile (halving `nb`, then `mb`) until it fits the device.
    pub fn shrink_to_fit(mut self, device: &DeviceSpec, compressed_a: bool) -> TilingConfig {
        while !self.fits(device, compressed_a) && (self.mb > FRAG_M || self.nb > FRAG_N) {
            if self.nb > FRAG_N && self.nb >= self.mb {
                self.nb /= 2;
                self.nw = self.nw.min(self.nb).max(FRAG_N);
            } else if self.mb > FRAG_M {
                self.mb /= 2;
                self.mw = self.mw.min(self.mb).max(FRAG_M);
            }
        }
        self
    }
}

impl Default for TilingConfig {
    fn default() -> Self {
        Self::DEFAULT_4070S
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        TilingConfig::DEFAULT_4070S.validate(Some(32)).unwrap();
        TilingConfig::SMALL_TILE.validate(Some(32)).unwrap();
        TilingConfig::DEEP_PIPELINE.validate(Some(32)).unwrap();
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = TilingConfig::DEFAULT_4070S;
        c.mw = 48; // not a multiple of 16... it is; but mb=128 % 48 != 0
        assert!(c.validate(None).is_err());
        let mut c = TilingConfig::DEFAULT_4070S;
        c.kb = 24;
        assert!(c.validate(None).is_err());
        let mut c = TilingConfig::DEFAULT_4070S;
        c.stages = 0;
        assert!(c.validate(None).is_err());
        let mut c = TilingConfig::DEFAULT_4070S;
        c.nw = 0;
        assert!(c.validate(None).is_err());
    }

    #[test]
    fn warps_and_threads() {
        let c = TilingConfig::DEFAULT_4070S;
        assert_eq!(c.warps_per_block(), 4);
        assert_eq!(c.block_threads(), 128);
    }

    #[test]
    fn shared_bytes_shrink_with_compression() {
        let c = TilingConfig::DEFAULT_4070S;
        assert!(c.shared_bytes(true) < c.shared_bytes(false));
        // 3 stages x (128x16x2 + 32x64x2) = 3 x (4096 + 4096) = 24576.
        assert_eq!(c.shared_bytes(true), 24576);
    }

    #[test]
    fn launch_covers_the_whole_output() {
        let c = TilingConfig::DEFAULT_4070S;
        let launch = c.launch_for(1000, 1000, true);
        assert_eq!(launch.grid_blocks, 8 * 16);
        assert_eq!(launch.block_threads, 128);
        assert!(launch.shared_bytes_per_block > 0);
    }

    #[test]
    fn tile_utilization_penalises_padding() {
        let c = TilingConfig::DEFAULT_4070S;
        assert!((c.tile_utilization(1280, 640) - 1.0).abs() < 1e-12);
        let partial = c.tile_utilization(130, 65);
        assert!(partial < 0.6);
        assert_eq!(c.tile_utilization(0, 0), 1.0);
    }

    #[test]
    fn shrink_to_fit_respects_device_limit() {
        let device = DeviceSpec::rtx4070_super();
        let huge = TilingConfig {
            mb: 512,
            nb: 512,
            kb: 64,
            mw: 64,
            nw: 64,
            stages: 4,
        };
        assert!(!huge.fits(&device, false));
        let fitted = huge.shrink_to_fit(&device, false);
        assert!(fitted.fits(&device, false));
        assert!(fitted.mb >= FRAG_M && fitted.nb >= FRAG_N);
        // A config that already fits is unchanged.
        let ok = TilingConfig::DEFAULT_4070S;
        assert_eq!(ok.shrink_to_fit(&device, true), ok);
    }

    #[test]
    fn sub_row_constraint_on_kb() {
        let mut c = TilingConfig::DEFAULT_4070S;
        c.kb = 32;
        assert!(c.validate(Some(32)).is_ok());
        assert!(c.validate(Some(64)).is_ok());
        c.kb = 96;
        assert!(c.validate(Some(64)).is_err());
    }

    #[test]
    fn regs_budget_grows_with_intermediate_registers() {
        let c = TilingConfig::DEFAULT_4070S;
        assert!(c.regs_per_thread(true) > c.regs_per_thread(false));
        assert!(c.regs_per_thread(true) <= 255);
    }
}
