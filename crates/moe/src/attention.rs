//! Attention-layer cost model (standard and Flash-Attention), used by the
//! time-breakdown experiment (Figure 2) and the end-to-end decoder layer.

use crate::config::MoeModelConfig;
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_kernels::gemm_dense::DenseGemm;
use samoyeds_kernels::GemmProblem;
use serde::{Deserialize, Serialize};

/// Which attention implementation the decoder uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttentionKind {
    /// Naive attention: scores and probabilities materialised in HBM.
    Standard,
    /// Flash-Attention 2: tiled, never materialises the `n x n` matrices.
    Flash,
}

/// Predicted execution time of one attention block over `tokens` tokens.
pub fn attention_time_ms(
    device: &DeviceSpec,
    config: &MoeModelConfig,
    tokens: usize,
    kind: AttentionKind,
) -> f64 {
    let h = config.hidden_size;
    let gemm = DenseGemm::new(device.clone());

    // Q, K, V and output projections: four h x h GEMMs over the tokens.
    let proj = gemm.stats(&GemmProblem::dense(h, h, tokens)).time_ms * 4.0;

    // Score (`QK^T`) and value (`PV`) products: 2 * tokens^2 * h FLOPs each,
    // split across heads (head dimension h / heads).
    let heads = config.num_heads.max(1);
    let head_dim = (h / heads).max(1);
    let mut score_ms = 0.0;
    for _ in 0..1 {
        let per_head_score = gemm
            .stats(&GemmProblem::dense(tokens, head_dim, tokens))
            .time_ms;
        let per_head_value = gemm
            .stats(&GemmProblem::dense(tokens, tokens, head_dim))
            .time_ms;
        score_ms += (per_head_score + per_head_value) * heads as f64;
    }

    match kind {
        AttentionKind::Standard => {
            // Softmax + the materialised n x n probability matrix round-trips
            // through HBM (read + write of scores, read of probs).
            let score_bytes = (tokens * tokens * heads) as f64 * 2.0;
            let softmax_ms = (3.0 * score_bytes / (device.mem_bandwidth_gbps * 1e9)) * 1e3;
            proj + score_ms + softmax_ms
        }
        AttentionKind::Flash => {
            // Tiling keeps the scores on chip: the score/value products keep
            // their FLOPs but lose the HBM round-trips; an extra 10% covers
            // the online-softmax rescaling.
            proj + score_ms * 0.65
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_attention_is_faster_than_standard() {
        let device = DeviceSpec::rtx4070_super();
        for config in [MoeModelConfig::mixtral_8x7b(), MoeModelConfig::qwen2_moe()] {
            let std = attention_time_ms(&device, &config, 4096, AttentionKind::Standard);
            let flash = attention_time_ms(&device, &config, 4096, AttentionKind::Flash);
            assert!(flash < std, "{}: flash {flash} std {std}", config.name);
        }
    }

    #[test]
    fn attention_time_grows_superlinearly_with_sequence_length() {
        let device = DeviceSpec::rtx4070_super();
        let config = MoeModelConfig::mixtral_8x7b();
        let t1 = attention_time_ms(&device, &config, 1024, AttentionKind::Flash);
        let t4 = attention_time_ms(&device, &config, 4096, AttentionKind::Flash);
        assert!(t4 > t1 * 3.5, "t1 {t1} t4 {t4}");
    }

    #[test]
    fn standard_attention_gap_widens_with_sequence_length() {
        let device = DeviceSpec::rtx4070_super();
        let config = MoeModelConfig::minicpm_moe();
        let ratio_short = attention_time_ms(&device, &config, 512, AttentionKind::Standard)
            / attention_time_ms(&device, &config, 512, AttentionKind::Flash);
        let ratio_long = attention_time_ms(&device, &config, 8192, AttentionKind::Standard)
            / attention_time_ms(&device, &config, 8192, AttentionKind::Flash);
        assert!(ratio_long > ratio_short);
    }
}
