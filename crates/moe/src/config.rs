//! MoE model configurations (Table 2 of the paper).

use samoyeds_kernels::fusion::Activation;
use serde::{Deserialize, Serialize};

/// Configuration of one MoE LLM, at the granularity the performance and
/// memory experiments need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoeModelConfig {
    /// Model name as used in the paper's tables.
    pub name: String,
    /// Configuration group label from Table 2 (CFG#1 … CFG#5).
    pub cfg_group: String,
    /// Number of routed experts per MoE layer.
    pub num_experts: usize,
    /// Experts activated per token by the router.
    pub top_k: usize,
    /// Number of isolated shared experts every token passes through
    /// (DeepSeek-MoE / Qwen2-MoE style); zero for Mixtral-style models.
    pub num_shared_experts: usize,
    /// Model hidden size (token embedding width).
    pub hidden_size: usize,
    /// Expert intermediate (FFN) size.
    pub intermediate_size: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// Number of decoder layers in the full model (for memory accounting).
    pub num_layers: usize,
    /// Maximum sequence length supported by the model.
    pub max_seq_len: usize,
    /// Expert activation function.
    pub activation: Activation,
}

impl MoeModelConfig {
    /// Qwen2-MoE (CFG#1): 60 experts of 1408x2048.
    pub fn qwen2_moe() -> Self {
        Self {
            name: "Qwen2-MoE".into(),
            cfg_group: "CFG#1".into(),
            num_experts: 60,
            top_k: 4,
            num_shared_experts: 2,
            hidden_size: 1408,
            intermediate_size: 2048,
            num_heads: 16,
            num_layers: 24,
            max_seq_len: 8192,
            activation: Activation::Silu,
        }
    }

    /// DeepSeek-MoE (CFG#1): 64 experts of 1408x2048.
    pub fn deepseek_moe() -> Self {
        Self {
            name: "DeepSeek-MoE".into(),
            cfg_group: "CFG#1".into(),
            num_experts: 64,
            top_k: 6,
            num_shared_experts: 2,
            hidden_size: 1408,
            intermediate_size: 2048,
            num_heads: 16,
            num_layers: 28,
            max_seq_len: 4096,
            activation: Activation::Silu,
        }
    }

    /// MiniCPM-MoE (CFG#2): 8 experts of 2304x5760.
    pub fn minicpm_moe() -> Self {
        Self {
            name: "MiniCPM-MoE".into(),
            cfg_group: "CFG#2".into(),
            num_experts: 8,
            top_k: 2,
            num_shared_experts: 0,
            hidden_size: 2304,
            intermediate_size: 5760,
            num_heads: 36,
            num_layers: 40,
            max_seq_len: 4096,
            activation: Activation::Silu,
        }
    }

    /// OpenMoE-34B (CFG#3): 32 experts of 3072x12288, ReLU activation
    /// (the incompatibility that produces the NS markers of Figure 14),
    /// 2048 max sequence length.
    pub fn openmoe_34b() -> Self {
        Self {
            name: "OpenMoE-34B".into(),
            cfg_group: "CFG#3".into(),
            num_experts: 32,
            top_k: 2,
            num_shared_experts: 0,
            hidden_size: 3072,
            intermediate_size: 12288,
            num_heads: 24,
            num_layers: 32,
            max_seq_len: 2048,
            activation: Activation::Relu,
        }
    }

    /// Mixtral-8x7B (CFG#4): 8 experts of 4096x14336.
    pub fn mixtral_8x7b() -> Self {
        Self {
            name: "Mixtral-8x7B".into(),
            cfg_group: "CFG#4".into(),
            num_experts: 8,
            top_k: 2,
            num_shared_experts: 0,
            hidden_size: 4096,
            intermediate_size: 14336,
            num_heads: 32,
            num_layers: 32,
            max_seq_len: 32768,
            activation: Activation::Silu,
        }
    }

    /// Mixtral-8x22B (CFG#5): 8 experts of 6144x16384.
    pub fn mixtral_8x22b() -> Self {
        Self {
            name: "Mixtral-8x22B".into(),
            cfg_group: "CFG#5".into(),
            num_experts: 8,
            top_k: 2,
            num_shared_experts: 0,
            hidden_size: 6144,
            intermediate_size: 16384,
            num_heads: 48,
            num_layers: 56,
            max_seq_len: 65536,
            activation: Activation::Silu,
        }
    }

    /// The six models of Table 2 in presentation order.
    pub fn table2() -> Vec<MoeModelConfig> {
        vec![
            Self::qwen2_moe(),
            Self::deepseek_moe(),
            Self::minicpm_moe(),
            Self::openmoe_34b(),
            Self::mixtral_8x7b(),
            Self::mixtral_8x22b(),
        ]
    }

    /// A tiny synthetic configuration used by functional tests and the
    /// quickstart example (small enough to execute numerically on the CPU).
    pub fn tiny_test() -> Self {
        Self {
            name: "Tiny-Test-MoE".into(),
            cfg_group: "TEST".into(),
            num_experts: 4,
            top_k: 2,
            num_shared_experts: 0,
            hidden_size: 64,
            intermediate_size: 128,
            num_heads: 4,
            num_layers: 2,
            max_seq_len: 256,
            activation: Activation::Silu,
        }
    }

    /// Average fraction of tokens routed to a single expert
    /// (`top_k / num_experts`).
    pub fn expert_load_fraction(&self) -> f64 {
        self.top_k as f64 / self.num_experts as f64
    }

    /// Parameters of one expert (gate + up + down projections).
    pub fn params_per_expert(&self) -> usize {
        3 * self.hidden_size * self.intermediate_size
    }

    /// Parameters of one MoE layer (routed + shared experts + router).
    pub fn params_per_moe_layer(&self) -> usize {
        (self.num_experts + self.num_shared_experts) * self.params_per_expert()
            + self.hidden_size * self.num_experts
    }

    /// Parameters of one attention block (Q, K, V, O projections).
    pub fn params_per_attention(&self) -> usize {
        4 * self.hidden_size * self.hidden_size
    }

    /// Whether this model uses isolated shared experts.
    pub fn has_shared_experts(&self) -> bool {
        self.num_shared_experts > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_the_paper() {
        let models = MoeModelConfig::table2();
        assert_eq!(models.len(), 6);
        let by_name = |n: &str| models.iter().find(|m| m.name == n).unwrap();
        assert_eq!(by_name("Qwen2-MoE").num_experts, 60);
        assert_eq!(by_name("Qwen2-MoE").hidden_size, 1408);
        assert_eq!(by_name("DeepSeek-MoE").num_experts, 64);
        assert_eq!(by_name("MiniCPM-MoE").intermediate_size, 5760);
        assert_eq!(by_name("OpenMoE-34B").hidden_size, 3072);
        assert_eq!(by_name("OpenMoE-34B").activation, Activation::Relu);
        assert_eq!(by_name("Mixtral-8x7B").intermediate_size, 14336);
        assert_eq!(by_name("Mixtral-8x22B").hidden_size, 6144);
        // CFG groups.
        assert_eq!(
            by_name("Qwen2-MoE").cfg_group,
            by_name("DeepSeek-MoE").cfg_group
        );
        assert_eq!(by_name("Mixtral-8x22B").cfg_group, "CFG#5");
    }

    #[test]
    fn expert_load_fraction_is_topk_over_experts() {
        let m = MoeModelConfig::mixtral_8x7b();
        assert!((m.expert_load_fraction() - 0.25).abs() < 1e-12);
        let q = MoeModelConfig::qwen2_moe();
        assert!((q.expert_load_fraction() - 4.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn parameter_accounting() {
        let m = MoeModelConfig::mixtral_8x7b();
        assert_eq!(m.params_per_expert(), 3 * 4096 * 14336);
        assert!(m.params_per_moe_layer() > 8 * m.params_per_expert());
        assert_eq!(m.params_per_attention(), 4 * 4096 * 4096);
        assert!(!m.has_shared_experts());
        assert!(MoeModelConfig::deepseek_moe().has_shared_experts());
    }

    #[test]
    fn tiny_config_is_small_enough_for_functional_tests() {
        let t = MoeModelConfig::tiny_test();
        assert!(t.hidden_size * t.intermediate_size < 10_000);
        assert!(t.num_experts >= 2);
        assert!(t.top_k <= t.num_experts);
    }
}
