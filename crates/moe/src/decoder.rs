//! The decoder layer: attention + MoE, the unit the end-to-end experiments
//! measure (§6.3 justifies single-decoder-layer measurement by decoder layers
//! dominating execution time and being architecturally identical).

use crate::attention::{attention_time_ms, AttentionKind};
use crate::config::MoeModelConfig;
use crate::engines::{Engine, EngineKind, LayerCost};
use crate::router::TopKRouter;
use samoyeds_gpu_sim::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Time breakdown of one decoder layer (the quantity behind Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecoderBreakdown {
    /// Attention time in milliseconds.
    pub attention_ms: f64,
    /// MoE (expert MLP) time in milliseconds.
    pub moe_ms: f64,
    /// Normalisation / residual / router overhead in milliseconds.
    pub other_ms: f64,
}

impl DecoderBreakdown {
    /// Total decoder-layer time.
    pub fn total_ms(&self) -> f64 {
        self.attention_ms + self.moe_ms + self.other_ms
    }

    /// Fraction of the layer spent in the MoE block.
    pub fn moe_fraction(&self) -> f64 {
        let total = self.total_ms();
        if total <= 0.0 {
            return 0.0;
        }
        self.moe_ms / total
    }
}

/// A decoder layer bound to a device, an engine and an attention kind.
#[derive(Debug, Clone)]
pub struct DecoderLayer {
    device: DeviceSpec,
    engine: Engine,
    attention: AttentionKind,
    routing_seed: u64,
}

impl DecoderLayer {
    /// Build a decoder layer evaluated with the given engine.
    pub fn new(device: DeviceSpec, engine_kind: EngineKind, attention: AttentionKind) -> Self {
        Self {
            engine: Engine::new(engine_kind, device.clone()),
            device,
            attention,
            routing_seed: 42,
        }
    }

    /// Replace the engine (keeps the device and attention kind).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Use a specific routing seed (all engines must be compared under the
    /// same routing, as the paper's §6.3 fairness note requires).
    pub fn with_routing_seed(mut self, seed: u64) -> Self {
        self.routing_seed = seed;
        self
    }

    /// The engine used by this decoder layer.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Time breakdown of one decoder layer over `batch x seq_len` tokens.
    pub fn breakdown(
        &self,
        config: &MoeModelConfig,
        batch: usize,
        seq_len: usize,
    ) -> DecoderBreakdown {
        let tokens = batch * seq_len.min(config.max_seq_len);
        let plan = TopKRouter::for_config(config, self.routing_seed).route(tokens);
        let moe = self.engine.moe_layer_cost(config, tokens, &plan);
        // Attention cost is per sequence (scores do not cross sequences).
        let attention_ms = attention_time_ms(
            &self.device,
            config,
            seq_len.min(config.max_seq_len),
            self.attention,
        ) * batch as f64;
        // Norms, residuals and the router: two passes over the hidden states
        // plus the tiny router GEMM.
        let h = config.hidden_size as f64;
        let other_ms =
            (4.0 * tokens as f64 * h * 2.0 / (self.device.mem_bandwidth_gbps * 1e9)) * 1e3 + 0.02;
        DecoderBreakdown {
            attention_ms,
            moe_ms: moe.time_ms,
            other_ms,
        }
    }

    /// Full layer cost (time + memory) for `batch x seq_len` tokens.
    pub fn layer_cost(&self, config: &MoeModelConfig, batch: usize, seq_len: usize) -> LayerCost {
        let tokens = batch * seq_len.min(config.max_seq_len);
        let plan = TopKRouter::for_config(config, self.routing_seed).route(tokens);
        let moe = self.engine.moe_layer_cost(config, tokens, &plan);
        let breakdown = self.breakdown(config, batch, seq_len);
        LayerCost {
            time_ms: breakdown.total_ms(),
            weight_bytes: moe.weight_bytes + config.params_per_attention() as f64 * 2.0,
            activation_bytes: moe.activation_bytes,
            supported: moe.supported,
        }
    }

    /// Throughput in tokens per second at the given batch/sequence size.
    pub fn throughput_tokens_per_s(
        &self,
        config: &MoeModelConfig,
        batch: usize,
        seq_len: usize,
    ) -> f64 {
        let cost = self.layer_cost(config, batch, seq_len);
        if !cost.supported || cost.time_ms <= 0.0 {
            return 0.0;
        }
        (batch * seq_len.min(config.max_seq_len)) as f64 / (cost.time_ms * 1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moe_dominates_the_decoder_layer_with_flash_attention() {
        // The Figure 2 observation: with Flash-Attention the MoE share
        // exceeds ~60-80% for the evaluated models.
        let device = DeviceSpec::rtx4070_super();
        for config in [
            MoeModelConfig::mixtral_8x7b(),
            MoeModelConfig::minicpm_moe(),
            MoeModelConfig::qwen2_moe(),
        ] {
            let layer = DecoderLayer::new(
                device.clone(),
                EngineKind::Transformers,
                AttentionKind::Flash,
            );
            let b = layer.breakdown(&config, 1, 4096);
            assert!(
                b.moe_fraction() > 0.5,
                "{}: MoE fraction {}",
                config.name,
                b.moe_fraction()
            );
        }
    }

    #[test]
    fn flash_attention_increases_the_moe_share() {
        let device = DeviceSpec::rtx4070_super();
        let config = MoeModelConfig::mixtral_8x7b();
        let std = DecoderLayer::new(
            device.clone(),
            EngineKind::Transformers,
            AttentionKind::Standard,
        )
        .breakdown(&config, 1, 4096);
        let flash = DecoderLayer::new(device, EngineKind::Transformers, AttentionKind::Flash)
            .breakdown(&config, 1, 4096);
        assert!(flash.moe_fraction() > std.moe_fraction());
        assert!(flash.total_ms() < std.total_ms());
    }

    #[test]
    fn samoyeds_end_to_end_beats_transformers() {
        let device = DeviceSpec::rtx4070_super();
        let config = MoeModelConfig::mixtral_8x7b();
        let samoyeds =
            DecoderLayer::new(device.clone(), EngineKind::Samoyeds, AttentionKind::Flash);
        let transformers =
            DecoderLayer::new(device, EngineKind::Transformers, AttentionKind::Flash);
        let t_s = samoyeds.layer_cost(&config, 1, 4096).time_ms;
        let t_t = transformers.layer_cost(&config, 1, 4096).time_ms;
        let speedup = t_t / t_s;
        // End-to-end speedups are diluted by the shared attention time
        // (paper: 1.42x average, up to 2.36x; our ratio runs a little higher
        // because framework overheads are not simulated).
        assert!(speedup > 1.05 && speedup < 4.5, "speedup {speedup}");
    }

    #[test]
    fn throughput_grows_with_batch_until_saturation() {
        let device = DeviceSpec::rtx4070_super();
        let config = MoeModelConfig::qwen2_moe();
        let layer = DecoderLayer::new(device, EngineKind::Samoyeds, AttentionKind::Flash);
        let t1 = layer.throughput_tokens_per_s(&config, 1, 4096);
        let t4 = layer.throughput_tokens_per_s(&config, 4, 4096);
        assert!(t4 > t1, "batch 4 {t4} should beat batch 1 {t1}");
    }

    #[test]
    fn max_seq_len_is_respected() {
        let device = DeviceSpec::rtx4070_super();
        let config = MoeModelConfig::openmoe_34b(); // max 2048
        let layer = DecoderLayer::new(device, EngineKind::Transformers, AttentionKind::Flash);
        let capped = layer.layer_cost(&config, 1, 4096);
        let exact = layer.layer_cost(&config, 1, 2048);
        assert!((capped.time_ms - exact.time_ms).abs() < 1e-9);
    }

    #[test]
    fn unsupported_engine_reports_zero_throughput() {
        let device = DeviceSpec::rtx4070_super();
        let config = MoeModelConfig::openmoe_34b();
        let layer = DecoderLayer::new(device, EngineKind::MegaBlocks, AttentionKind::Flash);
        assert_eq!(layer.throughput_tokens_per_s(&config, 1, 2048), 0.0);
    }
}
