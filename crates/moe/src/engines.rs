//! The MoE execution engines compared in the paper: Transformers (permute +
//! per-expert dense GEMMs), MegaBlocks (block-sparse grouped GEMM), vLLM-DS
//! (fused MoE kernel), PIT (permutation-invariant dynamic-sparsity compiler)
//! and Samoyeds (dual-side structured sparsity on the Sparse Tensor Cores).
//!
//! Each engine converts a model configuration, a number of tokens and a
//! routing plan into a [`LayerCost`]: the predicted MoE-layer execution time
//! on a device plus the memory the layer's weights and transient activations
//! occupy. The differences between engines are exactly the data-flow
//! redundancies of §3.1 (permutation copies, un-permutation round trips,
//! per-expert launches, padding) and the kernel each one can call.

use crate::config::MoeModelConfig;
use crate::expert::{ExpertWeights, SamoyedsExpertWeights};
use crate::router::RoutingPlan;
use samoyeds_gpu_sim::{CostModel, DeviceSpec};
use samoyeds_kernels::fusion::{standalone_epilogue_cost, Activation};
use samoyeds_kernels::gemm_dense::DenseGemm;
use samoyeds_kernels::samoyeds_kernel::{SamoyedsKernel, SamoyedsOptions};
use samoyeds_kernels::{GemmProblem, TilingConfig};
use samoyeds_sparse::samoyeds::SamoyedsConfig;
use samoyeds_sparse::{DenseMatrix, Result, SelInput, SelectionArray, SparseError};
use serde::{Deserialize, Serialize};

/// Which execution engine a cost was produced by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// HuggingFace Transformers: permute, per-expert dense GEMMs, un-permute.
    Transformers,
    /// MegaBlocks: grouped block-sparse GEMM over all experts.
    MegaBlocks,
    /// vLLM-DS: fused MoE kernel (dense weights).
    VllmDs,
    /// PIT: permutation-invariant transformation of dynamic sparsity, dense
    /// tensor cores only.
    Pit,
    /// Samoyeds: dual-side structured sparsity on Sparse Tensor Cores.
    Samoyeds,
}

impl EngineKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Transformers => "Transformers",
            EngineKind::MegaBlocks => "MegaBlocks",
            EngineKind::VllmDs => "vLLM-DS",
            EngineKind::Pit => "PIT",
            EngineKind::Samoyeds => "Samoyeds",
        }
    }

    /// All engines compared in Figure 14/15.
    pub fn all() -> [EngineKind; 5] {
        [
            EngineKind::Transformers,
            EngineKind::MegaBlocks,
            EngineKind::VllmDs,
            EngineKind::Pit,
            EngineKind::Samoyeds,
        ]
    }
}

/// Predicted cost of executing one MoE layer (or one decoder layer when the
/// attention cost is folded in by [`crate::decoder`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Predicted execution time in milliseconds.
    pub time_ms: f64,
    /// Bytes of model weights the engine keeps resident for this layer.
    pub weight_bytes: f64,
    /// Peak transient activation/workspace bytes for this many tokens.
    pub activation_bytes: f64,
    /// False when the engine cannot run this model at all (the `NS` entries
    /// of Figure 14: MegaBlocks / vLLM-DS lack kernels for OpenMoE's
    /// activation function).
    pub supported: bool,
}

impl LayerCost {
    /// An unsupported marker.
    pub fn unsupported() -> Self {
        Self {
            time_ms: f64::INFINITY,
            weight_bytes: 0.0,
            activation_bytes: 0.0,
            supported: false,
        }
    }

    /// Total memory footprint (weights + activations).
    pub fn total_bytes(&self) -> f64 {
        self.weight_bytes + self.activation_bytes
    }
}

/// An MoE execution engine bound to a device.
#[derive(Debug, Clone)]
pub struct Engine {
    kind: EngineKind,
    device: DeviceSpec,
    samoyeds_cfg: SamoyedsConfig,
    samoyeds_options: SamoyedsOptions,
}

impl Engine {
    /// Create an engine of the given kind on a device.
    pub fn new(kind: EngineKind, device: DeviceSpec) -> Self {
        Self {
            kind,
            device,
            samoyeds_cfg: SamoyedsConfig::DEFAULT,
            samoyeds_options: SamoyedsOptions::FULL,
        }
    }

    /// Override the Samoyeds sparsity configuration (only meaningful for the
    /// Samoyeds engine).
    pub fn with_samoyeds_config(mut self, cfg: SamoyedsConfig) -> Self {
        self.samoyeds_cfg = cfg;
        self
    }

    /// Override the Samoyeds optimisation toggles (used by the Figure 17
    /// breakdown).
    pub fn with_samoyeds_options(mut self, options: SamoyedsOptions) -> Self {
        self.samoyeds_options = options;
        self
    }

    /// The engine kind.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// The device the engine targets.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Whether the engine has kernels for this model (the `NS` rule).
    pub fn supports(&self, config: &MoeModelConfig) -> bool {
        match self.kind {
            EngineKind::MegaBlocks | EngineKind::VllmDs => config.activation != Activation::Relu,
            _ => true,
        }
    }

    /// Resident weight bytes for one MoE layer under this engine.
    pub fn weight_bytes(&self, config: &MoeModelConfig) -> f64 {
        let dense = config.params_per_moe_layer() as f64 * 2.0;
        match self.kind {
            // Dense bf16 weights.
            EngineKind::Transformers | EngineKind::Pit => dense,
            // MegaBlocks / vLLM keep the dense weights plus reordered /
            // padded copies and per-expert workspace tensors sized with the
            // weights; this is what costs them maximum batch size in Table 3.
            EngineKind::MegaBlocks | EngineKind::VllmDs => dense * 2.5,
            // Samoyeds stores the compressed (data + metadata + indices)
            // form: 25% of the values, ~12.5% metadata overhead.
            EngineKind::Samoyeds => {
                dense * (1.0 - self.samoyeds_cfg.sparsity()) * 1.125
                    + config.params_per_moe_layer() as f64 / self.samoyeds_cfg.v as f64
            }
        }
    }

    /// Peak transient activation bytes for `num_tokens` routed tokens.
    pub fn activation_bytes(&self, config: &MoeModelConfig, num_tokens: usize) -> f64 {
        let h = config.hidden_size as f64;
        let i = config.intermediate_size as f64;
        let t = num_tokens as f64;
        let k = config.top_k as f64 + config.num_shared_experts as f64;
        match self.kind {
            // Permuted input copies + gate/up/intermediate buffers + expert
            // outputs awaiting un-permutation, all at bf16.
            EngineKind::Transformers => t * (2.0 * h * (1.0 + k) + 3.0 * i * k) * 2.0,
            // No permutation copy, but block padding and grouped workspace.
            EngineKind::MegaBlocks => t * (h * (1.0 + k) + 3.2 * i * k) * 2.0,
            // Fused kernel keeps gate/up in flight but materialises the
            // per-expert intermediate workspace.
            EngineKind::VllmDs => t * (h + 2.5 * i * k) * 2.0,
            EngineKind::Pit => t * (h + 2.2 * i * k) * 2.0,
            // SEL-driven kernel: no permute copies, compressed intermediate
            // layout, fused activation.
            EngineKind::Samoyeds => t * (h + 1.2 * i * k) * 2.0,
        }
    }

    /// Predicted cost of one MoE layer for `num_tokens` tokens routed by
    /// `plan`.
    pub fn moe_layer_cost(
        &self,
        config: &MoeModelConfig,
        num_tokens: usize,
        plan: &RoutingPlan,
    ) -> LayerCost {
        if !self.supports(config) {
            return LayerCost::unsupported();
        }
        let time_ms = match self.kind {
            EngineKind::Transformers => self.time_transformers(config, num_tokens, plan, false),
            EngineKind::MegaBlocks => self.time_grouped(config, num_tokens, plan, 128, 0.9),
            EngineKind::VllmDs => self.time_fused_dense(config, num_tokens, plan, 64),
            EngineKind::Pit => self.time_pit(config, num_tokens, plan),
            EngineKind::Samoyeds => self.time_samoyeds(config, num_tokens, plan),
        };
        LayerCost {
            time_ms,
            weight_bytes: self.weight_bytes(config),
            activation_bytes: self.activation_bytes(config, num_tokens),
            supported: true,
        }
    }

    /// Expert GEMM helper: the three projections of one expert over `tokens`
    /// tokens, costed with the dense cuBLAS-like kernel.
    fn dense_expert_time_ms(&self, config: &MoeModelConfig, tokens: usize) -> f64 {
        if tokens == 0 {
            return 0.0;
        }
        let gemm = DenseGemm::new(self.device.clone());
        let h = config.hidden_size;
        let i = config.intermediate_size;
        let gate = gemm.stats(&GemmProblem::dense(i, h, tokens)).time_ms;
        let up = gemm.stats(&GemmProblem::dense(i, h, tokens)).time_ms;
        let down = gemm.stats(&GemmProblem::dense(h, i, tokens)).time_ms;
        gate + up + down
    }

    /// Extra time of an element-wise pass (activation or weighted
    /// accumulation) executed as its own kernel over an `m x n` bf16 tensor.
    fn elementwise_pass_ms(&self, m: usize, n: usize, act: Activation) -> f64 {
        let (read, write, flops, overhead_us) = standalone_epilogue_cost(m, n, act);
        let bandwidth = self.device.mem_bandwidth_gbps * 1e9;
        let cuda = self.device.cuda_tflops_fp32 * 1e12 * 0.5;
        ((read + write) / bandwidth + flops / cuda) * 1e3 + overhead_us * 1e-3
    }

    /// Cost of copying `bytes` through global memory (a permute / un-permute
    /// data movement pass).
    fn copy_pass_ms(&self, bytes: f64) -> f64 {
        (2.0 * bytes / (self.device.mem_bandwidth_gbps * 1e9)) * 1e3 + 5.0e-3
    }

    /// Transformers-style execution: permute, per-expert dense GEMMs with
    /// standalone activations, un-permute with weighted accumulation.
    /// `fused_activation` is exposed so the Samoyeds "+W" breakdown point can
    /// reuse this data flow with sparse kernels.
    fn time_transformers(
        &self,
        config: &MoeModelConfig,
        num_tokens: usize,
        plan: &RoutingPlan,
        weight_sparse: bool,
    ) -> f64 {
        let h = config.hidden_size;
        let i = config.intermediate_size;
        let mut total = 0.0;
        // Input permutation: every routed token is copied into its expert's
        // buffer.
        let permuted_tokens: usize = (0..plan.num_experts()).map(|e| plan.tokens_for(e)).sum();
        total += self.copy_pass_ms((permuted_tokens * h) as f64 * 2.0);
        for e in 0..plan.num_experts() {
            let tokens = plan.tokens_for(e);
            if tokens == 0 {
                continue;
            }
            total += if weight_sparse {
                self.samoyeds_expert_time_ms(config, tokens, tokens, SamoyedsOptions::WEIGHT_ONLY)
            } else {
                self.dense_expert_time_ms(config, tokens)
            };
            // Standalone activation + gating multiply over the intermediate.
            total += self.elementwise_pass_ms(i, tokens, config.activation);
            total += self.elementwise_pass_ms(i, tokens, Activation::Identity);
        }
        // Shared experts process every token.
        for _ in 0..config.num_shared_experts {
            total += if weight_sparse {
                self.samoyeds_expert_time_ms(
                    config,
                    num_tokens,
                    num_tokens,
                    SamoyedsOptions::WEIGHT_ONLY,
                )
            } else {
                self.dense_expert_time_ms(config, num_tokens)
            };
            total += self.elementwise_pass_ms(i, num_tokens, config.activation);
        }
        // Weighted un-permutation: expert outputs are written to global
        // memory, re-read, scaled and accumulated into the final output.
        total += self.copy_pass_ms((permuted_tokens * h) as f64 * 2.0 * 2.0);
        total += self.elementwise_pass_ms(h, num_tokens, Activation::Identity);
        total
    }

    /// Grouped dense execution (MegaBlocks-like): one launch over all
    /// experts, tokens padded to `block` per expert, partial fusion.
    fn time_grouped(
        &self,
        config: &MoeModelConfig,
        num_tokens: usize,
        plan: &RoutingPlan,
        block: usize,
        fusion_quality: f64,
    ) -> f64 {
        let h = config.hidden_size;
        let i = config.intermediate_size;
        let gemm = DenseGemm::new(self.device.clone());
        let mut gemm_ms = 0.0;
        for e in 0..plan.num_experts() {
            let tokens = plan.tokens_for(e);
            if tokens == 0 {
                continue;
            }
            let padded = tokens.div_ceil(block) * block;
            gemm_ms += gemm.stats(&GemmProblem::dense(i, h, padded)).time_ms * 2.0;
            gemm_ms += gemm.stats(&GemmProblem::dense(h, i, padded)).time_ms;
        }
        // Grouping removes the per-expert launch overheads except one, and
        // fuses most of the element-wise work.
        let launches_saved = (plan.num_experts().saturating_sub(1) * 3) as f64 * 5.0e-3;
        let mut total = gemm_ms - launches_saved.min(gemm_ms * 0.1);
        total +=
            (1.0 - fusion_quality) * self.elementwise_pass_ms(i, num_tokens, config.activation);
        // Shared experts are ordinary dense GEMMs.
        for _ in 0..config.num_shared_experts {
            total += self.dense_expert_time_ms(config, num_tokens);
        }
        // Token gather/scatter still happens once each way.
        total += self.copy_pass_ms((plan.total_assignments() * h) as f64 * 2.0);
        total
    }

    /// Fused dense MoE kernel (vLLM-DS-like): in-kernel gather, tokens padded
    /// to the kernel tile, fused activation and accumulation.
    fn time_fused_dense(
        &self,
        config: &MoeModelConfig,
        num_tokens: usize,
        plan: &RoutingPlan,
        tile: usize,
    ) -> f64 {
        let h = config.hidden_size;
        let i = config.intermediate_size;
        let gemm = DenseGemm::new(self.device.clone());
        let mut total = 0.0;
        for e in 0..plan.num_experts() {
            let tokens = plan.tokens_for(e);
            if tokens == 0 {
                continue;
            }
            let padded = tokens.div_ceil(tile) * tile;
            total += gemm.stats(&GemmProblem::dense(i, h, padded)).time_ms * 2.0;
            total += gemm.stats(&GemmProblem::dense(h, i, padded)).time_ms;
        }
        // The fused kernel eliminates the separate permute/un-permute passes
        // and the element-wise kernels; only a small in-kernel gather cost
        // proportional to the routed tokens remains.
        total += self.copy_pass_ms((plan.total_assignments() * h) as f64 * 2.0) * 0.3;
        for _ in 0..config.num_shared_experts {
            total += self.dense_expert_time_ms(config, num_tokens);
        }
        total
    }

    /// PIT-like execution: micro-tile permutation invariant packing removes
    /// padding waste entirely but the compute stays on the dense tensor
    /// cores and the packing itself costs one extra pass over the tokens.
    fn time_pit(&self, config: &MoeModelConfig, num_tokens: usize, plan: &RoutingPlan) -> f64 {
        let h = config.hidden_size;
        let i = config.intermediate_size;
        let gemm = DenseGemm::new(self.device.clone());
        let mut total = 0.0;
        for e in 0..plan.num_experts() {
            let tokens = plan.tokens_for(e);
            if tokens == 0 {
                continue;
            }
            // Micro-tiles of 16 remove almost all padding.
            let padded = tokens.div_ceil(16) * 16;
            total += gemm.stats(&GemmProblem::dense(i, h, padded)).time_ms * 2.0;
            total += gemm.stats(&GemmProblem::dense(h, i, padded)).time_ms;
        }
        total += self.copy_pass_ms((plan.total_assignments() * h) as f64 * 2.0) * 0.5;
        for _ in 0..config.num_shared_experts {
            total += self.dense_expert_time_ms(config, num_tokens);
        }
        total
    }

    /// Cost of one expert (three projections) under the Samoyeds kernel with
    /// the given options. `selected` is the number of routed tokens, `total`
    /// the logical token count the SEL array indexes into.
    fn samoyeds_expert_time_ms(
        &self,
        config: &MoeModelConfig,
        selected: usize,
        total: usize,
        options: SamoyedsOptions,
    ) -> f64 {
        if selected == 0 {
            return 0.0;
        }
        let h = config.hidden_size;
        let i = config.intermediate_size;
        let kernel = SamoyedsKernel::with_options(self.device.clone(), options);
        // Padding to the kernel's N-tile (the §6.2 padding effect).
        let nb = TilingConfig::DEFAULT_4070S.nb;
        let padded = selected.div_ceil(nb.min(64)) * nb.min(64);
        // With input sparsity the kernel indexes the full token buffer through
        // the SEL array; without it (the "+W" data flow) the expert receives
        // an already-gathered buffer of just its own tokens.
        let logical_n = if options.input_sparsity {
            total.max(padded)
        } else {
            padded
        };
        let gate = kernel
            .stats(&GemmProblem::samoyeds(
                i,
                h,
                logical_n,
                padded,
                self.samoyeds_cfg,
            ))
            .time_ms;
        let down = kernel
            .stats(&GemmProblem::samoyeds(
                h,
                i,
                padded,
                padded,
                self.samoyeds_cfg,
            ))
            .time_ms;
        gate * 2.0 + down
    }

    /// Samoyeds execution: dual-side sparse kernels straight off the SEL
    /// arrays, fused activation and weighted accumulation, no permute
    /// round-trips.
    fn time_samoyeds(&self, config: &MoeModelConfig, num_tokens: usize, plan: &RoutingPlan) -> f64 {
        let mut total = 0.0;
        for e in 0..plan.num_experts() {
            let tokens = plan.tokens_for(e);
            total +=
                self.samoyeds_expert_time_ms(config, tokens, num_tokens, self.samoyeds_options);
        }
        for _ in 0..config.num_shared_experts {
            total +=
                self.samoyeds_expert_time_ms(config, num_tokens, num_tokens, self.samoyeds_options);
        }
        // The weighted accumulation is fused; only the final dense output
        // write remains, which the kernel already accounts for. A residual
        // reduction across experts' compressed outputs costs one pass when
        // the optimized layout is disabled (handled inside the kernel model).
        if !self.samoyeds_options.input_sparsity {
            // The "+W" configuration keeps the permute/un-permute flow.
            let h = config.hidden_size;
            total += self.copy_pass_ms((plan.total_assignments() * h) as f64 * 2.0 * 3.0);
        }
        total
    }

    /// Functional reference forward of the whole MoE layer under
    /// Transformers-style semantics (gather → expert → weighted scatter),
    /// used to validate that every engine computes the same function.
    pub fn forward_reference(
        experts: &[ExpertWeights],
        x: &DenseMatrix,
        plan: &RoutingPlan,
    ) -> Result<DenseMatrix> {
        if plan.num_experts() != experts.len() {
            return Err(SparseError::config("expert count mismatch"));
        }
        let mut out = DenseMatrix::zeros(x.rows(), x.cols());
        for (e, weights) in experts.iter().enumerate() {
            let sel = plan.selection(e)?;
            if sel.is_empty() {
                continue;
            }
            let gathered = x.select_columns(&sel.indices_usize())?;
            let y = weights.forward(&gathered)?;
            for (slot, &tok) in sel.indices().iter().enumerate() {
                let w = plan.expert_weights[e][slot];
                for r in 0..out.rows() {
                    let cur = out.get(r, tok as usize);
                    out.set(r, tok as usize, cur + w * y.get(r, slot));
                }
            }
        }
        Ok(out)
    }

    /// Functional forward of the MoE layer through the Samoyeds kernel path
    /// (SEL-driven sparse experts, weighted accumulation on the compressed
    /// output). Numerically this differs from [`Self::forward_reference`]
    /// only by the weight pruning error.
    pub fn forward_samoyeds(
        device: &DeviceSpec,
        experts: &[SamoyedsExpertWeights],
        x: &DenseMatrix,
        plan: &RoutingPlan,
    ) -> Result<DenseMatrix> {
        let kernel = SamoyedsKernel::new(device.clone());
        let mut out = DenseMatrix::zeros(x.rows(), x.cols());
        for (e, weights) in experts.iter().enumerate() {
            let sel = plan.selection(e)?;
            if sel.is_empty() {
                continue;
            }
            let input = SelInput::new(x.clone(), sel.clone())?;
            let (gate_out, _) = kernel.execute(&weights.gate, &input)?;
            let (up_out, _) = kernel.execute(&weights.up, &input)?;
            let inter = weights
                .activation
                .apply_matrix(&gate_out)
                .hadamard(&up_out)?;
            let inter_input = SelInput::new(inter, SelectionArray::all(sel.len()))?;
            let (down_out, _) = kernel.execute(&weights.down, &inter_input)?;
            for (slot, &tok) in sel.indices().iter().enumerate() {
                let w = plan.expert_weights[e][slot];
                for r in 0..out.rows() {
                    let cur = out.get(r, tok as usize);
                    out.set(r, tok as usize, cur + w * down_out.get(r, slot));
                }
            }
        }
        Ok(out)
    }

    /// Convenience: evaluate the MoE-layer time of every engine on the same
    /// routing plan, in [`EngineKind::all`] order.
    pub fn compare_all(
        device: &DeviceSpec,
        config: &MoeModelConfig,
        num_tokens: usize,
        plan: &RoutingPlan,
    ) -> Vec<(EngineKind, LayerCost)> {
        EngineKind::all()
            .into_iter()
            .map(|kind| {
                let cost =
                    Engine::new(kind, device.clone()).moe_layer_cost(config, num_tokens, plan);
                (kind, cost)
            })
            .collect()
    }

    /// The cost model bound to this engine's device (handy for callers that
    /// want to evaluate extra kernels consistently).
    pub fn cost_model(&self) -> CostModel {
        CostModel::new(self.device.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::TopKRouter;

    fn plan_for(config: &MoeModelConfig, tokens: usize) -> RoutingPlan {
        TopKRouter::for_config(config, 7).route(tokens)
    }

    #[test]
    fn engine_names_and_all() {
        assert_eq!(EngineKind::all().len(), 5);
        assert_eq!(EngineKind::Samoyeds.name(), "Samoyeds");
        assert_eq!(EngineKind::VllmDs.name(), "vLLM-DS");
    }

    #[test]
    fn ns_rule_for_openmoe() {
        let device = DeviceSpec::rtx4070_super();
        let openmoe = MoeModelConfig::openmoe_34b();
        assert!(!Engine::new(EngineKind::MegaBlocks, device.clone()).supports(&openmoe));
        assert!(!Engine::new(EngineKind::VllmDs, device.clone()).supports(&openmoe));
        assert!(Engine::new(EngineKind::Transformers, device.clone()).supports(&openmoe));
        assert!(Engine::new(EngineKind::Samoyeds, device.clone()).supports(&openmoe));
        let cost = Engine::new(EngineKind::VllmDs, device).moe_layer_cost(
            &openmoe,
            256,
            &plan_for(&openmoe, 256),
        );
        assert!(!cost.supported);
        assert!(cost.time_ms.is_infinite());
    }

    #[test]
    fn samoyeds_is_fastest_on_mixtral_moe_layer() {
        let device = DeviceSpec::rtx4070_super();
        let config = MoeModelConfig::mixtral_8x7b();
        let plan = plan_for(&config, 4096);
        let results = Engine::compare_all(&device, &config, 4096, &plan);
        let time = |k: EngineKind| {
            results
                .iter()
                .find(|(kind, _)| *kind == k)
                .map(|(_, c)| c.time_ms)
                .unwrap()
        };
        let samoyeds = time(EngineKind::Samoyeds);
        let transformers = time(EngineKind::Transformers);
        let megablocks = time(EngineKind::MegaBlocks);
        let vllm = time(EngineKind::VllmDs);
        assert!(
            samoyeds < transformers,
            "samoyeds {samoyeds} transformers {transformers}"
        );
        assert!(
            samoyeds < megablocks,
            "samoyeds {samoyeds} megablocks {megablocks}"
        );
        assert!(samoyeds < vllm, "samoyeds {samoyeds} vllm {vllm}");
        // The speedup over Transformers must be substantial but not an
        // implausible order of magnitude. (The simulation omits the Python
        // framework overheads of HuggingFace Transformers, so the ratio runs
        // higher than the paper's 1.45x average — see EXPERIMENTS.md.)
        let speedup = transformers / samoyeds;
        assert!(speedup > 1.2 && speedup < 6.0, "speedup {speedup}");
        // The fused baselines beat plain Transformers.
        assert!(vllm < transformers);
    }

    #[test]
    fn samoyeds_weight_bytes_are_a_fraction_of_dense() {
        let device = DeviceSpec::rtx4070_super();
        let config = MoeModelConfig::mixtral_8x7b();
        let dense = Engine::new(EngineKind::Transformers, device.clone()).weight_bytes(&config);
        let samoyeds = Engine::new(EngineKind::Samoyeds, device.clone()).weight_bytes(&config);
        let vllm = Engine::new(EngineKind::VllmDs, device).weight_bytes(&config);
        assert!(samoyeds < dense * 0.4);
        assert!(vllm > dense); // workspace copies
    }

    #[test]
    fn activation_bytes_ordering_matches_memory_claims() {
        let device = DeviceSpec::rtx4070_super();
        let config = MoeModelConfig::mixtral_8x7b();
        let tokens = 4096;
        let act = |k| Engine::new(k, device.clone()).activation_bytes(&config, tokens);
        assert!(act(EngineKind::Samoyeds) < act(EngineKind::VllmDs));
        assert!(act(EngineKind::Samoyeds) < act(EngineKind::Transformers));
        assert!(act(EngineKind::VllmDs) < act(EngineKind::Transformers));
    }

    #[test]
    fn shared_expert_models_cost_more_than_without() {
        let device = DeviceSpec::rtx4070_super();
        let mut config = MoeModelConfig::qwen2_moe();
        let plan = plan_for(&config, 1024);
        let with_shared = Engine::new(EngineKind::Samoyeds, device.clone())
            .moe_layer_cost(&config, 1024, &plan)
            .time_ms;
        config.num_shared_experts = 0;
        let without = Engine::new(EngineKind::Samoyeds, device)
            .moe_layer_cost(&config, 1024, &plan)
            .time_ms;
        assert!(with_shared > without);
    }

    #[test]
    fn functional_reference_and_samoyeds_paths_agree_on_tiny_model() {
        let config = MoeModelConfig::tiny_test();
        let device = DeviceSpec::rtx4070_super();
        let experts: Vec<ExpertWeights> = (0..config.num_experts)
            .map(|e| ExpertWeights::random(&config, e, 11))
            .collect();
        let pruned: Vec<SamoyedsExpertWeights> = experts
            .iter()
            .map(|w| w.prune_samoyeds(SamoyedsConfig::DEFAULT).unwrap())
            .collect();
        let x = DenseMatrix::random(config.hidden_size, 24, 13);
        let plan = TopKRouter::for_config(&config, 17).route(24);

        let reference = Engine::forward_reference(&experts, &x, &plan).unwrap();
        let samoyeds = Engine::forward_samoyeds(&device, &pruned, &x, &plan).unwrap();
        assert_eq!(reference.shape(), samoyeds.shape());

        // The two paths use the *same pruned weights* check: run the
        // reference data flow on the pruned experts' dense expansions and it
        // must match the kernel path almost exactly.
        let pruned_dense: Vec<ExpertWeights> = pruned
            .iter()
            .map(|p| ExpertWeights {
                gate: samoyeds_sparse::SparseFormat::to_dense(&p.gate),
                up: samoyeds_sparse::SparseFormat::to_dense(&p.up),
                down: samoyeds_sparse::SparseFormat::to_dense(&p.down),
                activation: p.activation,
            })
            .collect();
        let reference_pruned = Engine::forward_reference(&pruned_dense, &x, &plan).unwrap();
        assert!(
            samoyeds.allclose(&reference_pruned, 1e-2, 1e-2),
            "max diff {}",
            samoyeds.max_abs_diff(&reference_pruned)
        );
        // And the pruned output stays in the same ballpark as the dense one.
        let rel = reference
            .add(&samoyeds.scale(-1.0))
            .unwrap()
            .frobenius_norm()
            / reference.frobenius_norm().max(1e-6);
        assert!(rel < 1.0, "relative error {rel}");
    }

    #[test]
    fn breakdown_options_order_holds_at_the_layer_level() {
        let device = DeviceSpec::rtx4070_super();
        let config = MoeModelConfig::deepseek_moe();
        let plan = plan_for(&config, 4096);
        let time = |opts: SamoyedsOptions| {
            Engine::new(EngineKind::Samoyeds, device.clone())
                .with_samoyeds_options(opts)
                .moe_layer_cost(&config, 4096, &plan)
                .time_ms
        };
        let w = time(SamoyedsOptions::WEIGHT_ONLY);
        let wi = time(SamoyedsOptions::WEIGHT_INPUT);
        let wit = time(SamoyedsOptions::WEIGHT_INPUT_LAYOUT);
        let wits = time(SamoyedsOptions::FULL);
        assert!(wi < w, "WI {wi} vs W {w}");
        assert!(wit < wi);
        assert!(wits < wit);
    }
}
