//! The expert MLP: gate / up / down projections with a gated activation
//! (Figure 11(a)), plus the pruned variants used by the Samoyeds engine.

use crate::config::MoeModelConfig;
use samoyeds_kernels::fusion::Activation;
use samoyeds_sparse::samoyeds::SamoyedsConfig;
use samoyeds_sparse::{DenseMatrix, Result, SamoyedsWeight};

/// Dense weights of one expert. Projections are stored transposed
/// (`[out_features x in_features]`) so the linear layer is `W * x` with
/// tokens as columns, matching the `(W^T x^T)^T` restructuring of §4.5.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpertWeights {
    /// Gate projection, `intermediate x hidden`.
    pub gate: DenseMatrix,
    /// Up projection, `intermediate x hidden`.
    pub up: DenseMatrix,
    /// Down projection, `hidden x intermediate`.
    pub down: DenseMatrix,
    /// Activation applied to the gate output.
    pub activation: Activation,
}

impl ExpertWeights {
    /// Deterministically initialise an expert for a model configuration.
    /// Entries are scaled to keep activations O(1) through the layer.
    pub fn random(config: &MoeModelConfig, expert_index: usize, seed: u64) -> Self {
        let h = config.hidden_size;
        let i = config.intermediate_size;
        let scale_in = (1.0 / h as f32).sqrt();
        let scale_mid = (1.0 / i as f32).sqrt();
        let s = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(expert_index as u64);
        Self {
            gate: DenseMatrix::random(i, h, s).scale(scale_in),
            up: DenseMatrix::random(i, h, s.wrapping_add(1)).scale(scale_in),
            down: DenseMatrix::random(h, i, s.wrapping_add(2)).scale(scale_mid),
            activation: config.activation,
        }
    }

    /// Functional forward pass over tokens-as-columns input `x`
    /// (`hidden x tokens`): `down( act(gate x) ⊙ (up x) )`.
    pub fn forward(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        let g = self.activation.apply_matrix(&self.gate.matmul(x)?);
        let u = self.up.matmul(x)?;
        let inter = g.hadamard(&u)?;
        self.down.matmul(&inter)
    }

    /// Prune every projection into the Samoyeds weight format.
    pub fn prune_samoyeds(&self, cfg: SamoyedsConfig) -> Result<SamoyedsExpertWeights> {
        Ok(SamoyedsExpertWeights {
            gate: SamoyedsWeight::prune_from_dense(&self.gate, cfg)?,
            up: SamoyedsWeight::prune_from_dense(&self.up, cfg)?,
            down: SamoyedsWeight::prune_from_dense(&self.down, cfg)?,
            activation: self.activation,
        })
    }
}

/// One expert with all three projections in the Samoyeds sparse format.
#[derive(Debug, Clone, PartialEq)]
pub struct SamoyedsExpertWeights {
    /// Gate projection in Samoyeds format.
    pub gate: SamoyedsWeight,
    /// Up projection in Samoyeds format.
    pub up: SamoyedsWeight,
    /// Down projection in Samoyeds format.
    pub down: SamoyedsWeight,
    /// Activation applied to the gate output.
    pub activation: Activation,
}

impl SamoyedsExpertWeights {
    /// Functional forward pass on the pruned weights (reference semantics;
    /// the fused kernel path lives in the engines module).
    pub fn forward(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        let g = self.activation.apply_matrix(&self.gate.spmm(x)?);
        let u = self.up.spmm(x)?;
        let inter = g.hadamard(&u)?;
        self.down.spmm(&inter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MoeModelConfig {
        MoeModelConfig::tiny_test()
    }

    #[test]
    fn forward_has_the_right_shape_and_is_deterministic() {
        let w = ExpertWeights::random(&tiny(), 0, 1);
        let x = DenseMatrix::random(64, 10, 2);
        let y = w.forward(&x).unwrap();
        assert_eq!(y.shape(), (64, 10));
        assert_eq!(w.forward(&x).unwrap(), y);
        // Different experts have different weights.
        let w2 = ExpertWeights::random(&tiny(), 1, 1);
        assert_ne!(w.gate, w2.gate);
    }

    #[test]
    fn forward_values_stay_bounded() {
        let w = ExpertWeights::random(&tiny(), 3, 7);
        let x = DenseMatrix::random(64, 16, 8);
        let y = w.forward(&x).unwrap();
        let max = y.as_slice().iter().fold(0.0f32, |a, v| a.max(v.abs()));
        assert!(max.is_finite());
        assert!(max < 100.0, "activations exploded: {max}");
    }

    #[test]
    fn pruned_forward_approximates_dense_forward() {
        let cfg = tiny();
        let w = ExpertWeights::random(&cfg, 0, 5);
        let pruned = w.prune_samoyeds(SamoyedsConfig::DEFAULT).unwrap();
        let x = DenseMatrix::random(64, 8, 6);
        let dense_out = w.forward(&x).unwrap();
        let sparse_out = pruned.forward(&x).unwrap();
        assert_eq!(sparse_out.shape(), dense_out.shape());
        // At 75% sparsity on random (incompressible) weights the outputs
        // differ, but the magnitudes must stay comparable — relative Frobenius
        // error below 1 (pruning keeps the dominant half of each 2:4 group).
        let diff = dense_out
            .add(&sparse_out.scale(-1.0))
            .unwrap()
            .frobenius_norm();
        let rel = diff / dense_out.frobenius_norm().max(1e-6);
        assert!(rel < 1.0, "relative error {rel}");
    }

    #[test]
    fn shape_mismatch_is_propagated() {
        let w = ExpertWeights::random(&tiny(), 0, 1);
        let bad_x = DenseMatrix::random(32, 4, 2);
        assert!(w.forward(&bad_x).is_err());
    }
}
