//! Mixture-of-Experts substrate for the Samoyeds reproduction.
//!
//! This crate builds everything above the kernels that the paper's
//! model-level experiments (§6.2–§6.4, §6.7) need:
//!
//! * [`config`] — the six MoE LLM configurations of Table 2 plus the proxy
//!   models used by the accuracy study;
//! * [`router`] — the top-k token router, shared-expert handling and the
//!   per-expert selection arrays (the source of the input-side sparsity);
//! * [`expert`] — the expert MLP (gate/up/down projections + activation) and
//!   its functional forward pass;
//! * [`engines`] — the five execution engines compared in the paper
//!   (Transformers, MegaBlocks, vLLM-DS, PIT and Samoyeds), each producing a
//!   predicted MoE-layer execution time and memory footprint on a device;
//! * [`attention`] — attention-layer cost (standard and Flash-Attention) for
//!   the time-breakdown and end-to-end experiments;
//! * [`decoder`] — the decoder layer combining attention and MoE;
//! * [`memory`] — the memory-footprint model behind the maximum-batch-size
//!   study (Table 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attention;
pub mod config;
pub mod decoder;
pub mod engines;
pub mod expert;
pub mod memory;
pub mod router;

pub use config::MoeModelConfig;
pub use decoder::DecoderLayer;
pub use engines::{Engine, EngineKind, LayerCost};
pub use router::{RoutingPlan, TopKRouter};
