//! Memory-footprint model and the maximum-batch-size solver (Table 3,
//! Figure 16's OOM boundaries).
//!
//! The experiments measure a single decoder layer, so the resident state is
//! one layer's weights (under whichever representation the engine uses), the
//! attention projections, the KV cache for the processed tokens and the
//! transient activation workspace of the MoE execution engine. The maximum
//! batch size is the largest batch whose total footprint still fits the
//! device memory (with a small reserve for the allocator and CUDA context).

use crate::config::MoeModelConfig;
use crate::engines::{Engine, EngineKind};
use samoyeds_gpu_sim::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Fraction of the device memory usable by the workload (the rest goes to
/// the context, allocator fragmentation and framework overheads).
pub const USABLE_FRACTION: f64 = 0.95;

/// Memory footprint of one decoder layer at a given batch size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// MoE weight bytes under the engine's representation.
    pub moe_weight_bytes: f64,
    /// Attention projection weight bytes.
    pub attention_weight_bytes: f64,
    /// KV-cache bytes for the processed tokens.
    pub kv_cache_bytes: f64,
    /// Transient activation / workspace bytes.
    pub activation_bytes: f64,
}

impl MemoryFootprint {
    /// Total bytes.
    pub fn total(&self) -> f64 {
        self.moe_weight_bytes
            + self.attention_weight_bytes
            + self.kv_cache_bytes
            + self.activation_bytes
    }
}

/// Compute the footprint of one decoder layer for `batch` sequences of
/// `seq_len` tokens under `engine_kind`.
pub fn footprint(
    device: &DeviceSpec,
    engine_kind: EngineKind,
    config: &MoeModelConfig,
    batch: usize,
    seq_len: usize,
) -> MemoryFootprint {
    let engine = Engine::new(engine_kind, device.clone());
    let seq = seq_len.min(config.max_seq_len);
    let tokens = batch * seq;
    MemoryFootprint {
        moe_weight_bytes: engine.weight_bytes(config),
        attention_weight_bytes: config.params_per_attention() as f64 * 2.0,
        kv_cache_bytes: 2.0 * tokens as f64 * config.hidden_size as f64 * 2.0,
        activation_bytes: engine.activation_bytes(config, tokens),
    }
}

/// Whether a batch of the given size fits on the device.
pub fn fits(
    device: &DeviceSpec,
    engine_kind: EngineKind,
    config: &MoeModelConfig,
    batch: usize,
    seq_len: usize,
) -> bool {
    let budget = device.mem_capacity_gib * 1024.0 * 1024.0 * 1024.0 * USABLE_FRACTION;
    footprint(device, engine_kind, config, batch, seq_len).total() <= budget
}

/// Maximum batch size (0 if even batch 1 does not fit — the OOM entries of
/// Table 3). Engines that do not support the model also report 0.
pub fn max_batch_size(
    device: &DeviceSpec,
    engine_kind: EngineKind,
    config: &MoeModelConfig,
    seq_len: usize,
) -> usize {
    let engine = Engine::new(engine_kind, device.clone());
    if !engine.supports(config) {
        return 0;
    }
    if !fits(device, engine_kind, config, 1, seq_len) {
        return 0;
    }
    // Exponential probe then binary search.
    let mut lo = 1usize;
    let mut hi = 2usize;
    while fits(device, engine_kind, config, hi, seq_len) && hi < 1 << 20 {
        lo = hi;
        hi *= 2;
    }
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if fits(device, engine_kind, config, mid, seq_len) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The per-model sequence length convention of the batch-size experiments:
/// 4096 for the small-expert models (CFG#1), 1024 for the larger ones, capped
/// by the model's maximum.
pub fn batch_experiment_seq_len(config: &MoeModelConfig) -> usize {
    let seq = if config.cfg_group == "CFG#1" {
        4096
    } else {
        1024
    };
    seq.min(config.max_seq_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::rtx4070_super()
    }

    #[test]
    fn footprint_components_are_positive_and_scale_with_batch() {
        let config = MoeModelConfig::mixtral_8x7b();
        let f1 = footprint(&device(), EngineKind::Transformers, &config, 1, 1024);
        let f8 = footprint(&device(), EngineKind::Transformers, &config, 8, 1024);
        assert!(f1.total() > 0.0);
        assert_eq!(f1.moe_weight_bytes, f8.moe_weight_bytes);
        assert!(f8.kv_cache_bytes > f1.kv_cache_bytes);
        assert!(f8.activation_bytes > f1.activation_bytes);
        assert!(f8.total() > f1.total());
    }

    #[test]
    fn samoyeds_supports_larger_batches_than_every_baseline() {
        // The Table 3 headline: Samoyeds' compressed weights and leaner
        // activation workspace buy batch-size headroom on every model.
        for config in MoeModelConfig::table2() {
            let seq = batch_experiment_seq_len(&config);
            let samoyeds = max_batch_size(&device(), EngineKind::Samoyeds, &config, seq);
            let transformers = max_batch_size(&device(), EngineKind::Transformers, &config, seq);
            let megablocks = max_batch_size(&device(), EngineKind::MegaBlocks, &config, seq);
            let vllm = max_batch_size(&device(), EngineKind::VllmDs, &config, seq);
            assert!(
                samoyeds > transformers,
                "{}: samoyeds {samoyeds} vs transformers {transformers}",
                config.name
            );
            assert!(samoyeds > megablocks);
            assert!(samoyeds > vllm);
        }
    }

    #[test]
    fn fused_baselines_lose_batch_headroom_to_transformers() {
        // MegaBlocks / vLLM-DS support fewer batches than Transformers
        // because of their workspace copies (Table 3).
        let config = MoeModelConfig::mixtral_8x7b();
        let seq = batch_experiment_seq_len(&config);
        let transformers = max_batch_size(&device(), EngineKind::Transformers, &config, seq);
        let vllm = max_batch_size(&device(), EngineKind::VllmDs, &config, seq);
        let megablocks = max_batch_size(&device(), EngineKind::MegaBlocks, &config, seq);
        assert!(vllm < transformers);
        assert!(megablocks < transformers);
        assert!(vllm > 0);
    }

    #[test]
    fn mixtral_8x22b_ooms_on_the_fused_baselines_but_not_on_samoyeds() {
        let config = MoeModelConfig::mixtral_8x22b();
        let seq = batch_experiment_seq_len(&config);
        assert_eq!(
            max_batch_size(&device(), EngineKind::MegaBlocks, &config, seq),
            0
        );
        assert_eq!(
            max_batch_size(&device(), EngineKind::VllmDs, &config, seq),
            0
        );
        assert!(max_batch_size(&device(), EngineKind::Transformers, &config, seq) > 0);
        assert!(max_batch_size(&device(), EngineKind::Samoyeds, &config, seq) > 0);
    }

    #[test]
    fn unsupported_models_report_zero() {
        let config = MoeModelConfig::openmoe_34b();
        let seq = batch_experiment_seq_len(&config);
        assert_eq!(
            max_batch_size(&device(), EngineKind::MegaBlocks, &config, seq),
            0
        );
        assert!(max_batch_size(&device(), EngineKind::Samoyeds, &config, seq) > 0);
    }

    #[test]
    fn larger_devices_fit_larger_batches() {
        let config = MoeModelConfig::mixtral_8x7b();
        let seq = batch_experiment_seq_len(&config);
        let small = max_batch_size(
            &DeviceSpec::rtx4070_super(),
            EngineKind::Samoyeds,
            &config,
            seq,
        );
        let big = max_batch_size(&DeviceSpec::a100_40g(), EngineKind::Samoyeds, &config, seq);
        assert!(big > small);
    }

    #[test]
    fn average_boost_over_best_baseline_is_substantial() {
        // The paper reports a 4.41x average increase over the best baseline
        // (dominated by OpenMoE's 18.67x); our model should land well above
        // 1.5x on average with every per-model boost >= 1.
        let mut boosts = Vec::new();
        for config in MoeModelConfig::table2() {
            let seq = batch_experiment_seq_len(&config);
            let samoyeds = max_batch_size(&device(), EngineKind::Samoyeds, &config, seq) as f64;
            let best_baseline = [
                EngineKind::Transformers,
                EngineKind::MegaBlocks,
                EngineKind::VllmDs,
            ]
            .into_iter()
            .map(|k| max_batch_size(&device(), k, &config, seq))
            .max()
            .unwrap() as f64;
            assert!(best_baseline >= 1.0, "{} baseline OOM", config.name);
            boosts.push(samoyeds / best_baseline);
        }
        let avg = boosts.iter().sum::<f64>() / boosts.len() as f64;
        assert!(avg > 1.5, "average boost {avg}");
        assert!(boosts.iter().all(|&b| b >= 1.0));
    }
}
