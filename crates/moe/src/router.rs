//! Top-k token routing and the per-expert selection arrays.
//!
//! The router is where the input-side sparsity of the Samoyeds format comes
//! from: each token is dispatched to `top_k` of the routed experts (plus all
//! shared experts), so from the perspective of one expert the activation
//! matrix is column-sparse with a dynamic pattern. To keep experiments
//! deterministic the simulated router draws token-to-expert affinities from a
//! seeded RNG; the distribution can be uniform or mildly skewed, matching the
//! balanced-routing regime the paper evaluates in (identical inputs across
//! engines, §6.3).

use crate::config::MoeModelConfig;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use samoyeds_sparse::{Result, SelectionArray, SparseError};
use serde::{Deserialize, Serialize};

/// The routing decision for one batch of tokens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingPlan {
    /// Number of routed tokens.
    pub num_tokens: usize,
    /// Experts activated per token.
    pub top_k: usize,
    /// For each expert, the ascending token indices routed to it.
    pub expert_tokens: Vec<Vec<u32>>,
    /// For each expert, the router weight of each routed token (same order
    /// as `expert_tokens`).
    pub expert_weights: Vec<Vec<f32>>,
}

impl RoutingPlan {
    /// The selection array of one expert (the `SEL` operand of the kernel).
    pub fn selection(&self, expert: usize) -> Result<SelectionArray> {
        let tokens = self
            .expert_tokens
            .get(expert)
            .ok_or_else(|| SparseError::config(format!("expert {expert} out of range")))?;
        SelectionArray::new(self.num_tokens, tokens.clone())
    }

    /// The selection array of a shared expert: shared experts are isolated
    /// from routing and always process every token of the batch.
    pub fn shared_selection(&self) -> SelectionArray {
        SelectionArray::all(self.num_tokens)
    }

    /// Number of experts in the plan.
    pub fn num_experts(&self) -> usize {
        self.expert_tokens.len()
    }

    /// Tokens routed to `expert`.
    pub fn tokens_for(&self, expert: usize) -> usize {
        self.expert_tokens.get(expert).map_or(0, |t| t.len())
    }

    /// The largest per-expert token count (drives padding overhead).
    pub fn max_tokens_per_expert(&self) -> usize {
        self.expert_tokens
            .iter()
            .map(|t| t.len())
            .max()
            .unwrap_or(0)
    }

    /// Load imbalance: max per-expert tokens over the balanced average.
    pub fn imbalance(&self) -> f64 {
        let avg = self.num_tokens as f64 * self.top_k as f64 / self.num_experts().max(1) as f64;
        if avg == 0.0 {
            return 1.0;
        }
        self.max_tokens_per_expert() as f64 / avg
    }

    /// Total token-expert assignments (must equal `num_tokens * top_k`).
    pub fn total_assignments(&self) -> usize {
        self.expert_tokens.iter().map(|t| t.len()).sum()
    }

    /// Per-expert token counts (the load profile placement strategies use).
    pub fn expert_loads(&self) -> Vec<usize> {
        self.expert_tokens.iter().map(|t| t.len()).collect()
    }

    /// Shard the plan across expert-parallel ranks.
    ///
    /// `assignments[g]` lists the global expert ids owned by rank `g`; the
    /// returned plan for rank `g` contains exactly those experts, renumbered
    /// in the given order, with `num_tokens`/`top_k` unchanged (selection
    /// arrays still index the global token batch). An expert may appear on
    /// several ranks (a replicated hot expert): its token list is then split
    /// round-robin across the replicas, so token assignments are conserved —
    /// the shards' `total_assignments` always sum to the plan's.
    ///
    /// Errors if an expert id is out of range or a non-idle expert is left
    /// unplaced (its tokens would be dropped).
    pub fn shard(&self, assignments: &[Vec<usize>]) -> Result<Vec<RoutingPlan>> {
        let owners = self.collect_owners(assignments)?;
        let mut next_replica = vec![0usize; self.num_experts()];
        let mut shards = Vec::with_capacity(assignments.len());
        for owned in assignments {
            let mut expert_tokens = Vec::with_capacity(owned.len());
            let mut expert_weights = Vec::with_capacity(owned.len());
            for &e in owned {
                let replica = next_replica[e];
                next_replica[e] += 1;
                let stride = owners[e].len();
                // The round-robin slice keeps token indices ascending, as
                // the SelectionArray constructor requires.
                let tokens: Vec<u32> = self.expert_tokens[e]
                    .iter()
                    .skip(replica)
                    .step_by(stride)
                    .copied()
                    .collect();
                let weights: Vec<f32> = self.expert_weights[e]
                    .iter()
                    .skip(replica)
                    .step_by(stride)
                    .copied()
                    .collect();
                expert_tokens.push(tokens);
                expert_weights.push(weights);
            }
            shards.push(RoutingPlan {
                num_tokens: self.num_tokens,
                top_k: self.top_k,
                expert_tokens,
                expert_weights,
            });
        }
        Ok(shards)
    }

    /// Collect the owning ranks of every expert across `assignments`
    /// (assignment-iteration order), validating that ids are in range and
    /// that no expert with routed tokens is left unplaced — the shared
    /// contract of [`RoutingPlan::shard`] and [`RoutingPlan::shard_with`].
    fn collect_owners(&self, assignments: &[Vec<usize>]) -> Result<Vec<Vec<usize>>> {
        let mut owners: Vec<Vec<usize>> = vec![Vec::new(); self.num_experts()];
        for (rank, owned) in assignments.iter().enumerate() {
            for &e in owned {
                if e >= self.num_experts() {
                    return Err(SparseError::config(format!(
                        "expert {e} out of range (plan has {})",
                        self.num_experts()
                    )));
                }
                owners[e].push(rank);
            }
        }
        for (e, ranks) in owners.iter().enumerate() {
            if ranks.is_empty() && !self.expert_tokens[e].is_empty() {
                return Err(SparseError::config(format!(
                    "expert {e} has {} routed tokens but no rank owns it",
                    self.expert_tokens[e].len()
                )));
            }
        }
        Ok(owners)
    }

    /// Shard the plan like [`RoutingPlan::shard`], but let the caller pick
    /// which replica serves each token of a replicated expert.
    ///
    /// `pick(expert, token, owners)` is called once per routed token of
    /// every expert with more than one owner; `owners` lists the owning
    /// ranks in assignment-iteration order (rank ascending, position within
    /// a rank's list preserved) and the returned index selects one of them
    /// (clamped into range). Topology-aware callers use this to keep a
    /// token on the replica inside its own island so its dispatch never
    /// crosses the spine. Token assignments are conserved exactly as in
    /// `shard`: each token goes to exactly one replica and token lists
    /// stay ascending.
    pub fn shard_with<F>(&self, assignments: &[Vec<usize>], mut pick: F) -> Result<Vec<RoutingPlan>>
    where
        F: FnMut(usize, u32, &[usize]) -> usize,
    {
        let owners = self.collect_owners(assignments)?;

        // Partition each expert's token list across its replica instances
        // (filtering keeps the per-replica lists ascending).
        let mut split_tokens: Vec<Vec<Vec<u32>>> = Vec::with_capacity(self.num_experts());
        let mut split_weights: Vec<Vec<Vec<f32>>> = Vec::with_capacity(self.num_experts());
        for (e, ranks) in owners.iter().enumerate() {
            let replicas = ranks.len().max(1);
            let mut tokens: Vec<Vec<u32>> = vec![Vec::new(); replicas];
            let mut weights: Vec<Vec<f32>> = vec![Vec::new(); replicas];
            for (i, &t) in self.expert_tokens[e].iter().enumerate() {
                let choice = if replicas == 1 {
                    0
                } else {
                    pick(e, t, ranks).min(replicas - 1)
                };
                tokens[choice].push(t);
                weights[choice].push(self.expert_weights[e][i]);
            }
            split_tokens.push(tokens);
            split_weights.push(weights);
        }

        let mut next_replica = vec![0usize; self.num_experts()];
        let mut shards = Vec::with_capacity(assignments.len());
        for owned in assignments {
            let mut expert_tokens = Vec::with_capacity(owned.len());
            let mut expert_weights = Vec::with_capacity(owned.len());
            for &e in owned {
                let replica = next_replica[e];
                next_replica[e] += 1;
                expert_tokens.push(std::mem::take(&mut split_tokens[e][replica]));
                expert_weights.push(std::mem::take(&mut split_weights[e][replica]));
            }
            shards.push(RoutingPlan {
                num_tokens: self.num_tokens,
                top_k: self.top_k,
                expert_tokens,
                expert_weights,
            });
        }
        Ok(shards)
    }
}

/// A deterministic top-k router.
#[derive(Debug, Clone)]
pub struct TopKRouter {
    num_experts: usize,
    top_k: usize,
    seed: u64,
    skew: f64,
}

impl TopKRouter {
    /// Build a router for a model configuration.
    pub fn for_config(config: &MoeModelConfig, seed: u64) -> Self {
        Self {
            num_experts: config.num_experts,
            top_k: config.top_k,
            seed,
            skew: 0.0,
        }
    }

    /// Build a router with explicit parameters.
    pub fn new(num_experts: usize, top_k: usize, seed: u64) -> Result<Self> {
        if top_k == 0 || top_k > num_experts {
            return Err(SparseError::config(format!(
                "top_k {top_k} must be in 1..={num_experts}"
            )));
        }
        Ok(Self {
            num_experts,
            top_k,
            seed,
            skew: 0.0,
        })
    }

    /// Skew the expert popularity: expert `e` is drawn with probability
    /// proportional to `1 / (e + 1)^skew` (Zipf-like). `skew = 0` is the
    /// uniform, balanced-routing regime of the paper's experiments; larger
    /// values concentrate traffic on a few hot experts, the imbalanced
    /// regime expert-parallel placement has to cope with.
    pub fn with_skew(mut self, skew: f64) -> Self {
        assert!(skew >= 0.0 && skew.is_finite(), "skew must be >= 0");
        self.skew = skew;
        self
    }

    /// Route `num_tokens` tokens: each token picks `top_k` distinct experts
    /// (uniformly, or Zipf-weighted under [`Self::with_skew`]) and receives
    /// softmax-normalised router weights.
    pub fn route(&self, num_tokens: usize) -> RoutingPlan {
        self.route_seeded(self.seed, num_tokens)
    }

    /// [`Self::route`] with an explicit seed override. Lets a long-lived
    /// router be reseeded per call (one router per scheduler, one seed per
    /// step) instead of being rebuilt on every step of a serving hot path:
    /// `router.route_seeded(s, n)` equals
    /// `TopKRouter::new(num_experts, top_k, s).unwrap().route(n)` with the
    /// same skew.
    pub fn route_seeded(&self, seed: u64, num_tokens: usize) -> RoutingPlan {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut expert_tokens: Vec<Vec<u32>> = vec![Vec::new(); self.num_experts];
        let mut expert_weights: Vec<Vec<f32>> = vec![Vec::new(); self.num_experts];
        let mut experts: Vec<usize> = (0..self.num_experts).collect();
        // Clamp to the smallest positive float: extreme skews underflow the
        // Zipf tail to 0.0, which would leave the sampler with an empty
        // distribution once the hot experts are drawn.
        let popularity: Vec<f64> = (0..self.num_experts)
            .map(|e| (1.0 / ((e + 1) as f64).powf(self.skew)).max(f64::MIN_POSITIVE))
            .collect();
        let mut chosen_buf: Vec<usize> = Vec::with_capacity(self.top_k);
        let mut remaining = popularity.clone();
        for token in 0..num_tokens {
            let chosen: &[usize] = if self.skew == 0.0 {
                experts.shuffle(&mut rng);
                &experts[..self.top_k]
            } else {
                // Weighted sampling without replacement over the popularity
                // distribution.
                chosen_buf.clear();
                remaining.copy_from_slice(&popularity);
                for _ in 0..self.top_k {
                    let total: f64 = remaining.iter().sum();
                    let mut draw = rng.gen_range(0.0..total);
                    // Fallback to the last still-available expert: rounding
                    // in the running subtraction can leave `draw` above
                    // every probability, and a fixed fallback could pick an
                    // already-chosen expert (duplicating a token in its
                    // list).
                    let mut pick = remaining
                        .iter()
                        .rposition(|&p| p > 0.0)
                        .expect("top_k <= num_experts leaves an expert available");
                    for (e, &p) in remaining.iter().enumerate() {
                        if p <= 0.0 {
                            continue;
                        }
                        if draw < p {
                            pick = e;
                            break;
                        }
                        draw -= p;
                    }
                    remaining[pick] = 0.0;
                    chosen_buf.push(pick);
                }
                &chosen_buf
            };
            // Softmax over random logits for the chosen experts.
            let logits: Vec<f32> = chosen.iter().map(|_| rng.gen_range(-1.0..1.0)).collect();
            let max = logits.iter().cloned().fold(f32::MIN, f32::max);
            let exps: Vec<f32> = logits.iter().map(|l| (l - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            for (&e, w) in chosen.iter().zip(exps.iter()) {
                expert_tokens[e].push(token as u32);
                expert_weights[e].push(w / sum);
            }
        }
        RoutingPlan {
            num_tokens,
            top_k: self.top_k,
            expert_tokens,
            expert_weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_validates_top_k() {
        assert!(TopKRouter::new(8, 0, 1).is_err());
        assert!(TopKRouter::new(8, 9, 1).is_err());
        assert!(TopKRouter::new(8, 2, 1).is_ok());
    }

    #[test]
    fn routing_is_deterministic_per_seed() {
        let r = TopKRouter::new(8, 2, 42).unwrap();
        assert_eq!(r.route(128), r.route(128));
        let r2 = TopKRouter::new(8, 2, 43).unwrap();
        assert_ne!(r.route(128), r2.route(128));
    }

    #[test]
    fn route_seeded_matches_a_router_built_with_that_seed() {
        // The per-step reseeding contract the serving backends rely on: one
        // long-lived router reseeded per call is indistinguishable from a
        // router rebuilt with the override seed.
        let base = TopKRouter::new(8, 2, 42).unwrap();
        for seed in [0u64, 1, 42, 42 ^ 7, u64::MAX] {
            let rebuilt = TopKRouter::new(8, 2, seed).unwrap();
            assert_eq!(base.route_seeded(seed, 128), rebuilt.route(128));
        }
        // The same holds under skew.
        let skewed = TopKRouter::new(16, 3, 5).unwrap().with_skew(1.2);
        let rebuilt = TopKRouter::new(16, 3, 99).unwrap().with_skew(1.2);
        assert_eq!(skewed.route_seeded(99, 256), rebuilt.route(256));
    }

    #[test]
    fn every_token_gets_exactly_top_k_experts() {
        let r = TopKRouter::new(16, 4, 7).unwrap();
        let plan = r.route(256);
        assert_eq!(plan.total_assignments(), 256 * 4);
        // Token indices are strictly increasing per expert (required by the
        // SelectionArray constructor).
        for e in 0..plan.num_experts() {
            let sel = plan.selection(e).unwrap();
            assert_eq!(sel.len(), plan.tokens_for(e));
            assert_eq!(sel.total(), 256);
        }
        assert!(plan.selection(99).is_err());
    }

    #[test]
    fn router_weights_are_normalised_per_token() {
        let r = TopKRouter::new(8, 2, 9).unwrap();
        let plan = r.route(64);
        // Sum of weights across experts for each token must be ~1.
        let mut per_token = vec![0.0f32; 64];
        for e in 0..plan.num_experts() {
            for (i, &t) in plan.expert_tokens[e].iter().enumerate() {
                per_token[t as usize] += plan.expert_weights[e][i];
            }
        }
        for (t, w) in per_token.iter().enumerate() {
            assert!((w - 1.0).abs() < 1e-5, "token {t} weight sum {w}");
        }
    }

    #[test]
    fn per_expert_loads_sum_to_tokens_times_top_k() {
        // The conservation invariant behind the input-side sparsity: every
        // token contributes exactly top_k assignments, however skewed the
        // per-expert loads are.
        for config in MoeModelConfig::table2() {
            for tokens in [1usize, 17, 256] {
                let plan = TopKRouter::for_config(&config, 13).route(tokens);
                let load_sum: usize = (0..plan.num_experts()).map(|e| plan.tokens_for(e)).sum();
                assert_eq!(load_sum, tokens * config.top_k, "{}", config.name);
                assert_eq!(plan.total_assignments(), tokens * config.top_k);
                assert_eq!(plan.num_experts(), config.num_experts);
                // Router weights mirror the token lists exactly.
                for e in 0..plan.num_experts() {
                    assert_eq!(plan.expert_tokens[e].len(), plan.expert_weights[e].len());
                }
            }
        }
    }

    #[test]
    fn shared_experts_always_receive_all_tokens() {
        let config = MoeModelConfig::deepseek_moe();
        assert!(config.has_shared_experts());
        let plan = TopKRouter::for_config(&config, 5).route(97);
        let shared = plan.shared_selection();
        // The shared-expert selection is dense: every token, in order.
        assert_eq!(shared.len(), 97);
        assert_eq!(shared.total(), 97);
        let indices: Vec<u32> = (0..97).collect();
        assert_eq!(shared.indices(), indices.as_slice());
        // Routed experts, by contrast, each see a strict subset for top_k <
        // num_experts.
        for e in 0..plan.num_experts() {
            assert!(plan.tokens_for(e) < 97);
        }
    }

    #[test]
    fn plans_are_deterministic_and_selection_arrays_match_loads() {
        let config = MoeModelConfig::qwen2_moe();
        let a = TopKRouter::for_config(&config, 99).route(333);
        let b = TopKRouter::for_config(&config, 99).route(333);
        assert_eq!(a, b);
        for e in 0..a.num_experts() {
            let sel = a.selection(e).unwrap();
            assert_eq!(sel.len(), a.tokens_for(e));
            assert_eq!(sel.total(), 333);
        }
        // A different seed changes at least the assignment pattern.
        let c = TopKRouter::for_config(&config, 100).route(333);
        assert_ne!(a, c);
    }

    #[test]
    fn sharding_conserves_assignments_and_renumbers_experts() {
        let plan = TopKRouter::new(8, 2, 21).unwrap().route(256);
        // 8 experts over 4 ranks, contiguous blocks of two.
        let assignments: Vec<Vec<usize>> = (0..4).map(|g| vec![2 * g, 2 * g + 1]).collect();
        let shards = plan.shard(&assignments).unwrap();
        assert_eq!(shards.len(), 4);
        let total: usize = shards.iter().map(|s| s.total_assignments()).sum();
        assert_eq!(total, plan.total_assignments());
        for (g, shard) in shards.iter().enumerate() {
            assert_eq!(shard.num_experts(), 2);
            assert_eq!(shard.num_tokens, plan.num_tokens);
            assert_eq!(shard.top_k, plan.top_k);
            for local in 0..2 {
                assert_eq!(
                    shard.expert_tokens[local],
                    plan.expert_tokens[2 * g + local]
                );
                // Selection arrays still index the global batch.
                let sel = shard.selection(local).unwrap();
                assert_eq!(sel.total(), plan.num_tokens);
            }
        }
    }

    #[test]
    fn sharding_splits_replicated_experts_without_losing_tokens() {
        let plan = TopKRouter::new(4, 2, 5).unwrap().route(101);
        // Expert 0 replicated on both ranks; the rest split.
        let assignments = vec![vec![0, 1], vec![0, 2, 3]];
        let shards = plan.shard(&assignments).unwrap();
        let replica_a = &shards[0].expert_tokens[0];
        let replica_b = &shards[1].expert_tokens[0];
        assert_eq!(replica_a.len() + replica_b.len(), plan.tokens_for(0));
        // Replicas are disjoint, ascending, and merge back to the original.
        let mut merged: Vec<u32> = replica_a.iter().chain(replica_b.iter()).copied().collect();
        merged.sort_unstable();
        assert_eq!(&merged, &plan.expert_tokens[0]);
        assert!(replica_a.windows(2).all(|w| w[0] < w[1]));
        assert!(replica_b.windows(2).all(|w| w[0] < w[1]));
        // The replicas' loads differ by at most one token (round-robin).
        assert!(replica_a.len().abs_diff(replica_b.len()) <= 1);
        let total: usize = shards.iter().map(|s| s.total_assignments()).sum();
        assert_eq!(total, plan.total_assignments());
    }

    #[test]
    fn sharding_rejects_bad_assignments() {
        let plan = TopKRouter::new(4, 2, 5).unwrap().route(64);
        // Out-of-range expert id.
        assert!(plan.shard(&[vec![0, 1], vec![2, 9]]).is_err());
        // Expert 3 has routed tokens but no owner.
        assert!(plan.shard(&[vec![0, 1], vec![2]]).is_err());
        // shard_with enforces the same contract.
        assert!(plan
            .shard_with(&[vec![0, 1], vec![2, 9]], |_, _, _| 0)
            .is_err());
        assert!(plan
            .shard_with(&[vec![0, 1], vec![2]], |_, _, _| 0)
            .is_err());
    }

    #[test]
    fn shard_with_routes_tokens_to_the_picked_replica() {
        let plan = TopKRouter::new(4, 2, 7).unwrap().route(128);
        // Expert 0 replicated on both ranks; even tokens to the rank-0
        // replica, odd tokens to the rank-1 replica (an affinity rule).
        let assignments = vec![vec![0, 1], vec![0, 2, 3]];
        let shards = plan
            .shard_with(&assignments, |e, t, owners| {
                assert_eq!(e, 0, "pick only runs for replicated experts");
                assert_eq!(owners, &[0, 1]);
                (t % 2) as usize
            })
            .unwrap();
        let total: usize = shards.iter().map(|s| s.total_assignments()).sum();
        assert_eq!(total, plan.total_assignments());
        assert!(shards[0].expert_tokens[0].iter().all(|t| t % 2 == 0));
        assert!(shards[1].expert_tokens[0].iter().all(|t| t % 2 == 1));
        for shard in &shards {
            for et in &shard.expert_tokens {
                assert!(et.windows(2).all(|w| w[0] < w[1]));
            }
        }
        // Singly-owned experts keep their full token lists.
        assert_eq!(shards[0].expert_tokens[1], plan.expert_tokens[1]);
        // Out-of-range picks clamp to the last replica instead of dropping
        // tokens.
        let clamped = plan.shard_with(&assignments, |_, _, _| 99).unwrap();
        let total: usize = clamped.iter().map(|s| s.total_assignments()).sum();
        assert_eq!(total, plan.total_assignments());
        assert!(clamped[0].expert_tokens[0].is_empty());
    }

    #[test]
    fn skewed_routing_is_imbalanced_and_still_conserves_tokens() {
        let uniform = TopKRouter::new(16, 2, 11).unwrap().route(2048);
        let skewed = TopKRouter::new(16, 2, 11)
            .unwrap()
            .with_skew(1.2)
            .route(2048);
        assert_eq!(skewed.total_assignments(), 2048 * 2);
        assert!(
            skewed.imbalance() > uniform.imbalance() * 1.5,
            "skewed {} vs uniform {}",
            skewed.imbalance(),
            uniform.imbalance()
        );
        // Low-index experts are the hot ones under the Zipf popularity.
        assert!(skewed.tokens_for(0) > skewed.tokens_for(15) * 2);
        // Still deterministic and valid: ascending per-expert token lists.
        assert_eq!(
            skewed,
            TopKRouter::new(16, 2, 11)
                .unwrap()
                .with_skew(1.2)
                .route(2048)
        );
        for e in 0..skewed.num_experts() {
            assert!(skewed.expert_tokens[e].windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn extreme_skew_does_not_panic_and_stays_valid() {
        // Skews large enough to underflow the Zipf tail to 0.0 must still
        // sample top_k distinct experts per token.
        let plan = TopKRouter::new(16, 3, 0)
            .unwrap()
            .with_skew(1100.0)
            .route(64);
        assert_eq!(plan.total_assignments(), 64 * 3);
        for e in 0..plan.num_experts() {
            assert!(plan.expert_tokens[e].windows(2).all(|w| w[0] < w[1]));
        }
        // The hottest expert absorbs every token; once the un-underflowed
        // head is exhausted the clamped tail is sampled uniformly.
        assert_eq!(plan.tokens_for(0), 64);
    }

    #[test]
    fn load_is_roughly_balanced_for_uniform_routing() {
        let cfg = MoeModelConfig::mixtral_8x7b();
        let r = TopKRouter::for_config(&cfg, 3);
        let plan = r.route(4096);
        // Uniform random routing keeps the imbalance mild.
        assert!(plan.imbalance() < 1.35, "imbalance {}", plan.imbalance());
        let expected_avg = 4096.0 * 2.0 / 8.0;
        for e in 0..8 {
            let frac = plan.tokens_for(e) as f64 / expected_avg;
            assert!(frac > 0.7 && frac < 1.3, "expert {e} load fraction {frac}");
        }
    }
}
