//! The synthetic teacher–student accuracy harness behind Tables 4 and 5.
//!
//! A linear teacher with *row-dependent column importance* (different rows
//! rely on different input features, as attention/FFN projections do)
//! generates labelled data. The teacher is pruned into each format under
//! test and evaluated on held-out data:
//!
//! * an **F1-like score** — agreement of the pruned model's binarised
//!   predictions with the dense model's (the Table 4 quantity, scaled to the
//!   familiar 0–100 range);
//! * a **perplexity proxy** — `exp(base + normalised reconstruction error)`,
//!   anchored so the dense model lands near the paper's dense perplexities
//!   (the Table 5 quantity, lower is better).
//!
//! These proxies preserve exactly what the paper's accuracy claims rest on:
//! formats that keep more salient weight mass score better, the Samoyeds
//! format tracks unstructured pruning closely across its (N,M,V)
//! configurations, and VENOM's coarser vector granularity (one column choice
//! shared by a whole `V`-row panel) costs it accuracy when column importance
//! varies across rows.

use crate::fisher::prune_woodfisher;
use crate::magnitude::{prune_magnitude, retained_energy};
use crate::sparsegpt::{prune_sparsegpt, reconstruction_error};
use samoyeds_sparse::prune::{PruneFormat, PrunedWeight};
use samoyeds_sparse::{DenseMatrix, Result};
use serde::{Deserialize, Serialize};

/// Which pruning algorithm to use for mask selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PruneMethod {
    /// Plain magnitude (Han et al.).
    Magnitude,
    /// WoodFisher-style diagonal second-order saliency.
    WoodFisher,
    /// SparseGPT-style Hessian saliency with error feedback.
    SparseGpt,
}

/// The result of evaluating one pruned format on the proxy task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Format label (e.g. `samoyeds-(1,2,32)`).
    pub format: String,
    /// Pruning method used.
    pub method: PruneMethod,
    /// F1-like agreement score in 0–100 (higher is better).
    pub f1: f64,
    /// Perplexity proxy (lower is better).
    pub perplexity: f64,
    /// Fraction of weight energy retained by the format.
    pub retained_energy: f64,
    /// Relative output reconstruction error on held-out data.
    pub reconstruction_error: f64,
}

/// A deterministic teacher–student proxy task.
#[derive(Debug, Clone)]
pub struct ProxyTask {
    name: String,
    teacher: DenseMatrix,
    calibration: DenseMatrix,
    heldout: DenseMatrix,
    /// Perplexity anchor so that the dense model reproduces the paper's
    /// dense perplexity for the corresponding model (e.g. 1.72 for
    /// Tiny-LLaMA).
    dense_perplexity_anchor: f64,
}

impl ProxyTask {
    /// Build a proxy task. `in_dim`/`out_dim` must satisfy the shape
    /// constraints of the formats under test (multiples of 64 are safe).
    pub fn new(
        name: impl Into<String>,
        out_dim: usize,
        in_dim: usize,
        samples: usize,
        dense_perplexity_anchor: f64,
        seed: u64,
    ) -> Self {
        // Teacher whose salient weights are row-structured, mirroring a
        // trained network after saliency-aware fine-tuning: within every pair
        // of rows one carries most of the signal (so vector-wise Sub-Row
        // selection is nearly lossless), while the per-row column importance
        // is unstructured (so element-wise 2:4 and column-vector choices
        // still matter and differ between formats).
        let base = DenseMatrix::random(out_dim, in_dim, seed);
        let teacher = DenseMatrix::from_fn(out_dim, in_dim, |r, c| {
            let row_scale = if r % 2 == 0 { 1.0 } else { 0.15 };
            // Heavy-tailed within-row distribution: roughly a quarter of the
            // entries carry most of a row's energy, at positions that differ
            // from row to row (the property that separates per-row selection
            // from VENOM's panel-wide column selection).
            let important = (r * 31 + c * 17) % 4 == 0;
            let tail_scale = if important { 4.0 } else { 1.0 };
            base.get(r, c) * row_scale * tail_scale
        });
        // Calibration and held-out inputs with non-uniform feature power.
        let calib_raw = DenseMatrix::random(in_dim, samples, seed.wrapping_add(1));
        let calibration = DenseMatrix::from_fn(in_dim, samples, |j, s| {
            calib_raw.get(j, s) * (0.2 + 1.8 * ((j % 16) as f32) / 16.0)
        });
        let held_raw = DenseMatrix::random(in_dim, samples, seed.wrapping_add(2));
        let heldout = DenseMatrix::from_fn(in_dim, samples, |j, s| {
            held_raw.get(j, s) * (0.2 + 1.8 * ((j % 16) as f32) / 16.0)
        });
        Self {
            name: name.into(),
            teacher,
            calibration,
            heldout,
            dense_perplexity_anchor,
        }
    }

    /// The BERT-like QA proxy of Table 4.
    pub fn bert_like(name: &str, seed: u64) -> Self {
        Self::new(name, 128, 256, 192, 1.0, seed)
    }

    /// The Tiny-LLaMA proxy of Table 5 (dense perplexity anchor 1.72).
    pub fn tiny_llama_like(seed: u64) -> Self {
        Self::new("Tiny-LLaMA", 128, 256, 192, 1.72, seed)
    }

    /// The Qwen2-1.5B proxy of Table 5 (dense perplexity anchor 1.92).
    pub fn qwen2_like(seed: u64) -> Self {
        Self::new("Qwen2", 128, 256, 192, 1.92, seed)
    }

    /// Task name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The teacher weight matrix (what gets pruned).
    pub fn teacher(&self) -> &DenseMatrix {
        &self.teacher
    }

    /// Prune the teacher into `format` with `method`.
    pub fn prune(&self, format: PruneFormat, method: PruneMethod) -> Result<PrunedWeight> {
        match method {
            PruneMethod::Magnitude => prune_magnitude(&self.teacher, format),
            PruneMethod::WoodFisher => prune_woodfisher(&self.teacher, &self.calibration, format),
            PruneMethod::SparseGpt => prune_sparsegpt(&self.teacher, &self.calibration, format),
        }
    }

    /// Evaluate one format + method combination on the held-out data.
    pub fn evaluate(&self, format: PruneFormat, method: PruneMethod) -> Result<AccuracyReport> {
        let pruned = self.prune(format, method)?;
        let recon = reconstruction_error(&self.teacher, &pruned, &self.heldout)?;
        let energy = retained_energy(&self.teacher, &pruned);

        // F1-like score: binarise the dense and pruned outputs on held-out
        // inputs and measure their confidence-weighted F1 agreement (dense
        // predictions as the reference labels, each weighted by the dense
        // model's output magnitude so that near-zero, essentially undecided
        // outputs do not dominate the score).
        let dense_out = self.teacher.matmul(&self.heldout)?;
        let pruned_out = pruned.to_dense().matmul(&self.heldout)?;
        let (mut tp, mut fp, mut fn_) = (0.0f64, 0.0f64, 0.0f64);
        for (d, p) in dense_out
            .as_slice()
            .iter()
            .zip(pruned_out.as_slice().iter())
        {
            let weight = d.abs() as f64;
            let dl = *d > 0.0;
            let pl = *p > 0.0;
            match (dl, pl) {
                (true, true) => tp += weight,
                (false, true) => fp += weight,
                (true, false) => fn_ += weight,
                (false, false) => {}
            }
        }
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 1.0 };
        let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 1.0 };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall) * 100.0
        } else {
            0.0
        };

        // Perplexity proxy anchored at the paper's dense value.
        let perplexity = self.dense_perplexity_anchor * (recon * 1.2).exp();

        Ok(AccuracyReport {
            format: format.label(),
            method,
            f1,
            perplexity,
            retained_energy: energy,
            reconstruction_error: recon,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samoyeds_sparse::samoyeds::SamoyedsConfig;
    use samoyeds_sparse::venom::VenomConfig;

    fn task() -> ProxyTask {
        ProxyTask::tiny_llama_like(7)
    }

    #[test]
    fn dense_model_scores_perfectly() {
        let t = task();
        let r = t
            .evaluate(PruneFormat::Dense, PruneMethod::Magnitude)
            .unwrap();
        assert!(r.f1 > 99.9);
        assert!((r.perplexity - 1.72).abs() < 1e-6);
        assert!(r.reconstruction_error < 1e-6);
        assert!((r.retained_energy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table5_ordering_dense_best_then_unstructured_and_samoyeds_then_venom() {
        let t = task();
        let method = PruneMethod::SparseGpt;
        let dense = t.evaluate(PruneFormat::Dense, method).unwrap();
        let unstructured = t
            .evaluate(PruneFormat::Unstructured { sparsity: 0.75 }, method)
            .unwrap();
        let samoyeds = t
            .evaluate(PruneFormat::Samoyeds(SamoyedsConfig::DEFAULT), method)
            .unwrap();
        let venom = t
            .evaluate(
                PruneFormat::Venom(VenomConfig { v: 64, n: 4, m: 8 }),
                method,
            )
            .unwrap();
        // Lower perplexity is better.
        assert!(dense.perplexity <= unstructured.perplexity);
        assert!(dense.perplexity <= samoyeds.perplexity);
        // Samoyeds tracks unstructured closely (within ~0.35 of perplexity,
        // the Table 5 gap being of the same order).
        assert!(
            (samoyeds.perplexity - unstructured.perplexity).abs() < 0.35,
            "samoyeds {} unstructured {}",
            samoyeds.perplexity,
            unstructured.perplexity
        );
        // VENOM's coarser vector granularity costs accuracy.
        assert!(
            venom.perplexity > samoyeds.perplexity,
            "venom {} samoyeds {}",
            venom.perplexity,
            samoyeds.perplexity
        );
        // All perplexities stay in a plausible range.
        for r in [&dense, &unstructured, &samoyeds, &venom] {
            assert!(
                r.perplexity >= 1.7 && r.perplexity < 3.5,
                "{:?}",
                r.perplexity
            );
        }
    }

    #[test]
    fn table4_samoyeds_configs_retain_high_f1() {
        let t = ProxyTask::bert_like("Bert-base", 3);
        for cfg in [
            SamoyedsConfig::N1_M2_V16,
            SamoyedsConfig::N1_M2_V32,
            SamoyedsConfig::N4_M8_V32,
            SamoyedsConfig::N8_M16_V32,
        ] {
            let r = t
                .evaluate(PruneFormat::Samoyeds(cfg), PruneMethod::WoodFisher)
                .unwrap();
            assert!(r.f1 > 85.0, "{} f1 {}", cfg.label(), r.f1);
            assert!(r.f1 <= 100.0);
        }
    }

    #[test]
    fn better_methods_do_not_hurt() {
        let t = task();
        let fmt = PruneFormat::Samoyeds(SamoyedsConfig::DEFAULT);
        let mag = t.evaluate(fmt, PruneMethod::Magnitude).unwrap();
        let sgpt = t.evaluate(fmt, PruneMethod::SparseGpt).unwrap();
        let wf = t.evaluate(fmt, PruneMethod::WoodFisher).unwrap();
        assert!(sgpt.reconstruction_error <= mag.reconstruction_error * 1.05);
        assert!(wf.reconstruction_error <= mag.reconstruction_error * 1.15);
    }

    #[test]
    fn task_is_deterministic() {
        let a = ProxyTask::qwen2_like(5)
            .evaluate(
                PruneFormat::Samoyeds(SamoyedsConfig::DEFAULT),
                PruneMethod::Magnitude,
            )
            .unwrap();
        let b = ProxyTask::qwen2_like(5)
            .evaluate(
                PruneFormat::Samoyeds(SamoyedsConfig::DEFAULT),
                PruneMethod::Magnitude,
            )
            .unwrap();
        assert_eq!(a, b);
    }
}
