//! WoodFisher-style second-order pruning (diagonal empirical Fisher).
//!
//! WoodFisher scores each weight by the loss increase its removal causes,
//! approximated with (the diagonal of) the empirical Fisher information
//! computed from calibration gradients: `score(w) = w^2 * F_diag`. Weights
//! whose removal barely moves the loss are pruned first. The full WoodFisher
//! also applies an update to the surviving weights; we implement the
//! widely-used diagonal variant (equivalent to Optimal Brain Damage), which
//! is enough to rank formats the way the paper's Table 4/5 do.

use samoyeds_sparse::prune::{apply_mask_of, prune, PruneFormat, PrunedWeight};
use samoyeds_sparse::{DenseMatrix, Result};

/// Estimate the diagonal of the empirical Fisher information of a linear
/// layer `y = W x` under squared loss, from calibration inputs `x`
/// (`in_features x samples`): `F_jj ∝ E[x_j^2]`, broadcast over output rows.
pub fn fisher_diagonal(calibration: &DenseMatrix) -> Vec<f64> {
    let samples = calibration.cols().max(1) as f64;
    (0..calibration.rows())
        .map(|j| {
            (0..calibration.cols())
                .map(|s| (calibration.get(j, s) as f64).powi(2))
                .sum::<f64>()
                / samples
        })
        .collect()
}

/// Prune `weight` (`out x in`) into `format` using WoodFisher-style scores
/// `w_ij^2 * F_jj` computed from `calibration` (`in x samples`).
///
/// The scored matrix is pruned by the format-specific magnitude pruner (which
/// selects by |score|), and the resulting mask is applied to the original
/// weights — i.e. the saliency criterion decides *what* to keep, the kept
/// values stay exact.
pub fn prune_woodfisher(
    weight: &DenseMatrix,
    calibration: &DenseMatrix,
    format: PruneFormat,
) -> Result<PrunedWeight> {
    let fisher = fisher_diagonal(calibration);
    let scored = DenseMatrix::from_fn(weight.rows(), weight.cols(), |r, c| {
        let f = fisher.get(c).copied().unwrap_or(1.0).max(1e-12) as f32;
        weight.get(r, c) * f.sqrt()
    });
    let scored_pruned = prune(&scored, format)?;
    let masked = apply_mask_of(&scored_pruned, weight)?;
    prune(&masked, format)
}

#[cfg(test)]
mod tests {
    use super::*;
    use samoyeds_sparse::nm::NmConfig;

    #[test]
    fn fisher_diagonal_reflects_input_power() {
        // Feature 0 has large activations, feature 2 is almost silent.
        let calib = DenseMatrix::from_vec(
            3,
            4,
            vec![
                10.0, -9.0, 11.0, -10.0, //
                1.0, 1.0, -1.0, -1.0, //
                0.01, 0.0, -0.01, 0.0,
            ],
        )
        .unwrap();
        let f = fisher_diagonal(&calib);
        assert!(f[0] > f[1] && f[1] > f[2]);
    }

    #[test]
    fn woodfisher_keeps_weights_on_high_power_inputs() {
        // Two equal-magnitude weights per group; the one multiplying the
        // high-power input must survive.
        let weight = DenseMatrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let mut calib = DenseMatrix::zeros(4, 8);
        for s in 0..8 {
            calib.set(0, s, 5.0); // high power
            calib.set(1, s, 0.1);
            calib.set(2, s, 4.0); // second highest
            calib.set(3, s, 0.1);
        }
        let pruned =
            prune_woodfisher(&weight, &calib, PruneFormat::Nm(NmConfig::TWO_FOUR)).unwrap();
        let dense = pruned.to_dense();
        assert_eq!(dense.get(0, 0), 1.0);
        assert_eq!(dense.get(0, 2), 1.0);
        assert_eq!(dense.get(0, 1), 0.0);
        assert_eq!(dense.get(0, 3), 0.0);
    }

    #[test]
    fn woodfisher_preserves_surviving_values_exactly() {
        let weight = DenseMatrix::random(16, 32, 4);
        let calib = DenseMatrix::random(32, 64, 5);
        let pruned =
            prune_woodfisher(&weight, &calib, PruneFormat::Nm(NmConfig::TWO_FOUR)).unwrap();
        let dense = pruned.to_dense();
        for r in 0..16 {
            for c in 0..32 {
                let v = dense.get(r, c);
                assert!(v == 0.0 || v == weight.get(r, c));
            }
        }
    }

    #[test]
    fn uniform_calibration_reduces_to_magnitude_pruning() {
        let weight = DenseMatrix::random(8, 16, 6);
        let calib = DenseMatrix::from_fn(16, 32, |_, _| 1.0);
        let wf = prune_woodfisher(&weight, &calib, PruneFormat::Nm(NmConfig::TWO_FOUR)).unwrap();
        let mag = prune(&weight, PruneFormat::Nm(NmConfig::TWO_FOUR)).unwrap();
        assert_eq!(wf.to_dense(), mag.to_dense());
    }
}
