//! Pruning algorithms and the synthetic accuracy harness behind the paper's
//! accuracy study (§6.5, Tables 4 and 5).
//!
//! The paper prunes BERT-, TinyLLaMA- and Qwen2-class models with WoodFisher
//! (second-order) and SparseGPT-style methods and reports SQuAD F1 /
//! GSM8K perplexity. Neither the checkpoints nor the datasets are available
//! here, so [`accuracy`] builds a deterministic teacher–student proxy task:
//! a linear "teacher" generates labelled data, a least-squares "student"
//! recovers the weights, the student is pruned into each sparse format and
//! the retained quality is measured on held-out data. What the experiment
//! must preserve is the *ordering* the paper reports —
//! `dense ≳ Samoyeds ≈ unstructured > VENOM` at the same 75% sparsity, and
//! stability of the Samoyeds format across its (N,M,V) configurations — and
//! that ordering is driven by how much salient weight mass each format can
//! keep, which the proxy measures directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod fisher;
pub mod magnitude;
pub mod sparsegpt;

pub use accuracy::{AccuracyReport, ProxyTask};
