//! Magnitude-based pruning (Han et al.): the simplest saliency criterion,
//! used by the paper as the "unstructured" reference point of Table 5.

use samoyeds_sparse::prune::{prune, PruneFormat, PrunedWeight};
use samoyeds_sparse::{DenseMatrix, Result};

/// Prune `weight` into `format` using plain weight magnitude as the saliency
/// score (this simply delegates to the format-specific magnitude pruners of
/// `samoyeds-sparse`).
pub fn prune_magnitude(weight: &DenseMatrix, format: PruneFormat) -> Result<PrunedWeight> {
    prune(weight, format)
}

/// Fraction of the weight tensor's squared L2 norm (its "energy") retained
/// by a pruned representation — the saliency-preservation metric the
/// accuracy harness correlates with task quality.
pub fn retained_energy(original: &DenseMatrix, pruned: &PrunedWeight) -> f64 {
    let pruned_dense = pruned.to_dense();
    let total: f64 = original
        .as_slice()
        .iter()
        .map(|v| (*v as f64).powi(2))
        .sum();
    if total == 0.0 {
        return 1.0;
    }
    let kept: f64 = pruned_dense
        .as_slice()
        .iter()
        .map(|v| (*v as f64).powi(2))
        .sum();
    (kept / total).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use samoyeds_sparse::nm::NmConfig;
    use samoyeds_sparse::samoyeds::SamoyedsConfig;
    use samoyeds_sparse::venom::VenomConfig;

    #[test]
    fn retained_energy_is_one_for_dense_and_less_for_pruned() {
        let w = DenseMatrix::random(64, 128, 1);
        let dense = prune_magnitude(&w, PruneFormat::Dense).unwrap();
        assert!((retained_energy(&w, &dense) - 1.0).abs() < 1e-9);
        let pruned = prune_magnitude(&w, PruneFormat::Nm(NmConfig::TWO_FOUR)).unwrap();
        let e = retained_energy(&w, &pruned);
        assert!(e < 1.0 && e > 0.5);
    }

    #[test]
    fn unstructured_keeps_more_energy_than_structured_at_equal_sparsity() {
        // At 75% sparsity, unstructured magnitude pruning is the upper bound
        // on retained energy; the structured formats trail it.
        let w = DenseMatrix::random(128, 256, 2);
        let unstructured = retained_energy(
            &w,
            &prune_magnitude(&w, PruneFormat::Unstructured { sparsity: 0.75 }).unwrap(),
        );
        let samoyeds = retained_energy(
            &w,
            &prune_magnitude(&w, PruneFormat::Samoyeds(SamoyedsConfig::DEFAULT)).unwrap(),
        );
        let venom = retained_energy(
            &w,
            &prune_magnitude(&w, PruneFormat::Venom(VenomConfig { v: 64, n: 4, m: 8 })).unwrap(),
        );
        assert!(unstructured >= samoyeds);
        assert!(unstructured >= venom);
        // All three keep a substantial share.
        for e in [unstructured, samoyeds, venom] {
            assert!(e > 0.3 && e < 1.0, "energy {e}");
        }
    }

    #[test]
    fn samoyeds_configurations_have_similar_energy() {
        // Table 4's point: accuracy is stable across (N,M,V) configurations.
        let w = DenseMatrix::random(128, 256, 3);
        let energies: Vec<f64> = [
            SamoyedsConfig::N1_M2_V16,
            SamoyedsConfig::N1_M2_V32,
            SamoyedsConfig::N4_M8_V32,
            SamoyedsConfig::N8_M16_V32,
        ]
        .iter()
        .map(|cfg| {
            retained_energy(
                &w,
                &prune_magnitude(&w, PruneFormat::Samoyeds(*cfg)).unwrap(),
            )
        })
        .collect();
        let max = energies.iter().cloned().fold(f64::MIN, f64::max);
        let min = energies.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min < 0.08, "energies {energies:?}");
    }
}
