//! SparseGPT-style pruning: Hessian-aware saliency with an error-feedback
//! update of the surviving weights.
//!
//! SparseGPT (Frantar & Alistarh) prunes a linear layer column by column,
//! scoring each weight by `w^2 / H^{-1}_jj` (with `H = X X^T` the layer-input
//! Hessian of the squared reconstruction loss) and redistributing the error
//! of every removed weight onto the not-yet-frozen columns. The
//! implementation here keeps the Hessian-scaled saliency under a
//! diagonal-Hessian approximation (for which the optimal weight update
//! vanishes), which is what the accuracy proxy needs to rank formats the way
//! Table 5 does.

use samoyeds_sparse::prune::{apply_mask_of, prune, PruneFormat, PrunedWeight};
use samoyeds_sparse::{DenseMatrix, Result};

/// Diagonal of the layer-input Hessian `H = X X^T / n` (plus damping),
/// estimated from calibration inputs (`in_features x samples`).
pub fn hessian_diagonal(calibration: &DenseMatrix, damping: f64) -> Vec<f64> {
    let n = calibration.cols().max(1) as f64;
    let mut diag: Vec<f64> = (0..calibration.rows())
        .map(|j| {
            (0..calibration.cols())
                .map(|s| (calibration.get(j, s) as f64).powi(2))
                .sum::<f64>()
                / n
        })
        .collect();
    let mean = diag.iter().sum::<f64>() / diag.len().max(1) as f64;
    for d in diag.iter_mut() {
        *d += damping * mean.max(1e-12);
    }
    diag
}

/// Prune `weight` (`out x in`) into `format` with SparseGPT-style saliency
/// and error feedback, using `calibration` (`in x samples`).
pub fn prune_sparsegpt(
    weight: &DenseMatrix,
    calibration: &DenseMatrix,
    format: PruneFormat,
) -> Result<PrunedWeight> {
    let hdiag = hessian_diagonal(calibration, 0.01);
    // Saliency-scored matrix: w * sqrt(H_jj) (equivalent ordering to
    // w^2 / H^{-1}_jj for a diagonal Hessian).
    let scored = DenseMatrix::from_fn(weight.rows(), weight.cols(), |r, c| {
        weight.get(r, c) * (hdiag[c] as f32).sqrt()
    });
    let mask_source = prune(&scored, format)?;

    // SparseGPT's weight update redistributes the error of every removed
    // weight onto the surviving columns through the off-diagonal entries of
    // the inverse Hessian. Under the diagonal (uncorrelated-feature) Hessian
    // approximation used here those off-diagonal entries are zero, so the
    // optimal update vanishes and the method reduces to Hessian-scaled
    // saliency with the surviving weights kept exact — which is also what
    // keeps the kept values identical to the original weights, a property the
    // format encoders rely on.
    let masked = apply_mask_of(&mask_source, weight)?;
    prune(&masked, format)
}

/// Reconstruction error `||W X - W_pruned X||_F / ||W X||_F` on calibration
/// data — the quantity SparseGPT minimises, reported by the accuracy harness.
pub fn reconstruction_error(
    weight: &DenseMatrix,
    pruned: &PrunedWeight,
    calibration: &DenseMatrix,
) -> Result<f64> {
    let reference = weight.matmul(calibration)?;
    let approx = pruned.to_dense().matmul(calibration)?;
    let diff = reference.add(&approx.scale(-1.0))?.frobenius_norm() as f64;
    let norm = reference.frobenius_norm() as f64;
    if norm == 0.0 {
        return Ok(0.0);
    }
    Ok(diff / norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::magnitude::prune_magnitude;
    use samoyeds_sparse::nm::NmConfig;
    use samoyeds_sparse::samoyeds::SamoyedsConfig;

    #[test]
    fn hessian_diagonal_is_positive_and_ordered_by_power() {
        let calib = DenseMatrix::from_vec(2, 3, vec![3.0, -3.0, 3.0, 0.1, 0.1, -0.1]).unwrap();
        let h = hessian_diagonal(&calib, 0.01);
        assert!(h[0] > h[1]);
        assert!(h.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn sparsegpt_reduces_reconstruction_error_versus_magnitude() {
        // With non-uniform input statistics, Hessian-aware pruning plus error
        // feedback should reconstruct the layer output better than plain
        // magnitude pruning.
        let weight = DenseMatrix::random(32, 64, 7);
        // Calibration with strongly varying per-feature power.
        let calib = DenseMatrix::from_fn(64, 128, |j, s| {
            let scale = 0.05 + 2.0 * ((j % 8) as f32) / 8.0;
            scale * (((s * 31 + j * 17) % 13) as f32 / 6.5 - 1.0)
        });
        let fmt = PruneFormat::Nm(NmConfig::TWO_FOUR);
        let mag = prune_magnitude(&weight, fmt).unwrap();
        let sgpt = prune_sparsegpt(&weight, &calib, fmt).unwrap();
        let e_mag = reconstruction_error(&weight, &mag, &calib).unwrap();
        let e_sgpt = reconstruction_error(&weight, &sgpt, &calib).unwrap();
        assert!(
            e_sgpt <= e_mag * 1.05,
            "sparsegpt {e_sgpt} should not be meaningfully worse than magnitude {e_mag}"
        );
        assert!(e_sgpt < 1.0);
    }

    #[test]
    fn sparsegpt_respects_the_requested_format() {
        let weight = DenseMatrix::random(32, 64, 9);
        let calib = DenseMatrix::random(64, 32, 10);
        let pruned = prune_sparsegpt(
            &weight,
            &calib,
            PruneFormat::Samoyeds(SamoyedsConfig::N1_M2_V16),
        )
        .unwrap();
        let dense = pruned.to_dense();
        assert!(
            (dense.sparsity() - 0.75).abs() < 0.05,
            "sparsity {}",
            dense.sparsity()
        );
        // Block structure: per 2-row x 16-col block only one live sub-row.
        for rb in 0..16 {
            for cb in 0..4 {
                let live = (0..2)
                    .filter(|&i| (0..16).any(|j| dense.get(rb * 2 + i, cb * 16 + j) != 0.0))
                    .count();
                assert!(live <= 1);
            }
        }
    }

    #[test]
    fn reconstruction_error_is_zero_for_dense() {
        let weight = DenseMatrix::random(8, 16, 11);
        let calib = DenseMatrix::random(16, 8, 12);
        let dense = prune_magnitude(&weight, PruneFormat::Dense).unwrap();
        assert!(reconstruction_error(&weight, &dense, &calib).unwrap() < 1e-6);
    }
}
