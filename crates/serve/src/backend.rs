//! The execution-backend abstraction: where step pricing and admission
//! budgets come from.
//!
//! The continuous-batching scheduler is a control loop — admission, batch
//! formation, progress accounting. Everything *physical* about a deployment
//! (how long a step takes, how much memory the model plus its KV cache
//! occupies, which models the kernels can run) lives behind
//! [`ExecutionBackend`]. Two implementations exist:
//!
//! * [`SingleGpuBackend`] (this module) — one device running one execution
//!   engine, the original serving configuration. Its cost model is the
//!   pre-refactor `Scheduler` pricing, bit for bit.
//! * `ClusterBackend` (in `samoyeds-dist`) — an expert-parallel cluster:
//!   per-GPU straggler compute plus α-β dispatch/combine collectives, with
//!   admission against the straggler GPU's memory budget.
//!
//! The scheduler only ever sees the trait, so serving policies (chunked
//! prefill, FCFS admission, continuous batching) are written once and run
//! unchanged from a single consumer card to an NVLink pod.

use crate::batch::StepBatch;
use crate::memory::{MemoryModel, KV_DTYPE_BYTES};
use crate::request::RunningRequest;
use crate::scheduler::SchedulerConfig;
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::attention::{attention_time_ms, AttentionKind};
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::{Engine, EngineKind};
use samoyeds_moe::router::TopKRouter;
use serde::{Deserialize, Serialize};

/// The memory-accounting surface admission control needs: a budget and a
/// footprint. For a single GPU the footprint is the whole model; for a
/// cluster it is the *straggler* GPU (the rank with the most experts and
/// the largest KV share), so that admission is safe on every rank.
pub trait MemoryBudget {
    /// Usable memory in bytes (per GPU for cluster backends).
    fn budget_bytes(&self) -> f64;

    /// Footprint in bytes with `kv_tokens` resident and a step over
    /// `step_tokens` in flight (for cluster backends: on the straggler GPU).
    fn footprint_bytes(&self, kv_tokens: usize, step_tokens: usize) -> f64;

    /// Whether that footprint fits the budget.
    fn fits(&self, kv_tokens: usize, step_tokens: usize) -> bool {
        self.footprint_bytes(kv_tokens, step_tokens) <= self.budget_bytes()
    }

    /// Whether the backend can hold the model at all (weights plus a
    /// minimal one-token step).
    fn can_hold_model(&self) -> bool {
        self.fits(1, 1)
    }
}

/// Everything a backend needs to price one engine step.
#[derive(Debug, Clone, Copy)]
pub struct StepWorkload<'a> {
    /// The step's batch composition (prefill chunks + decode tokens).
    pub batch: &'a StepBatch,
    /// The running set the batch indexes into.
    pub running: &'a [RunningRequest],
    /// Monotone step counter (drives the per-step routing seed).
    pub step_index: u64,
}

impl StepWorkload<'_> {
    /// Tokens the engine processes this step.
    pub fn step_tokens(&self) -> usize {
        self.batch.total_tokens()
    }
}

/// How a backend overlaps compute with the inter-GPU collectives when
/// pricing a step's total duration.
///
/// The fully-synchronous step pays `compute + collective`; a pipelined
/// dispatch (the DeepSpeed-MoE style overlap the ROADMAP names) hides the
/// shorter of the two behind the longer, so the step pays
/// `max(compute, collective)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OverlapModel {
    /// Compute and collectives serialize: `total = compute + collective`.
    #[default]
    Serial,
    /// Compute and collectives overlap perfectly:
    /// `total = max(compute, collective)`.
    Pipelined,
}

impl OverlapModel {
    /// Blend a compute time and a collective time into a step duration.
    pub fn blend_ms(&self, compute_ms: f64, collective_ms: f64) -> f64 {
        match self {
            OverlapModel::Serial => compute_ms + collective_ms,
            OverlapModel::Pipelined => compute_ms.max(collective_ms),
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            OverlapModel::Serial => "serial",
            OverlapModel::Pipelined => "pipelined",
        }
    }
}

/// Predicted cost of one engine step, split into the part spent computing
/// and the part spent in inter-GPU collectives (zero on a single GPU).
///
/// Cluster backends additionally attribute the collective time to the
/// NVLink intra-island legs versus the InfiniBand spine
/// ([`Self::intra_island_ms`] / [`Self::spine_ms`]) — the split telemetry
/// step spans carry, so a TTFT breach can be traced to spine traffic rather
/// than a generic "collectives" bucket. The split is attribution only: step
/// duration stays a function of `compute_ms`, `collective_ms` and `overlap`
/// alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepCost {
    /// Compute time (kernels, attention, norms, per-step overhead), ms.
    pub compute_ms: f64,
    /// All-to-all dispatch/combine time across the step's layers, ms.
    pub collective_ms: f64,
    /// NVLink intra-island share of the collective time (zero on a single
    /// GPU or a flat topology without islands), ms.
    pub intra_island_ms: f64,
    /// InfiniBand spine share of the collective time, ms.
    pub spine_ms: f64,
    /// How the compute and collective components combine into the step
    /// duration.
    pub overlap: OverlapModel,
}

impl StepCost {
    /// A compute-only cost (single-GPU backends).
    pub fn compute_only(compute_ms: f64) -> Self {
        Self {
            compute_ms,
            collective_ms: 0.0,
            intra_island_ms: 0.0,
            spine_ms: 0.0,
            overlap: OverlapModel::Serial,
        }
    }

    /// A fully-synchronous compute + collective cost.
    pub fn serial(compute_ms: f64, collective_ms: f64) -> Self {
        Self {
            compute_ms,
            collective_ms,
            intra_island_ms: 0.0,
            spine_ms: 0.0,
            overlap: OverlapModel::Serial,
        }
    }

    /// Replace the overlap model.
    pub fn with_overlap(mut self, overlap: OverlapModel) -> Self {
        self.overlap = overlap;
        self
    }

    /// Attribute the collective time to its intra-island and spine legs
    /// (telemetry only; does not change [`Self::total_ms`]).
    pub fn with_collective_split(mut self, intra_island_ms: f64, spine_ms: f64) -> Self {
        self.intra_island_ms = intra_island_ms;
        self.spine_ms = spine_ms;
        self
    }

    /// Total step duration under the cost's overlap model.
    pub fn total_ms(&self) -> f64 {
        self.overlap.blend_ms(self.compute_ms, self.collective_ms)
    }
}

/// An execution substrate the continuous-batching scheduler can drive.
///
/// Implementations own their cost model and their memory accounting; the
/// scheduler owns policy. Backends must be deterministic: the same workload
/// must always price to the same cost.
pub trait ExecutionBackend {
    /// The engine kind this backend executes (for reports and results).
    fn engine_kind(&self) -> EngineKind;

    /// The model this backend was built to serve. The scheduler gates the
    /// run on `supports(model())`, so the support check can never be asked
    /// about a different config than the one pricing the steps.
    fn model(&self) -> &MoeModelConfig;

    /// Whether the backend has kernels for this model (the `NS` rule).
    fn supports(&self, config: &MoeModelConfig) -> bool;

    /// The memory budget admission control enforces.
    fn memory(&self) -> &dyn MemoryBudget;

    /// Predicted cost of one step over `workload`.
    fn step_cost(&self, workload: &StepWorkload<'_>) -> StepCost;

    /// Human-readable one-line description for reports.
    fn describe(&self) -> String;
}

// `ExecutionBackend` is object-safe, and the delegating impls below make
// both borrowed and boxed trait objects first-class backends: the scheduler,
// the replica driver and the fleet controller can hold
// `Box<dyn ExecutionBackend>` replicas (an A100 pod next to a consumer-GPU
// single) without a monomorphic type parameter.
macro_rules! delegate_execution_backend {
    () => {
        fn engine_kind(&self) -> EngineKind {
            (**self).engine_kind()
        }

        fn model(&self) -> &MoeModelConfig {
            (**self).model()
        }

        fn supports(&self, config: &MoeModelConfig) -> bool {
            (**self).supports(config)
        }

        fn memory(&self) -> &dyn MemoryBudget {
            (**self).memory()
        }

        fn step_cost(&self, workload: &StepWorkload<'_>) -> StepCost {
            (**self).step_cost(workload)
        }

        fn describe(&self) -> String {
            (**self).describe()
        }
    };
}

impl<B: ExecutionBackend + ?Sized> ExecutionBackend for &B {
    delegate_execution_backend!();
}

impl<B: ExecutionBackend + ?Sized> ExecutionBackend for Box<B> {
    delegate_execution_backend!();
}

/// Incremental attention cost of one layer over the step: prefill chunks pay
/// the causal-attention cost of extending their context; each decode token
/// pays one pass over its request's KV cache. Shared between the single-GPU
/// and cluster backends so the two can never diverge on attention pricing.
pub fn attention_step_ms(
    device: &DeviceSpec,
    config: &MoeModelConfig,
    attention: AttentionKind,
    batch: &StepBatch,
    running: &[RunningRequest],
) -> f64 {
    let mut attention_ms = 0.0;
    for &(i, chunk) in &batch.prefill {
        let before = running[i].prefilled;
        let after = (before + chunk).min(config.max_seq_len);
        let inc = attention_time_ms(device, config, after, attention)
            - attention_time_ms(device, config, before.max(1), attention);
        attention_ms += inc.max(0.0);
    }
    let bandwidth = device.mem_bandwidth_gbps * 1e9;
    for &i in &batch.decode {
        let ctx = running[i].context_tokens().min(config.max_seq_len);
        let kv_bytes = 2.0 * ctx as f64 * config.hidden_size as f64 * KV_DTYPE_BYTES;
        attention_ms += kv_bytes / bandwidth * 1e3 + 2.0e-3;
    }
    attention_ms
}

/// Per-layer cost of everything that is neither MoE nor attention: norms,
/// residual adds and the router GEMM, as in the decoder-layer model.
pub fn auxiliary_step_ms(device: &DeviceSpec, config: &MoeModelConfig, step_tokens: usize) -> f64 {
    let bandwidth = device.mem_bandwidth_gbps * 1e9;
    let h = config.hidden_size as f64;
    4.0 * step_tokens as f64 * h * 2.0 / bandwidth * 1e3 + 0.02
}

/// One device running one execution engine — the original serving
/// configuration, wrapped behind the backend trait. Reproduces the
/// pre-refactor scheduler cost model exactly (the backend-equivalence suite
/// pins this token for token).
#[derive(Debug, Clone)]
pub struct SingleGpuBackend {
    device: DeviceSpec,
    config: MoeModelConfig,
    engine: Engine,
    memory: MemoryModel,
    router: TopKRouter,
    attention: AttentionKind,
    routing_seed: u64,
    step_overhead_ms: f64,
}

impl SingleGpuBackend {
    /// Build the backend for one (device, model, engine) triple, taking the
    /// cost-model knobs (attention kind, routing seed, step overhead) from
    /// the scheduler configuration.
    pub fn new(
        device: DeviceSpec,
        config: &MoeModelConfig,
        engine_kind: EngineKind,
        scfg: &SchedulerConfig,
    ) -> Self {
        Self {
            engine: Engine::new(engine_kind, device.clone()),
            memory: MemoryModel::new(&device, engine_kind, config),
            // Built once; reseeded per step via `route_seeded` instead of
            // being reconstructed on the per-step hot path.
            router: TopKRouter::for_config(config, scfg.routing_seed),
            device,
            config: config.clone(),
            attention: scfg.attention,
            routing_seed: scfg.routing_seed,
            step_overhead_ms: scfg.step_overhead_ms,
        }
    }

    /// Swap the step-pricing engine while keeping the memory model, router
    /// and device. This is how `samoyeds-dist` mounts the VENOM ("+W",
    /// weight-only sparsity) configuration: the Samoyeds memory footprint —
    /// compressed weights free the same KV headroom — priced with the
    /// weight-only kernels (dense inputs, permute round trips).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The full-model memory model (concrete type, for callers that need
    /// more than the [`MemoryBudget`] surface).
    pub fn memory_model(&self) -> &MemoryModel {
        &self.memory
    }

    /// The device the backend runs on.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }
}

impl ExecutionBackend for SingleGpuBackend {
    fn engine_kind(&self) -> EngineKind {
        self.engine.kind()
    }

    fn model(&self) -> &MoeModelConfig {
        &self.config
    }

    fn supports(&self, config: &MoeModelConfig) -> bool {
        self.engine.supports(config)
    }

    fn memory(&self) -> &dyn MemoryBudget {
        &self.memory
    }

    fn step_cost(&self, workload: &StepWorkload<'_>) -> StepCost {
        let step_tokens = workload.step_tokens();
        let plan = self
            .router
            .route_seeded(self.routing_seed ^ workload.step_index, step_tokens);
        let moe_ms = self
            .engine
            .moe_layer_cost(&self.config, step_tokens, &plan)
            .time_ms;
        let attention_ms = attention_step_ms(
            &self.device,
            &self.config,
            self.attention,
            workload.batch,
            workload.running,
        );
        let other_ms = auxiliary_step_ms(&self.device, &self.config, step_tokens);
        StepCost::compute_only(
            (moe_ms + attention_ms + other_ms) * self.config.num_layers as f64
                + self.step_overhead_ms,
        )
    }

    fn describe(&self) -> String {
        format!(
            "single-GPU {} · {} · {}",
            self.device.name,
            self.engine.kind().name(),
            self.config.name,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{build_step, BatchLimits};
    use crate::request::Request;

    fn backend(engine: EngineKind) -> SingleGpuBackend {
        SingleGpuBackend::new(
            DeviceSpec::a100_40g(),
            &MoeModelConfig::qwen2_moe(),
            engine,
            &SchedulerConfig::default(),
        )
    }

    fn workload_fixture() -> (Vec<RunningRequest>, StepBatch) {
        let running = vec![
            RunningRequest::new(
                Request {
                    id: 0,
                    arrival_ms: 0.0,
                    prompt_len: 128,
                    output_len: 8,
                },
                0.0,
            ),
            {
                let mut r = RunningRequest::new(
                    Request {
                        id: 1,
                        arrival_ms: 0.0,
                        prompt_len: 64,
                        output_len: 8,
                    },
                    0.0,
                );
                r.prefilled = 64;
                r.decoded = 2;
                r
            },
        ];
        let batch = build_step(&running, &BatchLimits::default());
        (running, batch)
    }

    #[test]
    fn single_gpu_cost_is_compute_only_and_deterministic() {
        let backend = backend(EngineKind::Samoyeds);
        let (running, batch) = workload_fixture();
        let workload = StepWorkload {
            batch: &batch,
            running: &running,
            step_index: 3,
        };
        let a = backend.step_cost(&workload);
        let b = backend.step_cost(&workload);
        assert_eq!(a, b);
        assert_eq!(a.collective_ms, 0.0);
        assert!(a.compute_ms > 0.0);
        assert_eq!(a.total_ms(), a.compute_ms);
        // A different step index reseeds the routing plan; the cost stays
        // finite and positive (tile padding may round it to the same value).
        let other = backend.step_cost(&StepWorkload {
            step_index: 4,
            ..workload
        });
        assert!(other.compute_ms.is_finite() && other.compute_ms > 0.0);
    }

    #[test]
    fn backend_surfaces_engine_support_and_memory() {
        let backend = backend(EngineKind::Samoyeds);
        assert_eq!(backend.engine_kind(), EngineKind::Samoyeds);
        assert!(backend.supports(&MoeModelConfig::qwen2_moe()));
        assert!(backend.memory().can_hold_model());
        assert!(backend.describe().contains("Samoyeds"));
        // The trait-object budget view agrees with the concrete model.
        assert_eq!(
            backend.memory().budget_bytes(),
            backend.memory_model().budget_bytes()
        );
        assert_eq!(
            backend.memory().footprint_bytes(100, 10),
            backend.memory_model().footprint_bytes(100, 10)
        );
    }

    #[test]
    fn vllm_backend_reports_ns_for_relu_models() {
        let backend = backend(EngineKind::VllmDs);
        assert!(!backend.supports(&MoeModelConfig::openmoe_34b()));
    }

    #[test]
    fn overlap_model_blends_serial_sum_and_pipelined_max() {
        let cost = StepCost::serial(3.0, 2.0);
        assert_eq!(cost.total_ms(), 5.0);
        let pipelined = cost.with_overlap(OverlapModel::Pipelined);
        assert_eq!(pipelined.total_ms(), 3.0);
        // The pipelined step is bounded below by the longer component.
        let collective_bound = StepCost::serial(1.0, 4.0).with_overlap(OverlapModel::Pipelined);
        assert_eq!(collective_bound.total_ms(), 4.0);
        assert_eq!(OverlapModel::default(), OverlapModel::Serial);
    }

    #[test]
    fn backend_works_as_a_boxed_trait_object() {
        let boxed: Box<dyn ExecutionBackend> = Box::new(backend(EngineKind::Samoyeds));
        assert_eq!(boxed.engine_kind(), EngineKind::Samoyeds);
        assert!(boxed.supports(boxed.model()));
        assert!(boxed.memory().can_hold_model());
        let (running, batch) = workload_fixture();
        let workload = StepWorkload {
            batch: &batch,
            running: &running,
            step_index: 3,
        };
        // The boxed and borrowed views price identically to the concrete
        // backend.
        let concrete = backend(EngineKind::Samoyeds).step_cost(&workload);
        assert_eq!(boxed.step_cost(&workload), concrete);
        let by_ref: &dyn ExecutionBackend = &*boxed;
        assert_eq!(by_ref.step_cost(&workload), concrete);
        assert_eq!(boxed.describe(), by_ref.describe());
    }
}
