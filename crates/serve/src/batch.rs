//! Step-batch formation: which tokens run in the next engine step.
//!
//! Continuous batching in the vLLM style: every decoding request contributes
//! one token per step, and the remaining token budget is filled with prompt
//! chunks of requests still prefilling (chunked prefill, FCFS in admission
//! order).

use crate::request::{Phase, RunningRequest};
use serde::{Deserialize, Serialize};

/// Limits the batcher enforces per step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchLimits {
    /// Maximum tokens (prefill chunks + decode tokens) per engine step.
    pub max_batched_tokens: usize,
    /// Maximum concurrently admitted requests.
    pub max_running: usize,
    /// Maximum prompt chunk a single request prefills in one step.
    pub prefill_chunk: usize,
}

impl Default for BatchLimits {
    fn default() -> Self {
        Self {
            max_batched_tokens: 2048,
            max_running: 64,
            prefill_chunk: 512,
        }
    }
}

/// The composition of one engine step.
#[derive(Debug, Clone, Default)]
pub struct StepBatch {
    /// `(index into running, chunk length)` for each prefilling request.
    pub prefill: Vec<(usize, usize)>,
    /// Indices into `running` of requests decoding one token this step.
    pub decode: Vec<usize>,
}

impl StepBatch {
    /// Prefill tokens in the step.
    pub fn prefill_tokens(&self) -> usize {
        self.prefill.iter().map(|&(_, chunk)| chunk).sum()
    }

    /// Total tokens the engine processes this step.
    pub fn total_tokens(&self) -> usize {
        self.prefill_tokens() + self.decode.len()
    }

    /// Whether the step does any work.
    pub fn is_empty(&self) -> bool {
        self.prefill.is_empty() && self.decode.is_empty()
    }
}

/// Build the next step from the running set under `limits`.
pub fn build_step(running: &[RunningRequest], limits: &BatchLimits) -> StepBatch {
    let mut batch = StepBatch::default();
    // Decode first: every decoding request advances one token per step so
    // token-level latency stays bounded.
    for (i, r) in running.iter().enumerate() {
        if r.phase() == Phase::Decode {
            batch.decode.push(i);
        }
    }
    let mut budget = limits.max_batched_tokens.saturating_sub(batch.decode.len());
    // Fill the rest with prompt chunks, FCFS in admission order.
    for (i, r) in running.iter().enumerate() {
        if budget == 0 {
            break;
        }
        if r.phase() == Phase::Prefill {
            let chunk = r.prompt_remaining().min(limits.prefill_chunk).min(budget);
            if chunk > 0 {
                batch.prefill.push((i, chunk));
                budget -= chunk;
            }
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;

    fn running(prompt: usize, prefilled: usize, decoded: usize) -> RunningRequest {
        let mut r = RunningRequest::new(
            Request {
                id: 0,
                arrival_ms: 0.0,
                prompt_len: prompt,
                output_len: 8,
            },
            0.0,
        );
        r.prefilled = prefilled;
        r.decoded = decoded;
        r
    }

    #[test]
    fn decode_requests_always_get_one_token() {
        let pool = vec![running(16, 16, 1), running(16, 16, 3), running(64, 0, 0)];
        let batch = build_step(&pool, &BatchLimits::default());
        assert_eq!(batch.decode, vec![0, 1]);
        assert_eq!(batch.prefill, vec![(2, 64)]);
        assert_eq!(batch.total_tokens(), 66);
    }

    #[test]
    fn prefill_is_chunked_and_budgeted() {
        let limits = BatchLimits {
            max_batched_tokens: 100,
            max_running: 8,
            prefill_chunk: 48,
        };
        let pool = vec![running(300, 0, 0), running(300, 0, 0), running(300, 0, 0)];
        let batch = build_step(&pool, &limits);
        // 48 + 48 + 4: the chunk cap applies per request, the token budget
        // truncates the last chunk.
        assert_eq!(batch.prefill, vec![(0, 48), (1, 48), (2, 4)]);
        assert_eq!(batch.total_tokens(), 100);
    }

    #[test]
    fn finished_requests_contribute_nothing() {
        let pool = vec![running(16, 16, 8)];
        let batch = build_step(&pool, &BatchLimits::default());
        assert!(batch.is_empty());
    }
}
