//! Multi-replica request dispatch: the front door of a data-parallel fleet.
//!
//! When one serving replica cannot absorb the offered load, serving systems
//! run several identical replicas behind a dispatcher. This module splits a
//! request trace across `n` replicas under a dispatch policy and simulates
//! each replica independently with the continuous-batching scheduler; the
//! fleet metrics aggregate per-replica results (throughput sums, latency
//! samples pool). The fleet is generic over the
//! [`ExecutionBackend`](crate::backend::ExecutionBackend), so a replica can
//! be one GPU ([`SingleGpuBackend`]) or a whole expert-parallel pod
//! (`ClusterBackend` in `samoyeds-dist`) without changing the dispatcher.

use crate::backend::{ExecutionBackend, SingleGpuBackend};
use crate::metrics::{latency_summary, LatencySummary, ServingMetrics};
use crate::request::Request;
use crate::scheduler::{Scheduler, SchedulerConfig, SimulationResult};
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::EngineKind;
use serde::{Deserialize, Serialize};

/// How the dispatcher picks a replica for each arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Strict rotation in arrival order.
    RoundRobin,
    /// Each request goes to the replica with the fewest outstanding tokens
    /// (prompt + output of everything already assigned to it).
    LeastOutstandingTokens,
}

/// Split `trace` (in arrival order) across `replicas` queues under `policy`.
/// Arrival times are preserved; the union of the shards is exactly the
/// input trace.
///
/// # Panics
/// Panics if `replicas` is zero.
pub fn dispatch_trace(
    trace: &[Request],
    replicas: usize,
    policy: DispatchPolicy,
) -> Vec<Vec<Request>> {
    assert!(replicas >= 1, "a fleet needs at least one replica");
    let mut shards: Vec<Vec<Request>> = vec![Vec::new(); replicas];
    match policy {
        DispatchPolicy::RoundRobin => {
            for (i, r) in trace.iter().enumerate() {
                shards[i % replicas].push(*r);
            }
        }
        DispatchPolicy::LeastOutstandingTokens => {
            let mut outstanding = vec![0usize; replicas];
            for r in trace {
                let target = (0..replicas)
                    .min_by_key(|&g| outstanding[g])
                    .expect("replicas >= 1");
                outstanding[target] += r.total_tokens();
                shards[target].push(*r);
            }
        }
    }
    shards
}

/// Aggregate serving metrics of a replica fleet.
#[derive(Debug, Clone)]
pub struct FleetMetrics {
    /// The engine every replica runs.
    pub engine: EngineKind,
    /// Number of replicas.
    pub replicas: usize,
    /// Completed requests across the fleet.
    pub completed: usize,
    /// Rejected requests across the fleet.
    pub rejected: usize,
    /// Fleet output-token throughput (tokens/s over the fleet makespan).
    pub output_tokens_per_s: f64,
    /// Pooled end-to-end request latency distribution.
    pub request_latency: LatencySummary,
    /// Pooled time-to-first-token distribution.
    pub ttft: LatencySummary,
    /// Pooled per-output-token latency distribution.
    pub tpot: LatencySummary,
    /// Fleet makespan (slowest replica).
    pub makespan_ms: f64,
    /// Per-replica metrics, in replica order.
    pub per_replica: Vec<ServingMetrics>,
}

/// A fleet of identical serving replicas behind a dispatcher. Each replica
/// is one clone of the fleet's execution backend.
#[derive(Debug, Clone)]
pub struct ReplicaFleet<B: ExecutionBackend + Clone = SingleGpuBackend> {
    backend: B,
    replicas: usize,
    policy: DispatchPolicy,
    scheduler: SchedulerConfig,
}

impl ReplicaFleet<SingleGpuBackend> {
    /// Build a single-GPU fleet: `replicas` copies of (device, model,
    /// engine) with the default scheduler configuration.
    ///
    /// # Panics
    /// Panics if `replicas` is zero.
    pub fn new(
        device: DeviceSpec,
        config: MoeModelConfig,
        engine: EngineKind,
        replicas: usize,
    ) -> Self {
        Self::single_gpu(device, config, engine, replicas, SchedulerConfig::default())
    }

    /// [`Self::new`] with an explicit scheduler configuration (the config
    /// also parameterises each replica's backend cost model, so it is taken
    /// at construction time rather than mutated afterwards).
    pub fn single_gpu(
        device: DeviceSpec,
        config: MoeModelConfig,
        engine: EngineKind,
        replicas: usize,
        scheduler: SchedulerConfig,
    ) -> Self {
        let backend = SingleGpuBackend::new(device, &config, engine, &scheduler);
        Self::from_backend(backend, replicas, scheduler)
    }
}

impl<B: ExecutionBackend + Clone> ReplicaFleet<B> {
    /// Build a fleet of `replicas` clones of `backend`.
    ///
    /// # Panics
    /// Panics if `replicas` is zero.
    pub fn from_backend(backend: B, replicas: usize, scheduler: SchedulerConfig) -> Self {
        assert!(replicas >= 1, "a fleet needs at least one replica");
        Self {
            backend,
            replicas,
            policy: DispatchPolicy::LeastOutstandingTokens,
            scheduler,
        }
    }

    /// Replace the dispatch policy.
    pub fn with_policy(mut self, policy: DispatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The backend every replica clones.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Simulate every replica on its dispatched shard of `trace`.
    pub fn simulate(&self, trace: &[Request]) -> Vec<SimulationResult> {
        dispatch_trace(trace, self.replicas, self.policy)
            .iter()
            .map(|shard| Scheduler::from_backend(self.backend.clone(), self.scheduler).run(shard))
            .collect()
    }

    /// Simulate the fleet and aggregate its metrics.
    pub fn metrics(&self, trace: &[Request]) -> FleetMetrics {
        let results = self.simulate(trace);
        let per_replica: Vec<ServingMetrics> =
            results.iter().map(ServingMetrics::from_result).collect();
        let latencies: Vec<f64> = results
            .iter()
            .flat_map(|r| r.completed.iter().map(|c| c.latency_ms()))
            .collect();
        let ttfts: Vec<f64> = results
            .iter()
            .flat_map(|r| r.completed.iter().map(|c| c.ttft_ms()))
            .collect();
        let tpots: Vec<f64> = results
            .iter()
            .flat_map(|r| r.completed.iter().filter_map(|c| c.tpot_ms()))
            .collect();
        let makespan_ms = results.iter().map(|r| r.makespan_ms).fold(0.0, f64::max);
        let output_tokens: usize = results.iter().map(|r| r.output_tokens()).sum();
        FleetMetrics {
            engine: self.backend.engine_kind(),
            replicas: self.replicas,
            completed: results.iter().map(|r| r.completed.len()).sum(),
            rejected: results.iter().map(|r| r.rejected.len()).sum(),
            output_tokens_per_s: if makespan_ms > 0.0 {
                output_tokens as f64 / (makespan_ms / 1e3)
            } else {
                0.0
            },
            request_latency: latency_summary(&latencies),
            ttft: latency_summary(&ttfts),
            tpot: latency_summary(&tpots),
            makespan_ms,
            per_replica,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceConfig;

    fn trace() -> Vec<Request> {
        TraceConfig {
            num_requests: 24,
            arrival_rate_rps: 16.0,
            prompt_len_range: (32, 256),
            output_len_range: (4, 16),
            seed: 3,
        }
        .generate()
    }

    #[test]
    fn dispatch_conserves_requests_and_preserves_arrival_order() {
        let trace = trace();
        for policy in [
            DispatchPolicy::RoundRobin,
            DispatchPolicy::LeastOutstandingTokens,
        ] {
            let shards = dispatch_trace(&trace, 3, policy);
            assert_eq!(shards.len(), 3);
            let mut ids: Vec<u64> = shards.iter().flat_map(|s| s.iter().map(|r| r.id)).collect();
            ids.sort_unstable();
            let expected: Vec<u64> = trace.iter().map(|r| r.id).collect();
            assert_eq!(ids, expected);
            for shard in &shards {
                assert!(shard.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
            }
        }
    }

    #[test]
    fn least_outstanding_balances_token_load_better_than_worst_case() {
        let trace = trace();
        let shards = dispatch_trace(&trace, 4, DispatchPolicy::LeastOutstandingTokens);
        let loads: Vec<usize> = shards
            .iter()
            .map(|s| s.iter().map(|r| r.total_tokens()).sum())
            .collect();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        // The greedy policy keeps the spread within one max-size request.
        assert!(max - min <= 256 + 16, "loads {loads:?}");
    }

    #[test]
    fn fleet_aggregates_and_beats_a_single_replica_on_throughput() {
        let trace = trace();
        let device = DeviceSpec::a100_40g();
        let config = MoeModelConfig::qwen2_moe();
        let one = ReplicaFleet::new(device.clone(), config.clone(), EngineKind::Samoyeds, 1)
            .metrics(&trace);
        let four = ReplicaFleet::new(device, config, EngineKind::Samoyeds, 4).metrics(&trace);
        assert_eq!(one.engine, EngineKind::Samoyeds);
        assert_eq!(one.completed + one.rejected, trace.len());
        assert_eq!(four.completed + four.rejected, trace.len());
        assert_eq!(four.per_replica.len(), 4);
        // Four replicas drain the same trace no slower (and, under this
        // offered load, strictly faster).
        assert!(four.makespan_ms <= one.makespan_ms);
        assert!(four.output_tokens_per_s >= one.output_tokens_per_s);
        // Pooled latency percentiles are monotone and TPOT is populated
        // (the trace always has multi-token outputs).
        assert!(four.request_latency.p50_ms <= four.request_latency.p95_ms);
        assert!(four.tpot.p50_ms > 0.0);
        assert!(four.tpot.p50_ms <= four.tpot.p95_ms);
    }

    #[test]
    fn from_backend_matches_the_single_gpu_front_door() {
        let trace = trace();
        let device = DeviceSpec::a100_40g();
        let config = MoeModelConfig::qwen2_moe();
        let scfg = SchedulerConfig::default();
        let via_new = ReplicaFleet::new(device.clone(), config.clone(), EngineKind::Samoyeds, 2)
            .metrics(&trace);
        let backend =
            crate::backend::SingleGpuBackend::new(device, &config, EngineKind::Samoyeds, &scfg);
        let via_backend = ReplicaFleet::from_backend(backend, 2, scfg).metrics(&trace);
        assert_eq!(via_new.completed, via_backend.completed);
        assert_eq!(via_new.makespan_ms, via_backend.makespan_ms);
        assert_eq!(via_new.output_tokens_per_s, via_backend.output_tokens_per_s);
    }
}
