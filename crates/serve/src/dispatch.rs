//! Offline multi-replica request dispatch — the *compatibility shim* over
//! the online control plane in [`fleet`](crate::fleet).
//!
//! [`dispatch_trace`] splits a request trace across `n` replicas ahead of
//! time and [`ReplicaFleet`] simulates each shard independently; both
//! predate the online [`FleetController`](crate::fleet::FleetController) and
//! are kept (with frozen default behavior) so existing sweeps reproduce bit
//! for bit — the `fleet_equivalence` suite pins this. New code that wants
//! heterogeneous replicas, capability-aware routing or autoscaling should
//! use the fleet controller; this module remains the static, identical-
//! replica fast path.

use crate::backend::{ExecutionBackend, SingleGpuBackend, StepWorkload};
use crate::batch::StepBatch;
use crate::fleet::FleetMetrics;
use crate::request::{Request, RunningRequest};
use crate::scheduler::{Scheduler, SchedulerConfig, SimulationResult};
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::EngineKind;
use serde::{Deserialize, Serialize};

/// How a dispatcher picks a replica for each arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DispatchPolicy {
    /// Strict rotation in arrival order.
    RoundRobin,
    /// Each request goes to the replica with the fewest outstanding tokens.
    /// Offline ([`dispatch_trace`]) the per-replica counts decay between
    /// arrivals by estimated completion at `drain_tokens_per_s`, so late
    /// requests no longer see stale load; online
    /// ([`FleetController`](crate::fleet::FleetController)) the counts are
    /// the replicas' *live* remaining work and the rate is ignored.
    LeastOutstandingTokens {
        /// Estimated per-replica drain rate used by the offline decay.
        drain_tokens_per_s: f64,
    },
    /// The pre-redesign accumulate-forever counter, frozen for the
    /// compatibility shim (and as a baseline in the autoscale sweeps).
    LeastOutstandingTokensFrozen,
}

impl DispatchPolicy {
    /// The decaying least-outstanding policy at its frozen default
    /// drain-rate estimate (2000 tokens/s). The figure predates the current
    /// backends and is kept only so existing sweeps reproduce exactly; new
    /// code should derive the rate from the backend it dispatches to via
    /// [`Self::least_outstanding_for`].
    pub fn least_outstanding() -> Self {
        DispatchPolicy::LeastOutstandingTokens {
            drain_tokens_per_s: 2_000.0,
        }
    }

    /// The decaying least-outstanding policy with its drain-rate estimate
    /// derived from `backend`'s own [`step_cost`](ExecutionBackend::step_cost):
    /// the token rate a saturated decode-only step sustains, which is what
    /// the decay is modelling.
    pub fn least_outstanding_for(backend: &dyn ExecutionBackend) -> Self {
        // A representative steady-state decode step: a full batch of
        // mid-length contexts, each producing one token.
        const DECODES: usize = 32;
        const CONTEXT: usize = 256;
        let running: Vec<RunningRequest> = (0..DECODES)
            .map(|i| {
                let mut r = RunningRequest::new(
                    Request {
                        id: i as u64,
                        arrival_ms: 0.0,
                        prompt_len: CONTEXT,
                        output_len: 8,
                    },
                    0.0,
                );
                r.prefilled = CONTEXT;
                r.decoded = 1;
                r
            })
            .collect();
        let batch = StepBatch {
            prefill: Vec::new(),
            decode: (0..DECODES).collect(),
        };
        let cost = backend.step_cost(&StepWorkload {
            batch: &batch,
            running: &running,
            step_index: 0,
        });
        let step_ms = cost.total_ms().max(f64::MIN_POSITIVE);
        DispatchPolicy::LeastOutstandingTokens {
            drain_tokens_per_s: DECODES as f64 / (step_ms / 1e3),
        }
    }

    /// Human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round-robin",
            DispatchPolicy::LeastOutstandingTokens { .. } => "least-outstanding",
            DispatchPolicy::LeastOutstandingTokensFrozen => "least-outstanding (frozen)",
        }
    }
}

/// Split `trace` (in arrival order) across `replicas` queues under `policy`.
/// Arrival times are preserved; the union of the shards is exactly the
/// input trace.
///
/// # Panics
/// Panics if `replicas` is zero, or — under
/// [`DispatchPolicy::LeastOutstandingTokens`] — if the trace is not sorted
/// by arrival time (diagnostic code `fleet::unsorted-trace`, the same one
/// [`FleetController::validate`](crate::fleet::FleetController::validate)
/// reports): a negative inter-arrival gap would otherwise be silently
/// clamped to zero and skew the decay.
pub fn dispatch_trace(
    trace: &[Request],
    replicas: usize,
    policy: DispatchPolicy,
) -> Vec<Vec<Request>> {
    assert!(replicas >= 1, "a fleet needs at least one replica");
    let mut shards: Vec<Vec<Request>> = vec![Vec::new(); replicas];
    match policy {
        DispatchPolicy::RoundRobin => {
            for (i, r) in trace.iter().enumerate() {
                shards[i % replicas].push(*r);
            }
        }
        DispatchPolicy::LeastOutstandingTokens { drain_tokens_per_s } => {
            let mut outstanding = vec![0.0f64; replicas];
            let mut last_ms = 0.0f64;
            for (i, r) in trace.iter().enumerate() {
                assert!(
                    r.arrival_ms >= last_ms,
                    "fleet::unsorted-trace: trace[{i}] arrives at {} ms after {} ms — \
                     sort the trace by arrival_ms before dispatching it",
                    r.arrival_ms,
                    last_ms
                );
                let gap_s = (r.arrival_ms - last_ms) / 1e3;
                last_ms = r.arrival_ms;
                for o in &mut outstanding {
                    *o = (*o - drain_tokens_per_s * gap_s).max(0.0);
                }
                let target = (0..replicas)
                    .min_by(|&a, &b| {
                        outstanding[a]
                            .partial_cmp(&outstanding[b])
                            .expect("outstanding counts are finite")
                    })
                    .expect("replicas >= 1");
                outstanding[target] += r.total_tokens() as f64;
                shards[target].push(*r);
            }
        }
        DispatchPolicy::LeastOutstandingTokensFrozen => {
            let mut outstanding = vec![0usize; replicas];
            for r in trace {
                let target = (0..replicas)
                    .min_by_key(|&g| outstanding[g])
                    .expect("replicas >= 1");
                outstanding[target] += r.total_tokens();
                shards[target].push(*r);
            }
        }
    }
    shards
}

/// A fleet of identical serving replicas behind an offline dispatcher. Each
/// replica is one clone of the fleet's execution backend.
#[derive(Debug, Clone)]
pub struct ReplicaFleet<B: ExecutionBackend + Clone = SingleGpuBackend> {
    backend: B,
    replicas: usize,
    policy: DispatchPolicy,
    scheduler: SchedulerConfig,
}

impl ReplicaFleet<SingleGpuBackend> {
    /// Build a single-GPU fleet: `replicas` copies of (device, model,
    /// engine) with the default scheduler configuration.
    ///
    /// # Panics
    /// Panics if `replicas` is zero.
    pub fn new(
        device: DeviceSpec,
        config: MoeModelConfig,
        engine: EngineKind,
        replicas: usize,
    ) -> Self {
        Self::single_gpu(device, config, engine, replicas, SchedulerConfig::default())
    }

    /// [`Self::new`] with an explicit scheduler configuration (the config
    /// also parameterises each replica's backend cost model, so it is taken
    /// at construction time rather than mutated afterwards).
    pub fn single_gpu(
        device: DeviceSpec,
        config: MoeModelConfig,
        engine: EngineKind,
        replicas: usize,
        scheduler: SchedulerConfig,
    ) -> Self {
        let backend = SingleGpuBackend::new(device, &config, engine, &scheduler);
        Self::from_backend(backend, replicas, scheduler)
    }
}

impl<B: ExecutionBackend + Clone> ReplicaFleet<B> {
    /// Build a fleet of `replicas` clones of `backend`. The default policy
    /// is the *frozen* least-outstanding dispatcher — this type is the
    /// compatibility shim, so its defaults reproduce the pre-redesign
    /// numbers exactly.
    ///
    /// # Panics
    /// Panics if `replicas` is zero.
    pub fn from_backend(backend: B, replicas: usize, scheduler: SchedulerConfig) -> Self {
        assert!(replicas >= 1, "a fleet needs at least one replica");
        Self {
            backend,
            replicas,
            policy: DispatchPolicy::LeastOutstandingTokensFrozen,
            scheduler,
        }
    }

    /// Replace the dispatch policy.
    pub fn with_policy(mut self, policy: DispatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The backend every replica clones.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Dispatch `trace` into shards and run one scheduler per shard — the
    /// single execution path both [`Self::simulate`] and [`Self::metrics`]
    /// share.
    fn shard_and_run(&self, trace: &[Request]) -> (Vec<Vec<Request>>, Vec<SimulationResult>) {
        let shards = dispatch_trace(trace, self.replicas, self.policy);
        let results = shards
            .iter()
            .map(|shard| Scheduler::from_backend(self.backend.clone(), self.scheduler).run(shard))
            .collect();
        (shards, results)
    }

    /// Simulate every replica on its dispatched shard of `trace`.
    pub fn simulate(&self, trace: &[Request]) -> Vec<SimulationResult> {
        self.shard_and_run(trace).1
    }

    /// Simulate the fleet and aggregate its metrics (a static fleet: the
    /// scaling timeline is empty and every replica is ready at time zero).
    /// The aggregation itself is shared with the online controller
    /// ([`crate::fleet::FleetController::run`]), so the two front doors can
    /// never drift apart.
    pub fn metrics(&self, trace: &[Request]) -> FleetMetrics {
        let (shards, results) = self.shard_and_run(trace);
        let description = self.backend.describe();
        let records = results
            .into_iter()
            .zip(shards)
            .map(|(result, shard)| crate::fleet::ReplicaRecord {
                description: description.clone(),
                spawned_ms: 0.0,
                ready_ms: 0.0,
                retired_ms: None,
                assigned_ids: shard.iter().map(|r| r.id).collect(),
                result,
            })
            .collect();
        crate::fleet::aggregate(self.replicas, records, Vec::new(), Vec::new(), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceConfig;

    fn trace() -> Vec<Request> {
        TraceConfig {
            num_requests: 24,
            arrival_rate_rps: 16.0,
            prompt_len_range: (32, 256),
            output_len_range: (4, 16),
            seed: 3,
        }
        .generate()
    }

    #[test]
    fn dispatch_conserves_requests_and_preserves_arrival_order() {
        let trace = trace();
        for policy in [
            DispatchPolicy::RoundRobin,
            DispatchPolicy::least_outstanding(),
            DispatchPolicy::LeastOutstandingTokensFrozen,
        ] {
            let shards = dispatch_trace(&trace, 3, policy);
            assert_eq!(shards.len(), 3);
            let mut ids: Vec<u64> = shards.iter().flat_map(|s| s.iter().map(|r| r.id)).collect();
            ids.sort_unstable();
            let expected: Vec<u64> = trace.iter().map(|r| r.id).collect();
            assert_eq!(ids, expected);
            for shard in &shards {
                assert!(shard.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
            }
        }
    }

    #[test]
    fn least_outstanding_balances_token_load_better_than_worst_case() {
        let trace = trace();
        let shards = dispatch_trace(&trace, 4, DispatchPolicy::LeastOutstandingTokensFrozen);
        let loads: Vec<usize> = shards
            .iter()
            .map(|s| s.iter().map(|r| r.total_tokens()).sum())
            .collect();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        // The frozen greedy policy keeps the cumulative spread within one
        // max-size request. (The decayed variant optimises for *current*
        // load, not lifetime totals — its property is the stale-load test
        // below.)
        assert!(max - min <= 256 + 16, "loads {loads:?}");
    }

    #[test]
    fn decayed_outstanding_forgets_stale_load_where_frozen_remembers() {
        // Two early requests load replica 0 with far more tokens than
        // replica 1 ever got. Ten seconds later both replicas have long
        // drained; the decayed policy routes the late request to replica 0
        // (all counts decayed to zero, first-index tie-break) while the
        // frozen counter still remembers the stale imbalance and picks
        // replica 1.
        let mk = |id: u64, arrival_ms: f64, prompt_len: usize| Request {
            id,
            arrival_ms,
            prompt_len,
            output_len: 10,
        };
        let trace = vec![mk(0, 0.0, 500), mk(1, 1.0, 50), mk(2, 10_000.0, 20)];
        let frozen = dispatch_trace(&trace, 2, DispatchPolicy::LeastOutstandingTokensFrozen);
        assert_eq!(frozen[1].iter().map(|r| r.id).collect::<Vec<_>>(), [1, 2]);
        let decayed = dispatch_trace(&trace, 2, DispatchPolicy::least_outstanding());
        assert_eq!(decayed[0].iter().map(|r| r.id).collect::<Vec<_>>(), [0, 2]);
        assert_eq!(decayed[1].iter().map(|r| r.id).collect::<Vec<_>>(), [1]);
    }

    #[test]
    #[should_panic(expected = "fleet::unsorted-trace")]
    fn decayed_dispatch_rejects_an_unsorted_trace() {
        // Before the fix the negative gap was clamped to zero and the decay
        // silently skewed; now the unsorted pair is rejected with the same
        // diagnostic code FleetController::validate reports.
        let mk = |id: u64, arrival_ms: f64| Request {
            id,
            arrival_ms,
            prompt_len: 32,
            output_len: 8,
        };
        let trace = vec![mk(0, 100.0), mk(1, 50.0)];
        dispatch_trace(&trace, 2, DispatchPolicy::least_outstanding());
    }

    #[test]
    fn derived_drain_rate_tracks_the_backend_it_was_derived_from() {
        let scfg = SchedulerConfig::default();
        let backend = SingleGpuBackend::new(
            DeviceSpec::a100_40g(),
            &MoeModelConfig::qwen2_moe(),
            EngineKind::Samoyeds,
            &scfg,
        );
        let policy = DispatchPolicy::least_outstanding_for(&backend);
        let DispatchPolicy::LeastOutstandingTokens { drain_tokens_per_s } = policy else {
            panic!("least_outstanding_for builds the decaying variant");
        };
        assert!(drain_tokens_per_s.is_finite() && drain_tokens_per_s > 0.0);
        // The backend's *real* drain rate: simulate a saturated
        // decode-dominated workload and measure tokens per second.
        let trace: Vec<Request> = (0..32)
            .map(|id| Request {
                id,
                arrival_ms: 0.0,
                prompt_len: 1,
                output_len: 64,
            })
            .collect();
        let result = Scheduler::from_backend(backend, scfg).run(&trace);
        let measured = result.output_tokens() as f64 / (result.makespan_ms / 1e3);
        let ratio = drain_tokens_per_s / measured;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "derived {drain_tokens_per_s:.0} tok/s is not within 2x of the \
             measured {measured:.0} tok/s"
        );
        // The frozen 2000 tok/s default is what drifted: the derived rate
        // is meaningfully different on the current backends.
        assert!(
            (drain_tokens_per_s - 2_000.0).abs() > 200.0,
            "derived {drain_tokens_per_s:.0} tok/s"
        );
    }

    #[test]
    fn fleet_aggregates_and_beats_a_single_replica_on_throughput() {
        let trace = trace();
        let device = DeviceSpec::a100_40g();
        let config = MoeModelConfig::qwen2_moe();
        let one = ReplicaFleet::new(device.clone(), config.clone(), EngineKind::Samoyeds, 1)
            .metrics(&trace);
        let four = ReplicaFleet::new(device, config, EngineKind::Samoyeds, 4).metrics(&trace);
        assert_eq!(one.engine, EngineKind::Samoyeds);
        assert_eq!(one.completed + one.rejected, trace.len());
        assert_eq!(four.completed + four.rejected, trace.len());
        assert_eq!(four.per_replica.len(), 4);
        // The static shim reports a fixed fleet: no scaling timeline, every
        // replica ready at time zero.
        assert!(four.scale_events.is_empty());
        // simlint::allow(float-eq): exact pin — the static shim constructs
        // every replica with ready_ms = 0.0 literally
        assert!(four.per_replica.iter().all(|r| r.ready_ms == 0.0));
        assert_eq!(
            four.per_replica.iter().map(|r| r.assigned).sum::<usize>(),
            trace.len()
        );
        // Four replicas drain the same trace no slower (and, under this
        // offered load, strictly faster).
        assert!(four.makespan_ms <= one.makespan_ms);
        assert!(four.output_tokens_per_s >= one.output_tokens_per_s);
        // Pooled latency percentiles are monotone and TPOT is populated
        // (the trace always has multi-token outputs).
        assert!(four.request_latency.p50_ms <= four.request_latency.p95_ms);
        assert!(four.tpot.p50_ms > 0.0);
        assert!(four.tpot.p50_ms <= four.tpot.p95_ms);
    }

    #[test]
    fn from_backend_matches_the_single_gpu_front_door() {
        let trace = trace();
        let device = DeviceSpec::a100_40g();
        let config = MoeModelConfig::qwen2_moe();
        let scfg = SchedulerConfig::default();
        let via_new = ReplicaFleet::new(device.clone(), config.clone(), EngineKind::Samoyeds, 2)
            .metrics(&trace);
        let backend =
            crate::backend::SingleGpuBackend::new(device, &config, EngineKind::Samoyeds, &scfg);
        let via_backend = ReplicaFleet::from_backend(backend, 2, scfg).metrics(&trace);
        assert_eq!(via_new.completed, via_backend.completed);
        assert_eq!(via_new.makespan_ms, via_backend.makespan_ms);
        assert_eq!(via_new.output_tokens_per_s, via_backend.output_tokens_per_s);
    }
}
