//! Event-queue core for the fleet simulation.
//!
//! The online fleet used to advance in fixed control ticks: every 200 ms of
//! simulated time cost one full pass over every replica even when the whole
//! fleet was idle. [`EventQueue`] replaces that with next-event time advance —
//! a [`std::collections::BinaryHeap`] ordered by timestamp pops the next
//! *thing that happens* (a request arrival, a replica finishing an engine
//! step, a control tick, a warm-up completing, a drained replica retiring)
//! and the clock jumps straight to it. Idle periods cost zero work, which is
//! what lets a 100-replica fleet chew through a million-request trace in
//! seconds instead of minutes.
//!
//! Determinism is load-bearing: the fleet equivalence suites pin the event
//! loop bit-for-bit against the frozen tick-driven loop, so ordering between
//! events that share a timestamp must be total and must reproduce the legacy
//! loop's interleaving. Two events at the same time are ordered by *event
//! class* — warm-up completions first (a replica is routable the instant its
//! warm-up lands), then drain retirements, injected faults and their
//! recoveries, KV-transfer landings, control ticks, arrivals, and step
//! completions — and ties within a class are FIFO by insertion sequence.

/// One schedulable occurrence in the fleet simulation.
///
/// The variants carry indices into the controller's slot table or trace
/// rather than references, so events stay `Copy` and the queue owns nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetEvent {
    /// A commissioning replica finishes warm-up and becomes routable.
    WarmupComplete {
        /// Index of the slot in the controller's replica table.
        slot: usize,
    },
    /// A draining replica has emptied and leaves the fleet.
    DrainRetire {
        /// Index of the slot in the controller's replica table.
        slot: usize,
    },
    /// An injected fault fires (replica crash, link degradation, island
    /// partition — see `serve::faults`).
    Fault {
        /// Index into the controller's resolved fault list.
        index: usize,
    },
    /// A fault's recovery completes (re-admission after weight transfer, a
    /// degraded link or partitioned island restoring).
    FaultRecovery {
        /// Index into the controller's resolved fault list.
        index: usize,
    },
    /// A prefill→decode KV-cache transfer lands on its decode pod
    /// (disaggregated fleets only — see `serve::fleet`).
    KvTransferComplete {
        /// Index into the controller's pending-transfer table.
        transfer: usize,
    },
    /// The autoscaler's periodic observation point.
    ControlTick {
        /// 1-based tick number; the tick fires at `index as f64 * tick_ms`,
        /// derived per tick rather than accumulated so the schedule cannot
        /// drift (see the tick-drift regression test in `fleet.rs`).
        index: u64,
    },
    /// The next request in the trace reaches the fleet router.
    Arrival {
        /// Index of the request within the trace.
        index: usize,
    },
    /// A replica completes one engine step and asks for its next one.
    StepCompletion {
        /// Index of the slot in the controller's replica table.
        slot: usize,
    },
}

impl FleetEvent {
    /// Same-timestamp ordering class: lower fires first. The order encodes
    /// the legacy tick loop's interleaving — warm-ups land before the tick
    /// that would observe them, retirements precede observation, ticks at
    /// `t` run before arrivals at `t` (the legacy loop drained
    /// `next_tick <= arrival_ms` before routing), and step completions only
    /// matter once routing at that instant is done. Faults land after
    /// retirements but before the tick (and arrival) at the same instant:
    /// the autoscaler observes the damage, and a request arriving the
    /// instant a replica crashes is never routed to the corpse. A recovery
    /// coinciding with the fault that scheduled it fires after it. A KV
    /// transfer landing fires after recoveries (a re-routed transfer aimed at
    /// a pod that just recovered sees it alive) but before the tick and the
    /// arrivals at the same instant: the decode pod holds the request before
    /// the autoscaler observes the fleet and before same-instant arrivals
    /// route.
    fn class(self) -> u8 {
        match self {
            FleetEvent::WarmupComplete { .. } => 0,
            FleetEvent::DrainRetire { .. } => 1,
            FleetEvent::Fault { .. } => 2,
            FleetEvent::FaultRecovery { .. } => 3,
            FleetEvent::KvTransferComplete { .. } => 4,
            FleetEvent::ControlTick { .. } => 5,
            FleetEvent::Arrival { .. } => 6,
            FleetEvent::StepCompletion { .. } => 7,
        }
    }
}

/// Heap entry: timestamp plus the tie-break key (class, then FIFO sequence).
#[derive(Debug, Clone, Copy)]
struct QueuedEvent {
    at_ms: f64,
    class: u8,
    seq: u64,
    event: FleetEvent,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for QueuedEvent {}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedEvent {
    /// Inverted so the `BinaryHeap` max-heap pops the *earliest* event:
    /// smallest timestamp, then smallest class, then smallest sequence.
    /// `total_cmp` keeps the order total even for exotic `f64`s (the queue
    /// never holds NaN, but a panic-free total order is cheap insurance).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .at_ms
            .total_cmp(&self.at_ms)
            .then(other.class.cmp(&self.class))
            .then(other.seq.cmp(&self.seq))
    }
}

/// Deterministic time-ordered event queue for the fleet simulation.
///
/// A thin wrapper over [`std::collections::BinaryHeap`] that fixes the
/// ordering contract: events pop in ascending timestamp, same-timestamp
/// events pop in [`FleetEvent`] class order, and same-class ties pop FIFO.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: std::collections::BinaryHeap<QueuedEvent>,
    seq: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute simulated time `at_ms`.
    pub fn push(&mut self, at_ms: f64, event: FleetEvent) {
        debug_assert!(!at_ms.is_nan(), "events cannot be scheduled at NaN");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(QueuedEvent {
            at_ms,
            class: event.class(),
            seq,
            event,
        });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(f64, FleetEvent)> {
        self.heap.pop().map(|q| (q.at_ms, q.event))
    }

    /// Pop the earliest event only if it satisfies `pred`; otherwise leave
    /// the queue untouched. Lets the controller drain a run of same-time
    /// events (e.g. retirements scheduled *at* the current tick) without
    /// disturbing later ones.
    pub fn pop_if(&mut self, pred: impl Fn(f64, &FleetEvent) -> bool) -> Option<(f64, FleetEvent)> {
        let head = self.heap.peek()?;
        if pred(head.at_ms, &head.event) {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_ascending_time_order() {
        let mut q = EventQueue::new();
        q.push(300.0, FleetEvent::Arrival { index: 2 });
        q.push(100.0, FleetEvent::Arrival { index: 0 });
        q.push(200.0, FleetEvent::Arrival { index: 1 });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(order, vec![100.0, 200.0, 300.0]);
    }

    #[test]
    fn same_time_events_pop_in_class_order() {
        let mut q = EventQueue::new();
        // Inserted in reverse class order; all at t = 400.
        q.push(400.0, FleetEvent::StepCompletion { slot: 0 });
        q.push(400.0, FleetEvent::Arrival { index: 9 });
        q.push(400.0, FleetEvent::ControlTick { index: 2 });
        q.push(400.0, FleetEvent::KvTransferComplete { transfer: 7 });
        q.push(400.0, FleetEvent::FaultRecovery { index: 4 });
        q.push(400.0, FleetEvent::Fault { index: 4 });
        q.push(400.0, FleetEvent::DrainRetire { slot: 1 });
        q.push(400.0, FleetEvent::WarmupComplete { slot: 3 });
        let order: Vec<FleetEvent> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec![
                FleetEvent::WarmupComplete { slot: 3 },
                FleetEvent::DrainRetire { slot: 1 },
                FleetEvent::Fault { index: 4 },
                FleetEvent::FaultRecovery { index: 4 },
                FleetEvent::KvTransferComplete { transfer: 7 },
                FleetEvent::ControlTick { index: 2 },
                FleetEvent::Arrival { index: 9 },
                FleetEvent::StepCompletion { slot: 0 },
            ]
        );
    }

    #[test]
    fn same_time_same_class_ties_are_fifo() {
        let mut q = EventQueue::new();
        for slot in 0..8 {
            q.push(50.0, FleetEvent::StepCompletion { slot });
        }
        for expected in 0..8 {
            match q.pop() {
                Some((_, FleetEvent::StepCompletion { slot })) => assert_eq!(slot, expected),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn pop_if_only_takes_matching_heads() {
        let mut q = EventQueue::new();
        q.push(10.0, FleetEvent::DrainRetire { slot: 0 });
        q.push(10.0, FleetEvent::Arrival { index: 0 });
        // simlint::allow(float-eq): exact replay pin — the timestamp is the
        // literal pushed two lines up, bit-identical by construction
        let retire = q.pop_if(|at, e| at == 10.0 && matches!(e, FleetEvent::DrainRetire { .. }));
        assert_eq!(retire, Some((10.0, FleetEvent::DrainRetire { slot: 0 })));
        // Head is now the arrival: the predicate rejects it, the queue keeps it.
        // simlint::allow(float-eq): same exact-replay pin as above
        let none = q.pop_if(|at, e| at == 10.0 && matches!(e, FleetEvent::DrainRetire { .. }));
        assert_eq!(none, None);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
