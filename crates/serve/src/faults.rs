//! Deterministic fault injection for the fleet control plane.
//!
//! Production MoE fleets lose GPUs, links and whole NVLink islands; the
//! consumer-GPU economics this repo quantifies only hold if the control
//! plane degrades gracefully instead of falling over. This module supplies
//! the *chaos* side of that story: a [`FaultSchedule`] (scripted, or
//! seeded-random via ChaCha so runs are reproducible bit for bit) resolves
//! to a list of [`FaultSpec`]s that `FleetController` injects through its
//! event queue as a dedicated event class, and a [`RecoveryPolicy`] decides
//! what happens next — fail the crashed replica's in-flight requests, or
//! re-admit them on survivors after a weight-transfer delay (priced by the
//! caller over `ClusterTopology`, so cross-island recovery pays the spine),
//! optionally commissioning a cold replacement through the existing warm-up
//! path.
//!
//! The schedule is resolved *before* the run starts and every fault is an
//! ordinary event in the deterministic queue, so a fleet with an empty
//! schedule is bit-for-bit identical to one without fault injection at all
//! (pinned by the `fault_equivalence` suite), and a seeded schedule replays
//! identically across runs (pinned by proptest).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// What breaks. Replica indices refer to the controller's replica slots in
/// commissioning order (the initial replicas first, then autoscaled ones).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The replica's GPU dies permanently: it stops serving immediately,
    /// its in-flight requests are lost (and re-admitted or failed per the
    /// [`RecoveryPolicy`]), and it never comes back.
    ReplicaCrash {
        /// Replica slot that crashes.
        replica: usize,
    },
    /// The replica's link degrades (a flapping cable, a congested switch —
    /// the `PairOverride` story from `dist::topology`): already-admitted
    /// requests keep being served, but the dispatcher stops routing new
    /// work to it until the link recovers.
    LinkDegrade {
        /// Replica slot whose link degrades.
        replica: usize,
        /// How long the replica stays un-routable, in milliseconds.
        duration_ms: f64,
    },
    /// A whole island partitions away from the spine: every listed replica
    /// becomes un-routable at once until the partition heals.
    IslandPartition {
        /// Island id, for reporting.
        island: usize,
        /// Replica slots on the partitioned island.
        replicas: Vec<usize>,
        /// How long the partition lasts, in milliseconds.
        duration_ms: f64,
    },
}

impl FaultKind {
    /// Short label for rendering (`"crash"`, `"link degrade"`,
    /// `"island partition"`).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::ReplicaCrash { .. } => "crash",
            FaultKind::LinkDegrade { .. } => "link degrade",
            FaultKind::IslandPartition { .. } => "island partition",
        }
    }
}

/// One scheduled fault: what breaks, and when.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Injection time in milliseconds since the start of the run.
    pub at_ms: f64,
    /// What breaks.
    pub kind: FaultKind,
}

/// Parameters of a seeded-random fault stream: independent Poisson
/// processes for crashes and link degradations over a fixed horizon.
///
/// Island partitions are deliberately scripted-only — they encode cluster
/// structure (which replicas share an island) that a blind random draw
/// cannot know.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeededFaults {
    /// ChaCha seed; the same seed always resolves to the same schedule.
    pub seed: u64,
    /// Faults are only drawn in `[0, horizon_ms)`.
    pub horizon_ms: f64,
    /// Mean crashes per second (Poisson rate). Crashes never take the last
    /// surviving replica and never hit the same replica twice.
    pub crash_rate_per_s: f64,
    /// Mean link degradations per second (Poisson rate).
    pub degrade_rate_per_s: f64,
    /// Duration of each drawn link degradation, in milliseconds.
    pub degrade_duration_ms: f64,
}

/// When and what to break: either an explicit script or a seeded-random
/// stream resolved deterministically at run start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultSchedule {
    /// Exactly these faults (resolved order is sorted by injection time).
    Scripted(Vec<FaultSpec>),
    /// Faults drawn from seeded Poisson streams; see [`SeededFaults`].
    Seeded(SeededFaults),
}

impl FaultSchedule {
    /// The empty schedule: injects nothing, leaving the controller
    /// bit-for-bit identical to a run without fault injection.
    pub fn none() -> Self {
        FaultSchedule::Scripted(Vec::new())
    }

    /// Resolve to a concrete, time-sorted fault list for a fleet of
    /// `replicas` initial replicas. Deterministic: the same schedule and
    /// replica count always produce the same list.
    pub fn resolve(&self, replicas: usize) -> Vec<FaultSpec> {
        let mut specs = match self {
            FaultSchedule::Scripted(specs) => specs.clone(),
            FaultSchedule::Seeded(cfg) => Self::draw(cfg, replicas),
        };
        specs.sort_by(|a, b| a.at_ms.total_cmp(&b.at_ms));
        specs
    }

    fn draw(cfg: &SeededFaults, replicas: usize) -> Vec<FaultSpec> {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut specs = Vec::new();
        let mut crashed = vec![false; replicas];
        let mut alive = replicas;
        // Crash stream: exponential gaps, uniform replica choice. A draw
        // that would re-crash a dead replica or kill the last survivor is
        // discarded (the clock still advances, so the loop terminates).
        if cfg.crash_rate_per_s > 0.0 && replicas > 1 {
            let mut t = 0.0;
            loop {
                let u: f64 = rng.gen_range(0.0..1.0);
                t += -(1.0 - u).ln() / cfg.crash_rate_per_s * 1e3;
                if t >= cfg.horizon_ms {
                    break;
                }
                let replica = rng.gen_range(0..replicas);
                if crashed[replica] || alive <= 1 {
                    continue;
                }
                crashed[replica] = true;
                alive -= 1;
                specs.push(FaultSpec {
                    at_ms: t,
                    kind: FaultKind::ReplicaCrash { replica },
                });
            }
        }
        // Degrade stream: independent of the crash stream. Degrading a
        // replica that later turns out to be dead is a runtime no-op.
        if cfg.degrade_rate_per_s > 0.0 && replicas > 0 {
            let mut t = 0.0;
            loop {
                let u: f64 = rng.gen_range(0.0..1.0);
                t += -(1.0 - u).ln() / cfg.degrade_rate_per_s * 1e3;
                if t >= cfg.horizon_ms {
                    break;
                }
                let replica = rng.gen_range(0..replicas);
                specs.push(FaultSpec {
                    at_ms: t,
                    kind: FaultKind::LinkDegrade {
                        replica,
                        duration_ms: cfg.degrade_duration_ms,
                    },
                });
            }
        }
        specs
    }
}

/// How the controller reacts to a replica crash.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Re-admit the crashed replica's in-flight requests on survivors once
    /// the weight transfer completes (`false` fails them instead).
    pub readmit: bool,
    /// Commission a cold replacement replica through the normal warm-up
    /// path (requires the controller to have a replica factory).
    pub replace: bool,
    /// Weight-transfer delay before re-admission, in milliseconds. Price
    /// this over `ClusterTopology` (see `dist::placement::replan_after_crash`)
    /// so intra-island recovery is cheap and cross-island pays the spine.
    pub transfer_ms: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            readmit: true,
            replace: false,
            transfer_ms: 0.0,
        }
    }
}

impl RecoveryPolicy {
    /// Fail every in-flight request of a crashed replica: no re-admission,
    /// no replacement.
    pub fn fail_fast() -> Self {
        Self {
            readmit: false,
            replace: false,
            transfer_ms: 0.0,
        }
    }

    /// Re-admit in-flight requests after `transfer_ms` of weight movement.
    pub fn readmit_after(transfer_ms: f64) -> Self {
        Self {
            readmit: true,
            replace: false,
            transfer_ms,
        }
    }

    /// Re-admit and also commission a cold replacement replica.
    pub fn readmit_and_replace(transfer_ms: f64) -> Self {
        Self {
            readmit: true,
            replace: true,
            transfer_ms,
        }
    }
}

/// Outcome of one injected fault, recorded in `FleetMetrics::faults`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Injection time in milliseconds.
    pub at_ms: f64,
    /// What broke.
    pub kind: FaultKind,
    /// Queued (not yet admitted) requests lost to a crash.
    pub lost_queued: usize,
    /// Running (admitted, mid-generation) requests lost to a crash.
    pub lost_running: usize,
    /// Lost requests successfully re-admitted on survivors.
    pub readmitted: usize,
    /// Lost requests that could not be re-admitted and failed outright.
    pub failed: usize,
    /// Replacement replica slot, if the policy commissioned one.
    pub replacement: Option<usize>,
    /// When the fleet finished recovering (re-admission done, link or
    /// partition restored, replacement warm). `None` for a fail-fast crash
    /// with no replacement: nothing ever recovers.
    pub recovered_at_ms: Option<f64>,
}

impl FaultRecord {
    /// Recovery time in milliseconds, if the fault recovered.
    pub fn recovery_ms(&self) -> Option<f64> {
        self.recovered_at_ms.map(|r| r - self.at_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> SeededFaults {
        SeededFaults {
            seed: 99,
            horizon_ms: 60_000.0,
            crash_rate_per_s: 0.05,
            degrade_rate_per_s: 0.1,
            degrade_duration_ms: 500.0,
        }
    }

    #[test]
    fn empty_schedule_resolves_to_nothing() {
        assert!(FaultSchedule::none().resolve(4).is_empty());
    }

    #[test]
    fn scripted_schedule_sorts_by_time() {
        let schedule = FaultSchedule::Scripted(vec![
            FaultSpec {
                at_ms: 900.0,
                kind: FaultKind::ReplicaCrash { replica: 1 },
            },
            FaultSpec {
                at_ms: 300.0,
                kind: FaultKind::LinkDegrade {
                    replica: 0,
                    duration_ms: 100.0,
                },
            },
        ]);
        let resolved = schedule.resolve(2);
        assert_eq!(resolved.len(), 2);
        assert_eq!(resolved[0].at_ms, 300.0);
        assert_eq!(resolved[1].at_ms, 900.0);
    }

    #[test]
    fn seeded_schedule_is_deterministic() {
        let schedule = FaultSchedule::Seeded(seeded());
        let a = schedule.resolve(6);
        let b = schedule.resolve(6);
        assert!(!a.is_empty(), "rates × horizon should draw some faults");
        assert_eq!(a, b);
    }

    #[test]
    fn seeded_crashes_spare_the_last_survivor_and_never_repeat() {
        let schedule = FaultSchedule::Seeded(SeededFaults {
            crash_rate_per_s: 10.0,
            degrade_rate_per_s: 0.0,
            ..seeded()
        });
        let resolved = schedule.resolve(3);
        let crashed: Vec<usize> = resolved
            .iter()
            .filter_map(|s| match s.kind {
                FaultKind::ReplicaCrash { replica } => Some(replica),
                _ => None,
            })
            .collect();
        assert!(crashed.len() <= 2, "at least one replica must survive");
        let mut unique = crashed.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), crashed.len(), "no replica crashes twice");
        // Sorted by injection time.
        for w in resolved.windows(2) {
            assert!(w[0].at_ms <= w[1].at_ms);
        }
    }

    #[test]
    fn single_replica_fleet_never_draws_a_crash() {
        let schedule = FaultSchedule::Seeded(SeededFaults {
            crash_rate_per_s: 50.0,
            degrade_rate_per_s: 0.0,
            ..seeded()
        });
        assert!(schedule.resolve(1).is_empty());
    }

    #[test]
    fn recovery_policy_defaults_to_readmit_without_replacement() {
        let policy = RecoveryPolicy::default();
        assert!(policy.readmit);
        assert!(!policy.replace);
        assert_eq!(policy.transfer_ms, 0.0);
        assert!(!RecoveryPolicy::fail_fast().readmit);
        assert!(RecoveryPolicy::readmit_and_replace(25.0).replace);
    }

    #[test]
    fn fault_record_reports_recovery_time() {
        let record = FaultRecord {
            at_ms: 1_000.0,
            kind: FaultKind::ReplicaCrash { replica: 0 },
            lost_queued: 2,
            lost_running: 1,
            readmitted: 3,
            failed: 0,
            replacement: None,
            recovered_at_ms: Some(1_250.0),
        };
        assert_eq!(record.recovery_ms(), Some(250.0));
        assert_eq!(record.kind.label(), "crash");
    }
}
