//! The online fleet control plane: heterogeneous replicas, capability-aware
//! dispatch and SLO-driven autoscaling behind one API.
//!
//! Where [`dispatch`](crate::dispatch) splits a trace *ahead of time* across
//! a fixed count of identical replicas, the [`FleetController`] here is an
//! *online* control plane:
//!
//! * **Heterogeneous replicas** — the fleet is a set of
//!   `Box<dyn ExecutionBackend>` replicas, so an expert-parallel A100 pod
//!   (`ClusterBackend` in `samoyeds-dist`) serves next to consumer-GPU
//!   singles ([`SingleGpuBackend`](crate::backend::SingleGpuBackend))
//!   behind the same dispatcher.
//! * **Capability-aware dispatch** — each request is routed *at its arrival
//!   time* from live replica state: kernel support
//!   ([`ExecutionBackend::supports`]), admission headroom
//!   ([`MemoryBudget`](crate::backend::MemoryBudget) via
//!   [`ReplicaDriver::can_ever_admit`]) and outstanding work (which decays
//!   as replicas make progress — the fix for the frozen accumulate-forever
//!   counter).
//! * **SLO-driven autoscaling** — a pluggable [`AutoscalePolicy`] is
//!   consulted every control tick: scale out on p95-TTFT SLO breach (new
//!   replicas charged a warm-up delay before they take traffic), scale in on
//!   sustained low utilization (draining, never dropping below the floor).
//!   Every scale event lands on the [`FleetMetrics::scale_events`] timeline.
//! * **Event-driven core** — [`FleetController::run`] is a next-event loop
//!   over an [`EventQueue`](crate::events::EventQueue): arrivals, step
//!   completions, control ticks, warm-up completions and drain retirements
//!   pop in timestamp order and the clock jumps between them, so idle
//!   periods cost zero work. Policies that never scale
//!   ([`AutoscalePolicy::consults_ticks`] returns `false`) elide the tick
//!   schedule entirely and the fleet advances purely on arrivals and step
//!   completions — the regime where a 100-replica fleet absorbs a
//!   million-request trace in seconds. The event loop is pinned bit-for-bit
//!   against the frozen tick-driven loop in `fleet_event_equivalence.rs`.
//! * **Prefill/decode disaggregation** — opt-in via
//!   [`FleetController::with_disaggregation`]: arrivals run chunked prefill
//!   on *prefill pods*, the finished prompt KV
//!   ([`MemoryModel::kv_bytes`]-sized) is handed off over a [`KvLink`] to
//!   the *decode pod* with the most free KV budget, and the remaining
//!   tokens decode there. The handoff lands as a
//!   [`FleetEvent::KvTransferComplete`] event; a crashed decode pod's
//!   in-flight requests re-prefill or re-transfer under the
//!   [`RecoveryPolicy`]. The ratio-0 endpoint (no decode pods) is
//!   bit-for-bit the co-located fleet, pinned by `disagg_equivalence.rs`.

use crate::backend::{ExecutionBackend, StepWorkload};
use crate::batch::StepBatch;
use crate::dispatch::DispatchPolicy;
use crate::events::{EventQueue, FleetEvent};
use crate::faults::{FaultKind, FaultRecord, FaultSchedule, FaultSpec, RecoveryPolicy};
use crate::memory::MemoryModel;
use crate::metrics::{latency_summary, LatencySummary, ServingMetrics};
use crate::request::{CompletedRequest, Request, RunningRequest};
use crate::scheduler::{ReplicaDriver, SchedulerConfig, SimulationResult};
use crate::telemetry::{SharedSink, TraceEvent};
use crate::validate::{Diagnostic, ValidationReport};
use samoyeds_moe::engines::EngineKind;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Fleet-level control-plane knobs.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Per-replica scheduler configuration (also parameterises each
    /// backend's cost model, as everywhere else in the crate).
    pub scheduler: SchedulerConfig,
    /// How arriving requests pick a replica.
    pub policy: DispatchPolicy,
    /// Control-tick period: how often the autoscale policy is consulted.
    pub tick_ms: f64,
    /// Sliding observation window for TTFT percentiles and utilization.
    pub window_ms: f64,
    /// Warm-up charged to every scaled-out replica before it takes traffic
    /// (weight loading, cache warm, registration).
    pub warmup_ms: f64,
    /// The fleet never scales below this many replicas that can actually
    /// serve the model. Dead-weight replicas (kernels or weights that can
    /// never admit anything) do not count toward this floor and are drained
    /// freely, down to one commissioned replica overall.
    pub min_replicas: usize,
    /// The fleet never scales above this many commissioned replicas.
    pub max_replicas: usize,
    /// Safety cap on post-trace drain ticks. A degenerate configuration
    /// (e.g. a draining fleet that can never finish its backlog) used to
    /// panic mid-sweep; instead, once this many drain ticks have run with
    /// work still outstanding, the run stops ticking and returns degraded
    /// metrics with [`FleetMetrics::drain_incomplete`] set.
    pub max_drain_ticks: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            scheduler: SchedulerConfig::default(),
            policy: DispatchPolicy::least_outstanding(),
            tick_ms: 200.0,
            window_ms: 1_000.0,
            warmup_ms: 2_000.0,
            min_replicas: 1,
            max_replicas: 8,
            max_drain_ticks: 10_000_000,
        }
    }
}

/// What the autoscale policy sees at each control tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetObservation {
    /// Simulated time of the tick.
    pub now_ms: f64,
    /// Replicas currently taking traffic (ready, not draining).
    pub routable_replicas: usize,
    /// Replicas commissioned but still warming up.
    pub warming_replicas: usize,
    /// p95 time-to-first-token over first-token events in the window, if
    /// any landed.
    pub p95_ttft_ms: Option<f64>,
    /// Age of the oldest request that has not produced its first token
    /// (zero when none is pending) — catches overload even when nothing
    /// completes inside the window.
    pub max_pending_wait_ms: f64,
    /// Busy fraction of the ready replicas over the window.
    pub utilization: f64,
    /// Tokens of work still owed across the fleet.
    pub outstanding_tokens: usize,
    /// Requests waiting for admission across the fleet.
    pub queued_requests: usize,
}

/// The autoscale policy's verdict for one control tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleDecision {
    /// Keep the current fleet.
    Hold,
    /// Commission one more replica (subject to `max_replicas`).
    ScaleOut,
    /// Drain one replica (subject to `min_replicas`).
    ScaleIn,
}

/// A pluggable autoscaling policy, consulted once per control tick.
pub trait AutoscalePolicy {
    /// Decide from the tick's observation. Policies may keep internal state
    /// (breach streaks, cooldowns); the controller owns enforcement of the
    /// replica floor/ceiling and of warm-up.
    fn decide(&mut self, observation: &FleetObservation) -> ScaleDecision;

    /// Human-readable name for reports.
    fn name(&self) -> String {
        "autoscaler".to_string()
    }

    /// Whether the policy needs to be consulted on the periodic control-tick
    /// schedule. The default (`true`) is correct for every policy that can
    /// ever scale or that keeps tick-indexed state. Only a policy that
    /// unconditionally returns [`ScaleDecision::Hold`] and keeps no state
    /// may return `false`: the controller then elides control ticks
    /// entirely and advances the fleet purely on arrival and
    /// step-completion events, which is what makes large fixed fleets
    /// simulate in seconds.
    fn consults_ticks(&self) -> bool {
        true
    }

    /// The p95 time-to-first-token target the policy enforces, if it has
    /// one. Static validation ([`FleetController::validate`]) compares it
    /// against the best TTFT any initial replica could physically achieve
    /// and rejects targets no fleet size can meet. Policies without an SLO
    /// (the default) return `None` and skip that check.
    fn ttft_slo_ms(&self) -> Option<f64> {
        None
    }
}

/// A fixed fleet: never scales.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoAutoscale;

impl AutoscalePolicy for NoAutoscale {
    fn decide(&mut self, _observation: &FleetObservation) -> ScaleDecision {
        ScaleDecision::Hold
    }

    fn name(&self) -> String {
        "fixed".to_string()
    }

    /// A fixed fleet never scales, so the tick schedule can be elided.
    fn consults_ticks(&self) -> bool {
        false
    }
}

/// The reference SLO policy: scale out after `breach_ticks` consecutive
/// ticks whose windowed p95 TTFT (or head-of-line waiting age) exceeds the
/// SLO, scale in after `idle_ticks` consecutive ticks of low utilization
/// with nothing queued.
#[derive(Debug, Clone)]
pub struct SloAutoscaler {
    /// The p95 time-to-first-token target, milliseconds.
    pub ttft_slo_ms: f64,
    /// Consecutive breached ticks before scaling out.
    pub breach_ticks: usize,
    /// Utilization below which a tick counts as idle.
    pub low_utilization: f64,
    /// Consecutive idle ticks before scaling in.
    pub idle_ticks: usize,
    breach_streak: usize,
    idle_streak: usize,
}

impl SloAutoscaler {
    /// A policy targeting `ttft_slo_ms` with the default streak lengths
    /// (2 breached ticks to scale out, 4 idle ticks below 35% to scale in).
    pub fn new(ttft_slo_ms: f64) -> Self {
        Self {
            ttft_slo_ms,
            breach_ticks: 2,
            low_utilization: 0.35,
            idle_ticks: 4,
            breach_streak: 0,
            idle_streak: 0,
        }
    }

    /// Replace the scale-out breach streak length.
    pub fn with_breach_ticks(mut self, breach_ticks: usize) -> Self {
        self.breach_ticks = breach_ticks.max(1);
        self
    }

    /// Replace the scale-in idle threshold and streak length.
    pub fn with_scale_in(mut self, low_utilization: f64, idle_ticks: usize) -> Self {
        self.low_utilization = low_utilization;
        self.idle_ticks = idle_ticks.max(1);
        self
    }
}

impl AutoscalePolicy for SloAutoscaler {
    fn decide(&mut self, obs: &FleetObservation) -> ScaleDecision {
        // Capacity already in flight: hold every streak until it lands.
        // Counting breaches here would turn one sustained breach into an
        // immediate second scale-out the instant warm-up completes, and
        // counting idleness here would scale in capacity that is idle only
        // because the new replica has not started taking traffic yet.
        if obs.warming_replicas > 0 {
            self.breach_streak = 0;
            self.idle_streak = 0;
            return ScaleDecision::Hold;
        }
        let breached = obs.p95_ttft_ms.is_some_and(|p95| p95 > self.ttft_slo_ms)
            || obs.max_pending_wait_ms > self.ttft_slo_ms;
        let idle = obs.utilization < self.low_utilization && obs.queued_requests == 0;
        if breached {
            self.breach_streak += 1;
            self.idle_streak = 0;
        } else if idle {
            self.idle_streak += 1;
            self.breach_streak = 0;
        } else {
            self.breach_streak = 0;
            self.idle_streak = 0;
        }
        if self.breach_streak >= self.breach_ticks {
            self.breach_streak = 0;
            ScaleDecision::ScaleOut
        } else if self.idle_streak >= self.idle_ticks {
            self.idle_streak = 0;
            ScaleDecision::ScaleIn
        } else {
            ScaleDecision::Hold
        }
    }

    fn name(&self) -> String {
        format!("slo p95-ttft {:.0} ms", self.ttft_slo_ms)
    }

    fn ttft_slo_ms(&self) -> Option<f64> {
        Some(self.ttft_slo_ms)
    }
}

/// Direction of a scale event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleKind {
    /// A replica was commissioned.
    Out,
    /// A replica began draining.
    In,
}

/// One entry of the scaling timeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleEvent {
    /// Simulated time of the event.
    pub at_ms: f64,
    /// Direction.
    pub kind: ScaleKind,
    /// Commissioned (routable + warming) replicas after the event.
    pub replicas_after: usize,
    /// What the observation looked like (for the report).
    pub reason: String,
}

/// Per-replica slice of a fleet run.
#[derive(Debug, Clone)]
pub struct ReplicaBreakdown {
    /// The backend's one-line description.
    pub description: String,
    /// The engine the replica runs.
    pub engine: EngineKind,
    /// When the replica was commissioned (0 for the initial fleet).
    pub spawned_ms: f64,
    /// When it started taking traffic (spawn + warm-up).
    pub ready_ms: f64,
    /// When it finished draining after a scale-in, if it was retired.
    pub retired_ms: Option<f64>,
    /// Requests routed to this replica.
    pub assigned: usize,
    /// The ids of those requests, in routing order (the dispatch log the
    /// conservation proptests check).
    pub assigned_ids: Vec<u64>,
    /// The replica's own serving metrics.
    pub metrics: ServingMetrics,
}

/// Aggregate metrics of a fleet run — static
/// ([`ReplicaFleet::metrics`](crate::dispatch::ReplicaFleet::metrics)) or
/// online ([`FleetController::run`]), behind the same type.
#[derive(Debug, Clone)]
pub struct FleetMetrics {
    /// The first replica's engine (fleets may be heterogeneous; see
    /// [`Self::per_replica`] for the full picture).
    pub engine: EngineKind,
    /// Peak commissioned replicas over the run (the fixed count for static
    /// fleets).
    pub replicas: usize,
    /// Completed requests across the fleet.
    pub completed: usize,
    /// Rejected requests across the fleet (unroutable plus per-replica
    /// rejections).
    pub rejected: usize,
    /// Fleet output-token throughput (tokens/s over the fleet makespan).
    pub output_tokens_per_s: f64,
    /// Pooled end-to-end request latency distribution.
    pub request_latency: LatencySummary,
    /// Pooled time-to-first-token distribution.
    pub ttft: LatencySummary,
    /// Pooled per-output-token latency distribution.
    pub tpot: LatencySummary,
    /// Fleet makespan (slowest replica).
    pub makespan_ms: f64,
    /// Per-replica breakdowns, in commission order.
    pub per_replica: Vec<ReplicaBreakdown>,
    /// The scaling timeline (empty for static fleets).
    pub scale_events: Vec<ScaleEvent>,
    /// Ids of requests no replica could ever admit.
    pub unroutable_ids: Vec<u64>,
    /// Ids of requests lost to a replica crash and never re-admitted
    /// (fail-fast policy, or no survivor could take them). Disjoint from
    /// [`Self::unroutable_ids`] and from per-replica rejections:
    /// `completed + rejected + failed == offered` under any fault schedule.
    pub failed_ids: Vec<u64>,
    /// Outcome of every injected fault, in injection order (empty without
    /// fault injection).
    pub faults: Vec<FaultRecord>,
    /// Whether the post-trace drain hit [`FleetConfig::max_drain_ticks`]
    /// with work still outstanding. When set, the run stopped ticking
    /// instead of panicking and every figure above reflects only the work
    /// finished up to that point — treat the metrics as degraded.
    pub drain_incomplete: bool,
    /// The replica slots that still held work when the drain cap hit
    /// (empty when [`Self::drain_incomplete`] is false) — *which* replicas
    /// were stuck, not just that something was.
    pub drain_incomplete_replicas: Vec<usize>,
}

impl FleetMetrics {
    /// Scale-out events on the timeline.
    pub fn scale_outs(&self) -> usize {
        self.scale_events
            .iter()
            .filter(|e| e.kind == ScaleKind::Out)
            .count()
    }

    /// Scale-in events on the timeline.
    pub fn scale_ins(&self) -> usize {
        self.scale_events
            .iter()
            .filter(|e| e.kind == ScaleKind::In)
            .count()
    }

    /// Render the scaling timeline as markdown rows.
    pub fn render_timeline(&self) -> Vec<String> {
        let mut rows = vec![
            "| t (s) | event | replicas after | reason |".to_string(),
            "|---|---|---|---|".to_string(),
        ];
        for e in &self.scale_events {
            rows.push(format!(
                "| {:.2} | {} | {} | {} |",
                e.at_ms / 1e3,
                match e.kind {
                    ScaleKind::Out => "scale-out",
                    ScaleKind::In => "scale-in",
                },
                e.replicas_after,
                e.reason,
            ));
        }
        rows
    }

    /// Requests lost to crashes and never re-admitted.
    pub fn failed(&self) -> usize {
        self.failed_ids.len()
    }

    /// Render the fault timeline as markdown rows (header only when no
    /// faults fired).
    pub fn render_fault_timeline(&self) -> Vec<String> {
        let mut rows = vec![
            "| t (s) | fault | lost (run/queue) | re-admitted | failed | recovery (ms) |"
                .to_string(),
            "|---|---|---|---|---|---|".to_string(),
        ];
        for f in &self.faults {
            let what = match &f.kind {
                FaultKind::ReplicaCrash { replica } => format!("crash replica {replica}"),
                FaultKind::LinkDegrade { replica, .. } => {
                    format!("link degrade replica {replica}")
                }
                FaultKind::IslandPartition {
                    island, replicas, ..
                } => format!("partition island {island} ({} replicas)", replicas.len()),
            };
            rows.push(format!(
                "| {:.2} | {} | {}/{} | {} | {} | {} |",
                f.at_ms / 1e3,
                what,
                f.lost_running,
                f.lost_queued,
                f.readmitted,
                f.failed,
                f.recovery_ms()
                    .map_or_else(|| "-".to_string(), |ms| format!("{ms:.0}")),
            ));
        }
        rows
    }

    /// One-line drain status for reports: which replicas were still busy
    /// when the drain cap hit, not just that something was.
    pub fn drain_status(&self) -> String {
        if !self.drain_incomplete {
            return "drained".to_string();
        }
        let stuck: Vec<String> = self
            .drain_incomplete_replicas
            .iter()
            .map(|i| i.to_string())
            .collect();
        format!(
            "drain incomplete: replicas [{}] still held work at the cap",
            stuck.join(", ")
        )
    }
}

/// A factory for scale-out replicas.
pub type ReplicaFactory = Box<dyn Fn() -> Box<dyn ExecutionBackend>>;

/// One replica slot inside the controller.
struct Slot {
    driver: ReplicaDriver<Box<dyn ExecutionBackend>>,
    description: String,
    spawned_ms: f64,
    ready_ms: f64,
    /// Still inside its warm-up window. Event-driven: set at commission time
    /// and cleared by the slot's [`FleetEvent::WarmupComplete`] event, which
    /// sorts before any control tick or arrival sharing its timestamp — so
    /// at every evaluation point the flag equals the legacy
    /// `ready_ms <= now` test.
    warming: bool,
    draining: bool,
    retired_ms: Option<f64>,
    /// Killed by an injected [`FaultKind::ReplicaCrash`]: retired instantly
    /// with its in-flight work ripped out, never to return.
    crashed: bool,
    /// Count of active link degradations (a degrade and an island partition
    /// can overlap): the dispatcher routes nothing here while it is > 0.
    degraded: u32,
    assigned_ids: Vec<u64>,
    /// Cumulative assigned tokens — the frozen dispatch counter, kept so the
    /// pre-redesign policy stays reachable online too.
    assigned_tokens: usize,
}

impl Slot {
    fn new(
        backend: Box<dyn ExecutionBackend>,
        scfg: SchedulerConfig,
        spawned_ms: f64,
        ready_ms: f64,
        warming: bool,
    ) -> Self {
        let description = backend.describe();
        Self {
            driver: ReplicaDriver::new(backend, scfg),
            description,
            spawned_ms,
            ready_ms,
            warming,
            draining: false,
            retired_ms: None,
            crashed: false,
            degraded: 0,
            assigned_ids: Vec::new(),
            assigned_tokens: 0,
        }
    }

    /// Commissioned: part of the fleet (possibly warming), not on its way
    /// out.
    fn commissioned(&self) -> bool {
        !self.draining && self.retired_ms.is_none()
    }

    /// Routable: commissioned, past its warm-up, and its link is healthy.
    fn routable(&self) -> bool {
        self.commissioned() && !self.warming && self.degraded == 0
    }
}

/// Pricing of one prefill→decode KV-cache handoff path as the serving crate
/// sees it: a point-to-point link with a fixed latency and a sustained
/// bandwidth. `samoyeds-dist` builds these from a `ClusterTopology` (NVLink
/// within an island, the InfiniBand spine across), keeping the crate
/// dependency direction intact — `serve` only ever needs the two numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KvLink {
    /// One-way link latency in microseconds.
    pub latency_us: f64,
    /// Sustained unidirectional bandwidth in GB/s (bytes, not bits).
    pub bandwidth_gbps: f64,
}

impl KvLink {
    /// Milliseconds to move `bytes` across the link: the latency floor plus
    /// the serialization time at the sustained bandwidth, zero when there is
    /// nothing to move. Mirrors `LinkSpec::point_to_point_ms` in
    /// `samoyeds-dist` formula-for-formula (pinned by a test there), so a
    /// KV handoff is priced exactly like any other point-to-point transfer
    /// on the same fabric.
    pub fn transfer_ms(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        self.latency_us * 1e-3 + bytes / (self.bandwidth_gbps * 1e9) * 1e3
    }
}

/// Opt-in prefill/decode disaggregation for [`FleetController`], installed
/// with [`FleetController::with_disaggregation`].
///
/// The initial fleet is partitioned into *prefill pods* and *decode pods*.
/// Arrivals route to prefill pods only and run chunked prefill there (plus
/// the first output token, which the final prefill forward produces); the
/// finished prompt KV — sized by [`MemoryModel::kv_bytes`] — is then handed
/// off over the [`KvLink`] matrix to the decode pod with the most free KV
/// budget, where the remaining tokens decode. The handoff lands as a
/// [`FleetEvent::KvTransferComplete`] event, ordered into the same-instant
/// event hierarchy after fault recoveries and before control ticks.
///
/// An empty decode set disables disaggregation entirely: the controller
/// takes the ordinary co-located code path bit-for-bit (pinned by the
/// `disagg_equivalence` suite), which is the ratio-0 endpoint of a
/// prefill:decode ratio sweep.
#[derive(Debug, Clone)]
pub struct DisaggregationConfig {
    /// Indices (into the initial fleet) of the prefill pods.
    pub prefill: Vec<usize>,
    /// Indices (into the initial fleet) of the decode pods. Empty disables
    /// disaggregation.
    pub decode: Vec<usize>,
    /// KV-cache sizing for the transferred prefix. Model-dependent only —
    /// any device's [`MemoryModel`] for the served model gives the same
    /// per-token KV bytes.
    pub memory: MemoryModel,
    /// `links[p][d]` prices the handoff from `prefill[p]` to `decode[d]`.
    pub links: Vec<Vec<KvLink>>,
}

impl DisaggregationConfig {
    /// A config where every prefill→decode pair rides the same `link`.
    pub fn uniform(
        prefill: Vec<usize>,
        decode: Vec<usize>,
        memory: MemoryModel,
        link: KvLink,
    ) -> Self {
        let links = vec![vec![link; decode.len()]; prefill.len()];
        Self {
            prefill,
            decode,
            memory,
            links,
        }
    }
}

/// One KV-cache handoff in flight between a prefill and a decode pod. The
/// [`FleetEvent::KvTransferComplete`] event carries an index into the run's
/// table of these.
struct PendingTransfer {
    id: u64,
    from: usize,
    to: usize,
    bytes: f64,
}

/// Runtime state of a disaggregated run: pod roles, per-prefill-pod
/// completion watermarks, the original request behind every split id, the
/// pending-transfer table, and the per-slot step-chain liveness flags that
/// replace the co-located loop's bulk `advance_to` calls (chains discover
/// prefill completions at their exact step boundaries, so transfers start
/// at the moment the prefix finishes rather than at the next arrival).
struct Disagg {
    cfg: DisaggregationConfig,
    /// Slot index → its row in the link matrix (`None` off the prefill set;
    /// slots commissioned mid-run have no role and receive no traffic).
    prefill_pos: Vec<Option<usize>>,
    /// Per-slot watermark into `driver.completed()` — everything below it
    /// has already been handed off.
    watermark: Vec<usize>,
    /// Original (untrimmed) request behind every split id. Entries persist
    /// to the end of the run: the metrics ledger stitches halves back
    /// together from them.
    originals: BTreeMap<u64, Request>,
    transfers: Vec<PendingTransfer>,
    in_flight: usize,
    /// Whether a `StepCompletion` chain is live for each slot — at most one
    /// pending step event per slot, re-armed on enqueue.
    chain_armed: Vec<bool>,
}

impl Disagg {
    fn new(cfg: DisaggregationConfig, slots: usize) -> Self {
        let mut prefill_pos = vec![None; slots];
        for (row, &slot) in cfg.prefill.iter().enumerate() {
            prefill_pos[slot] = Some(row);
        }
        Self {
            cfg,
            prefill_pos,
            watermark: vec![0; slots],
            originals: BTreeMap::new(),
            transfers: Vec::new(),
            in_flight: 0,
            chain_armed: vec![false; slots],
        }
    }

    /// Ensure a step chain is live for `slot`, scheduling its next step no
    /// earlier than `at` (the current event time — a chain must never pop in
    /// the past).
    fn arm_chain(&mut self, queue: &mut EventQueue, slots: &[Slot], slot: usize, at: f64) {
        if self.chain_armed.len() <= slot {
            self.chain_armed.resize(slot + 1, false);
        }
        if !self.chain_armed[slot] {
            self.chain_armed[slot] = true;
            queue.push(
                at.max(slots[slot].driver.clock_ms()),
                FleetEvent::StepCompletion { slot },
            );
        }
    }

    /// The slot's chain found no more work and lapsed; the next enqueue
    /// re-arms it.
    fn chain_died(&mut self, slot: usize) {
        if let Some(armed) = self.chain_armed.get_mut(slot) {
            *armed = false;
        }
    }

    /// The decode pod with the most free KV budget that could ever admit
    /// `remainder`, ties broken toward the lower slot index. The target is
    /// committed at transfer *start*: the link to it prices the transfer.
    fn pick_decode_pod(&self, slots: &[Slot], remainder: &Request) -> Option<usize> {
        self.cfg
            .decode
            .iter()
            .copied()
            .filter(|&i| {
                i < slots.len() && slots[i].routable() && slots[i].driver.can_ever_admit(remainder)
            })
            .max_by(|&a, &b| {
                slots[a]
                    .driver
                    .kv_headroom_bytes()
                    .total_cmp(&slots[b].driver.kv_headroom_bytes())
                    // Equal headroom: prefer the lower slot index (max_by
                    // keeps the *last* maximum, so order the later index
                    // lower).
                    .then(b.cmp(&a))
            })
    }

    /// Scan `slot`'s newly finished prefill halves and start their KV
    /// transfers. `now` is the current event time: a completion surfaced by
    /// a bulk `advance_to` (fault and control-tick paths) may predate it, so
    /// the landing is clamped to `now` — the event queue stays causal and
    /// decode-pod enqueue order stays nondecreasing.
    fn collect_handoffs(
        &mut self,
        slot: usize,
        slots: &[Slot],
        queue: &mut EventQueue,
        sink: Option<&SharedSink>,
        failed_ids: &mut Vec<u64>,
        now: f64,
    ) {
        let Some(row) = self.prefill_pos.get(slot).copied().flatten() else {
            return;
        };
        let done = slots[slot].driver.completed();
        for finished in done.iter().skip(self.watermark[slot]) {
            let finished_ms = finished.finished_ms;
            let id = finished.request.id;
            // Untrimmed single-token requests finish entirely on the
            // prefill pod and never transfer.
            let Some(original) = self.originals.get(&id).copied() else {
                continue;
            };
            let bytes = self.cfg.memory.kv_bytes(original.prompt_len);
            let remainder = Request {
                id,
                arrival_ms: finished_ms,
                prompt_len: original.prompt_len,
                output_len: original.output_len - 1,
            };
            match self.pick_decode_pod(slots, &remainder) {
                Some(to) => {
                    let col = self
                        .cfg
                        .decode
                        .iter()
                        .position(|&s| s == to)
                        .expect("pick_decode_pod returns configured pods");
                    let link = self.cfg.links[row][col];
                    if let Some(sink) = sink {
                        sink.emit(TraceEvent::KvTransferStarted {
                            id,
                            from: slot,
                            to,
                            bytes,
                            at_ms: finished_ms,
                        });
                    }
                    let transfer = self.transfers.len();
                    self.transfers.push(PendingTransfer {
                        id,
                        from: slot,
                        to,
                        bytes,
                    });
                    self.in_flight += 1;
                    queue.push(
                        (finished_ms + link.transfer_ms(bytes)).max(now),
                        FleetEvent::KvTransferComplete { transfer },
                    );
                }
                // No decode pod can ever take the remainder: the request
                // dies here, not silently in a queue.
                None => failed_ids.push(id),
            }
        }
        self.watermark[slot] = done.len();
    }
}

/// The online fleet control plane. See the [module docs](self) for the
/// design; typical use is builder-style:
///
/// ```
/// use samoyeds_gpu_sim::DeviceSpec;
/// use samoyeds_moe::config::MoeModelConfig;
/// use samoyeds_moe::engines::EngineKind;
/// use samoyeds_serve::{
///     FleetConfig, FleetController, SchedulerConfig, SingleGpuBackend, SloAutoscaler,
///     TraceConfig,
/// };
///
/// let scfg = SchedulerConfig::default();
/// let model = MoeModelConfig::qwen2_moe();
/// let single = move || {
///     Box::new(SingleGpuBackend::new(
///         DeviceSpec::a100_40g(),
///         &model,
///         EngineKind::Samoyeds,
///         &scfg,
///     )) as Box<dyn samoyeds_serve::ExecutionBackend>
/// };
/// let fleet = FleetController::new(FleetConfig::default())
///     .with_replica(single())
///     .with_factory(single)
///     .with_autoscaler(SloAutoscaler::new(2_000.0));
/// let trace = TraceConfig { num_requests: 8, ..TraceConfig::default() }.generate();
/// let metrics = fleet.run(&trace);
/// assert_eq!(metrics.completed + metrics.rejected, 8);
/// ```
pub struct FleetController {
    config: FleetConfig,
    initial: Vec<Box<dyn ExecutionBackend>>,
    factory: Option<ReplicaFactory>,
    autoscaler: Box<dyn AutoscalePolicy>,
    sink: Option<SharedSink>,
    faults: FaultSchedule,
    recovery: RecoveryPolicy,
    disagg: Option<DisaggregationConfig>,
}

impl FleetController {
    /// A controller with no replicas yet, a fixed (non-scaling) policy and
    /// no factory. Add replicas with [`Self::with_replica`].
    pub fn new(config: FleetConfig) -> Self {
        Self {
            config,
            initial: Vec::new(),
            factory: None,
            autoscaler: Box::new(NoAutoscale),
            sink: None,
            faults: FaultSchedule::none(),
            recovery: RecoveryPolicy::default(),
            disagg: None,
        }
    }

    /// Install a telemetry sink: the run emits the full request lifecycle
    /// (arrival → routing → admission → step spans → first token →
    /// completion), replica lifecycle (commission, warm-up, drain, retire)
    /// and control-tick observations there. Without one, nothing is emitted
    /// and every metric is bit-identical (pinned by the
    /// `telemetry_equivalence` suite).
    pub fn with_sink(mut self, sink: SharedSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Add one replica to the initial fleet (ready at time zero).
    pub fn with_replica(mut self, backend: Box<dyn ExecutionBackend>) -> Self {
        self.initial.push(backend);
        self
    }

    /// Install the factory scale-out commissions new replicas from. Without
    /// a factory the fleet can only scale in.
    pub fn with_factory(
        mut self,
        factory: impl Fn() -> Box<dyn ExecutionBackend> + 'static,
    ) -> Self {
        self.factory = Some(Box::new(factory));
        self
    }

    /// Install the autoscale policy (default: [`NoAutoscale`]).
    pub fn with_autoscaler(mut self, policy: impl AutoscalePolicy + 'static) -> Self {
        self.autoscaler = Box::new(policy);
        self
    }

    /// Install a fault schedule and the recovery policy that reacts to it.
    /// The schedule is resolved once at run start and injected through the
    /// event queue, so the run stays fully deterministic; an empty schedule
    /// leaves the controller bit-for-bit identical to one without fault
    /// injection (pinned by the `fault_equivalence` suite).
    pub fn with_faults(mut self, schedule: FaultSchedule, recovery: RecoveryPolicy) -> Self {
        self.faults = schedule;
        self.recovery = recovery;
        self
    }

    /// Split the fleet into prefill and decode pods (see
    /// [`DisaggregationConfig`]). A config with an empty decode set is
    /// inert: the run is bit-for-bit the co-located run (pinned by the
    /// `disagg_equivalence` suite).
    pub fn with_disaggregation(mut self, config: DisaggregationConfig) -> Self {
        self.disagg = Some(config);
        self
    }

    /// Statically validate this controller's configuration against the
    /// trace it is about to serve, surfacing *every* problem at once.
    ///
    /// Pure analysis: nothing is simulated, no state is touched, and a
    /// configuration that validates cleanly runs bit-for-bit identically to
    /// one that was never validated. [`Self::run`] calls this first and
    /// panics (via [`ValidationReport::assert_valid`]) on any deny-severity
    /// finding; call it yourself to also render the warnings, which `run`
    /// deliberately does not print.
    ///
    /// Deny codes: `fleet::empty`, `fleet::zero-floor`,
    /// `fleet::ceiling-below-floor`, `fleet::nonpositive-tick`,
    /// `fleet::nonpositive-window`, `fleet::negative-warmup`,
    /// `fleet::zero-drain-cap`, `fleet::unsorted-trace`,
    /// `fault::negative-time`, `fault::replica-out-of-range`,
    /// `fault::negative-duration`, `disagg::empty-role`,
    /// `disagg::role-out-of-range`, `disagg::overlapping-roles`,
    /// `disagg::link-shape`, `disagg::bad-link`,
    /// `disagg::decode-cannot-hold-model`, `slo::nonpositive`,
    /// `slo::unachievable-ttft`. Warning codes:
    /// `fleet::no-capable-replica`, `fault::replica-never-commissioned`,
    /// `fault::empty-partition`, `fault::past-trace-end`,
    /// `disagg::no-decode-pods`, `disagg::unassigned-replica`.
    pub fn validate(&self, trace: &[Request]) -> ValidationReport {
        let mut report = ValidationReport::new();
        let cfg = &self.config;
        let ctx = "FleetConfig";
        if self.initial.is_empty() {
            report.push(Diagnostic::deny(
                "fleet::empty",
                "FleetController",
                "the initial fleet has no replicas",
                "add at least one replica with with_replica(...)",
            ));
        }
        if cfg.min_replicas == 0 {
            report.push(Diagnostic::deny(
                "fleet::zero-floor",
                ctx,
                "min_replicas is 0 — the fleet floor must hold at least one replica",
                "set min_replicas >= 1",
            ));
        }
        if cfg.max_replicas < cfg.min_replicas {
            report.push(Diagnostic::deny(
                "fleet::ceiling-below-floor",
                ctx,
                format!(
                    "max_replicas ({}) is below min_replicas ({}) — the scaling band is empty",
                    cfg.max_replicas, cfg.min_replicas
                ),
                "raise max_replicas or lower min_replicas",
            ));
        }
        if cfg.tick_ms <= 0.0 || cfg.tick_ms.is_nan() {
            report.push(Diagnostic::deny(
                "fleet::nonpositive-tick",
                ctx,
                format!(
                    "tick_ms is {} — the control-tick period must be positive",
                    cfg.tick_ms
                ),
                "set tick_ms > 0",
            ));
        }
        if cfg.window_ms <= 0.0 || cfg.window_ms.is_nan() {
            report.push(Diagnostic::deny(
                "fleet::nonpositive-window",
                ctx,
                format!(
                    "window_ms is {} — the observation window must be positive",
                    cfg.window_ms
                ),
                "set window_ms > 0",
            ));
        }
        if cfg.warmup_ms < 0.0 || cfg.warmup_ms.is_nan() {
            report.push(Diagnostic::deny(
                "fleet::negative-warmup",
                ctx,
                format!(
                    "warmup_ms is {} — warm-up cannot be negative",
                    cfg.warmup_ms
                ),
                "set warmup_ms >= 0",
            ));
        }
        if cfg.max_drain_ticks == 0 {
            report.push(Diagnostic::deny(
                "fleet::zero-drain-cap",
                ctx,
                "max_drain_ticks is 0 — the post-trace drain could never run a single tick",
                "set max_drain_ticks >= 1",
            ));
        }
        if let Some(i) = trace.windows(2).position(|w| {
            w[0].arrival_ms
                .partial_cmp(&w[1].arrival_ms)
                .is_none_or(std::cmp::Ordering::is_gt)
        }) {
            report.push(Diagnostic::deny(
                "fleet::unsorted-trace",
                format!("trace[{}..={}]", i, i + 1),
                format!(
                    "arrival {} ms is followed by {} ms — the trace is not sorted by arrival time",
                    trace[i].arrival_ms,
                    trace[i + 1].arrival_ms
                ),
                "sort the trace by arrival_ms before serving it",
            ));
        }
        let capable =
            |b: &dyn ExecutionBackend| b.supports(b.model()) && b.memory().can_hold_model();
        if !self.initial.is_empty() && !self.initial.iter().any(|b| capable(b.as_ref())) {
            report.push(Diagnostic::warning(
                "fleet::no-capable-replica",
                "FleetController",
                "no initial replica both supports its model and fits its weights — every \
                 request is unroutable until a scale-out commissions a capable replica",
                "check the engine/model pairing and memory budgets of the initial fleet",
            ));
        }

        // Fault schedule: resolve() is pure and deterministic, so the list
        // inspected here is exactly the list run() will inject.
        let trace_end_ms = trace.last().map(|r| r.arrival_ms);
        let replica_in_range =
            |replica: usize, fault_ctx: &str, report: &mut ValidationReport| {
                if replica >= cfg.max_replicas
                    || (replica >= self.initial.len() && self.factory.is_none())
                {
                    report.push(Diagnostic::deny(
                        "fault::replica-out-of-range",
                        fault_ctx.to_string(),
                        format!(
                        "replica {replica} can never exist: the initial fleet has {} replicas, \
                         max_replicas is {} and a scale-out factory is {}",
                        self.initial.len(),
                        cfg.max_replicas,
                        if self.factory.is_some() { "installed" } else { "not installed" }
                    ),
                        "target a replica slot the fleet can actually commission",
                    ));
                } else if replica >= self.initial.len() {
                    report.push(Diagnostic::warning(
                        "fault::replica-never-commissioned",
                        fault_ctx.to_string(),
                        format!(
                            "replica {replica} is beyond the initial fleet of {} — the fault is a \
                         no-op unless autoscaling has commissioned that slot by then",
                            self.initial.len()
                        ),
                        "confirm the autoscaler can plausibly reach that fleet size first",
                    ));
                }
            };
        for (i, spec) in self.faults.resolve(self.initial.len()).iter().enumerate() {
            let fault_ctx = format!("fault[{i}] {} at {} ms", spec.kind.label(), spec.at_ms);
            if spec.at_ms < 0.0 || spec.at_ms.is_nan() {
                report.push(Diagnostic::deny(
                    "fault::negative-time",
                    fault_ctx.clone(),
                    format!(
                        "injection time {} ms is before the start of the run",
                        spec.at_ms
                    ),
                    "schedule faults at t >= 0",
                ));
            }
            match &spec.kind {
                FaultKind::ReplicaCrash { replica } => {
                    replica_in_range(*replica, &fault_ctx, &mut report);
                }
                FaultKind::LinkDegrade {
                    replica,
                    duration_ms,
                } => {
                    replica_in_range(*replica, &fault_ctx, &mut report);
                    if *duration_ms < 0.0 || duration_ms.is_nan() {
                        report.push(Diagnostic::deny(
                            "fault::negative-duration",
                            fault_ctx.clone(),
                            format!(
                                "degradation lasts {duration_ms} ms — durations cannot be negative"
                            ),
                            "use a duration >= 0 (zero is a deterministic no-op)",
                        ));
                    }
                }
                FaultKind::IslandPartition {
                    replicas,
                    duration_ms,
                    ..
                } => {
                    for &replica in replicas {
                        replica_in_range(replica, &fault_ctx, &mut report);
                    }
                    if replicas.is_empty() {
                        report.push(Diagnostic::warning(
                            "fault::empty-partition",
                            fault_ctx.clone(),
                            "the partition lists no replicas — it can never affect the fleet"
                                .to_string(),
                            "list the replica slots on the partitioned island",
                        ));
                    }
                    if *duration_ms < 0.0 || duration_ms.is_nan() {
                        report.push(Diagnostic::deny(
                            "fault::negative-duration",
                            fault_ctx.clone(),
                            format!(
                                "partition lasts {duration_ms} ms — durations cannot be negative"
                            ),
                            "use a duration >= 0 (zero is a deterministic no-op)",
                        ));
                    }
                }
            }
            if trace_end_ms.is_none_or(|end| spec.at_ms > end) {
                report.push(Diagnostic::warning(
                    "fault::past-trace-end",
                    fault_ctx,
                    format!(
                        "the fault fires after the last arrival ({} ms) — it can only affect \
                         the post-trace drain",
                        trace_end_ms.unwrap_or(0.0)
                    ),
                    "move the fault before the end of the trace if it should hit live traffic",
                ));
            }
        }

        // Disaggregation: roles must name real replicas and not overlap,
        // the link matrix must cover every prefill×decode pair, and every
        // decode pod must be able to hold the model it decodes for —
        // otherwise every handoff to it would fail at admission.
        if let Some(d) = &self.disagg {
            let dctx = "DisaggregationConfig";
            if d.decode.is_empty() {
                report.push(Diagnostic::warning(
                    "disagg::no-decode-pods",
                    dctx,
                    "the decode set is empty — the fleet runs co-located and no KV transfer \
                     is ever priced",
                    "list at least one decode pod, or drop with_disaggregation entirely",
                ));
            } else {
                if d.prefill.is_empty() {
                    report.push(Diagnostic::deny(
                        "disagg::empty-role",
                        dctx,
                        "decode pods are configured but the prefill set is empty — no request \
                         could ever be admitted",
                        "list at least one prefill pod",
                    ));
                }
                for &slot in d.prefill.iter().chain(&d.decode) {
                    if slot >= self.initial.len() {
                        report.push(Diagnostic::deny(
                            "disagg::role-out-of-range",
                            dctx,
                            format!(
                                "replica {slot} has a pod role but the initial fleet has only \
                                 {} replicas — roles bind to initial replicas",
                                self.initial.len()
                            ),
                            "assign roles to initial replica indices only",
                        ));
                    }
                }
                for &slot in &d.decode {
                    if d.prefill.contains(&slot) {
                        report.push(Diagnostic::deny(
                            "disagg::overlapping-roles",
                            dctx,
                            format!(
                                "replica {slot} is listed as both a prefill and a decode pod — \
                                 roles must partition the fleet"
                            ),
                            "give each replica exactly one role",
                        ));
                    }
                }
                if d.links.len() != d.prefill.len()
                    || d.links.iter().any(|row| row.len() != d.decode.len())
                {
                    report.push(Diagnostic::deny(
                        "disagg::link-shape",
                        dctx,
                        format!(
                            "the link matrix is {}×{} but {} prefill × {} decode pods are \
                             configured",
                            d.links.len(),
                            d.links.first().map_or(0, Vec::len),
                            d.prefill.len(),
                            d.decode.len()
                        ),
                        "provide one KvLink per prefill×decode pair \
                         (DisaggregationConfig::uniform builds a uniform matrix)",
                    ));
                } else if d.links.iter().flatten().any(|l| {
                    !l.latency_us.is_finite()
                        || l.latency_us < 0.0
                        || l.bandwidth_gbps.is_nan()
                        || l.bandwidth_gbps <= 0.0
                }) {
                    report.push(Diagnostic::deny(
                        "disagg::bad-link",
                        dctx,
                        "a KV link has a negative or non-finite latency, or a non-positive \
                         bandwidth",
                        "use finite latency_us >= 0 and bandwidth_gbps > 0",
                    ));
                }
                for &slot in &d.decode {
                    if slot < self.initial.len() && !capable(self.initial[slot].as_ref()) {
                        report.push(Diagnostic::deny(
                            "disagg::decode-cannot-hold-model",
                            dctx,
                            format!(
                                "decode pod {slot} ({}) cannot hold the model it would decode \
                                 for — every handoff to it would fail",
                                self.initial[slot].describe()
                            ),
                            "give decode pods an engine/device pairing that fits the weights",
                        ));
                    }
                }
                for slot in 0..self.initial.len() {
                    if !d.prefill.contains(&slot) && !d.decode.contains(&slot) {
                        report.push(Diagnostic::warning(
                            "disagg::unassigned-replica",
                            dctx,
                            format!(
                                "initial replica {slot} has no pod role — it is commissioned \
                                 but never receives traffic"
                            ),
                            "assign it a role or remove it from the fleet",
                        ));
                    }
                }
            }
        }

        // SLO sanity: a p95-TTFT target below the *best single step* any
        // capable replica can execute is unachievable at any fleet size —
        // adding replicas never makes one step faster.
        if let Some(slo) = self.autoscaler.ttft_slo_ms() {
            let slo_ctx = self.autoscaler.name();
            if slo <= 0.0 || slo.is_nan() {
                report.push(Diagnostic::deny(
                    "slo::nonpositive",
                    slo_ctx,
                    format!("the TTFT SLO is {slo} ms — targets must be positive"),
                    "set a positive SLO",
                ));
            } else {
                // The physical floor: one request, one-token prompt, alone
                // on the fastest capable replica.
                let batch = StepBatch {
                    prefill: vec![(0, 1)],
                    decode: Vec::new(),
                };
                let running = [RunningRequest::new(
                    Request {
                        id: u64::MAX,
                        arrival_ms: 0.0,
                        prompt_len: 1,
                        output_len: 1,
                    },
                    0.0,
                )];
                let workload = StepWorkload {
                    batch: &batch,
                    running: &running,
                    step_index: 0,
                };
                let floor = self
                    .initial
                    .iter()
                    .filter(|b| capable(b.as_ref()))
                    .map(|b| b.step_cost(&workload).total_ms())
                    .min_by(f64::total_cmp);
                if let Some(floor) = floor {
                    if slo < floor {
                        report.push(Diagnostic::deny(
                            "slo::unachievable-ttft",
                            slo_ctx,
                            format!(
                                "the TTFT SLO of {slo} ms is below {floor:.3} ms, the fastest \
                                 single step any capable replica can execute — no fleet size \
                                 can meet it and the autoscaler would scale out forever",
                            ),
                            "raise the SLO above the minimum step cost or use faster replicas",
                        ));
                    }
                }
            }
        }
        report
    }

    /// Serve `trace` (sorted by arrival) to completion and return the fleet
    /// metrics, including per-replica breakdowns and the scaling timeline.
    ///
    /// This is a next-event loop over an [`EventQueue`]: arrivals, step
    /// completions, control ticks, warm-up completions and drain
    /// retirements pop in timestamp order (same-time ties broken by event
    /// class, reproducing the legacy tick loop's interleaving) and simulated
    /// time jumps straight between them. The tick schedule exists only while
    /// the policy wants it ([`AutoscalePolicy::consults_ticks`]); tick `k`
    /// fires at exactly `k * tick_ms` — derived per tick, never accumulated,
    /// so the schedule cannot drift over long traces. If the post-trace
    /// drain exceeds [`FleetConfig::max_drain_ticks`], the run returns
    /// degraded metrics with [`FleetMetrics::drain_incomplete`] set instead
    /// of panicking.
    ///
    /// # Panics
    /// Panics if [`Self::validate`] finds any deny-severity diagnostic —
    /// empty fleet, degenerate control-plane knobs, an unsorted trace, a
    /// fault targeting a replica that can never exist, or an unachievable
    /// SLO. Unlike an assert chain, the panic message lists *every* problem
    /// at once.
    pub fn run(mut self, trace: &[Request]) -> FleetMetrics {
        self.validate(trace).assert_valid();

        let scfg = self.config.scheduler;
        let mut slots: Vec<Slot> = self
            .initial
            .drain(..)
            .map(|backend| Slot::new(backend, scfg, 0.0, 0.0, false))
            .collect();
        if let Some(sink) = &self.sink {
            for (i, slot) in slots.iter_mut().enumerate() {
                slot.driver.attach_sink(sink.clone(), i);
                sink.emit(TraceEvent::ReplicaCommissioned {
                    replica: i,
                    at_ms: 0.0,
                    ready_ms: 0.0,
                });
            }
        }
        // Disaggregation is active only when decode pods exist; a ratio-0
        // config (empty decode set) takes the co-located code path below
        // bit-for-bit (pinned by the `disagg_equivalence` suite).
        let mut disagg: Option<Disagg> = self
            .disagg
            .take()
            .filter(|d| !d.decode.is_empty())
            .map(|cfg| Disagg::new(cfg, slots.len()));
        let mut events: Vec<ScaleEvent> = Vec::new();
        let mut unroutable: Vec<u64> = Vec::new();
        let mut failed_ids: Vec<u64> = Vec::new();
        let mut peak_replicas = slots.len();
        let mut rr_cursor = 0usize;
        let mut next_arrival = 0usize;
        let mut drain_ticks = 0usize;
        let mut drain_incomplete = false;
        let mut drain_incomplete_replicas: Vec<usize> = Vec::new();

        let ticks = self.autoscaler.consults_ticks();
        let mut queue = EventQueue::new();
        if let Some(first) = trace.first() {
            queue.push(first.arrival_ms, FleetEvent::Arrival { index: 0 });
        }
        if ticks {
            queue.push(self.config.tick_ms, FleetEvent::ControlTick { index: 1 });
        }

        // Resolve the fault schedule once (deterministic) and inject every
        // fault as an ordinary event. An empty schedule pushes nothing: the
        // event stream — and therefore the whole run — is exactly the
        // no-fault-injection stream.
        let fault_specs: Vec<FaultSpec> = self.faults.resolve(slots.len());
        let mut fault_records: Vec<FaultRecord> = fault_specs
            .iter()
            .map(|spec| FaultRecord {
                at_ms: spec.at_ms,
                kind: spec.kind.clone(),
                lost_queued: 0,
                lost_running: 0,
                readmitted: 0,
                failed: 0,
                replacement: None,
                recovered_at_ms: None,
            })
            .collect();
        // Per-fault re-admission buffer (crashes) and the slots a fault
        // actually degraded (degrades/partitions), so its recovery restores
        // exactly what it broke — overlapping degradations are counted, not
        // clobbered.
        let mut readmit_buffers: Vec<Vec<Request>> = vec![Vec::new(); fault_specs.len()];
        let mut degraded_sets: Vec<Vec<usize>> = vec![Vec::new(); fault_specs.len()];
        // Crash recoveries still in flight: the tick schedule must outlive
        // them, or buffered requests re-admitted after the fleet drained
        // would never be driven (and would vanish from the conservation
        // ledger). Zero on the no-faults path, where the condition is inert.
        let mut pending_readmissions = 0usize;
        for (index, spec) in fault_specs.iter().enumerate() {
            queue.push(spec.at_ms, FleetEvent::Fault { index });
        }

        let mut eligible: Vec<usize> = Vec::new();
        while let Some((at, event)) = queue.pop() {
            match event {
                FleetEvent::WarmupComplete { slot } => {
                    // Sorts before any tick or arrival at the same instant:
                    // the replica is routable the moment warm-up lands. Late
                    // events for already-retired slots are harmless flips.
                    if slots[slot].warming {
                        if let Some(sink) = &self.sink {
                            sink.emit(TraceEvent::WarmupComplete {
                                replica: slot,
                                at_ms: at,
                            });
                        }
                    }
                    slots[slot].warming = false;
                }
                FleetEvent::DrainRetire { slot } => {
                    if slots[slot].retired_ms.is_none() {
                        slots[slot].retired_ms = Some(at);
                        if let Some(sink) = &self.sink {
                            sink.emit(TraceEvent::Retired {
                                replica: slot,
                                at_ms: at,
                            });
                        }
                    }
                }
                FleetEvent::Fault { index } => {
                    let kind = fault_specs[index].kind.clone();
                    match kind {
                        FaultKind::ReplicaCrash { replica } => {
                            if replica >= slots.len() || slots[replica].retired_ms.is_some() {
                                // Crashing a replica that never existed or
                                // already left the fleet is a no-op.
                                continue;
                            }
                            // Work the replica finished before the crash
                            // survives; everything in flight is ripped out.
                            slots[replica].driver.advance_to(at);
                            if let Some(d) = disagg.as_mut() {
                                // Prefill halves that finished before the
                                // crash still hold their KV: hand them off
                                // before the in-flight rip-out below.
                                d.collect_handoffs(
                                    replica,
                                    &slots,
                                    &mut queue,
                                    self.sink.as_ref(),
                                    &mut failed_ids,
                                    at,
                                );
                            }
                            let (running, queued) = slots[replica].driver.take_inflight();
                            slots[replica].crashed = true;
                            slots[replica].retired_ms = Some(at);
                            let record = &mut fault_records[index];
                            record.lost_running = running.len();
                            record.lost_queued = queued.len();
                            if let Some(sink) = &self.sink {
                                sink.emit(TraceEvent::ReplicaCrashed {
                                    replica,
                                    at_ms: at,
                                    lost_running: running.len(),
                                    lost_queued: queued.len(),
                                });
                            }
                            let lost: Vec<Request> = running.into_iter().chain(queued).collect();
                            if self.recovery.readmit {
                                // Survivors take over once the weight
                                // transfer lands; the recovery event routes
                                // the buffered requests.
                                readmit_buffers[index] = lost;
                                pending_readmissions += 1;
                                if let Some(sink) = &self.sink {
                                    sink.emit(TraceEvent::RecoveryStarted {
                                        replica,
                                        at_ms: at,
                                        transfer_ms: self.recovery.transfer_ms,
                                    });
                                }
                                queue.push(
                                    at + self.recovery.transfer_ms,
                                    FleetEvent::FaultRecovery { index },
                                );
                            } else {
                                record.failed = lost.len();
                                failed_ids.extend(lost.iter().map(|r| r.id));
                            }
                            if self.recovery.replace {
                                if let Some(factory) = &self.factory {
                                    let commissioned =
                                        slots.iter().filter(|s| s.commissioned()).count();
                                    if commissioned < self.config.max_replicas {
                                        // Cold replacement through the normal
                                        // warm-up path, plus the weight
                                        // transfer on top.
                                        let ready =
                                            at + self.config.warmup_ms + self.recovery.transfer_ms;
                                        let mut slot = Slot::new(factory(), scfg, at, ready, true);
                                        if let Some(sink) = &self.sink {
                                            slot.driver.attach_sink(sink.clone(), slots.len());
                                            sink.emit(TraceEvent::ReplicaCommissioned {
                                                replica: slots.len(),
                                                at_ms: at,
                                                ready_ms: ready,
                                            });
                                        }
                                        slots.push(slot);
                                        queue.push(
                                            ready,
                                            FleetEvent::WarmupComplete {
                                                slot: slots.len() - 1,
                                            },
                                        );
                                        let record = &mut fault_records[index];
                                        record.replacement = Some(slots.len() - 1);
                                        record.recovered_at_ms = Some(ready);
                                        peak_replicas = peak_replicas
                                            .max(slots.iter().filter(|s| s.commissioned()).count());
                                    }
                                }
                            }
                        }
                        FaultKind::LinkDegrade {
                            replica,
                            duration_ms,
                        } => {
                            if replica < slots.len() && slots[replica].retired_ms.is_none() {
                                slots[replica].degraded += 1;
                                degraded_sets[index].push(replica);
                                if let Some(sink) = &self.sink {
                                    sink.emit(TraceEvent::LinkDegraded {
                                        replica,
                                        at_ms: at,
                                        until_ms: at + duration_ms,
                                    });
                                }
                                queue.push(at + duration_ms, FleetEvent::FaultRecovery { index });
                            }
                        }
                        FaultKind::IslandPartition {
                            island,
                            replicas,
                            duration_ms,
                        } => {
                            for &replica in &replicas {
                                if replica < slots.len() && slots[replica].retired_ms.is_none() {
                                    slots[replica].degraded += 1;
                                    degraded_sets[index].push(replica);
                                }
                            }
                            if !degraded_sets[index].is_empty() {
                                if let Some(sink) = &self.sink {
                                    sink.emit(TraceEvent::IslandPartitioned {
                                        island,
                                        replicas: degraded_sets[index].len(),
                                        at_ms: at,
                                        until_ms: at + duration_ms,
                                    });
                                }
                                queue.push(at + duration_ms, FleetEvent::FaultRecovery { index });
                            }
                        }
                    }
                }
                FleetEvent::FaultRecovery { index } => match &fault_specs[index].kind {
                    FaultKind::ReplicaCrash { replica } => {
                        let lost = std::mem::take(&mut readmit_buffers[index]);
                        pending_readmissions -= 1;
                        // Route the buffered requests exactly like fresh
                        // arrivals at the recovery instant: advance the
                        // fleet, filter eligibility, apply the dispatch
                        // policy. The latency clock restarts here — the
                        // request re-enters the fleet now (which also keeps
                        // enqueue order nondecreasing on the new replica).
                        for slot in slots.iter_mut() {
                            slot.driver.advance_to(at);
                        }
                        if let Some(d) = disagg.as_mut() {
                            // The bulk advance may have surfaced prefill
                            // completions; start their transfers (landings
                            // clamped to `at`).
                            for i in 0..slots.len() {
                                d.collect_handoffs(
                                    i,
                                    &slots,
                                    &mut queue,
                                    self.sink.as_ref(),
                                    &mut failed_ids,
                                    at,
                                );
                            }
                        }
                        let mut readmitted = 0usize;
                        let mut failed = 0usize;
                        for request in lost {
                            let moved = match disagg.as_ref() {
                                // Disaggregated survivors re-enter through a
                                // prefill pod. A split request restarts as
                                // its prefill half — the transferred KV died
                                // with the pod, so the prompt recomputes and
                                // hands off again when it finishes.
                                Some(d) if d.originals.contains_key(&request.id) => Request {
                                    arrival_ms: at,
                                    output_len: 1,
                                    ..request
                                },
                                _ => Request {
                                    arrival_ms: at,
                                    ..request
                                },
                            };
                            eligible.clear();
                            match disagg.as_ref() {
                                Some(d) => {
                                    eligible.extend(d.cfg.prefill.iter().copied().filter(|&i| {
                                        slots[i].routable()
                                            && slots[i].driver.can_ever_admit(&moved)
                                    }))
                                }
                                None => eligible.extend(
                                    slots
                                        .iter()
                                        .enumerate()
                                        .filter(|(_, slot)| {
                                            slot.routable() && slot.driver.can_ever_admit(&moved)
                                        })
                                        .map(|(i, _)| i),
                                ),
                            }
                            match pick_replica(
                                self.config.policy,
                                &eligible,
                                &slots,
                                &mut rr_cursor,
                            ) {
                                Some(target) => {
                                    if let Some(sink) = &self.sink {
                                        sink.emit(TraceEvent::Routed {
                                            id: moved.id,
                                            replica: target,
                                            at_ms: at,
                                        });
                                    }
                                    slots[target].driver.enqueue(moved);
                                    slots[target].assigned_ids.push(moved.id);
                                    slots[target].assigned_tokens += moved.total_tokens();
                                    if let Some(d) = disagg.as_mut() {
                                        d.arm_chain(&mut queue, &slots, target, at);
                                    }
                                    readmitted += 1;
                                }
                                None => {
                                    failed += 1;
                                    failed_ids.push(moved.id);
                                }
                            }
                        }
                        let record = &mut fault_records[index];
                        record.readmitted = readmitted;
                        record.failed += failed;
                        record.recovered_at_ms =
                            Some(record.recovered_at_ms.map_or(at, |r| r.max(at)));
                        if let Some(sink) = &self.sink {
                            sink.emit(TraceEvent::RecoveryComplete {
                                replica: *replica,
                                at_ms: at,
                                readmitted,
                                failed,
                            });
                        }
                        if !ticks && next_arrival >= trace.len() && disagg.is_none() {
                            // No tick schedule and no arrivals left to
                            // restart the step chains: re-arm them for every
                            // replica that now holds work. (A replica with an
                            // already-live chain just drains through two
                            // interleaved chains — step_once is state-driven,
                            // so the duplicate is harmless and deterministic.)
                            // Disaggregated runs skip this: their chains are
                            // armed at every enqueue and tracked per slot.
                            for (i, slot) in slots.iter().enumerate() {
                                if !slot.driver.is_drained() {
                                    queue.push(
                                        slot.driver.clock_ms(),
                                        FleetEvent::StepCompletion { slot: i },
                                    );
                                }
                            }
                        }
                    }
                    FaultKind::LinkDegrade { .. } | FaultKind::IslandPartition { .. } => {
                        // Restore exactly the links this fault degraded;
                        // overlapping degradations keep the slot un-routable
                        // until the last one clears.
                        for &replica in &degraded_sets[index] {
                            slots[replica].degraded = slots[replica].degraded.saturating_sub(1);
                            if let Some(sink) = &self.sink {
                                sink.emit(TraceEvent::LinkRestored { replica, at_ms: at });
                            }
                        }
                        if !degraded_sets[index].is_empty() {
                            fault_records[index].recovered_at_ms = Some(at);
                        }
                    }
                },
                FleetEvent::ControlTick { index } => {
                    // Derived, never accumulated: tick k is exactly
                    // k * tick_ms, so 10^6 ticks land where tick 10^6
                    // should, not where 10^6 rounded additions drifted to.
                    let t = index as f64 * self.config.tick_ms;
                    let trace_done = next_arrival >= trace.len();
                    if trace_done
                        && pending_readmissions == 0
                        && disagg.as_ref().is_none_or(|d| d.in_flight == 0)
                        && slots.iter().all(|s| s.driver.is_drained())
                    {
                        // The legacy drain loop stopped ticking here; drop
                        // the schedule and let remaining events drain.
                        continue;
                    }
                    control_tick(
                        t,
                        &self.config,
                        self.autoscaler.as_mut(),
                        self.factory.as_deref(),
                        &mut slots,
                        &mut events,
                        &mut peak_replicas,
                        &mut queue,
                        self.sink.as_ref(),
                    );
                    if let Some(d) = disagg.as_mut() {
                        // The tick's bulk advance may have surfaced prefill
                        // completions; start their transfers (landings
                        // clamped to `t`).
                        for i in 0..slots.len() {
                            d.collect_handoffs(
                                i,
                                &slots,
                                &mut queue,
                                self.sink.as_ref(),
                                &mut failed_ids,
                                t,
                            );
                        }
                    }
                    if trace_done {
                        drain_ticks += 1;
                        if drain_ticks >= self.config.max_drain_ticks
                            && slots.iter().any(|s| !s.driver.is_drained())
                        {
                            drain_incomplete = true;
                            drain_incomplete_replicas = slots
                                .iter()
                                .enumerate()
                                .filter(|(_, s)| !s.driver.is_drained())
                                .map(|(i, _)| i)
                                .collect();
                            continue; // stop the schedule; degraded metrics
                        }
                    }
                    queue.push(
                        (index + 1) as f64 * self.config.tick_ms,
                        FleetEvent::ControlTick { index: index + 1 },
                    );
                }
                FleetEvent::Arrival { index } => {
                    let request = &trace[index];
                    if let Some(sink) = &self.sink {
                        sink.emit(TraceEvent::Arrival {
                            id: request.id,
                            at_ms: request.arrival_ms,
                        });
                    }
                    if let Some(d) = disagg.as_mut() {
                        // Disaggregated routing: prefill pods only. The
                        // prefill half runs the prompt and produces the
                        // first output token (the final prefill forward);
                        // the rest of the generation decodes elsewhere after
                        // the KV handoff. Slots are not bulk-advanced here —
                        // their step chains drive them, which is what lets
                        // prefill completions surface at exact step
                        // boundaries instead of at the next arrival.
                        let sub = if request.output_len > 1 {
                            Request {
                                output_len: 1,
                                ..*request
                            }
                        } else {
                            *request
                        };
                        eligible.clear();
                        eligible.extend(d.cfg.prefill.iter().copied().filter(|&i| {
                            slots[i].routable() && slots[i].driver.can_ever_admit(&sub)
                        }));
                        let picked =
                            pick_replica(self.config.policy, &eligible, &slots, &mut rr_cursor);
                        match picked {
                            Some(target) => {
                                if let Some(sink) = &self.sink {
                                    sink.emit(TraceEvent::Routed {
                                        id: request.id,
                                        replica: target,
                                        at_ms: request.arrival_ms,
                                    });
                                }
                                if request.output_len > 1 {
                                    d.originals.insert(request.id, *request);
                                }
                                slots[target].driver.enqueue(sub);
                                slots[target].assigned_ids.push(request.id);
                                slots[target].assigned_tokens += request.total_tokens();
                                d.arm_chain(&mut queue, &slots, target, request.arrival_ms);
                            }
                            None => {
                                if let Some(sink) = &self.sink {
                                    sink.emit(TraceEvent::Unroutable {
                                        id: request.id,
                                        at_ms: request.arrival_ms,
                                    });
                                }
                                unroutable.push(request.id);
                            }
                        }
                    } else {
                        for slot in slots.iter_mut() {
                            slot.driver.advance_to(request.arrival_ms);
                        }

                        // Capability-aware routing from live state: ready,
                        // not draining, kernels support the model, and the
                        // memory budget could ever admit the request.
                        eligible.clear();
                        eligible.extend(
                            slots
                                .iter()
                                .enumerate()
                                .filter(|(_, slot)| {
                                    slot.routable() && slot.driver.can_ever_admit(request)
                                })
                                .map(|(i, _)| i),
                        );
                        let picked =
                            pick_replica(self.config.policy, &eligible, &slots, &mut rr_cursor);
                        match picked {
                            Some(target) => {
                                if let Some(sink) = &self.sink {
                                    sink.emit(TraceEvent::Routed {
                                        id: request.id,
                                        replica: target,
                                        at_ms: request.arrival_ms,
                                    });
                                }
                                slots[target].driver.enqueue(*request);
                                slots[target].assigned_ids.push(request.id);
                                slots[target].assigned_tokens += request.total_tokens();
                            }
                            None => {
                                if let Some(sink) = &self.sink {
                                    sink.emit(TraceEvent::Unroutable {
                                        id: request.id,
                                        at_ms: request.arrival_ms,
                                    });
                                }
                                unroutable.push(request.id);
                            }
                        }
                    }

                    next_arrival = index + 1;
                    if let Some(next) = trace.get(next_arrival) {
                        queue.push(
                            next.arrival_ms,
                            FleetEvent::Arrival {
                                index: next_arrival,
                            },
                        );
                    } else if !ticks && disagg.is_none() {
                        // No tick schedule to advance the fleet: drain each
                        // replica one step completion at a time. (A
                        // disaggregated fleet is already chain-driven and
                        // skips this.)
                        for (i, slot) in slots.iter().enumerate() {
                            if !slot.driver.is_drained() {
                                queue.push(
                                    slot.driver.clock_ms(),
                                    FleetEvent::StepCompletion { slot: i },
                                );
                            }
                        }
                    }
                }
                FleetEvent::KvTransferComplete { transfer } => {
                    let d = disagg
                        .as_mut()
                        .expect("transfer events exist only on disaggregated runs");
                    let PendingTransfer {
                        id,
                        from,
                        to,
                        bytes,
                    } = d.transfers[transfer];
                    d.in_flight -= 1;
                    let original = d.originals[&id];
                    let remainder = Request {
                        id,
                        arrival_ms: at,
                        prompt_len: original.prompt_len,
                        output_len: original.output_len - 1,
                    };
                    if slots[to].routable() && slots[to].driver.can_ever_admit(&remainder) {
                        if let Some(sink) = &self.sink {
                            sink.emit(TraceEvent::KvTransferComplete {
                                id,
                                from,
                                to,
                                bytes,
                                at_ms: at,
                            });
                        }
                        slots[to].driver.enqueue_handoff(remainder);
                        slots[to].assigned_ids.push(id);
                        slots[to].assigned_tokens += remainder.total_tokens();
                        d.arm_chain(&mut queue, &slots, to, at);
                    } else if self.recovery.readmit {
                        // The decode pod died (or went unroutable) while the
                        // KV was on the wire. The prefix still lives on the
                        // prefill pod, so re-transfer to another decode pod.
                        match d.pick_decode_pod(&slots, &remainder) {
                            Some(next) => {
                                let row = d
                                    .prefill_pos
                                    .get(from)
                                    .copied()
                                    .flatten()
                                    .expect("transfers originate on prefill pods");
                                let col = d
                                    .cfg
                                    .decode
                                    .iter()
                                    .position(|&s| s == next)
                                    .expect("pick_decode_pod returns configured pods");
                                let link = d.cfg.links[row][col];
                                if let Some(sink) = &self.sink {
                                    sink.emit(TraceEvent::KvTransferStarted {
                                        id,
                                        from,
                                        to: next,
                                        bytes,
                                        at_ms: at,
                                    });
                                }
                                let retry = d.transfers.len();
                                d.transfers.push(PendingTransfer {
                                    id,
                                    from,
                                    to: next,
                                    bytes,
                                });
                                d.in_flight += 1;
                                queue.push(
                                    at + link.transfer_ms(bytes),
                                    FleetEvent::KvTransferComplete { transfer: retry },
                                );
                            }
                            None => failed_ids.push(id),
                        }
                    } else {
                        failed_ids.push(id);
                    }
                }
                FleetEvent::StepCompletion { slot } => {
                    if slots[slot].driver.step_once() {
                        queue.push(
                            slots[slot].driver.clock_ms(),
                            FleetEvent::StepCompletion { slot },
                        );
                    } else if let Some(d) = disagg.as_mut() {
                        d.chain_died(slot);
                    }
                    if let Some(d) = disagg.as_mut() {
                        d.collect_handoffs(
                            slot,
                            &slots,
                            &mut queue,
                            self.sink.as_ref(),
                            &mut failed_ids,
                            at,
                        );
                    }
                }
            }
        }

        let ledger = disagg.map(|d| DisaggLedger {
            originals: d.originals,
            decode: d.cfg.decode,
        });
        finalize(
            slots,
            events,
            unroutable,
            failed_ids,
            fault_records,
            peak_replicas,
            drain_incomplete,
            drain_incomplete_replicas,
            ledger,
        )
    }
}

/// Apply the dispatch policy to the eligible set — shared between fresh
/// arrivals and post-crash re-admissions so the two can never drift.
fn pick_replica(
    policy: DispatchPolicy,
    eligible: &[usize],
    slots: &[Slot],
    rr_cursor: &mut usize,
) -> Option<usize> {
    match policy {
        DispatchPolicy::RoundRobin => {
            let picked = eligible
                .get(rr_cursor.checked_rem(eligible.len()).unwrap_or(0))
                .copied();
            *rr_cursor = rr_cursor.wrapping_add(1);
            picked
        }
        DispatchPolicy::LeastOutstandingTokens { .. } => eligible
            .iter()
            .min_by_key(|&&i| slots[i].driver.outstanding_tokens())
            .copied(),
        DispatchPolicy::LeastOutstandingTokensFrozen => eligible
            .iter()
            .min_by_key(|&&i| slots[i].assigned_tokens)
            .copied(),
    }
}

/// One control tick: advance every replica to `t`, retire drained draining
/// replicas, observe, and apply the autoscale decision.
#[allow(clippy::too_many_arguments)]
fn control_tick(
    t: f64,
    config: &FleetConfig,
    autoscaler: &mut dyn AutoscalePolicy,
    factory: Option<&dyn Fn() -> Box<dyn ExecutionBackend>>,
    slots: &mut Vec<Slot>,
    events: &mut Vec<ScaleEvent>,
    peak_replicas: &mut usize,
    queue: &mut EventQueue,
    sink: Option<&SharedSink>,
) {
    for (i, slot) in slots.iter_mut().enumerate() {
        slot.driver.advance_to(t);
        if slot.draining && slot.retired_ms.is_none() && slot.driver.is_drained() {
            queue.push(t, FleetEvent::DrainRetire { slot: i });
        }
    }
    // Retirements scheduled at this very tick must land before the
    // observation below — the legacy loop retired before observing.
    while let Some((at, FleetEvent::DrainRetire { slot })) =
        queue.pop_if(|at, e| at == t && matches!(e, FleetEvent::DrainRetire { .. }))
    {
        if slots[slot].retired_ms.is_none() {
            slots[slot].retired_ms = Some(at);
            if let Some(sink) = sink {
                sink.emit(TraceEvent::Retired {
                    replica: slot,
                    at_ms: at,
                });
            }
        }
    }

    let obs = observe(t, config, slots);
    if let Some(sink) = sink {
        // What the autoscale policy is about to see — the gauge row the
        // metrics registry snapshots its per-replica time series at.
        sink.emit(TraceEvent::ControlTick {
            at_ms: t,
            routable: obs.routable_replicas,
            warming: obs.warming_replicas,
            p95_ttft_ms: obs.p95_ttft_ms,
            utilization: obs.utilization,
            queued: obs.queued_requests,
            outstanding_tokens: obs.outstanding_tokens,
        });
    }
    match autoscaler.decide(&obs) {
        ScaleDecision::Hold => {}
        ScaleDecision::ScaleOut => {
            let commissioned = slots.iter().filter(|s| s.commissioned()).count();
            if commissioned < config.max_replicas {
                if let Some(factory) = factory {
                    let mut slot =
                        Slot::new(factory(), config.scheduler, t, t + config.warmup_ms, true);
                    if let Some(sink) = sink {
                        slot.driver.attach_sink((*sink).clone(), slots.len());
                        sink.emit(TraceEvent::ReplicaCommissioned {
                            replica: slots.len(),
                            at_ms: t,
                            ready_ms: t + config.warmup_ms,
                        });
                        sink.emit(TraceEvent::ScaleOut {
                            at_ms: t,
                            replicas_after: commissioned + 1,
                        });
                    }
                    slots.push(slot);
                    // Even a zero-length warm-up goes through the queue: its
                    // completion sorts before every other event at `t`, so
                    // the replica is routable for same-instant arrivals.
                    queue.push(
                        t + config.warmup_ms,
                        FleetEvent::WarmupComplete {
                            slot: slots.len() - 1,
                        },
                    );
                    events.push(ScaleEvent {
                        at_ms: t,
                        kind: ScaleKind::Out,
                        replicas_after: commissioned + 1,
                        reason: describe_observation(&obs),
                    });
                }
            }
        }
        ScaleDecision::ScaleIn => {
            let commissioned = slots.iter().filter(|s| s.commissioned()).count();
            // The floor is counted over replicas that can actually *serve*
            // the model: draining must never remove the last capable
            // replica (a heterogeneous fleet may carry dead weight whose
            // kernels or weights can never admit anything, and that dead
            // weight must not satisfy the floor). Warming capable replicas
            // carry no traffic yet, so they skip the routable check here —
            // but they still count toward the commissioned-capable floor
            // the `allowed` gate below enforces.
            let routable_capable = slots
                .iter()
                .filter(|s| s.routable() && s.driver.can_serve_model())
                .count();
            let candidate = slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.commissioned())
                .filter(|(_, s)| {
                    !s.driver.can_serve_model()
                        || s.warming
                        || routable_capable > config.min_replicas
                })
                .min_by(|(ia, a), (ib, b)| {
                    // Dead-weight replicas drain first...
                    a.driver
                        .can_serve_model()
                        .cmp(&b.driver.can_serve_model())
                        // ...then the least-loaded...
                        .then(
                            a.driver
                                .outstanding_tokens()
                                .cmp(&b.driver.outstanding_tokens()),
                        )
                        // ...preferring the newest replica (LIFO scale-in)...
                        .then(
                            b.spawned_ms
                                .partial_cmp(&a.spawned_ms)
                                .expect("spawn times are finite"),
                        )
                        // ...and break remaining ties deterministically.
                        .then(ib.cmp(ia))
                })
                .map(|(i, _)| i);
            if let Some(i) = candidate {
                // The floor is over *capable* replicas: dead weight never
                // satisfies it, so draining dead weight is allowed whenever
                // at least one commissioned replica remains, while draining
                // a capable replica must leave the capable count at or
                // above the floor.
                let commissioned_capable = slots
                    .iter()
                    .filter(|s| s.commissioned() && s.driver.can_serve_model())
                    .count();
                let allowed = if slots[i].driver.can_serve_model() {
                    commissioned_capable > config.min_replicas
                } else {
                    commissioned > 1
                };
                if allowed {
                    slots[i].draining = true;
                    if let Some(sink) = sink {
                        sink.emit(TraceEvent::DrainStarted {
                            replica: i,
                            at_ms: t,
                        });
                        sink.emit(TraceEvent::ScaleIn {
                            at_ms: t,
                            replicas_after: commissioned - 1,
                        });
                    }
                    if slots[i].driver.is_drained() {
                        // Already empty: retires at this very instant. The
                        // event sorts before any tick or arrival at `t`, so
                        // nothing can observe the slot in between.
                        queue.push(t, FleetEvent::DrainRetire { slot: i });
                    }
                    events.push(ScaleEvent {
                        at_ms: t,
                        kind: ScaleKind::In,
                        replicas_after: commissioned - 1,
                        reason: describe_observation(&obs),
                    });
                }
            }
        }
    }
    *peak_replicas = (*peak_replicas).max(slots.iter().filter(|s| s.commissioned()).count());
}

/// Build the tick's observation from live replica state.
fn observe(t: f64, config: &FleetConfig, slots: &[Slot]) -> FleetObservation {
    let window_start = (t - config.window_ms).max(0.0);
    let mut ttfts = Vec::new();
    for slot in slots {
        // Completions are in finished-time order and first_token <=
        // finished, so scanning from the newest and stopping at the window
        // edge keeps each tick O(window), not O(history).
        for c in slot.driver.completed().iter().rev() {
            if c.finished_ms <= window_start {
                break;
            }
            if c.first_token_ms > window_start && c.first_token_ms <= t {
                ttfts.push(c.ttft_ms());
            }
        }
        for r in slot.driver.running_requests() {
            if let Some(first) = r.first_token_ms {
                if first > window_start && first <= t {
                    ttfts.push(first - r.request.arrival_ms);
                }
            }
        }
    }
    let p95_ttft_ms = if ttfts.is_empty() {
        None
    } else {
        Some(latency_summary(&ttfts).p95_ms)
    };
    let max_pending_wait_ms = slots
        .iter()
        .filter(|s| s.retired_ms.is_none())
        .filter_map(|s| s.driver.oldest_unserved_arrival_ms())
        .map(|arrival| (t - arrival).max(0.0))
        .fold(0.0f64, f64::max);

    let mut busy_ms = 0.0;
    let mut available_ms = 0.0;
    for slot in slots.iter().filter(|s| s.retired_ms.is_none()) {
        let since = window_start.max(slot.ready_ms);
        if since < t {
            busy_ms += slot.driver.busy_ms_between(since, t);
            available_ms += t - since;
        }
    }
    FleetObservation {
        now_ms: t,
        routable_replicas: slots.iter().filter(|s| s.routable()).count(),
        warming_replicas: slots
            .iter()
            .filter(|s| s.commissioned() && s.warming)
            .count(),
        p95_ttft_ms,
        max_pending_wait_ms,
        utilization: if available_ms > 0.0 {
            busy_ms / available_ms
        } else {
            0.0
        },
        outstanding_tokens: slots.iter().map(|s| s.driver.outstanding_tokens()).sum(),
        queued_requests: slots.iter().map(|s| s.driver.queued_requests()).sum(),
    }
}

fn describe_observation(obs: &FleetObservation) -> String {
    format!(
        "p95 TTFT {} · max wait {:.0} ms · util {:.0}% · {} queued",
        obs.p95_ttft_ms
            .map_or_else(|| "-".to_string(), |p| format!("{p:.0} ms")),
        obs.max_pending_wait_ms,
        obs.utilization * 100.0,
        obs.queued_requests,
    )
}

/// Fold the finished slots, timeline, unroutable set and fault ledger into
/// fleet metrics.
#[allow(clippy::too_many_arguments)]
fn finalize(
    slots: Vec<Slot>,
    scale_events: Vec<ScaleEvent>,
    unroutable_ids: Vec<u64>,
    failed_ids: Vec<u64>,
    faults: Vec<FaultRecord>,
    peak_replicas: usize,
    drain_incomplete: bool,
    drain_incomplete_replicas: Vec<usize>,
    ledger: Option<DisaggLedger>,
) -> FleetMetrics {
    let records: Vec<ReplicaRecord> = slots
        .into_iter()
        .map(|slot| {
            let Slot {
                driver,
                description,
                spawned_ms,
                ready_ms,
                retired_ms,
                assigned_ids,
                ..
            } = slot;
            ReplicaRecord {
                description,
                spawned_ms,
                ready_ms,
                retired_ms,
                assigned_ids,
                result: driver.finish(),
            }
        })
        .collect();
    let mut metrics = match ledger {
        Some(ledger) => aggregate_disaggregated(
            peak_replicas,
            records,
            scale_events,
            unroutable_ids,
            drain_incomplete,
            &ledger,
        ),
        None => aggregate(
            peak_replicas,
            records,
            scale_events,
            unroutable_ids,
            drain_incomplete,
        ),
    };
    metrics.failed_ids = failed_ids;
    metrics.faults = faults;
    metrics.drain_incomplete_replicas = drain_incomplete_replicas;
    metrics
}

/// What [`aggregate_disaggregated`] needs to stitch split requests back
/// together: the original request behind every split id, and which slots
/// were decode pods (a split id counts as completed exactly when its
/// remainder finished on one of them).
struct DisaggLedger {
    originals: BTreeMap<u64, Request>,
    decode: Vec<usize>,
}

/// One replica's finished run plus its control-plane bookkeeping — the input
/// row of [`aggregate`].
pub(crate) struct ReplicaRecord {
    pub description: String,
    pub spawned_ms: f64,
    pub ready_ms: f64,
    pub retired_ms: Option<f64>,
    pub assigned_ids: Vec<u64>,
    pub result: SimulationResult,
}

/// Pool per-replica results into fleet metrics — the one aggregation both
/// the online controller ([`finalize`]) and the static shim
/// ([`ReplicaFleet::metrics`](crate::dispatch::ReplicaFleet::metrics))
/// share, so the two front doors can never drift apart.
pub(crate) fn aggregate(
    replicas: usize,
    records: Vec<ReplicaRecord>,
    scale_events: Vec<ScaleEvent>,
    unroutable_ids: Vec<u64>,
    drain_incomplete: bool,
) -> FleetMetrics {
    let mut per_replica = Vec::with_capacity(records.len());
    let mut latencies = Vec::new();
    let mut ttfts = Vec::new();
    let mut tpots = Vec::new();
    let mut completed = 0usize;
    let mut rejected = unroutable_ids.len();
    let mut output_tokens = 0usize;
    let mut makespan_ms = 0.0f64;
    for record in records {
        let result = &record.result;
        completed += result.completed.len();
        rejected += result.rejected.len();
        output_tokens += result.output_tokens();
        makespan_ms = makespan_ms.max(result.makespan_ms);
        latencies.extend(result.completed.iter().map(|c| c.latency_ms()));
        ttfts.extend(result.completed.iter().map(|c| c.ttft_ms()));
        tpots.extend(result.completed.iter().filter_map(|c| c.tpot_ms()));
        per_replica.push(ReplicaBreakdown {
            engine: result.engine,
            metrics: ServingMetrics::from_result(result),
            description: record.description,
            spawned_ms: record.spawned_ms,
            ready_ms: record.ready_ms,
            retired_ms: record.retired_ms,
            assigned: record.assigned_ids.len(),
            assigned_ids: record.assigned_ids,
        });
    }
    FleetMetrics {
        engine: per_replica
            .first()
            .map(|r| r.engine)
            .unwrap_or(EngineKind::Samoyeds),
        replicas,
        completed,
        rejected,
        output_tokens_per_s: if makespan_ms > 0.0 {
            output_tokens as f64 / (makespan_ms / 1e3)
        } else {
            0.0
        },
        request_latency: latency_summary(&latencies),
        ttft: latency_summary(&ttfts),
        tpot: latency_summary(&tpots),
        makespan_ms,
        per_replica,
        scale_events,
        unroutable_ids,
        failed_ids: Vec::new(),
        faults: Vec::new(),
        drain_incomplete,
        drain_incomplete_replicas: Vec::new(),
    }
}

/// Pool per-replica results of a disaggregated run. Raw figures — output
/// tokens, makespan, rejections, per-replica breakdowns — sum exactly as in
/// [`aggregate`]; the pooled latency distributions instead stitch each split
/// request's prefill half (arrival, admission, first token) to its decode
/// half (completion) so a handoff counts once, end to end, rather than as
/// two short requests. A split id with no decode-pod completion never
/// finished (it died in a crash or a failed handoff) and is excluded — it is
/// already on the failed ledger.
fn aggregate_disaggregated(
    replicas: usize,
    records: Vec<ReplicaRecord>,
    scale_events: Vec<ScaleEvent>,
    unroutable_ids: Vec<u64>,
    drain_incomplete: bool,
    ledger: &DisaggLedger,
) -> FleetMetrics {
    let decode_pods: BTreeSet<usize> = ledger.decode.iter().copied().collect();
    let mut per_replica = Vec::with_capacity(records.len());
    let mut latencies = Vec::new();
    let mut ttfts = Vec::new();
    let mut tpots = Vec::new();
    let mut completed = 0usize;
    let mut rejected = unroutable_ids.len();
    let mut output_tokens = 0usize;
    let mut makespan_ms = 0.0f64;
    // id → (earliest prefill-half admission, earliest prefill-half first
    // token, decode-half completion). A crash can re-prefill a request, so
    // the prefill side takes minima; at most one decode completion exists
    // per id.
    let mut halves: BTreeMap<u64, (f64, f64, Option<f64>)> = BTreeMap::new();
    for (slot, record) in records.into_iter().enumerate() {
        let result = &record.result;
        rejected += result.rejected.len();
        output_tokens += result.output_tokens();
        makespan_ms = makespan_ms.max(result.makespan_ms);
        for c in &result.completed {
            if ledger.originals.contains_key(&c.request.id) {
                let entry =
                    halves
                        .entry(c.request.id)
                        .or_insert((f64::INFINITY, f64::INFINITY, None));
                if decode_pods.contains(&slot) {
                    entry.2 = Some(c.finished_ms);
                } else {
                    entry.0 = entry.0.min(c.admitted_ms);
                    entry.1 = entry.1.min(c.first_token_ms);
                }
            } else {
                completed += 1;
                latencies.push(c.latency_ms());
                ttfts.push(c.ttft_ms());
                tpots.extend(c.tpot_ms());
            }
        }
        per_replica.push(ReplicaBreakdown {
            engine: result.engine,
            metrics: ServingMetrics::from_result(result),
            description: record.description,
            spawned_ms: record.spawned_ms,
            ready_ms: record.ready_ms,
            retired_ms: record.retired_ms,
            assigned: record.assigned_ids.len(),
            assigned_ids: record.assigned_ids,
        });
    }
    // BTreeMap iteration is ordered by id, so the stitched pool is
    // deterministic without an explicit sort.
    for (id, (admitted_ms, first_token_ms, finished)) in halves {
        let (Some(finished_ms), true) = (finished, admitted_ms.is_finite()) else {
            continue;
        };
        let stitched = CompletedRequest {
            request: ledger.originals[&id],
            admitted_ms,
            first_token_ms,
            finished_ms,
        };
        completed += 1;
        latencies.push(stitched.latency_ms());
        ttfts.push(stitched.ttft_ms());
        tpots.extend(stitched.tpot_ms());
    }
    FleetMetrics {
        engine: per_replica
            .first()
            .map(|r| r.engine)
            .unwrap_or(EngineKind::Samoyeds),
        replicas,
        completed,
        rejected,
        output_tokens_per_s: if makespan_ms > 0.0 {
            output_tokens as f64 / (makespan_ms / 1e3)
        } else {
            0.0
        },
        request_latency: latency_summary(&latencies),
        ttft: latency_summary(&ttfts),
        tpot: latency_summary(&tpots),
        makespan_ms,
        per_replica,
        scale_events,
        unroutable_ids,
        failed_ids: Vec::new(),
        faults: Vec::new(),
        drain_incomplete,
        drain_incomplete_replicas: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SingleGpuBackend;
    use crate::trace::{BurstPhase, BurstyTraceConfig};
    use samoyeds_gpu_sim::DeviceSpec;
    use samoyeds_moe::config::MoeModelConfig;

    fn single(
        device: DeviceSpec,
        engine: EngineKind,
        scfg: &SchedulerConfig,
    ) -> Box<dyn ExecutionBackend> {
        Box::new(SingleGpuBackend::new(
            device,
            &MoeModelConfig::qwen2_moe(),
            engine,
            scfg,
        ))
    }

    fn burst() -> Vec<Request> {
        BurstyTraceConfig {
            phases: vec![
                BurstPhase {
                    arrival_rate_rps: 2.0,
                    num_requests: 8,
                },
                BurstPhase {
                    arrival_rate_rps: 150.0,
                    num_requests: 60,
                },
                BurstPhase {
                    arrival_rate_rps: 2.0,
                    num_requests: 8,
                },
            ],
            prompt_len_range: (64, 256),
            output_len_range: (16, 48),
            seed: 17,
        }
        .generate()
    }

    #[test]
    fn slo_breach_scales_out_and_low_utilization_scales_back_in() {
        let scfg = SchedulerConfig::default();
        let config = FleetConfig {
            scheduler: scfg,
            warmup_ms: 500.0,
            max_replicas: 4,
            ..FleetConfig::default()
        };
        let metrics = FleetController::new(config)
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_factory(move || single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_autoscaler(SloAutoscaler::new(400.0))
            .run(&burst());
        assert_eq!(metrics.completed, 76);
        assert_eq!(metrics.rejected, 0);
        assert!(metrics.scale_outs() >= 1, "{:?}", metrics.scale_events);
        assert!(metrics.scale_ins() >= 1, "{:?}", metrics.scale_events);
        assert!(metrics.replicas > 1);
        // The first event is a burst-driven scale-out, and some scale-in
        // follows it once the burst drains.
        assert_eq!(metrics.scale_events[0].kind, ScaleKind::Out);
        let first_out = metrics.scale_events[0].at_ms;
        assert!(metrics
            .scale_events
            .iter()
            .any(|e| e.kind == ScaleKind::In && e.at_ms > first_out));
        // Every event respects the floor, and warm-up is charged.
        for e in &metrics.scale_events {
            assert!(e.replicas_after >= 1);
        }
        for r in metrics.per_replica.iter().skip(1) {
            assert_eq!(r.ready_ms, r.spawned_ms + 500.0);
        }
        // The timeline renders.
        assert!(metrics.render_timeline().len() >= 2 + metrics.scale_events.len());
    }

    #[test]
    fn dispatch_skips_replicas_whose_budget_rejects_the_model() {
        // A 12 GiB card cannot hold dense Qwen2 weights: the dense replica
        // is capability-ineligible and every request lands on the Samoyeds
        // replica.
        let scfg = SchedulerConfig::default();
        let trace = crate::trace::TraceConfig {
            num_requests: 10,
            arrival_rate_rps: 8.0,
            prompt_len_range: (32, 128),
            output_len_range: (4, 12),
            seed: 3,
        }
        .generate();
        let metrics = FleetController::new(FleetConfig::default())
            .with_replica(single(
                DeviceSpec::rtx4070_super(),
                EngineKind::Transformers,
                &scfg,
            ))
            .with_replica(single(
                DeviceSpec::rtx4070_super(),
                EngineKind::Samoyeds,
                &scfg,
            ))
            .run(&trace);
        assert_eq!(metrics.completed, 10);
        assert_eq!(metrics.rejected, 0);
        assert_eq!(metrics.per_replica[0].assigned, 0);
        assert_eq!(metrics.per_replica[1].assigned, 10);
        // No replica-level rejection: the gate keeps unfit replicas out of
        // the eligible set instead of letting them bounce requests.
        for r in &metrics.per_replica {
            assert_eq!(r.metrics.rejected, 0);
        }
    }

    #[test]
    fn scale_in_never_drains_the_last_capable_replica() {
        // Heterogeneous fleet where one replica is dead weight (dense
        // weights can never fit the 12 GiB card): idle-driven scale-in must
        // drain the dead weight, never the only replica that can serve —
        // otherwise the late requests after the gap would all be stranded.
        let scfg = SchedulerConfig::default();
        let mk = |id: u64, arrival_ms: f64| Request {
            id,
            arrival_ms,
            prompt_len: 64,
            output_len: 8,
        };
        // Early work, a long idle gap (the autoscaler's idle streak fires),
        // then late work.
        let trace: Vec<Request> = (0..4)
            .map(|i| mk(i, 100.0 * i as f64))
            .chain((4..8).map(|i| mk(i, 20_000.0 + 100.0 * (i - 4) as f64)))
            .collect();
        let metrics = FleetController::new(FleetConfig::default())
            .with_replica(single(
                DeviceSpec::rtx4070_super(),
                EngineKind::Transformers,
                &scfg,
            ))
            .with_replica(single(
                DeviceSpec::rtx4070_super(),
                EngineKind::Samoyeds,
                &scfg,
            ))
            .with_autoscaler(SloAutoscaler::new(400.0))
            .run(&trace);
        // Everything is served: the capable replica survived the scale-in.
        assert_eq!(metrics.completed, 8, "{:?}", metrics.scale_events);
        assert_eq!(metrics.rejected, 0);
        assert!(metrics.scale_ins() >= 1, "{:?}", metrics.scale_events);
        // The drained replica is the dense dead weight, not the Samoyeds
        // one.
        assert!(metrics.per_replica[0].retired_ms.is_some());
        assert!(metrics.per_replica[1].retired_ms.is_none());
        assert_eq!(metrics.per_replica[1].assigned, 8);

        // Even when the raw replica count sits exactly at the floor, dead
        // weight does not satisfy it and is still drained.
        let at_floor = FleetController::new(FleetConfig {
            min_replicas: 2,
            ..FleetConfig::default()
        })
        .with_replica(single(
            DeviceSpec::rtx4070_super(),
            EngineKind::Transformers,
            &scfg,
        ))
        .with_replica(single(
            DeviceSpec::rtx4070_super(),
            EngineKind::Samoyeds,
            &scfg,
        ))
        .with_autoscaler(SloAutoscaler::new(400.0))
        .run(&trace);
        assert_eq!(at_floor.completed, 8);
        assert!(
            at_floor.per_replica[0].retired_ms.is_some(),
            "dead weight kept at floor"
        );
        assert!(at_floor.per_replica[1].retired_ms.is_none());
    }

    #[test]
    fn unroutable_requests_are_reported_not_lost() {
        // A fleet made only of dense 12 GiB replicas can never admit the
        // model's requests: everything is fleet-rejected.
        let scfg = SchedulerConfig::default();
        let trace = crate::trace::TraceConfig {
            num_requests: 5,
            arrival_rate_rps: 8.0,
            prompt_len_range: (32, 64),
            output_len_range: (4, 8),
            seed: 4,
        }
        .generate();
        let metrics = FleetController::new(FleetConfig::default())
            .with_replica(single(
                DeviceSpec::rtx4070_super(),
                EngineKind::Transformers,
                &scfg,
            ))
            .run(&trace);
        assert_eq!(metrics.completed, 0);
        assert_eq!(metrics.rejected, 5);
        assert_eq!(metrics.unroutable_ids.len(), 5);
    }

    #[test]
    fn fixed_policy_never_scales_and_round_robin_spreads() {
        let scfg = SchedulerConfig::default();
        let trace = crate::trace::TraceConfig {
            num_requests: 12,
            arrival_rate_rps: 6.0,
            prompt_len_range: (32, 128),
            output_len_range: (4, 12),
            seed: 9,
        }
        .generate();
        let config = FleetConfig {
            policy: DispatchPolicy::RoundRobin,
            ..FleetConfig::default()
        };
        let metrics = FleetController::new(config)
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .run(&trace);
        assert!(metrics.scale_events.is_empty());
        assert_eq!(metrics.replicas, 2);
        assert_eq!(metrics.per_replica[0].assigned, 6);
        assert_eq!(metrics.per_replica[1].assigned, 6);
    }

    #[test]
    fn slo_autoscaler_streaks_gate_the_decisions() {
        let mut policy = SloAutoscaler::new(500.0).with_scale_in(0.3, 2);
        let breach = FleetObservation {
            now_ms: 0.0,
            routable_replicas: 1,
            warming_replicas: 0,
            p95_ttft_ms: Some(900.0),
            max_pending_wait_ms: 0.0,
            utilization: 0.9,
            outstanding_tokens: 100,
            queued_requests: 3,
        };
        let idle = FleetObservation {
            p95_ttft_ms: None,
            utilization: 0.1,
            queued_requests: 0,
            ..breach
        };
        // One breached tick holds; the second scales out.
        assert_eq!(policy.decide(&breach), ScaleDecision::Hold);
        assert_eq!(policy.decide(&breach), ScaleDecision::ScaleOut);
        // Idle ticks reset the breach streak and eventually scale in.
        assert_eq!(policy.decide(&idle), ScaleDecision::Hold);
        assert_eq!(policy.decide(&idle), ScaleDecision::ScaleIn);
        // A pending-wait breach counts even with no completions in window.
        let waiting = FleetObservation {
            p95_ttft_ms: None,
            max_pending_wait_ms: 900.0,
            ..breach
        };
        assert_eq!(policy.decide(&waiting), ScaleDecision::Hold);
        assert_eq!(policy.decide(&waiting), ScaleDecision::ScaleOut);
        // While capacity is warming, further breaches hold instead of
        // stampeding more scale-outs.
        let warming = FleetObservation {
            warming_replicas: 1,
            ..breach
        };
        assert_eq!(policy.decide(&warming), ScaleDecision::Hold);
        assert_eq!(policy.decide(&warming), ScaleDecision::Hold);
        // Once the replica lands, the breach streak starts fresh.
        assert_eq!(policy.decide(&breach), ScaleDecision::Hold);
        assert_eq!(policy.decide(&breach), ScaleDecision::ScaleOut);
    }

    #[test]
    fn slo_autoscaler_freezes_every_streak_while_capacity_warms() {
        let mut policy = SloAutoscaler::new(500.0).with_scale_in(0.3, 2);
        // Idle ticks while a replica is warming must not accrue the idle
        // streak: the fleet looks idle only because the new capacity has
        // not started taking traffic yet, and scaling in here would cancel
        // the scale-out before it ever lands.
        let idle_warming = FleetObservation {
            now_ms: 0.0,
            routable_replicas: 1,
            warming_replicas: 1,
            p95_ttft_ms: None,
            max_pending_wait_ms: 0.0,
            utilization: 0.1,
            outstanding_tokens: 0,
            queued_requests: 0,
        };
        for _ in 0..10 {
            assert_eq!(policy.decide(&idle_warming), ScaleDecision::Hold);
        }
        // Once warm-up lands, the idle streak starts from zero: it takes
        // the full `idle_ticks` run before a scale-in fires.
        let idle = FleetObservation {
            warming_replicas: 0,
            ..idle_warming
        };
        assert_eq!(policy.decide(&idle), ScaleDecision::Hold);
        assert_eq!(policy.decide(&idle), ScaleDecision::ScaleIn);
    }

    /// Records every consultation time so the test can check the schedule.
    struct TickProbe {
        tick_ms: f64,
        /// (ticks seen, all tick times were exactly `k * tick_ms`).
        seen: std::rc::Rc<std::cell::RefCell<(u64, bool)>>,
    }

    impl AutoscalePolicy for TickProbe {
        fn decide(&mut self, obs: &FleetObservation) -> ScaleDecision {
            let mut seen = self.seen.borrow_mut();
            seen.0 += 1;
            if obs.now_ms != seen.0 as f64 * self.tick_ms {
                seen.1 = false;
            }
            ScaleDecision::Hold
        }
    }

    #[test]
    fn control_ticks_do_not_drift_over_a_million_ticks() {
        // 0.1 is not representable in binary floating point, so the old
        // `next_tick += tick_ms` accumulation drifts: after 10^6 additions
        // the schedule is visibly off the true grid...
        let tick_ms = 0.1f64;
        let mut accumulated = 0.0f64;
        for _ in 0..1_000_000 {
            accumulated += tick_ms;
        }
        assert_ne!(
            accumulated,
            1_000_000f64 * tick_ms,
            "the accumulated schedule should drift — that is the bug"
        );

        // ...while the event core derives tick k as exactly k * tick_ms.
        // Two tiny requests 100 s apart put >= 10^6 ticks between them.
        let scfg = SchedulerConfig::default();
        let mk = |id: u64, arrival_ms: f64| Request {
            id,
            arrival_ms,
            prompt_len: 8,
            output_len: 2,
        };
        let seen = std::rc::Rc::new(std::cell::RefCell::new((0u64, true)));
        let probe = TickProbe {
            tick_ms,
            seen: seen.clone(),
        };
        let metrics = FleetController::new(FleetConfig {
            tick_ms,
            ..FleetConfig::default()
        })
        .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
        .with_autoscaler(probe)
        .run(&[mk(0, 0.0), mk(1, 100_000.0)]);
        assert_eq!(metrics.completed, 2);
        let (ticks, exact) = *seen.borrow();
        assert!(ticks >= 1_000_000, "only {ticks} ticks fired");
        assert!(exact, "a tick fired off the k * tick_ms grid");
    }

    #[test]
    fn drain_cap_returns_degraded_metrics_instead_of_panicking() {
        // One heavy request takes far longer than three 1 ms drain ticks:
        // the capped run must come back degraded, not panic mid-sweep.
        let scfg = SchedulerConfig::default();
        let trace = vec![Request {
            id: 0,
            arrival_ms: 0.0,
            prompt_len: 2048,
            output_len: 256,
        }];
        let capped = FleetController::new(FleetConfig {
            tick_ms: 1.0,
            max_drain_ticks: 3,
            ..FleetConfig::default()
        })
        .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
        .with_autoscaler(SloAutoscaler::new(1e12))
        .run(&trace);
        assert!(capped.drain_incomplete, "cap hit should flag the metrics");
        assert_eq!(capped.completed, 0, "the heavy request cannot finish");

        // The same fleet under the default cap drains fine.
        let full = FleetController::new(FleetConfig {
            tick_ms: 1.0,
            ..FleetConfig::default()
        })
        .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
        .with_autoscaler(SloAutoscaler::new(1e12))
        .run(&trace);
        assert!(!full.drain_incomplete);
        assert_eq!(full.completed, 1);
    }

    #[test]
    fn drain_cap_names_the_replicas_still_holding_work() {
        let scfg = SchedulerConfig::default();
        let trace = vec![Request {
            id: 0,
            arrival_ms: 0.0,
            prompt_len: 2048,
            output_len: 256,
        }];
        let capped = FleetController::new(FleetConfig {
            tick_ms: 1.0,
            max_drain_ticks: 3,
            ..FleetConfig::default()
        })
        .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
        .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
        .with_autoscaler(SloAutoscaler::new(1e12))
        .run(&trace);
        assert!(capped.drain_incomplete);
        // Only the replica that took the heavy request is stuck; the idle
        // one drained. The status line names it.
        assert_eq!(capped.drain_incomplete_replicas.len(), 1);
        let stuck = capped.drain_incomplete_replicas[0];
        assert_eq!(capped.per_replica[stuck].assigned, 1);
        assert!(capped.drain_status().contains(&stuck.to_string()));
        // A clean run reports "drained" and an empty list.
        let full = FleetController::new(FleetConfig::default())
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .run(&trace);
        assert!(full.drain_incomplete_replicas.is_empty());
        assert_eq!(full.drain_status(), "drained");
    }

    fn steady_trace(n: u64, rate_rps: f64) -> Vec<Request> {
        crate::trace::TraceConfig {
            num_requests: n as usize,
            arrival_rate_rps: rate_rps,
            prompt_len_range: (32, 128),
            output_len_range: (8, 24),
            seed: 23,
        }
        .generate()
    }

    fn crash_at(at_ms: f64, replica: usize) -> FaultSchedule {
        FaultSchedule::Scripted(vec![crate::faults::FaultSpec {
            at_ms,
            kind: FaultKind::ReplicaCrash { replica },
        }])
    }

    #[test]
    fn crash_with_readmission_loses_nothing() {
        let scfg = SchedulerConfig::default();
        let trace = steady_trace(30, 20.0);
        let metrics = FleetController::new(FleetConfig::default())
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_faults(crash_at(500.0, 0), RecoveryPolicy::readmit_after(40.0))
            .run(&trace);
        // Conservation with zero losses: everything offered is served.
        assert_eq!(metrics.completed, 30, "{:?}", metrics.faults);
        assert_eq!(metrics.rejected, 0);
        assert_eq!(metrics.failed(), 0);
        let record = &metrics.faults[0];
        assert!(
            record.lost_running + record.lost_queued > 0,
            "the crash should catch work in flight: {record:?}"
        );
        assert_eq!(record.readmitted, record.lost_running + record.lost_queued);
        assert_eq!(record.recovery_ms(), Some(40.0));
        // The crashed replica is retired at the fault instant.
        assert_eq!(metrics.per_replica[0].retired_ms, Some(500.0));
    }

    #[test]
    fn fail_fast_crash_fails_in_flight_requests_and_conserves_the_ledger() {
        let scfg = SchedulerConfig::default();
        let trace = steady_trace(30, 20.0);
        let metrics = FleetController::new(FleetConfig::default())
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_faults(crash_at(500.0, 0), RecoveryPolicy::fail_fast())
            .run(&trace);
        assert!(metrics.failed() > 0, "{:?}", metrics.faults);
        assert_eq!(metrics.completed + metrics.rejected + metrics.failed(), 30);
        let record = &metrics.faults[0];
        assert_eq!(record.failed, metrics.failed());
        assert_eq!(record.readmitted, 0);
        assert_eq!(record.recovered_at_ms, None, "fail-fast never recovers");
        // Every failed request had been routed to the crashed replica.
        assert_eq!(metrics.failed_ids.len(), metrics.failed());
        for id in &metrics.failed_ids {
            assert!(metrics.per_replica[0].assigned_ids.contains(id));
        }
    }

    #[test]
    fn crash_under_ticked_autoscaler_readmits_after_the_fleet_drains() {
        // Crash the replica holding the *only* remaining work right before
        // the fleet would otherwise be fully drained: the tick schedule must
        // outlive the pending re-admission or the buffered requests vanish.
        let scfg = SchedulerConfig::default();
        let trace = steady_trace(12, 40.0);
        let metrics = FleetController::new(FleetConfig::default())
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_autoscaler(SloAutoscaler::new(1e12))
            .with_faults(crash_at(250.0, 1), RecoveryPolicy::readmit_after(5_000.0))
            .run(&trace);
        assert_eq!(
            metrics.completed + metrics.rejected + metrics.failed(),
            12,
            "{:?}",
            metrics.faults
        );
        assert_eq!(metrics.failed(), 0, "{:?}", metrics.faults);
        assert_eq!(metrics.completed, 12);
    }

    #[test]
    fn crash_with_replacement_commissions_through_the_warmup_path() {
        let scfg = SchedulerConfig::default();
        let trace = steady_trace(30, 20.0);
        let config = FleetConfig {
            warmup_ms: 300.0,
            ..FleetConfig::default()
        };
        let metrics = FleetController::new(config)
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_factory(move || single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_faults(
                crash_at(500.0, 0),
                RecoveryPolicy::readmit_and_replace(50.0),
            )
            .run(&trace);
        assert_eq!(metrics.completed, 30);
        assert_eq!(metrics.failed(), 0);
        let record = &metrics.faults[0];
        assert_eq!(record.replacement, Some(2));
        // Recovery covers both the re-admission transfer and the
        // replacement's warm-up: spawn + warmup + transfer.
        assert_eq!(record.recovered_at_ms, Some(500.0 + 300.0 + 50.0));
        assert_eq!(metrics.per_replica.len(), 3);
        assert_eq!(metrics.per_replica[2].spawned_ms, 500.0);
        assert_eq!(metrics.per_replica[2].ready_ms, 850.0);
    }

    #[test]
    fn link_degrade_diverts_routing_until_restored() {
        let scfg = SchedulerConfig::default();
        // Two requests inside the degrade window, two after it.
        let mk = |id: u64, arrival_ms: f64| Request {
            id,
            arrival_ms,
            prompt_len: 64,
            output_len: 8,
        };
        let trace = vec![mk(0, 100.0), mk(1, 200.0), mk(2, 2_000.0), mk(3, 2_100.0)];
        let config = FleetConfig {
            policy: DispatchPolicy::RoundRobin,
            ..FleetConfig::default()
        };
        let schedule = FaultSchedule::Scripted(vec![crate::faults::FaultSpec {
            at_ms: 50.0,
            kind: FaultKind::LinkDegrade {
                replica: 1,
                duration_ms: 1_000.0,
            },
        }]);
        let metrics = FleetController::new(config)
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_faults(schedule, RecoveryPolicy::default())
            .run(&trace);
        assert_eq!(metrics.completed, 4);
        // During the window only replica 0 is routable; after restoration
        // round-robin reaches replica 1 again.
        assert_eq!(metrics.per_replica[0].assigned_ids, vec![0, 1, 2]);
        assert_eq!(metrics.per_replica[1].assigned_ids, vec![3]);
        assert_eq!(metrics.faults[0].recovery_ms(), Some(1_000.0));
        assert_eq!(metrics.per_replica[1].retired_ms, None);
    }

    #[test]
    fn island_partition_degrades_every_listed_replica_at_once() {
        let scfg = SchedulerConfig::default();
        let mk = |id: u64, arrival_ms: f64| Request {
            id,
            arrival_ms,
            prompt_len: 64,
            output_len: 8,
        };
        let trace = vec![mk(0, 100.0), mk(1, 150.0), mk(2, 3_000.0)];
        let schedule = FaultSchedule::Scripted(vec![crate::faults::FaultSpec {
            at_ms: 50.0,
            kind: FaultKind::IslandPartition {
                island: 1,
                replicas: vec![1, 2],
                duration_ms: 1_000.0,
            },
        }]);
        let config = FleetConfig {
            policy: DispatchPolicy::RoundRobin,
            ..FleetConfig::default()
        };
        let metrics = FleetController::new(config)
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_faults(schedule, RecoveryPolicy::default())
            .run(&trace);
        assert_eq!(metrics.completed, 3);
        // Both partitioned replicas take nothing during the window; the
        // late request lands on a restored replica via round-robin.
        assert_eq!(metrics.per_replica[0].assigned_ids, vec![0, 1]);
        assert_eq!(
            metrics.per_replica[1].assigned + metrics.per_replica[2].assigned,
            1
        );
        assert_eq!(metrics.faults[0].recovery_ms(), Some(1_000.0));
    }

    #[test]
    fn empty_fault_schedule_is_inert() {
        let scfg = SchedulerConfig::default();
        let trace = steady_trace(20, 15.0);
        let plain = FleetController::new(FleetConfig::default())
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .run(&trace);
        let with_faults = FleetController::new(FleetConfig::default())
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_faults(FaultSchedule::none(), RecoveryPolicy::default())
            .run(&trace);
        // The full bit-for-bit pin lives in the `fault_equivalence` suite;
        // this is the smoke check.
        assert_eq!(plain.completed, with_faults.completed);
        assert_eq!(plain.makespan_ms, with_faults.makespan_ms);
        assert!(with_faults.faults.is_empty());
        assert!(with_faults.failed_ids.is_empty());
    }

    fn memory_model() -> MemoryModel {
        MemoryModel::new(
            &DeviceSpec::a100_40g(),
            EngineKind::Samoyeds,
            &MoeModelConfig::qwen2_moe(),
        )
    }

    fn disagg_cfg(prefill: Vec<usize>, decode: Vec<usize>) -> DisaggregationConfig {
        DisaggregationConfig::uniform(
            prefill,
            decode,
            memory_model(),
            KvLink {
                latency_us: 5.0,
                bandwidth_gbps: 50.0,
            },
        )
    }

    #[test]
    fn disaggregated_requests_hand_off_and_complete_on_decode_pods() {
        use crate::telemetry::{request_timelines, TraceRecorder};
        let scfg = SchedulerConfig::default();
        let trace = steady_trace(24, 20.0);
        let (sink, recorder) = SharedSink::new(TraceRecorder::new());
        let memory = memory_model();
        let metrics = FleetController::new(FleetConfig::default())
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_disaggregation(disagg_cfg(vec![0], vec![1]))
            .with_sink(sink)
            .run(&trace);
        assert_eq!(metrics.completed, trace.len());
        assert_eq!(metrics.rejected, 0);
        assert!(metrics.failed_ids.is_empty());
        let events = recorder.borrow().events();
        let started: Vec<(u64, f64)> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::KvTransferStarted { id, bytes, .. } => Some((*id, *bytes)),
                _ => None,
            })
            .collect();
        let landed = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::KvTransferComplete { .. }))
            .count();
        // Every multi-token request hands off exactly once, priced from the
        // memory model's KV sizing of its prompt.
        let multi = trace.iter().filter(|r| r.output_len > 1).count();
        assert_eq!(started.len(), multi);
        assert_eq!(landed, multi);
        for &(id, bytes) in &started {
            assert_eq!(bytes, memory.kv_bytes(trace[id as usize].prompt_len));
        }
        // Timelines merge both halves: full output on the decode pod with a
        // positive transfer phase.
        let timelines = request_timelines(&events);
        assert_eq!(timelines.len(), trace.len());
        for t in &timelines {
            let original = &trace[t.id as usize];
            assert_eq!(t.output_len, original.output_len);
            if original.output_len > 1 {
                assert_eq!(t.replica, 1, "handoffs finish on the decode pod");
                assert!(t.transfer_ms > 0.0);
            }
        }
    }

    #[test]
    fn handoffs_route_to_the_decode_pod_with_the_most_kv_headroom() {
        use crate::telemetry::TraceRecorder;
        let scfg = SchedulerConfig::default();
        let trace = steady_trace(30, 40.0);
        let (sink, recorder) = SharedSink::new(TraceRecorder::new());
        let metrics = FleetController::new(FleetConfig::default())
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_disaggregation(disagg_cfg(vec![0], vec![1, 2]))
            .with_sink(sink)
            .run(&trace);
        assert_eq!(metrics.completed, trace.len());
        // Most-free-KV routing under a steady load alternates rather than
        // piling every handoff on one pod: both decode pods take traffic.
        let events = recorder.borrow().events();
        let mut targets: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::KvTransferStarted { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        targets.sort_unstable();
        targets.dedup();
        assert_eq!(targets, vec![1, 2], "both decode pods receive handoffs");
    }

    #[test]
    fn disagg_validation_catches_bad_role_partitions() {
        let scfg = SchedulerConfig::default();
        let trace = steady_trace(4, 10.0);
        let two_pods = || {
            FleetController::new(FleetConfig::default())
                .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
                .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
        };
        // Overlap: a replica cannot be both roles.
        let report = two_pods()
            .with_disaggregation(disagg_cfg(vec![0], vec![0]))
            .validate(&trace);
        assert!(
            report.has("disagg::overlapping-roles"),
            "{}",
            report.render()
        );
        // Roles must bind to initial replicas.
        let report = two_pods()
            .with_disaggregation(disagg_cfg(vec![0], vec![5]))
            .validate(&trace);
        assert!(
            report.has("disagg::role-out-of-range"),
            "{}",
            report.render()
        );
        // Decode pods without prefill pods can never admit anything.
        let report = two_pods()
            .with_disaggregation(disagg_cfg(vec![], vec![1]))
            .validate(&trace);
        assert!(report.has("disagg::empty-role"), "{}", report.render());
        // The link matrix must cover every prefill×decode pair.
        let mut cfg = disagg_cfg(vec![0], vec![1]);
        cfg.links = Vec::new();
        let report = two_pods().with_disaggregation(cfg).validate(&trace);
        assert!(report.has("disagg::link-shape"), "{}", report.render());
        // Link parameters must be physical.
        let mut cfg = disagg_cfg(vec![0], vec![1]);
        cfg.links[0][0].bandwidth_gbps = 0.0;
        let report = two_pods().with_disaggregation(cfg).validate(&trace);
        assert!(report.has("disagg::bad-link"), "{}", report.render());
        // A dense engine on a 12 GiB card cannot hold qwen2_moe: naming it
        // a decode pod is denied up front.
        let report = FleetController::new(FleetConfig::default())
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(
                DeviceSpec::rtx4070_super(),
                EngineKind::Transformers,
                &scfg,
            ))
            .with_disaggregation(disagg_cfg(vec![0], vec![1]))
            .validate(&trace);
        assert!(
            report.has("disagg::decode-cannot-hold-model"),
            "{}",
            report.render()
        );
        // Ratio 0 (no decode pods) and roleless replicas are warnings, not
        // denials: the co-located fallback is legitimate.
        let report = two_pods()
            .with_disaggregation(disagg_cfg(vec![0], vec![]))
            .validate(&trace);
        assert!(report.has("disagg::no-decode-pods"), "{}", report.render());
        assert_eq!(report.deny_count(), 0, "{}", report.render());
        let report = two_pods()
            .with_disaggregation(disagg_cfg(vec![0], vec![1]))
            .validate(&trace);
        assert_eq!(report.deny_count(), 0, "{}", report.render());
    }

    #[test]
    fn a_decode_pod_crash_fails_or_reroutes_in_flight_handoffs() {
        let scfg = SchedulerConfig::default();
        let trace = steady_trace(24, 30.0);
        // Fail-fast with the only decode pod crashed: in-flight handoffs
        // fail, and every request is still accounted for exactly once.
        let metrics = FleetController::new(FleetConfig::default())
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_disaggregation(disagg_cfg(vec![0], vec![1]))
            .with_faults(crash_at(400.0, 1), RecoveryPolicy::fail_fast())
            .run(&trace);
        assert!(!metrics.failed_ids.is_empty(), "the crash caught handoffs");
        assert_eq!(
            metrics.completed + metrics.rejected + metrics.failed_ids.len(),
            trace.len(),
            "completed + rejected + failed covers the offered trace"
        );
        // With a second decode pod and readmission, the crashed pod's work
        // re-routes instead: nothing is lost.
        let metrics = FleetController::new(FleetConfig::default())
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_replica(single(DeviceSpec::a100_40g(), EngineKind::Samoyeds, &scfg))
            .with_disaggregation(disagg_cfg(vec![0], vec![1, 2]))
            .with_faults(crash_at(400.0, 1), RecoveryPolicy::readmit_after(25.0))
            .run(&trace);
        assert_eq!(metrics.completed, trace.len(), "{:?}", metrics.failed_ids);
        assert!(metrics.failed_ids.is_empty());
    }
}
