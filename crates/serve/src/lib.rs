//! Continuous-batching serving simulator for the Samoyeds reproduction.
//!
//! The layer above `samoyeds_moe`: instead of costing one MoE/decoder layer
//! at a fixed batch size, this crate simulates a serving system — a request
//! trace with Poisson arrivals, a continuous-batching scheduler with chunked
//! prefill, admission control against the full-model memory budget, and
//! per-engine throughput / latency-percentile reports. This is the serving
//! regime the paper's maximum-batch study (Table 3) approximates statically
//! and that systems like vLLM-DS target dynamically.
//!
//! * [`backend`] — the [`ExecutionBackend`] trait (step pricing, memory
//!   budget, kernel support) and the [`SingleGpuBackend`] implementation;
//!   the cluster implementation lives in `samoyeds-dist`;
//! * [`request`] — request descriptions, lifecycle phases and timing records;
//! * [`trace`] — deterministic trace generation (arrival process + length
//!   distributions);
//! * [`memory`] — full-model memory accounting (weights, KV cache,
//!   activation workspace) per execution engine;
//! * [`batch`] — step-batch formation (decode-first, chunked prefill);
//! * [`scheduler`] — the continuous-batching scheduler and step cost model;
//! * [`metrics`] — percentile latency summaries (request latency, TTFT,
//!   per-output-token latency) and throughput;
//! * [`report`] — per-engine comparison on a shared trace, rendered as
//!   markdown;
//! * [`events`] — the deterministic event queue (next-event time advance)
//!   the fleet control plane runs on;
//! * [`faults`] — deterministic fault injection (replica crashes, link
//!   degradations, island partitions) and the recovery policy the fleet
//!   controller applies when they fire;
//! * [`telemetry`] — structured request/replica lifecycle tracing behind the
//!   [`TraceSink`] trait: an allocation-free default, a metrics registry
//!   with log-linear histograms, a Chrome trace-event exporter and
//!   per-request latency attribution;
//! * [`fleet`] — the online fleet control plane: heterogeneous
//!   `Box<dyn ExecutionBackend>` replicas behind a capability-aware
//!   dispatcher, with SLO-driven autoscaling and a scaling timeline;
//! * [`dispatch`] — the offline (static, identical-replica) dispatch shim
//!   kept for bit-for-bit compatibility with the pre-control-plane sweeps;
//! * [`validate`] — static experiment validation: the [`Diagnostic`] /
//!   [`ValidationReport`] engine that rejects ill-formed configurations
//!   (out-of-range fault targets, empty scaling bands, unachievable SLOs)
//!   before any event runs, surfacing every problem at once.
//!
//! ```
//! use samoyeds_gpu_sim::DeviceSpec;
//! use samoyeds_moe::config::MoeModelConfig;
//! use samoyeds_moe::engines::EngineKind;
//! use samoyeds_serve::{ServingSimulator, TraceConfig};
//!
//! let sim = ServingSimulator::new(DeviceSpec::a100_40g(), MoeModelConfig::qwen2_moe())
//!     .with_trace(TraceConfig { num_requests: 8, ..TraceConfig::default() });
//! let metrics = sim.metrics(EngineKind::Samoyeds);
//! assert!(metrics.servable);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod batch;
pub mod dispatch;
pub mod events;
pub mod faults;
pub mod fleet;
pub mod memory;
pub mod metrics;
pub mod report;
pub mod request;
pub mod scheduler;
pub mod telemetry;
pub mod trace;
pub mod validate;

pub use backend::{
    ExecutionBackend, MemoryBudget, OverlapModel, SingleGpuBackend, StepCost, StepWorkload,
};
pub use batch::BatchLimits;
pub use dispatch::{dispatch_trace, DispatchPolicy, ReplicaFleet};
pub use events::{EventQueue, FleetEvent};
pub use faults::{FaultKind, FaultRecord, FaultSchedule, FaultSpec, RecoveryPolicy, SeededFaults};
pub use fleet::{
    AutoscalePolicy, DisaggregationConfig, FleetConfig, FleetController, FleetMetrics,
    FleetObservation, KvLink, NoAutoscale, ReplicaBreakdown, ScaleDecision, ScaleEvent, ScaleKind,
    SloAutoscaler,
};
pub use memory::{MemoryModel, KV_DTYPE_BYTES};
pub use metrics::{latency_summary, LatencySummary, ServingMetrics};
pub use report::{compare_engines, render_markdown};
pub use request::{CompletedRequest, Phase, Request, RunningRequest};
pub use scheduler::{ReplicaDriver, Scheduler, SchedulerConfig, SimulationResult, StepRecord};
pub use telemetry::{
    chrome_trace_json, request_timelines, AttributionSummary, LogLinearHistogram, MetricsRegistry,
    NullSink, RequestTimeline, SharedSink, TickSnapshot, TraceEvent, TraceRecorder, TraceSink,
};
pub use trace::{BurstPhase, BurstyTraceConfig, TraceConfig};
pub use validate::{Diagnostic, Severity, Validate, ValidationReport};

use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::EngineKind;

/// Convenience front door: a device + model + trace + scheduler bundle.
#[derive(Debug, Clone)]
pub struct ServingSimulator {
    device: DeviceSpec,
    config: MoeModelConfig,
    trace: TraceConfig,
    scheduler: SchedulerConfig,
}

impl ServingSimulator {
    /// Simulator with default trace and scheduler settings.
    pub fn new(device: DeviceSpec, config: MoeModelConfig) -> Self {
        Self {
            device,
            config,
            trace: TraceConfig::default(),
            scheduler: SchedulerConfig::default(),
        }
    }

    /// Replace the trace configuration.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Replace the scheduler configuration.
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The model being served.
    pub fn config(&self) -> &MoeModelConfig {
        &self.config
    }

    /// The device serving it.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The single-GPU execution backend [`Self::simulate`] drives for
    /// `engine`.
    pub fn backend(&self, engine: EngineKind) -> SingleGpuBackend {
        SingleGpuBackend::new(self.device.clone(), &self.config, engine, &self.scheduler)
    }

    /// Run one engine over the trace and return the full simulation record.
    pub fn simulate(&self, engine: EngineKind) -> SimulationResult {
        Scheduler::from_backend(self.backend(engine), self.scheduler).run(&self.trace.generate())
    }

    /// Run one engine and summarise it.
    pub fn metrics(&self, engine: EngineKind) -> ServingMetrics {
        ServingMetrics::from_result(&self.simulate(engine))
    }

    /// Run several engines on the same trace and summarise each.
    pub fn compare(&self, engines: &[EngineKind]) -> Vec<ServingMetrics> {
        compare_engines(
            &self.device,
            &self.config,
            &self.trace,
            &self.scheduler,
            engines,
        )
    }
}
