//! Full-model memory accounting for the serving simulator.
//!
//! Extends the single-layer convention of `samoyeds_moe::memory` to a whole
//! model: resident weights are `num_layers` copies of one decoder layer's MoE
//! weights (under the engine's representation) plus the attention
//! projections, the KV cache holds every in-flight token on every layer, and
//! the transient activation workspace exists for one layer at a time (layers
//! execute sequentially). This is the budget the continuous-batching
//! scheduler admits requests against.

use crate::backend::MemoryBudget;
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::{Engine, EngineKind};
use samoyeds_moe::memory::USABLE_FRACTION;

/// Bytes per KV-cache element (bf16/fp16). The single source of truth for
/// the KV dtype width: both the resident-cache accounting below and the
/// per-decode-token read in the backend cost model route through this
/// constant, so the two can never disagree about the cache's byte width.
pub const KV_DTYPE_BYTES: f64 = 2.0;

/// Memory model of one (device, engine, model) combination.
#[derive(Debug, Clone)]
pub struct MemoryModel {
    engine: Engine,
    config: MoeModelConfig,
    weight_bytes_total: f64,
    kv_bytes_per_token: f64,
    budget_bytes: f64,
}

impl MemoryModel {
    /// Build the memory model.
    pub fn new(device: &DeviceSpec, engine_kind: EngineKind, config: &MoeModelConfig) -> Self {
        let engine = Engine::new(engine_kind, device.clone());
        let layers = config.num_layers as f64;
        let per_layer_weights =
            engine.weight_bytes(config) + config.params_per_attention() as f64 * 2.0;
        Self {
            weight_bytes_total: per_layer_weights * layers,
            // K and V per token per layer at the shared KV dtype width.
            kv_bytes_per_token: 2.0 * config.hidden_size as f64 * KV_DTYPE_BYTES * layers,
            budget_bytes: device.mem_capacity_gib * 1024.0 * 1024.0 * 1024.0 * USABLE_FRACTION,
            engine,
            config: config.clone(),
        }
    }

    /// Usable device memory in bytes.
    pub fn budget_bytes(&self) -> f64 {
        self.budget_bytes
    }

    /// Resident full-model weight bytes (MoE + attention, all layers).
    pub fn weight_bytes(&self) -> f64 {
        self.weight_bytes_total
    }

    /// KV-cache bytes for `tokens` resident tokens (all layers).
    pub fn kv_bytes(&self, tokens: usize) -> f64 {
        tokens as f64 * self.kv_bytes_per_token
    }

    /// Transient activation workspace for a step over `step_tokens` tokens
    /// (one layer live at a time).
    pub fn activation_bytes(&self, step_tokens: usize) -> f64 {
        self.engine.activation_bytes(&self.config, step_tokens)
    }

    /// Total footprint with `kv_tokens` resident and a step over
    /// `step_tokens` in flight.
    pub fn footprint_bytes(&self, kv_tokens: usize, step_tokens: usize) -> f64 {
        self.weight_bytes_total + self.kv_bytes(kv_tokens) + self.activation_bytes(step_tokens)
    }

    /// Whether that footprint fits the budget.
    pub fn fits(&self, kv_tokens: usize, step_tokens: usize) -> bool {
        self.footprint_bytes(kv_tokens, step_tokens) <= self.budget_bytes
    }

    /// Whether the engine can hold the model at all (weights plus a minimal
    /// one-token step).
    pub fn can_hold_model(&self) -> bool {
        self.fits(1, 1)
    }
}

impl MemoryBudget for MemoryModel {
    fn budget_bytes(&self) -> f64 {
        MemoryModel::budget_bytes(self)
    }

    fn footprint_bytes(&self, kv_tokens: usize, step_tokens: usize) -> f64 {
        MemoryModel::footprint_bytes(self, kv_tokens, step_tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samoyeds_weights_are_a_fraction_of_dense() {
        let device = DeviceSpec::a100_40g();
        let config = MoeModelConfig::qwen2_moe();
        let dense = MemoryModel::new(&device, EngineKind::Transformers, &config);
        let sparse = MemoryModel::new(&device, EngineKind::Samoyeds, &config);
        assert!(sparse.weight_bytes() < dense.weight_bytes() * 0.45);
        // Same KV cost either way.
        assert_eq!(sparse.kv_bytes(1000), dense.kv_bytes(1000));
    }

    #[test]
    fn footprint_grows_with_tokens_and_respects_budget_check() {
        let device = DeviceSpec::a100_40g();
        let config = MoeModelConfig::qwen2_moe();
        let m = MemoryModel::new(&device, EngineKind::Samoyeds, &config);
        assert!(m.footprint_bytes(100, 10) < m.footprint_bytes(10_000, 10));
        assert!(m.footprint_bytes(100, 10) < m.footprint_bytes(100, 1000));
        assert!(m.can_hold_model());
        assert!(m.fits(100, 10));
    }

    #[test]
    fn kv_bytes_route_through_the_shared_dtype_constant() {
        // Pins the satellite fix: K + V per token per layer, each element
        // KV_DTYPE_BYTES wide. If either the memory model or the backend's
        // decode-read cost switched dtype unilaterally, this breaks.
        let config = MoeModelConfig::qwen2_moe();
        let m = MemoryModel::new(&DeviceSpec::a100_40g(), EngineKind::Samoyeds, &config);
        let expected_per_token =
            2.0 * config.hidden_size as f64 * KV_DTYPE_BYTES * config.num_layers as f64;
        assert_eq!(m.kv_bytes(1), expected_per_token);
        assert_eq!(m.kv_bytes(1000), expected_per_token * 1000.0);
        // The trait view agrees with the inherent methods.
        let budget: &dyn MemoryBudget = &m;
        assert_eq!(budget.budget_bytes(), m.budget_bytes());
        assert_eq!(budget.footprint_bytes(64, 8), m.footprint_bytes(64, 8));
        assert!(budget.can_hold_model());
    }

    #[test]
    fn dense_full_model_ooms_on_the_small_device_but_samoyeds_fits() {
        // The serving-level Table 3 analogue: on a 12 GiB card the dense
        // Qwen2-MoE weights alone exceed memory while the Samoyeds compressed
        // form leaves KV headroom.
        let device = DeviceSpec::rtx4070_super();
        let config = MoeModelConfig::qwen2_moe();
        let dense = MemoryModel::new(&device, EngineKind::Transformers, &config);
        let sparse = MemoryModel::new(&device, EngineKind::Samoyeds, &config);
        assert!(!dense.can_hold_model());
        assert!(sparse.can_hold_model());
    }
}
