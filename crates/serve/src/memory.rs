//! Full-model memory accounting for the serving simulator.
//!
//! Extends the single-layer convention of `samoyeds_moe::memory` to a whole
//! model: resident weights are `num_layers` copies of one decoder layer's MoE
//! weights (under the engine's representation) plus the attention
//! projections, the KV cache holds every in-flight token on every layer, and
//! the transient activation workspace exists for one layer at a time (layers
//! execute sequentially). This is the budget the continuous-batching
//! scheduler admits requests against.

use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::{Engine, EngineKind};
use samoyeds_moe::memory::USABLE_FRACTION;

/// Memory model of one (device, engine, model) combination.
#[derive(Debug, Clone)]
pub struct MemoryModel {
    engine: Engine,
    config: MoeModelConfig,
    weight_bytes_total: f64,
    kv_bytes_per_token: f64,
    budget_bytes: f64,
}

impl MemoryModel {
    /// Build the memory model.
    pub fn new(device: &DeviceSpec, engine_kind: EngineKind, config: &MoeModelConfig) -> Self {
        let engine = Engine::new(engine_kind, device.clone());
        let layers = config.num_layers as f64;
        let per_layer_weights =
            engine.weight_bytes(config) + config.params_per_attention() as f64 * 2.0;
        Self {
            weight_bytes_total: per_layer_weights * layers,
            // K and V at bf16 per token per layer.
            kv_bytes_per_token: 2.0 * config.hidden_size as f64 * 2.0 * layers,
            budget_bytes: device.mem_capacity_gib * 1024.0 * 1024.0 * 1024.0 * USABLE_FRACTION,
            engine,
            config: config.clone(),
        }
    }

    /// Usable device memory in bytes.
    pub fn budget_bytes(&self) -> f64 {
        self.budget_bytes
    }

    /// Resident full-model weight bytes (MoE + attention, all layers).
    pub fn weight_bytes(&self) -> f64 {
        self.weight_bytes_total
    }

    /// KV-cache bytes for `tokens` resident tokens (all layers).
    pub fn kv_bytes(&self, tokens: usize) -> f64 {
        tokens as f64 * self.kv_bytes_per_token
    }

    /// Transient activation workspace for a step over `step_tokens` tokens
    /// (one layer live at a time).
    pub fn activation_bytes(&self, step_tokens: usize) -> f64 {
        self.engine.activation_bytes(&self.config, step_tokens)
    }

    /// Total footprint with `kv_tokens` resident and a step over
    /// `step_tokens` in flight.
    pub fn footprint_bytes(&self, kv_tokens: usize, step_tokens: usize) -> f64 {
        self.weight_bytes_total + self.kv_bytes(kv_tokens) + self.activation_bytes(step_tokens)
    }

    /// Whether that footprint fits the budget.
    pub fn fits(&self, kv_tokens: usize, step_tokens: usize) -> bool {
        self.footprint_bytes(kv_tokens, step_tokens) <= self.budget_bytes
    }

    /// Whether the engine can hold the model at all (weights plus a minimal
    /// one-token step).
    pub fn can_hold_model(&self) -> bool {
        self.fits(1, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samoyeds_weights_are_a_fraction_of_dense() {
        let device = DeviceSpec::a100_40g();
        let config = MoeModelConfig::qwen2_moe();
        let dense = MemoryModel::new(&device, EngineKind::Transformers, &config);
        let sparse = MemoryModel::new(&device, EngineKind::Samoyeds, &config);
        assert!(sparse.weight_bytes() < dense.weight_bytes() * 0.45);
        // Same KV cost either way.
        assert_eq!(sparse.kv_bytes(1000), dense.kv_bytes(1000));
    }

    #[test]
    fn footprint_grows_with_tokens_and_respects_budget_check() {
        let device = DeviceSpec::a100_40g();
        let config = MoeModelConfig::qwen2_moe();
        let m = MemoryModel::new(&device, EngineKind::Samoyeds, &config);
        assert!(m.footprint_bytes(100, 10) < m.footprint_bytes(10_000, 10));
        assert!(m.footprint_bytes(100, 10) < m.footprint_bytes(100, 1000));
        assert!(m.can_hold_model());
        assert!(m.fits(100, 10));
    }

    #[test]
    fn dense_full_model_ooms_on_the_small_device_but_samoyeds_fits() {
        // The serving-level Table 3 analogue: on a 12 GiB card the dense
        // Qwen2-MoE weights alone exceed memory while the Samoyeds compressed
        // form leaves KV headroom.
        let device = DeviceSpec::rtx4070_super();
        let config = MoeModelConfig::qwen2_moe();
        let dense = MemoryModel::new(&device, EngineKind::Transformers, &config);
        let sparse = MemoryModel::new(&device, EngineKind::Samoyeds, &config);
        assert!(!dense.can_hold_model());
        assert!(sparse.can_hold_model());
    }
}
