//! Latency and throughput summaries over a simulation result.

use crate::scheduler::SimulationResult;
use samoyeds_moe::engines::EngineKind;
use serde::{Deserialize, Serialize};

/// Percentile summary of a latency distribution (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Maximum.
    pub max_ms: f64,
}

impl LatencySummary {
    /// An all-zero summary (no samples).
    pub fn empty() -> Self {
        Self {
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            mean_ms: 0.0,
            max_ms: 0.0,
        }
    }
}

/// Nearest-rank percentile of `sorted` (ascending), `q` in `[0, 1]`.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Summarise a latency sample set.
pub fn latency_summary(latencies: &[f64]) -> LatencySummary {
    if latencies.is_empty() {
        return LatencySummary::empty();
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    LatencySummary {
        p50_ms: percentile(&sorted, 0.50),
        p95_ms: percentile(&sorted, 0.95),
        p99_ms: percentile(&sorted, 0.99),
        mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
        max_ms: *sorted.last().expect("non-empty"),
    }
}

/// Headline serving metrics of one engine over one trace.
#[derive(Debug, Clone)]
pub struct ServingMetrics {
    /// The engine measured.
    pub engine: EngineKind,
    /// Completed requests.
    pub completed: usize,
    /// Requests the scheduler could never admit (or the whole trace for an
    /// unsupported engine/model pair).
    pub rejected: usize,
    /// Generated (output) tokens per second over the makespan.
    pub output_tokens_per_s: f64,
    /// Prompt + output tokens per second over the makespan.
    pub processed_tokens_per_s: f64,
    /// End-to-end request latency distribution.
    pub request_latency: LatencySummary,
    /// Time-to-first-token distribution.
    pub ttft: LatencySummary,
    /// Total simulated time.
    pub makespan_ms: f64,
    /// Peak memory in use.
    pub peak_memory_gib: f64,
    /// Enforced memory budget.
    pub budget_gib: f64,
    /// False when the engine cannot run the model (NS) or cannot hold even a
    /// single minimal request (OOM).
    pub servable: bool,
}

impl ServingMetrics {
    /// Summarise a simulation result.
    pub fn from_result(result: &SimulationResult) -> Self {
        const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
        let latencies: Vec<f64> = result.completed.iter().map(|c| c.latency_ms()).collect();
        let ttfts: Vec<f64> = result.completed.iter().map(|c| c.ttft_ms()).collect();
        let makespan_s = result.makespan_ms / 1e3;
        let per_s = |tokens: usize| {
            if makespan_s > 0.0 {
                tokens as f64 / makespan_s
            } else {
                0.0
            }
        };
        Self {
            engine: result.engine,
            completed: result.completed.len(),
            rejected: result.rejected.len(),
            output_tokens_per_s: per_s(result.output_tokens()),
            processed_tokens_per_s: per_s(result.processed_tokens()),
            request_latency: latency_summary(&latencies),
            ttft: latency_summary(&ttfts),
            makespan_ms: result.makespan_ms,
            peak_memory_gib: result.peak_memory_bytes / GIB,
            budget_gib: result.budget_bytes / GIB,
            servable: result.supported && !result.completed.is_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let s = latency_summary(&samples);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_and_singleton_samples() {
        assert_eq!(latency_summary(&[]), LatencySummary::empty());
        let s = latency_summary(&[7.0]);
        assert_eq!(s.p50_ms, 7.0);
        assert_eq!(s.p99_ms, 7.0);
        assert_eq!(s.max_ms, 7.0);
    }

    #[test]
    fn percentiles_are_monotone() {
        let samples = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let s = latency_summary(&samples);
        assert!(s.p50_ms <= s.p95_ms);
        assert!(s.p95_ms <= s.p99_ms);
        assert!(s.p99_ms <= s.max_ms);
    }
}
