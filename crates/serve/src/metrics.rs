//! Latency and throughput summaries over a simulation result.

use crate::scheduler::SimulationResult;
use samoyeds_moe::engines::EngineKind;
use serde::{Deserialize, Serialize};

/// Percentile summary of a latency distribution (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Maximum.
    pub max_ms: f64,
}

impl LatencySummary {
    /// An all-zero summary (no samples).
    pub fn empty() -> Self {
        Self {
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            mean_ms: 0.0,
            max_ms: 0.0,
        }
    }
}

/// Linear-interpolated percentile of `sorted` (ascending), `q` in `[0, 1]`
/// (the "exclusive of extrapolation" convention of numpy's default: the
/// sample at fractional rank `q * (len - 1)` with linear interpolation
/// between the neighbouring order statistics).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let pos = q.clamp(0.0, 1.0) * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(n - 1);
            let frac = pos - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// Summarise a latency sample set.
pub fn latency_summary(latencies: &[f64]) -> LatencySummary {
    if latencies.is_empty() {
        return LatencySummary::empty();
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    LatencySummary {
        p50_ms: percentile(&sorted, 0.50),
        p95_ms: percentile(&sorted, 0.95),
        p99_ms: percentile(&sorted, 0.99),
        mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
        max_ms: *sorted.last().expect("non-empty"),
    }
}

/// Headline serving metrics of one engine over one trace.
#[derive(Debug, Clone)]
pub struct ServingMetrics {
    /// The engine measured.
    pub engine: EngineKind,
    /// Completed requests.
    pub completed: usize,
    /// Requests the scheduler could never admit (or the whole trace for an
    /// unsupported engine/model pair).
    pub rejected: usize,
    /// Generated (output) tokens per second over the makespan.
    pub output_tokens_per_s: f64,
    /// Prompt + output tokens per second over the makespan.
    pub processed_tokens_per_s: f64,
    /// End-to-end request latency distribution.
    pub request_latency: LatencySummary,
    /// Time-to-first-token distribution.
    pub ttft: LatencySummary,
    /// Per-output-token (inter-token decode) latency distribution, over
    /// requests that decode at least two tokens.
    pub tpot: LatencySummary,
    /// Total simulated time.
    pub makespan_ms: f64,
    /// Peak memory in use.
    pub peak_memory_gib: f64,
    /// Enforced memory budget.
    pub budget_gib: f64,
    /// False when the engine cannot run the model (NS) or cannot hold even a
    /// single minimal request (OOM).
    pub servable: bool,
}

impl ServingMetrics {
    /// Summarise a simulation result.
    pub fn from_result(result: &SimulationResult) -> Self {
        const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
        let latencies: Vec<f64> = result.completed.iter().map(|c| c.latency_ms()).collect();
        let ttfts: Vec<f64> = result.completed.iter().map(|c| c.ttft_ms()).collect();
        let tpots: Vec<f64> = result
            .completed
            .iter()
            .filter_map(|c| c.tpot_ms())
            .collect();
        let makespan_s = result.makespan_ms / 1e3;
        let per_s = |tokens: usize| {
            if makespan_s > 0.0 {
                tokens as f64 / makespan_s
            } else {
                0.0
            }
        };
        Self {
            engine: result.engine,
            completed: result.completed.len(),
            rejected: result.rejected.len(),
            output_tokens_per_s: per_s(result.output_tokens()),
            processed_tokens_per_s: per_s(result.processed_tokens()),
            request_latency: latency_summary(&latencies),
            ttft: latency_summary(&ttfts),
            tpot: latency_summary(&tpots),
            makespan_ms: result.makespan_ms,
            peak_memory_gib: result.peak_memory_bytes / GIB,
            budget_gib: result.budget_bytes / GIB,
            servable: result.supported && !result.completed.is_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_linearly_interpolated() {
        // Known vector 1..=100: with the fractional-rank q*(n-1) convention,
        // p50 falls exactly between the 50th and 51st order statistics, and
        // p95/p99 interpolate 5%/1% into their bracketing samples.
        let samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let s = latency_summary(&samples);
        assert!((s.p50_ms - 50.5).abs() < 1e-12, "p50 {}", s.p50_ms);
        assert!((s.p95_ms - 95.05).abs() < 1e-12, "p95 {}", s.p95_ms);
        assert!((s.p99_ms - 99.01).abs() < 1e-12, "p99 {}", s.p99_ms);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        // Interpolation between two samples, not nearest rank.
        let two = latency_summary(&[10.0, 20.0]);
        assert!((two.p50_ms - 15.0).abs() < 1e-12);
        assert!((two.p95_ms - 19.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_samples() {
        assert_eq!(latency_summary(&[]), LatencySummary::empty());
        // A single sample is every percentile.
        let s = latency_summary(&[7.0]);
        assert_eq!(s.p50_ms, 7.0);
        assert_eq!(s.p95_ms, 7.0);
        assert_eq!(s.p99_ms, 7.0);
        assert_eq!(s.max_ms, 7.0);
        assert_eq!(s.mean_ms, 7.0);
    }

    #[test]
    fn boundary_interpolation_is_exact_and_nan_free() {
        // Ranks that land exactly on an order statistic take it verbatim —
        // the interpolation fraction is 0, so no neighbour arithmetic can
        // smear the value (or manufacture a NaN from a 0 * inf product).
        let samples: Vec<f64> = (0..=100).map(|v| v as f64).collect();
        let s = latency_summary(&samples);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);

        // Degenerate distributions (all samples equal) collapse every
        // percentile to that value, finitely.
        let flat = latency_summary(&[4.25; 17]);
        for v in [
            flat.p50_ms,
            flat.p95_ms,
            flat.p99_ms,
            flat.mean_ms,
            flat.max_ms,
        ] {
            assert_eq!(v, 4.25);
        }

        // Extreme-but-finite magnitudes stay finite through the
        // interpolation and the mean.
        let wide = latency_summary(&[f64::MIN_POSITIVE, 1e-9, 1.0, 1e12, f64::MAX / 4.0]);
        for v in [
            wide.p50_ms,
            wide.p95_ms,
            wide.p99_ms,
            wide.mean_ms,
            wide.max_ms,
        ] {
            assert!(v.is_finite(), "non-finite summary value {v}");
        }
        assert_eq!(wide.max_ms, f64::MAX / 4.0);
    }

    #[test]
    fn percentiles_are_monotone() {
        let samples = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let s = latency_summary(&samples);
        assert!(s.p50_ms <= s.p95_ms);
        assert!(s.p95_ms <= s.p99_ms);
        assert!(s.p99_ms <= s.max_ms);
    }
}
