//! Per-engine serving comparison and markdown rendering.

use crate::metrics::ServingMetrics;
use crate::scheduler::{Scheduler, SchedulerConfig};
use crate::trace::TraceConfig;
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::EngineKind;

/// Simulate every engine on the same trace and return their metrics in the
/// given order.
pub fn compare_engines(
    device: &DeviceSpec,
    config: &MoeModelConfig,
    trace_config: &TraceConfig,
    scheduler_config: &SchedulerConfig,
    engines: &[EngineKind],
) -> Vec<ServingMetrics> {
    let trace = trace_config.generate();
    engines
        .iter()
        .map(|&kind| {
            let scheduler = Scheduler::new(device.clone(), config.clone(), kind, *scheduler_config);
            ServingMetrics::from_result(&scheduler.run(&trace))
        })
        .collect()
}

/// Render a markdown table over per-engine metrics.
pub fn render_markdown(model: &str, device: &str, metrics: &[ServingMetrics]) -> Vec<String> {
    let mut rows = vec![
        format!("Serving report: {model} on {device}"),
        "| Engine | Completed | tok/s (output) | tok/s (total) | p50 ms | p95 ms | p99 ms | TTFT p50 ms | TTFT p95 ms | TPOT p50 ms | TPOT p95 ms | Peak GiB |"
            .to_string(),
        "|---|---|---|---|---|---|---|---|---|---|---|---|".to_string(),
    ];
    for m in metrics {
        if !m.servable {
            rows.push(format!(
                "| {} | NS/OOM | - | - | - | - | - | - | - | - | - | - |",
                m.engine.name()
            ));
            continue;
        }
        rows.push(format!(
            "| {} | {} | {:.0} | {:.0} | {:.0} | {:.0} | {:.0} | {:.0} | {:.0} | {:.1} | {:.1} | {:.1} |",
            m.engine.name(),
            m.completed,
            m.output_tokens_per_s,
            m.processed_tokens_per_s,
            m.request_latency.p50_ms,
            m.request_latency.p95_ms,
            m.request_latency.p99_ms,
            m.ttft.p50_ms,
            m.ttft.p95_ms,
            m.tpot.p50_ms,
            m.tpot.p95_ms,
            m.peak_memory_gib,
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_marks_unsupported_engines() {
        let device = DeviceSpec::a100_40g();
        let config = MoeModelConfig::openmoe_34b(); // ReLU: NS for vLLM-DS
        let trace = TraceConfig {
            num_requests: 3,
            prompt_len_range: (8, 16),
            output_len_range: (2, 4),
            ..TraceConfig::default()
        };
        let metrics = compare_engines(
            &device,
            &config,
            &trace,
            &SchedulerConfig::default(),
            &[EngineKind::VllmDs],
        );
        assert!(!metrics[0].servable);
        let rows = render_markdown(&config.name, &device.name, &metrics);
        assert!(rows.iter().any(|r| r.contains("NS/OOM")), "{rows:?}");
    }
}
