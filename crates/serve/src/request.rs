//! Request descriptions and their lifecycle state inside the scheduler.

use serde::{Deserialize, Serialize};

/// One inference request of a serving trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Trace-unique identifier (monotone in arrival order).
    pub id: u64,
    /// Arrival time in milliseconds since trace start.
    pub arrival_ms: f64,
    /// Prompt length in tokens (prefill work), at least 1.
    pub prompt_len: usize,
    /// Output length in tokens (decode work), at least 1.
    pub output_len: usize,
}

impl Request {
    /// Total KV-cache footprint of the request in tokens once fully decoded.
    pub fn total_tokens(&self) -> usize {
        self.prompt_len + self.output_len
    }
}

/// Lifecycle phase of an admitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// The prompt is still being prefilled (possibly in chunks).
    Prefill,
    /// The prompt is processed; output tokens are produced one per step.
    Decode,
    /// All output tokens have been produced.
    Finished,
}

/// An admitted request with its execution progress.
#[derive(Debug, Clone)]
pub struct RunningRequest {
    /// The underlying trace request.
    pub request: Request,
    /// Time the scheduler admitted the request.
    pub admitted_ms: f64,
    /// Prompt tokens prefilled so far.
    pub prefilled: usize,
    /// Output tokens produced so far. The first output token is produced by
    /// the step that completes the prefill.
    pub decoded: usize,
    /// Time the first output token was produced, once known.
    pub first_token_ms: Option<f64>,
}

impl RunningRequest {
    /// Admit `request` at time `now`.
    pub fn new(request: Request, now: f64) -> Self {
        Self {
            request,
            admitted_ms: now,
            prefilled: 0,
            decoded: 0,
            first_token_ms: None,
        }
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> Phase {
        if self.decoded >= self.request.output_len {
            Phase::Finished
        } else if self.prefilled < self.request.prompt_len {
            Phase::Prefill
        } else {
            Phase::Decode
        }
    }

    /// Tokens currently resident in the KV cache for this request.
    pub fn context_tokens(&self) -> usize {
        self.prefilled + self.decoded
    }

    /// Prompt tokens still to prefill.
    pub fn prompt_remaining(&self) -> usize {
        self.request.prompt_len - self.prefilled
    }
}

/// Timing record of one completed request.
#[derive(Debug, Clone, Copy)]
pub struct CompletedRequest {
    /// The underlying trace request.
    pub request: Request,
    /// Time the scheduler admitted the request.
    pub admitted_ms: f64,
    /// Time the first output token was produced.
    pub first_token_ms: f64,
    /// Time the last output token was produced.
    pub finished_ms: f64,
}

impl CompletedRequest {
    /// End-to-end request latency (arrival to last token).
    pub fn latency_ms(&self) -> f64 {
        self.finished_ms - self.request.arrival_ms
    }

    /// Time to first token (arrival to first output token).
    pub fn ttft_ms(&self) -> f64 {
        self.first_token_ms - self.request.arrival_ms
    }

    /// Time spent waiting in the queue before admission.
    pub fn queueing_ms(&self) -> f64 {
        self.admitted_ms - self.request.arrival_ms
    }

    /// Mean per-output-token (inter-token) latency of the decode phase:
    /// the time from the first to the last output token, divided by the
    /// number of decode gaps. `None` for single-token outputs, which have
    /// no inter-token gap.
    pub fn tpot_ms(&self) -> Option<f64> {
        if self.request.output_len < 2 {
            return None;
        }
        Some((self.finished_ms - self.first_token_ms) / (self.request.output_len - 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> Request {
        Request {
            id: 0,
            arrival_ms: 10.0,
            prompt_len: 4,
            output_len: 3,
        }
    }

    #[test]
    fn phase_transitions_follow_progress() {
        let mut r = RunningRequest::new(request(), 12.0);
        assert_eq!(r.phase(), Phase::Prefill);
        assert_eq!(r.prompt_remaining(), 4);
        r.prefilled = 4;
        r.decoded = 1; // prefill completion produces the first output token
        assert_eq!(r.phase(), Phase::Decode);
        assert_eq!(r.context_tokens(), 5);
        r.decoded = 3;
        assert_eq!(r.phase(), Phase::Finished);
    }

    #[test]
    fn completed_request_latencies() {
        let c = CompletedRequest {
            request: request(),
            admitted_ms: 15.0,
            first_token_ms: 40.0,
            finished_ms: 100.0,
        };
        assert_eq!(c.latency_ms(), 90.0);
        assert_eq!(c.ttft_ms(), 30.0);
        assert_eq!(c.queueing_ms(), 5.0);
        // 3 output tokens -> 2 decode gaps over 60 ms.
        assert_eq!(c.tpot_ms(), Some(30.0));
        let single = CompletedRequest {
            request: Request {
                output_len: 1,
                ..request()
            },
            admitted_ms: 15.0,
            first_token_ms: 40.0,
            finished_ms: 40.0,
        };
        assert_eq!(single.tpot_ms(), None);
    }
}
