//! The continuous-batching scheduler: admission under the backend's memory
//! budget, chunked-prefill/decode interleaving, and progress accounting.
//!
//! The scheduler is pure policy. Everything physical — step pricing, memory
//! footprints, kernel support — lives behind
//! [`ExecutionBackend`](crate::backend::ExecutionBackend): the simulated
//! clock advances by whatever the backend predicts for each step's workload
//! (single-GPU engine cost, or per-GPU straggler compute plus all-to-all
//! collectives for a cluster). All randomness (routing) is seeded inside the
//! backend, so a simulation is a pure function of its inputs.

use std::collections::VecDeque;

use crate::backend::{ExecutionBackend, MemoryBudget, SingleGpuBackend, StepWorkload};
use crate::batch::{build_step, BatchLimits};
use crate::request::{CompletedRequest, Request, RunningRequest};
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::attention::AttentionKind;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::EngineKind;
use serde::{Deserialize, Serialize};

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Per-step batching limits.
    pub limits: BatchLimits,
    /// Attention implementation used by every engine.
    pub attention: AttentionKind,
    /// Seed for the per-step routing plans.
    pub routing_seed: u64,
    /// Fixed per-step scheduling/launch overhead in milliseconds.
    pub step_overhead_ms: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            limits: BatchLimits::default(),
            attention: AttentionKind::Flash,
            routing_seed: 42,
            step_overhead_ms: 0.05,
        }
    }
}

/// One executed engine step, for inspection and invariant tests.
#[derive(Debug, Clone, Copy)]
pub struct StepRecord {
    /// Simulated time at the start of the step.
    pub start_ms: f64,
    /// Predicted duration of the step.
    pub time_ms: f64,
    /// Portion of the step spent in inter-GPU collectives (zero on a
    /// single-GPU backend).
    pub collective_ms: f64,
    /// Prefill tokens processed.
    pub prefill_tokens: usize,
    /// Decode tokens processed.
    pub decode_tokens: usize,
    /// KV-resident tokens after the step.
    pub kv_tokens: usize,
    /// Memory in use during the step under the backend's budget model
    /// (whole model for a single GPU, straggler GPU for a cluster).
    pub memory_bytes: f64,
    /// Concurrently admitted requests during the step.
    pub running: usize,
}

/// Outcome of simulating one engine over one trace.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// The engine simulated.
    pub engine: EngineKind,
    /// Requests that finished, in completion order.
    pub completed: Vec<CompletedRequest>,
    /// Requests that could never fit the memory budget (or an unsupported
    /// engine/model pair rejects the whole trace).
    pub rejected: Vec<Request>,
    /// Requests admitted over the run (= completed when the run drains).
    pub admitted: usize,
    /// Every executed step.
    pub steps: Vec<StepRecord>,
    /// Simulated time at which the last request finished.
    pub makespan_ms: f64,
    /// Peak memory in use across all steps.
    pub peak_memory_bytes: f64,
    /// The memory budget the scheduler enforced.
    pub budget_bytes: f64,
    /// False when the engine has no kernels for the model (NS) — nothing is
    /// simulated in that case.
    pub supported: bool,
}

impl SimulationResult {
    /// Output tokens produced across completed requests.
    pub fn output_tokens(&self) -> usize {
        self.completed.iter().map(|c| c.request.output_len).sum()
    }

    /// Prompt + output tokens processed across completed requests.
    pub fn processed_tokens(&self) -> usize {
        self.completed
            .iter()
            .map(|c| c.request.total_tokens())
            .sum()
    }

    /// Total time spent in collectives across all steps.
    pub fn collective_ms(&self) -> f64 {
        self.steps.iter().map(|s| s.collective_ms).sum()
    }
}

/// Continuous-batching scheduler over one execution backend.
#[derive(Debug, Clone)]
pub struct Scheduler<B: ExecutionBackend = SingleGpuBackend> {
    backend: B,
    scfg: SchedulerConfig,
}

impl Scheduler<SingleGpuBackend> {
    /// Build a single-GPU scheduler for one (device, model, engine) triple —
    /// the original front door, now routed through [`SingleGpuBackend`].
    ///
    /// # Panics
    /// Panics if any [`BatchLimits`] field is zero (see
    /// [`Scheduler::from_backend`]).
    pub fn new(
        device: DeviceSpec,
        config: MoeModelConfig,
        engine_kind: EngineKind,
        scfg: SchedulerConfig,
    ) -> Self {
        Self::from_backend(
            SingleGpuBackend::new(device, &config, engine_kind, &scfg),
            scfg,
        )
    }
}

impl<B: ExecutionBackend> Scheduler<B> {
    /// Build a scheduler over an arbitrary backend. The model being served
    /// is the backend's own ([`ExecutionBackend::model`]) — the scheduler
    /// holds no second copy that could disagree with the step pricing.
    ///
    /// # Panics
    /// Panics if any [`BatchLimits`] field is zero: a zero limit can never
    /// make progress (no admission, no prefill or no step tokens) and would
    /// hang the simulation.
    pub fn from_backend(backend: B, scfg: SchedulerConfig) -> Self {
        assert!(
            scfg.limits.max_running >= 1
                && scfg.limits.max_batched_tokens >= 1
                && scfg.limits.prefill_chunk >= 1,
            "every BatchLimits field must be at least 1, got {:?}",
            scfg.limits
        );
        Self { backend, scfg }
    }

    /// The backend the scheduler drives.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The memory budget the scheduler admits against.
    pub fn memory(&self) -> &dyn MemoryBudget {
        self.backend.memory()
    }

    /// Run the trace to completion and return the full simulation record.
    pub fn run(&self, trace: &[Request]) -> SimulationResult {
        let limits = self.scfg.limits;
        let memory = self.backend.memory();
        let mut result = SimulationResult {
            engine: self.backend.engine_kind(),
            completed: Vec::new(),
            rejected: Vec::new(),
            admitted: 0,
            steps: Vec::new(),
            makespan_ms: 0.0,
            peak_memory_bytes: 0.0,
            budget_bytes: memory.budget_bytes(),
            supported: self.backend.supports(self.backend.model()),
        };
        if !result.supported {
            result.rejected = trace.to_vec();
            return result;
        }

        let mut queue: VecDeque<Request> = trace.to_vec().into();
        let mut running: Vec<RunningRequest> = Vec::new();
        // KV tokens reserved for admitted requests at their full final length
        // (conservative: admission never needs preemption).
        let mut reserved_tokens: usize = 0;
        let mut clock_ms = 0.0f64;
        let mut step_index = 0u64;

        loop {
            // Admission: FCFS, bounded by the running cap and the budget.
            while running.len() < limits.max_running {
                let Some(front) = queue.front() else { break };
                if front.arrival_ms > clock_ms {
                    break;
                }
                let candidate = reserved_tokens + front.total_tokens();
                if memory.fits(candidate, limits.max_batched_tokens) {
                    let request = queue.pop_front().expect("front exists");
                    reserved_tokens = candidate;
                    result.admitted += 1;
                    running.push(RunningRequest::new(request, clock_ms));
                } else if running.is_empty() {
                    // Even an empty system cannot hold this request.
                    result
                        .rejected
                        .push(queue.pop_front().expect("front exists"));
                } else {
                    break;
                }
            }

            if running.is_empty() {
                match queue.front() {
                    // Drained: done.
                    None => break,
                    // Idle until the next arrival.
                    Some(next) => {
                        clock_ms = clock_ms.max(next.arrival_ms);
                        continue;
                    }
                }
            }

            let batch = build_step(&running, &limits);
            debug_assert!(!batch.is_empty(), "running set with no schedulable work");
            let cost = self.backend.step_cost(&StepWorkload {
                batch: &batch,
                running: &running,
                step_index,
            });
            let time_ms = cost.total_ms();
            let start_ms = clock_ms;
            clock_ms += time_ms;
            step_index += 1;

            // Apply progress.
            for &(i, chunk) in &batch.prefill {
                let r = &mut running[i];
                r.prefilled += chunk;
                if r.prefilled == r.request.prompt_len {
                    // The prefill's final forward produces the first output
                    // token.
                    r.decoded += 1;
                    r.first_token_ms = Some(clock_ms);
                }
            }
            for &i in &batch.decode {
                let r = &mut running[i];
                r.decoded += 1;
                if r.first_token_ms.is_none() {
                    r.first_token_ms = Some(clock_ms);
                }
            }

            // Retire finished requests and release their KV reservation.
            let mut still_running = Vec::with_capacity(running.len());
            for r in running.drain(..) {
                if r.decoded >= r.request.output_len {
                    reserved_tokens -= r.request.total_tokens();
                    result.completed.push(CompletedRequest {
                        request: r.request,
                        admitted_ms: r.admitted_ms,
                        first_token_ms: r.first_token_ms.unwrap_or(clock_ms),
                        finished_ms: clock_ms,
                    });
                } else {
                    still_running.push(r);
                }
            }
            running = still_running;

            // Account the step. KV during the step includes the tokens being
            // written, which the per-request reservations upper-bound.
            let kv_tokens: usize = running.iter().map(|r| r.context_tokens()).sum();
            let memory_bytes = memory.footprint_bytes(kv_tokens, batch.total_tokens());
            result.peak_memory_bytes = result.peak_memory_bytes.max(memory_bytes);
            result.steps.push(StepRecord {
                start_ms,
                time_ms,
                collective_ms: cost.collective_ms,
                prefill_tokens: batch.prefill_tokens(),
                decode_tokens: batch.decode.len(),
                kv_tokens,
                memory_bytes,
                running: running.len(),
            });

            assert!(
                step_index < 10_000_000,
                "serving simulation exceeded the step safety cap"
            );
        }

        result.makespan_ms = clock_ms;
        result
    }
}
