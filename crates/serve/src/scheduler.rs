//! The continuous-batching scheduler: admission under the backend's memory
//! budget, chunked-prefill/decode interleaving, and progress accounting.
//!
//! The scheduler is pure policy. Everything physical — step pricing, memory
//! footprints, kernel support — lives behind
//! [`ExecutionBackend`](crate::backend::ExecutionBackend): the simulated
//! clock advances by whatever the backend predicts for each step's workload
//! (single-GPU engine cost, or per-GPU straggler compute plus all-to-all
//! collectives for a cluster). All randomness (routing) is seeded inside the
//! backend, so a simulation is a pure function of its inputs.

use std::collections::{BTreeSet, VecDeque};

use crate::backend::{ExecutionBackend, MemoryBudget, SingleGpuBackend, StepWorkload};
use crate::batch::{build_step, BatchLimits};
use crate::request::{CompletedRequest, Request, RunningRequest};
use crate::telemetry::{SharedSink, TraceEvent};
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::attention::AttentionKind;
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::EngineKind;
use serde::{Deserialize, Serialize};

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Per-step batching limits.
    pub limits: BatchLimits,
    /// Attention implementation used by every engine.
    pub attention: AttentionKind,
    /// Seed for the per-step routing plans.
    pub routing_seed: u64,
    /// Fixed per-step scheduling/launch overhead in milliseconds.
    pub step_overhead_ms: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            limits: BatchLimits::default(),
            attention: AttentionKind::Flash,
            routing_seed: 42,
            step_overhead_ms: 0.05,
        }
    }
}

/// One executed engine step, for inspection and invariant tests.
#[derive(Debug, Clone, Copy)]
pub struct StepRecord {
    /// Simulated time at the start of the step.
    pub start_ms: f64,
    /// Predicted duration of the step.
    pub time_ms: f64,
    /// Portion of the step spent in inter-GPU collectives (zero on a
    /// single-GPU backend).
    pub collective_ms: f64,
    /// Prefill tokens processed.
    pub prefill_tokens: usize,
    /// Decode tokens processed.
    pub decode_tokens: usize,
    /// KV-resident tokens after the step.
    pub kv_tokens: usize,
    /// Memory in use during the step under the backend's budget model
    /// (whole model for a single GPU, straggler GPU for a cluster).
    pub memory_bytes: f64,
    /// Concurrently admitted requests during the step.
    pub running: usize,
}

/// Outcome of simulating one engine over one trace.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// The engine simulated.
    pub engine: EngineKind,
    /// Requests that finished, in completion order.
    pub completed: Vec<CompletedRequest>,
    /// Requests that could never fit the memory budget (or an unsupported
    /// engine/model pair rejects the whole trace).
    pub rejected: Vec<Request>,
    /// Requests admitted over the run (= completed when the run drains).
    pub admitted: usize,
    /// Every executed step.
    pub steps: Vec<StepRecord>,
    /// Simulated time at which the last request finished.
    pub makespan_ms: f64,
    /// Peak memory in use across all steps.
    pub peak_memory_bytes: f64,
    /// The memory budget the scheduler enforced.
    pub budget_bytes: f64,
    /// False when the engine has no kernels for the model (NS) — nothing is
    /// simulated in that case.
    pub supported: bool,
}

impl SimulationResult {
    /// Output tokens produced across completed requests.
    pub fn output_tokens(&self) -> usize {
        self.completed.iter().map(|c| c.request.output_len).sum()
    }

    /// Prompt + output tokens processed across completed requests.
    pub fn processed_tokens(&self) -> usize {
        self.completed
            .iter()
            .map(|c| c.request.total_tokens())
            .sum()
    }

    /// Total time spent in collectives across all steps.
    pub fn collective_ms(&self) -> f64 {
        self.steps.iter().map(|s| s.collective_ms).sum()
    }
}

/// Continuous-batching scheduler over one execution backend.
#[derive(Debug, Clone)]
pub struct Scheduler<B: ExecutionBackend = SingleGpuBackend> {
    backend: B,
    scfg: SchedulerConfig,
    sink: Option<SharedSink>,
}

impl Scheduler<SingleGpuBackend> {
    /// Build a single-GPU scheduler for one (device, model, engine) triple —
    /// the original front door, now routed through [`SingleGpuBackend`].
    ///
    /// # Panics
    /// Panics if any [`BatchLimits`] field is zero (see
    /// [`Scheduler::from_backend`]).
    pub fn new(
        device: DeviceSpec,
        config: MoeModelConfig,
        engine_kind: EngineKind,
        scfg: SchedulerConfig,
    ) -> Self {
        Self::from_backend(
            SingleGpuBackend::new(device, &config, engine_kind, &scfg),
            scfg,
        )
    }
}

impl<B: ExecutionBackend> Scheduler<B> {
    /// Build a scheduler over an arbitrary backend. The model being served
    /// is the backend's own ([`ExecutionBackend::model`]) — the scheduler
    /// holds no second copy that could disagree with the step pricing.
    ///
    /// # Panics
    /// Panics if any [`BatchLimits`] field is zero: a zero limit can never
    /// make progress (no admission, no prefill or no step tokens) and would
    /// hang the simulation.
    pub fn from_backend(backend: B, scfg: SchedulerConfig) -> Self {
        assert!(
            scfg.limits.max_running >= 1
                && scfg.limits.max_batched_tokens >= 1
                && scfg.limits.prefill_chunk >= 1,
            "every BatchLimits field must be at least 1, got {:?}",
            scfg.limits
        );
        Self {
            backend,
            scfg,
            sink: None,
        }
    }

    /// Install a telemetry sink: every run emits its request lifecycle and
    /// step spans there (as replica 0). Without one, nothing is emitted and
    /// the hot path pays only an `Option` check.
    pub fn with_sink(mut self, sink: SharedSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The backend the scheduler drives.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The memory budget the scheduler admits against.
    pub fn memory(&self) -> &dyn MemoryBudget {
        self.backend.memory()
    }

    /// Run the trace to completion and return the full simulation record.
    ///
    /// This is the offline front door over [`ReplicaDriver`]: enqueue the
    /// whole trace, drive the replica to drain, finish. Online callers (the
    /// fleet controller) build the driver directly and interleave
    /// [`ReplicaDriver::enqueue`] with [`ReplicaDriver::advance_to`].
    pub fn run(&self, trace: &[Request]) -> SimulationResult {
        let mut driver = ReplicaDriver::new(&self.backend, self.scfg);
        if let Some(sink) = &self.sink {
            driver.attach_sink(sink.clone(), 0);
        }
        for request in trace {
            driver.enqueue(*request);
        }
        driver.advance_to(f64::INFINITY);
        driver.finish()
    }
}

/// An incrementally-driven serving replica: the continuous-batching loop of
/// [`Scheduler::run`], restructured so a control plane can interleave
/// request routing with simulated execution.
///
/// The driver owns the replica's full runtime state — arrival queue, running
/// set, KV reservations, simulated clock — and exposes it live (outstanding
/// tokens, admission headroom, busy time), which is exactly what an online
/// dispatcher needs to route each request *at its arrival time* instead of
/// splitting the trace ahead of time. `enqueue` + `advance_to(∞)` reproduces
/// the one-shot `run` bit for bit (pinned by the backend-equivalence suite).
#[derive(Debug, Clone)]
pub struct ReplicaDriver<B: ExecutionBackend> {
    backend: B,
    scfg: SchedulerConfig,
    queue: VecDeque<Request>,
    running: Vec<RunningRequest>,
    /// KV tokens reserved for admitted requests at their full final length
    /// (conservative: admission never needs preemption).
    reserved_tokens: usize,
    /// Incrementally-maintained total of [`Self::outstanding_tokens`]:
    /// credited at enqueue, debited as prefill chunks and decode tokens land
    /// (and when an unadmittable request is rejected). Keeping the counter
    /// O(1) is what lets a fleet dispatcher consult the live load of every
    /// replica at every arrival without rescanning queues.
    outstanding: usize,
    /// Requests handed over with their prompt KV already materialized (a
    /// disaggregated prefill→decode handoff): admission skips chunked
    /// prefill for them and they decode from their first step. Their
    /// outstanding credit is `output_len` only — the prompt work was done
    /// elsewhere — while the KV reservation still charges the full
    /// prompt+output length (the transferred cache occupies real budget).
    prefilled_ids: BTreeSet<u64>,
    clock_ms: f64,
    step_index: u64,
    result: SimulationResult,
    /// Telemetry sink, if one is attached. `None` (the default) keeps the
    /// hot path at a single branch — the telemetry-equivalence suite pins
    /// the metrics bit-for-bit either way.
    sink: Option<SharedSink>,
    /// Slot label stamped on emitted events (0 for standalone drivers).
    replica_id: usize,
}

impl<B: ExecutionBackend> ReplicaDriver<B> {
    /// Build a driver over `backend`.
    ///
    /// # Panics
    /// Panics if any [`BatchLimits`] field is zero (see
    /// [`Scheduler::from_backend`]).
    pub fn new(backend: B, scfg: SchedulerConfig) -> Self {
        assert!(
            scfg.limits.max_running >= 1
                && scfg.limits.max_batched_tokens >= 1
                && scfg.limits.prefill_chunk >= 1,
            "every BatchLimits field must be at least 1, got {:?}",
            scfg.limits
        );
        let result = SimulationResult {
            engine: backend.engine_kind(),
            completed: Vec::new(),
            rejected: Vec::new(),
            admitted: 0,
            steps: Vec::new(),
            makespan_ms: 0.0,
            peak_memory_bytes: 0.0,
            budget_bytes: backend.memory().budget_bytes(),
            supported: backend.supports(backend.model()),
        };
        Self {
            backend,
            scfg,
            queue: VecDeque::new(),
            running: Vec::new(),
            reserved_tokens: 0,
            outstanding: 0,
            prefilled_ids: BTreeSet::new(),
            clock_ms: 0.0,
            step_index: 0,
            result,
            sink: None,
            replica_id: 0,
        }
    }

    /// Attach a telemetry sink; emitted events carry `replica_id` as their
    /// slot label (the fleet controller attaches one handle per slot).
    pub fn attach_sink(&mut self, sink: SharedSink, replica_id: usize) {
        self.sink = Some(sink);
        self.replica_id = replica_id;
    }

    /// The backend the driver executes on.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Hand the driver a request. Requests must arrive in nondecreasing
    /// `arrival_ms` order; an unsupported engine/model pair rejects outright.
    pub fn enqueue(&mut self, request: Request) {
        if !self.result.supported {
            self.result.rejected.push(request);
            return;
        }
        debug_assert!(
            self.queue
                .back()
                .is_none_or(|back| back.arrival_ms <= request.arrival_ms),
            "requests must be enqueued in arrival order"
        );
        self.outstanding += request.total_tokens();
        self.queue.push_back(request);
    }

    /// Hand the driver a request whose prompt KV already exists locally —
    /// the receiving end of a disaggregated prefill→decode handoff. The
    /// request is admitted like any other (FCFS, against its *full*
    /// prompt+output KV reservation: the transferred cache occupies real
    /// budget) but starts directly in its decode phase, so only its
    /// `output_len` counts as outstanding work.
    pub fn enqueue_handoff(&mut self, request: Request) {
        if !self.result.supported {
            self.result.rejected.push(request);
            return;
        }
        debug_assert!(
            self.queue
                .back()
                .is_none_or(|back| back.arrival_ms <= request.arrival_ms),
            "requests must be enqueued in arrival order"
        );
        self.prefilled_ids.insert(request.id);
        self.outstanding += request.output_len;
        self.queue.push_back(request);
    }

    /// Whether the replica can serve its model at all: the kernels support
    /// it and the weights (plus a minimal one-token step) fit the budget.
    /// Capability-blind fleet surgery (e.g. scale-in victim selection) must
    /// consult this so dead-weight replicas never satisfy a capacity floor.
    pub fn can_serve_model(&self) -> bool {
        self.result.supported && self.backend.memory().can_hold_model()
    }

    /// Whether the replica could ever admit `request` — the backend supports
    /// its own model and an otherwise-empty replica fits the request's full
    /// KV reservation. The admission-headroom gate a capability-aware
    /// dispatcher checks before routing.
    pub fn can_ever_admit(&self, request: &Request) -> bool {
        self.result.supported
            && self
                .backend
                .memory()
                .fits(request.total_tokens(), self.scfg.limits.max_batched_tokens)
    }

    /// Simulated clock: the end of the last executed step (or the last idle
    /// jump to an arrival).
    pub fn clock_ms(&self) -> f64 {
        self.clock_ms
    }

    /// Whether all handed-over work is finished.
    pub fn is_drained(&self) -> bool {
        self.queue.is_empty() && self.running.is_empty()
    }

    /// Requests waiting for admission.
    pub fn queued_requests(&self) -> usize {
        self.queue.len()
    }

    /// The admitted, still-running set.
    pub fn running_requests(&self) -> &[RunningRequest] {
        &self.running
    }

    /// Tokens of work still owed: queued requests in full plus the
    /// unprefilled/undecoded remainder of every running request. This is the
    /// *live* load signal — it decays as the replica makes progress, unlike
    /// the frozen accumulate-forever dispatch counter. O(1): the counter is
    /// maintained incrementally at enqueue/rejection and per step, never
    /// recomputed by scanning the queue.
    pub fn outstanding_tokens(&self) -> usize {
        self.outstanding
    }

    /// Completed requests so far, in completion order.
    pub fn completed(&self) -> &[CompletedRequest] {
        &self.result.completed
    }

    /// KV budget bytes left after every admitted and queued request's full
    /// final-length reservation — the headroom signal a disaggregated
    /// dispatcher ranks decode pods by when placing a handoff. Counting the
    /// queue (not just admitted reservations) keeps the signal honest while
    /// a transfer burst is still waiting for admission.
    pub fn kv_headroom_bytes(&self) -> f64 {
        let committed: usize =
            self.reserved_tokens + self.queue.iter().map(Request::total_tokens).sum::<usize>();
        self.backend.memory().budget_bytes() - self.backend.memory().footprint_bytes(committed, 0)
    }

    /// Executed steps so far.
    pub fn steps(&self) -> &[StepRecord] {
        &self.result.steps
    }

    /// Earliest arrival among requests that have not produced their first
    /// token yet (queued or still prefilling) — the head-of-line waiting age
    /// an SLO autoscaler watches.
    pub fn oldest_unserved_arrival_ms(&self) -> Option<f64> {
        let queued = self.queue.front().map(|r| r.arrival_ms);
        let running = self
            .running
            .iter()
            .filter(|r| r.first_token_ms.is_none())
            .map(|r| r.request.arrival_ms)
            .fold(None, |acc: Option<f64>, a| {
                Some(acc.map_or(a, |b| b.min(a)))
            });
        match (queued, running) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Milliseconds of executed step time overlapping `[from_ms, to_ms)` —
    /// the busy-time signal utilization-based scale-in watches.
    pub fn busy_ms_between(&self, from_ms: f64, to_ms: f64) -> f64 {
        let mut busy = 0.0;
        for step in self.result.steps.iter().rev() {
            let end = step.start_ms + step.time_ms;
            if end <= from_ms {
                break;
            }
            busy += (end.min(to_ms) - step.start_ms.max(from_ms)).max(0.0);
        }
        busy
    }

    /// Advance simulated time up to `until_ms`: admit arrived requests and
    /// execute engine steps while the replica has work and its clock is
    /// before `until_ms`. A step started before `until_ms` may finish after
    /// it (requests arriving mid-step wait for the step boundary, exactly as
    /// in the one-shot run). An idle replica never advances past `until_ms`.
    pub fn advance_to(&mut self, until_ms: f64) {
        if !self.result.supported {
            return;
        }
        loop {
            self.admit_arrived();

            if self.running.is_empty() {
                match self.queue.front() {
                    // Drained: idle until more work is enqueued.
                    None => break,
                    // Idle-jump to the next arrival, but never past the
                    // horizon — an event at `until_ms` may route new work.
                    Some(next) if next.arrival_ms <= until_ms => {
                        self.clock_ms = self.clock_ms.max(next.arrival_ms);
                        continue;
                    }
                    Some(_) => break,
                }
            }

            if self.clock_ms >= until_ms {
                break;
            }
            self.execute_step();
        }
    }

    /// Execute the replica's next unit of work — admission, an idle jump to
    /// the next queued arrival if the running set is empty, and exactly one
    /// engine step — and report whether work remains afterwards. This is the
    /// primitive of the event-driven fleet drain loop: repeated `step_once`
    /// calls reach exactly the state `advance_to(f64::INFINITY)` reaches,
    /// one step-completion event at a time.
    pub fn step_once(&mut self) -> bool {
        if !self.result.supported {
            return false;
        }
        loop {
            self.admit_arrived();
            if self.running.is_empty() {
                let Some(next) = self.queue.front() else {
                    return false;
                };
                self.clock_ms = self.clock_ms.max(next.arrival_ms);
                continue;
            }
            self.execute_step();
            return !self.is_drained();
        }
    }

    /// Admission: FCFS, bounded by the running cap and the budget.
    fn admit_arrived(&mut self) {
        let limits = self.scfg.limits;
        while self.running.len() < limits.max_running {
            let Some(front) = self.queue.front() else {
                break;
            };
            if front.arrival_ms > self.clock_ms {
                break;
            }
            let candidate = self.reserved_tokens + front.total_tokens();
            if self
                .backend
                .memory()
                .fits(candidate, limits.max_batched_tokens)
            {
                let request = self.queue.pop_front().expect("front exists");
                self.reserved_tokens = candidate;
                self.result.admitted += 1;
                if let Some(sink) = &self.sink {
                    sink.emit(TraceEvent::Admitted {
                        id: request.id,
                        replica: self.replica_id,
                        at_ms: self.clock_ms,
                    });
                }
                let mut running = RunningRequest::new(request, self.clock_ms);
                if self.prefilled_ids.remove(&request.id) {
                    // Handoff: the prompt KV arrived with the request, so it
                    // starts its decode phase immediately.
                    running.prefilled = request.prompt_len;
                }
                self.running.push(running);
            } else if self.running.is_empty() {
                // Even an empty system cannot hold this request.
                let rejected = self.queue.pop_front().expect("front exists");
                // Debit exactly what enqueue credited: a handoff only owed
                // its output tokens.
                self.outstanding -= if self.prefilled_ids.remove(&rejected.id) {
                    rejected.output_len
                } else {
                    rejected.total_tokens()
                };
                if let Some(sink) = &self.sink {
                    sink.emit(TraceEvent::Rejected {
                        id: rejected.id,
                        replica: self.replica_id,
                        at_ms: self.clock_ms,
                    });
                }
                self.result.rejected.push(rejected);
            } else {
                break;
            }
        }
    }

    /// Execute exactly one engine step over the current running set.
    fn execute_step(&mut self) {
        let limits = self.scfg.limits;
        let batch = build_step(&self.running, &limits);
        debug_assert!(!batch.is_empty(), "running set with no schedulable work");
        let cost = self.backend.step_cost(&StepWorkload {
            batch: &batch,
            running: &self.running,
            step_index: self.step_index,
        });
        let time_ms = cost.total_ms();
        let start_ms = self.clock_ms;
        self.clock_ms += time_ms;
        self.step_index += 1;
        if let Some(sink) = &self.sink {
            sink.emit(TraceEvent::Step {
                replica: self.replica_id,
                start_ms,
                total_ms: time_ms,
                compute_ms: cost.compute_ms,
                collective_ms: cost.collective_ms,
                intra_island_ms: cost.intra_island_ms,
                spine_ms: cost.spine_ms,
                prefill_tokens: batch.prefill_tokens(),
                decode_tokens: batch.decode.len(),
            });
        }

        // Apply progress (debiting the outstanding-work counter token by
        // token, so it stays exact without ever rescanning the queue).
        for &(i, chunk) in &batch.prefill {
            let r = &mut self.running[i];
            r.prefilled += chunk;
            self.outstanding -= chunk;
            if r.prefilled == r.request.prompt_len {
                // The prefill's final forward produces the first output
                // token.
                r.decoded += 1;
                if r.decoded <= r.request.output_len {
                    self.outstanding -= 1;
                }
                r.first_token_ms = Some(self.clock_ms);
                if let Some(sink) = &self.sink {
                    sink.emit(TraceEvent::FirstToken {
                        id: r.request.id,
                        replica: self.replica_id,
                        at_ms: self.clock_ms,
                    });
                }
            }
        }
        for &i in &batch.decode {
            let r = &mut self.running[i];
            r.decoded += 1;
            if r.decoded <= r.request.output_len {
                self.outstanding -= 1;
            }
            if r.first_token_ms.is_none() {
                r.first_token_ms = Some(self.clock_ms);
                if let Some(sink) = &self.sink {
                    sink.emit(TraceEvent::FirstToken {
                        id: r.request.id,
                        replica: self.replica_id,
                        at_ms: self.clock_ms,
                    });
                }
            }
        }

        // Retire finished requests and release their KV reservation.
        let mut still_running = Vec::with_capacity(self.running.len());
        for r in self.running.drain(..) {
            if r.decoded >= r.request.output_len {
                self.reserved_tokens -= r.request.total_tokens();
                let completed = CompletedRequest {
                    request: r.request,
                    admitted_ms: r.admitted_ms,
                    first_token_ms: r.first_token_ms.unwrap_or(self.clock_ms),
                    finished_ms: self.clock_ms,
                };
                if let Some(sink) = &self.sink {
                    sink.emit(TraceEvent::Completed {
                        id: completed.request.id,
                        replica: self.replica_id,
                        arrival_ms: completed.request.arrival_ms,
                        admitted_ms: completed.admitted_ms,
                        first_token_ms: completed.first_token_ms,
                        finished_ms: completed.finished_ms,
                        output_len: completed.request.output_len,
                    });
                }
                self.result.completed.push(completed);
            } else {
                still_running.push(r);
            }
        }
        self.running = still_running;

        // Account the step. KV during the step includes the tokens being
        // written, which the per-request reservations upper-bound.
        let kv_tokens: usize = self.running.iter().map(|r| r.context_tokens()).sum();
        let memory_bytes = self
            .backend
            .memory()
            .footprint_bytes(kv_tokens, batch.total_tokens());
        self.result.peak_memory_bytes = self.result.peak_memory_bytes.max(memory_bytes);
        self.result.steps.push(StepRecord {
            start_ms,
            time_ms,
            collective_ms: cost.collective_ms,
            prefill_tokens: batch.prefill_tokens(),
            decode_tokens: batch.decode.len(),
            kv_tokens,
            memory_bytes,
            running: self.running.len(),
        });

        assert!(
            self.step_index < 10_000_000,
            "serving simulation exceeded the step safety cap"
        );
    }

    /// Rip every in-flight request out of the replica, as on a GPU crash:
    /// returns `(running, queued)` — the admitted mid-generation set (in
    /// admission order) and the not-yet-admitted queue (in arrival order) —
    /// and leaves the replica drained with zero outstanding work and zero
    /// KV reservations. Partial prefill/decode progress is lost; a
    /// re-admitted request starts from scratch on its new replica. Already
    /// completed and rejected requests are unaffected.
    pub fn take_inflight(&mut self) -> (Vec<Request>, Vec<Request>) {
        let running: Vec<Request> = self.running.drain(..).map(|r| r.request).collect();
        let queued: Vec<Request> = self.queue.drain(..).collect();
        self.reserved_tokens = 0;
        self.outstanding = 0;
        // Any transferred KV died with the replica: survivors re-prefill.
        self.prefilled_ids.clear();
        (running, queued)
    }

    /// Close out the run and return the full simulation record.
    pub fn finish(mut self) -> SimulationResult {
        self.result.makespan_ms = self.clock_ms;
        self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceConfig;
    use samoyeds_moe::config::MoeModelConfig;

    fn driver() -> ReplicaDriver<SingleGpuBackend> {
        let scfg = SchedulerConfig::default();
        let backend = SingleGpuBackend::new(
            DeviceSpec::a100_40g(),
            &MoeModelConfig::qwen2_moe(),
            EngineKind::Samoyeds,
            &scfg,
        );
        ReplicaDriver::new(backend, scfg)
    }

    /// Ground truth for the incrementally-maintained counter: the full
    /// rescan the pre-refactor `outstanding_tokens` performed.
    fn recomputed_outstanding(d: &ReplicaDriver<SingleGpuBackend>) -> usize {
        let queued: usize = d.queue.iter().map(Request::total_tokens).sum();
        let running: usize = d
            .running
            .iter()
            .map(|r| {
                (r.request.prompt_len - r.prefilled)
                    + (r.request.output_len - r.decoded.min(r.request.output_len))
            })
            .sum();
        queued + running
    }

    #[test]
    fn incremental_outstanding_counter_matches_a_full_rescan() {
        let trace = TraceConfig {
            num_requests: 40,
            arrival_rate_rps: 30.0,
            prompt_len_range: (16, 700),
            output_len_range: (2, 24),
            seed: 13,
        }
        .generate();
        let mut d = driver();
        let mut horizon = 0.0;
        for request in &trace {
            while horizon < request.arrival_ms {
                horizon += 37.0;
                d.advance_to(horizon.min(request.arrival_ms));
                assert_eq!(d.outstanding_tokens(), recomputed_outstanding(&d));
            }
            d.enqueue(*request);
            assert_eq!(d.outstanding_tokens(), recomputed_outstanding(&d));
        }
        d.advance_to(f64::INFINITY);
        assert_eq!(d.outstanding_tokens(), recomputed_outstanding(&d));
        assert_eq!(d.outstanding_tokens(), 0);
        assert!(d.is_drained());
    }

    #[test]
    fn rejected_requests_release_their_outstanding_tokens() {
        let mut d = driver();
        // Far beyond any single-replica KV budget: rejected at admission.
        d.enqueue(Request {
            id: 0,
            arrival_ms: 0.0,
            prompt_len: 50_000_000,
            output_len: 1,
        });
        d.advance_to(f64::INFINITY);
        assert_eq!(d.outstanding_tokens(), 0);
        let result = d.finish();
        assert_eq!(result.rejected.len(), 1);
    }

    #[test]
    fn take_inflight_extracts_everything_and_leaves_the_replica_drained() {
        let trace = TraceConfig {
            num_requests: 16,
            arrival_rate_rps: 40.0,
            prompt_len_range: (32, 128),
            output_len_range: (8, 24),
            seed: 11,
        }
        .generate();
        let mut d = driver();
        for request in &trace {
            d.enqueue(*request);
        }
        // Advance partway: some completed, some running, some queued.
        d.advance_to(trace[trace.len() / 2].arrival_ms);
        let completed_before = d.completed().len();
        let (running, queued) = d.take_inflight();
        assert_eq!(
            completed_before + running.len() + queued.len(),
            trace.len(),
            "every request is completed, running or queued at the crash"
        );
        assert!(d.is_drained());
        assert_eq!(d.outstanding_tokens(), 0);
        assert!(!d.step_once(), "a crashed-out replica has no work left");
        let result = d.finish();
        assert_eq!(result.completed.len(), completed_before);
        assert!(result.rejected.is_empty());
    }

    #[test]
    fn a_handoff_request_skips_prefill_and_decodes_from_its_first_step() {
        let mut d = driver();
        let request = Request {
            id: 7,
            arrival_ms: 0.0,
            prompt_len: 256,
            output_len: 8,
        };
        d.enqueue_handoff(request);
        assert_eq!(
            d.outstanding_tokens(),
            request.output_len,
            "a handoff only owes its decode tokens"
        );
        d.advance_to(f64::INFINITY);
        assert_eq!(d.outstanding_tokens(), 0);
        let result = d.finish();
        assert_eq!(result.completed.len(), 1);
        assert_eq!(result.completed[0].request.output_len, 8);
        // No prefill chunk ever ran: every step decoded exactly one token.
        assert_eq!(result.steps.len(), 8);
        assert!(result
            .steps
            .iter()
            .all(|s| s.prefill_tokens == 0 && s.decode_tokens == 1));
    }

    #[test]
    fn step_once_drains_to_the_same_state_as_advance_to_infinity() {
        let trace = TraceConfig {
            num_requests: 24,
            arrival_rate_rps: 20.0,
            prompt_len_range: (32, 256),
            output_len_range: (4, 16),
            seed: 5,
        }
        .generate();
        let mut by_steps = driver();
        for request in &trace {
            by_steps.enqueue(*request);
        }
        let mut by_horizon = by_steps.clone();

        while by_steps.step_once() {}
        by_horizon.advance_to(f64::INFINITY);

        assert!(by_steps.is_drained() && by_horizon.is_drained());
        let a = by_steps.finish();
        let b = by_horizon.finish();
        assert_eq!(a.completed.len(), b.completed.len());
        assert_eq!(a.makespan_ms, b.makespan_ms);
        assert_eq!(a.steps.len(), b.steps.len());
        for (x, y) in a.steps.iter().zip(&b.steps) {
            assert_eq!(x.start_ms, y.start_ms);
            assert_eq!(x.time_ms, y.time_ms);
        }
        for (x, y) in a.completed.iter().zip(&b.completed) {
            assert_eq!(x.request.id, y.request.id);
            assert_eq!(x.first_token_ms, y.first_token_ms);
            assert_eq!(x.finished_ms, y.finished_ms);
        }
    }
}
