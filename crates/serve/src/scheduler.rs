//! The continuous-batching scheduler: admission under the memory budget,
//! chunked-prefill/decode interleaving and the per-step cost model.
//!
//! The simulated clock advances by the predicted execution time of each
//! engine step: the MoE cost comes from `Engine::moe_layer_cost` on the
//! step's token batch (the same model the paper's layer experiments use),
//! attention is charged incrementally per request, and everything is scaled
//! by the model's layer count. All randomness (routing) is seeded, so a
//! simulation is a pure function of its inputs.

use std::collections::VecDeque;

use crate::batch::{build_step, BatchLimits, StepBatch};
use crate::memory::MemoryModel;
use crate::request::{CompletedRequest, Request, RunningRequest};
use samoyeds_gpu_sim::DeviceSpec;
use samoyeds_moe::attention::{attention_time_ms, AttentionKind};
use samoyeds_moe::config::MoeModelConfig;
use samoyeds_moe::engines::{Engine, EngineKind};
use samoyeds_moe::router::TopKRouter;
use serde::{Deserialize, Serialize};

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Per-step batching limits.
    pub limits: BatchLimits,
    /// Attention implementation used by every engine.
    pub attention: AttentionKind,
    /// Seed for the per-step routing plans.
    pub routing_seed: u64,
    /// Fixed per-step scheduling/launch overhead in milliseconds.
    pub step_overhead_ms: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            limits: BatchLimits::default(),
            attention: AttentionKind::Flash,
            routing_seed: 42,
            step_overhead_ms: 0.05,
        }
    }
}

/// One executed engine step, for inspection and invariant tests.
#[derive(Debug, Clone, Copy)]
pub struct StepRecord {
    /// Simulated time at the start of the step.
    pub start_ms: f64,
    /// Predicted duration of the step.
    pub time_ms: f64,
    /// Prefill tokens processed.
    pub prefill_tokens: usize,
    /// Decode tokens processed.
    pub decode_tokens: usize,
    /// KV-resident tokens after the step.
    pub kv_tokens: usize,
    /// Total memory in use during the step (weights + KV + activations).
    pub memory_bytes: f64,
    /// Concurrently admitted requests during the step.
    pub running: usize,
}

/// Outcome of simulating one engine over one trace.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// The engine simulated.
    pub engine: EngineKind,
    /// Requests that finished, in completion order.
    pub completed: Vec<CompletedRequest>,
    /// Requests that could never fit the memory budget (or an unsupported
    /// engine/model pair rejects the whole trace).
    pub rejected: Vec<Request>,
    /// Requests admitted over the run (= completed when the run drains).
    pub admitted: usize,
    /// Every executed step.
    pub steps: Vec<StepRecord>,
    /// Simulated time at which the last request finished.
    pub makespan_ms: f64,
    /// Peak memory in use across all steps.
    pub peak_memory_bytes: f64,
    /// The memory budget the scheduler enforced.
    pub budget_bytes: f64,
    /// False when the engine has no kernels for the model (NS) — nothing is
    /// simulated in that case.
    pub supported: bool,
}

impl SimulationResult {
    /// Output tokens produced across completed requests.
    pub fn output_tokens(&self) -> usize {
        self.completed.iter().map(|c| c.request.output_len).sum()
    }

    /// Prompt + output tokens processed across completed requests.
    pub fn processed_tokens(&self) -> usize {
        self.completed
            .iter()
            .map(|c| c.request.total_tokens())
            .sum()
    }
}

/// Continuous-batching scheduler for one (device, model, engine) triple.
#[derive(Debug, Clone)]
pub struct Scheduler {
    device: DeviceSpec,
    config: MoeModelConfig,
    engine: Engine,
    memory: MemoryModel,
    scfg: SchedulerConfig,
}

impl Scheduler {
    /// Build a scheduler.
    ///
    /// # Panics
    /// Panics if any [`BatchLimits`] field is zero: a zero limit can never
    /// make progress (no admission, no prefill or no step tokens) and would
    /// hang the simulation.
    pub fn new(
        device: DeviceSpec,
        config: MoeModelConfig,
        engine_kind: EngineKind,
        scfg: SchedulerConfig,
    ) -> Self {
        assert!(
            scfg.limits.max_running >= 1
                && scfg.limits.max_batched_tokens >= 1
                && scfg.limits.prefill_chunk >= 1,
            "every BatchLimits field must be at least 1, got {:?}",
            scfg.limits
        );
        Self {
            engine: Engine::new(engine_kind, device.clone()),
            memory: MemoryModel::new(&device, engine_kind, &config),
            device,
            config,
            scfg,
        }
    }

    /// The memory model the scheduler admits against.
    pub fn memory(&self) -> &MemoryModel {
        &self.memory
    }

    /// Predicted duration of one step over `batch`, given the running set.
    fn step_time_ms(&self, batch: &StepBatch, running: &[RunningRequest], step_index: u64) -> f64 {
        let step_tokens = batch.total_tokens();
        let plan = TopKRouter::for_config(&self.config, self.scfg.routing_seed ^ step_index)
            .route(step_tokens);
        let moe_ms = self
            .engine
            .moe_layer_cost(&self.config, step_tokens, &plan)
            .time_ms;

        // Attention: prefill chunks pay the incremental causal-attention cost
        // of extending their context; each decode token pays one pass over
        // its request's KV cache.
        let mut attention_ms = 0.0;
        for &(i, chunk) in &batch.prefill {
            let before = running[i].prefilled;
            let after = (before + chunk).min(self.config.max_seq_len);
            let inc = attention_time_ms(&self.device, &self.config, after, self.scfg.attention)
                - attention_time_ms(
                    &self.device,
                    &self.config,
                    before.max(1),
                    self.scfg.attention,
                );
            attention_ms += inc.max(0.0);
        }
        let bandwidth = self.device.mem_bandwidth_gbps * 1e9;
        for &i in &batch.decode {
            let ctx = running[i].context_tokens().min(self.config.max_seq_len);
            let kv_bytes = 2.0 * ctx as f64 * self.config.hidden_size as f64 * 2.0;
            attention_ms += kv_bytes / bandwidth * 1e3 + 2.0e-3;
        }

        // Norms, residuals and the router GEMM, as in the decoder-layer model.
        let h = self.config.hidden_size as f64;
        let other_ms = 4.0 * step_tokens as f64 * h * 2.0 / bandwidth * 1e3 + 0.02;

        (moe_ms + attention_ms + other_ms) * self.config.num_layers as f64
            + self.scfg.step_overhead_ms
    }

    /// Run the trace to completion and return the full simulation record.
    pub fn run(&self, trace: &[Request]) -> SimulationResult {
        let limits = self.scfg.limits;
        let mut result = SimulationResult {
            engine: self.engine.kind(),
            completed: Vec::new(),
            rejected: Vec::new(),
            admitted: 0,
            steps: Vec::new(),
            makespan_ms: 0.0,
            peak_memory_bytes: 0.0,
            budget_bytes: self.memory.budget_bytes(),
            supported: self.engine.supports(&self.config),
        };
        if !result.supported {
            result.rejected = trace.to_vec();
            return result;
        }

        let mut queue: VecDeque<Request> = trace.to_vec().into();
        let mut running: Vec<RunningRequest> = Vec::new();
        // KV tokens reserved for admitted requests at their full final length
        // (conservative: admission never needs preemption).
        let mut reserved_tokens: usize = 0;
        let mut clock_ms = 0.0f64;
        let mut step_index = 0u64;

        loop {
            // Admission: FCFS, bounded by the running cap and the budget.
            while running.len() < limits.max_running {
                let Some(front) = queue.front() else { break };
                if front.arrival_ms > clock_ms {
                    break;
                }
                let candidate = reserved_tokens + front.total_tokens();
                if self.memory.fits(candidate, limits.max_batched_tokens) {
                    let request = queue.pop_front().expect("front exists");
                    reserved_tokens = candidate;
                    result.admitted += 1;
                    running.push(RunningRequest::new(request, clock_ms));
                } else if running.is_empty() {
                    // Even an empty system cannot hold this request.
                    result
                        .rejected
                        .push(queue.pop_front().expect("front exists"));
                } else {
                    break;
                }
            }

            if running.is_empty() {
                match queue.front() {
                    // Drained: done.
                    None => break,
                    // Idle until the next arrival.
                    Some(next) => {
                        clock_ms = clock_ms.max(next.arrival_ms);
                        continue;
                    }
                }
            }

            let batch = build_step(&running, &limits);
            debug_assert!(!batch.is_empty(), "running set with no schedulable work");
            let time_ms = self.step_time_ms(&batch, &running, step_index);
            let start_ms = clock_ms;
            clock_ms += time_ms;
            step_index += 1;

            // Apply progress.
            for &(i, chunk) in &batch.prefill {
                let r = &mut running[i];
                r.prefilled += chunk;
                if r.prefilled == r.request.prompt_len {
                    // The prefill's final forward produces the first output
                    // token.
                    r.decoded += 1;
                    r.first_token_ms = Some(clock_ms);
                }
            }
            for &i in &batch.decode {
                let r = &mut running[i];
                r.decoded += 1;
                if r.first_token_ms.is_none() {
                    r.first_token_ms = Some(clock_ms);
                }
            }

            // Retire finished requests and release their KV reservation.
            let mut still_running = Vec::with_capacity(running.len());
            for r in running.drain(..) {
                if r.decoded >= r.request.output_len {
                    reserved_tokens -= r.request.total_tokens();
                    result.completed.push(CompletedRequest {
                        request: r.request,
                        admitted_ms: r.admitted_ms,
                        first_token_ms: r.first_token_ms.unwrap_or(clock_ms),
                        finished_ms: clock_ms,
                    });
                } else {
                    still_running.push(r);
                }
            }
            running = still_running;

            // Account the step. KV during the step includes the tokens being
            // written, which the per-request reservations upper-bound.
            let kv_tokens: usize = running.iter().map(|r| r.context_tokens()).sum();
            let memory_bytes = self.memory.footprint_bytes(kv_tokens, batch.total_tokens());
            result.peak_memory_bytes = result.peak_memory_bytes.max(memory_bytes);
            result.steps.push(StepRecord {
                start_ms,
                time_ms,
                prefill_tokens: batch.prefill_tokens(),
                decode_tokens: batch.decode.len(),
                kv_tokens,
                memory_bytes,
                running: running.len(),
            });

            assert!(
                step_index < 10_000_000,
                "serving simulation exceeded the step safety cap"
            );
        }

        result.makespan_ms = clock_ms;
        result
    }
}
