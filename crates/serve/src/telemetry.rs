//! Structured tracing for the serving simulator: the observability substrate
//! every control-plane experiment reports through.
//!
//! The simulator used to be a black box between a trace in and a
//! [`FleetMetrics`](crate::fleet::FleetMetrics) out: when p95 TTFT breached
//! an SLO there was no way to say whether the time went to queueing, prefill
//! chunking, collective spine traffic or autoscaler warm-up. This module
//! opens the box without touching the numbers:
//!
//! * [`TraceSink`] — the recording trait. The [`FleetController`],
//!   [`Scheduler`] and [`ReplicaDriver`] emit one [`TraceEvent`] per
//!   lifecycle transition (arrival → routing → admission → step spans with
//!   the compute / collective / intra-island / spine split → first token →
//!   completion, plus replica warm-up / drain / scale events and control
//!   ticks). Events are `Copy` and carry indices, never strings, so a sink
//!   call is a memcpy — and with no sink installed the hot path pays one
//!   `Option` check and allocates nothing. The `telemetry_equivalence` suite
//!   pins `FleetMetrics` bit-for-bit with and without a sink.
//! * [`NullSink`] — the explicit do-nothing sink, for measuring the cost of
//!   the dynamic-dispatch path itself.
//! * [`TraceRecorder`] — an in-memory sink with an optional bounded ring so
//!   a million-request run keeps a fixed memory footprint (newest events
//!   win; the drop count is reported, never silent).
//! * [`MetricsRegistry`] — counters, gauges and [log-linear
//!   histograms](LogLinearHistogram) fed from the event stream, snapshotted
//!   at every control tick into per-replica time series.
//! * [`chrome_trace_json`] — a Chrome trace-event exporter: one track per
//!   replica with a span per engine step and instants for scale / drain /
//!   warm-up events, loadable in `chrome://tracing` or Perfetto.
//! * [`RequestTimeline`] — per-request TTFT/TPOT attribution (queue wait +
//!   prefill + KV transfer + decode sums exactly to the end-to-end latency;
//!   the transfer phase is zero for co-located requests and spans the
//!   prefill→decode handoff for disaggregated ones).
//!
//! [`FleetController`]: crate::fleet::FleetController
//! [`Scheduler`]: crate::scheduler::Scheduler
//! [`ReplicaDriver`]: crate::scheduler::ReplicaDriver

use std::cell::RefCell;
use std::rc::Rc;

use crate::metrics::{latency_summary, LatencySummary};

/// One structured observation from the simulator.
///
/// Variants are `Copy` and reference replicas by slot index (stable over a
/// run; [`chrome_trace_json`] pairs them with descriptions at export time),
/// so emitting an event never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A request reached the fleet router.
    Arrival {
        /// Request id.
        id: u64,
        /// Simulated time of the arrival.
        at_ms: f64,
    },
    /// The dispatcher picked a replica for a request.
    Routed {
        /// Request id.
        id: u64,
        /// Target replica slot.
        replica: usize,
        /// Simulated time of the routing decision.
        at_ms: f64,
    },
    /// No replica could ever admit the request.
    Unroutable {
        /// Request id.
        id: u64,
        /// Simulated time of the failed routing.
        at_ms: f64,
    },
    /// A replica admitted a request into its running set.
    Admitted {
        /// Request id.
        id: u64,
        /// Admitting replica slot.
        replica: usize,
        /// Simulated admission time (queue wait ends here).
        at_ms: f64,
    },
    /// A replica rejected a request its budget can never hold.
    Rejected {
        /// Request id.
        id: u64,
        /// Rejecting replica slot.
        replica: usize,
        /// Simulated rejection time.
        at_ms: f64,
    },
    /// One executed engine step — the span of a replica track.
    Step {
        /// Executing replica slot.
        replica: usize,
        /// Step start time.
        start_ms: f64,
        /// Step duration under the backend's overlap model.
        total_ms: f64,
        /// Compute component of the step cost.
        compute_ms: f64,
        /// All-to-all collective component (zero on a single GPU).
        collective_ms: f64,
        /// NVLink intra-island share of the collective component.
        intra_island_ms: f64,
        /// InfiniBand spine share of the collective component.
        spine_ms: f64,
        /// Prefill tokens processed this step.
        prefill_tokens: usize,
        /// Decode tokens processed this step.
        decode_tokens: usize,
    },
    /// A request produced its first output token.
    FirstToken {
        /// Request id.
        id: u64,
        /// Producing replica slot.
        replica: usize,
        /// Simulated first-token time.
        at_ms: f64,
    },
    /// A request finished, with its full timing record.
    Completed {
        /// Request id.
        id: u64,
        /// Serving replica slot.
        replica: usize,
        /// Arrival time (trace).
        arrival_ms: f64,
        /// Admission time (queue wait = admitted − arrival).
        admitted_ms: f64,
        /// First-token time (prefill = first − admitted).
        first_token_ms: f64,
        /// Last-token time (decode = finished − first).
        finished_ms: f64,
        /// Output tokens generated.
        output_len: usize,
    },
    /// A replica joined the fleet (initial fleet or scale-out).
    ReplicaCommissioned {
        /// The new slot index.
        replica: usize,
        /// Commission time.
        at_ms: f64,
        /// When the replica becomes routable (commission + warm-up).
        ready_ms: f64,
    },
    /// A commissioned replica finished warm-up and takes traffic.
    WarmupComplete {
        /// The slot index.
        replica: usize,
        /// Warm-up completion time.
        at_ms: f64,
    },
    /// A replica began draining after a scale-in decision.
    DrainStarted {
        /// The slot index.
        replica: usize,
        /// Drain start time.
        at_ms: f64,
    },
    /// A draining replica emptied and left the fleet.
    Retired {
        /// The slot index.
        replica: usize,
        /// Retirement time.
        at_ms: f64,
    },
    /// One control tick's observation — what the autoscale policy saw.
    ControlTick {
        /// Tick time.
        at_ms: f64,
        /// Replicas taking traffic.
        routable: usize,
        /// Replicas still warming up.
        warming: usize,
        /// Windowed p95 TTFT, if any first tokens landed in the window.
        p95_ttft_ms: Option<f64>,
        /// Busy fraction of the ready replicas over the window.
        utilization: f64,
        /// Requests waiting for admission across the fleet.
        queued: usize,
        /// Tokens of work still owed across the fleet.
        outstanding_tokens: usize,
    },
    /// The autoscaler commissioned a replica.
    ScaleOut {
        /// Decision time.
        at_ms: f64,
        /// Commissioned replicas after the event.
        replicas_after: usize,
    },
    /// The autoscaler began draining a replica.
    ScaleIn {
        /// Decision time.
        at_ms: f64,
        /// Commissioned replicas after the event.
        replicas_after: usize,
    },
    /// An injected fault crashed a replica (see `serve::faults`).
    ReplicaCrashed {
        /// The crashed slot index.
        replica: usize,
        /// Crash time.
        at_ms: f64,
        /// Requests mid-execution when the replica died.
        lost_running: usize,
        /// Requests still queued when the replica died.
        lost_queued: usize,
    },
    /// An injected fault degraded a replica's link: the replica keeps its
    /// in-flight work but takes no new traffic until restored.
    LinkDegraded {
        /// The degraded slot index.
        replica: usize,
        /// Degradation start time.
        at_ms: f64,
        /// When the link restores.
        until_ms: f64,
    },
    /// An injected fault partitioned an island: every replica on it is
    /// link-degraded at once.
    IslandPartitioned {
        /// The partitioned island index.
        island: usize,
        /// Number of replicas caught in the partition.
        replicas: usize,
        /// Partition start time.
        at_ms: f64,
        /// When the partition heals.
        until_ms: f64,
    },
    /// A degraded link (or a partitioned island's member) restored.
    LinkRestored {
        /// The restored slot index.
        replica: usize,
        /// Restoration time.
        at_ms: f64,
    },
    /// Recovery from a crash began: lost requests are buffered while expert
    /// weights transfer from survivors.
    RecoveryStarted {
        /// The crashed slot index.
        replica: usize,
        /// Recovery start time (the crash instant).
        at_ms: f64,
        /// Modelled weight-transfer time before re-admission.
        transfer_ms: f64,
    },
    /// Recovery from a crash completed: buffered requests were re-routed.
    RecoveryComplete {
        /// The crashed slot index.
        replica: usize,
        /// Recovery completion time.
        at_ms: f64,
        /// Requests successfully re-admitted to survivors.
        readmitted: usize,
        /// Requests no survivor could ever admit.
        failed: usize,
    },
    /// A prefill→decode KV-cache handoff left its prefill pod (disaggregated
    /// fleets only).
    KvTransferStarted {
        /// Request id.
        id: u64,
        /// Source prefill pod slot.
        from: usize,
        /// Target decode pod slot, committed at transfer start.
        to: usize,
        /// Transferred KV bytes (`MemoryModel::kv_bytes(prompt_len)`).
        bytes: f64,
        /// Transfer start time (the prefill half's completion).
        at_ms: f64,
    },
    /// A prefill→decode KV-cache handoff landed on its decode pod.
    KvTransferComplete {
        /// Request id.
        id: u64,
        /// Source prefill pod slot.
        from: usize,
        /// Target decode pod slot.
        to: usize,
        /// Transferred KV bytes.
        bytes: f64,
        /// Landing time (start + the link's transfer time).
        at_ms: f64,
    },
}

impl TraceEvent {
    /// The simulated time the event describes (span start for steps).
    pub fn at_ms(&self) -> f64 {
        match *self {
            TraceEvent::Arrival { at_ms, .. }
            | TraceEvent::Routed { at_ms, .. }
            | TraceEvent::Unroutable { at_ms, .. }
            | TraceEvent::Admitted { at_ms, .. }
            | TraceEvent::Rejected { at_ms, .. }
            | TraceEvent::FirstToken { at_ms, .. }
            | TraceEvent::ReplicaCommissioned { at_ms, .. }
            | TraceEvent::WarmupComplete { at_ms, .. }
            | TraceEvent::DrainStarted { at_ms, .. }
            | TraceEvent::Retired { at_ms, .. }
            | TraceEvent::ControlTick { at_ms, .. }
            | TraceEvent::ScaleOut { at_ms, .. }
            | TraceEvent::ScaleIn { at_ms, .. }
            | TraceEvent::ReplicaCrashed { at_ms, .. }
            | TraceEvent::LinkDegraded { at_ms, .. }
            | TraceEvent::IslandPartitioned { at_ms, .. }
            | TraceEvent::LinkRestored { at_ms, .. }
            | TraceEvent::RecoveryStarted { at_ms, .. }
            | TraceEvent::RecoveryComplete { at_ms, .. }
            | TraceEvent::KvTransferStarted { at_ms, .. }
            | TraceEvent::KvTransferComplete { at_ms, .. } => at_ms,
            TraceEvent::Step { start_ms, .. } => start_ms,
            TraceEvent::Completed { finished_ms, .. } => finished_ms,
        }
    }

    /// The replica slot the event belongs to, if any.
    pub fn replica(&self) -> Option<usize> {
        match *self {
            TraceEvent::Routed { replica, .. }
            | TraceEvent::Admitted { replica, .. }
            | TraceEvent::Rejected { replica, .. }
            | TraceEvent::Step { replica, .. }
            | TraceEvent::FirstToken { replica, .. }
            | TraceEvent::Completed { replica, .. }
            | TraceEvent::ReplicaCommissioned { replica, .. }
            | TraceEvent::WarmupComplete { replica, .. }
            | TraceEvent::DrainStarted { replica, .. }
            | TraceEvent::Retired { replica, .. }
            | TraceEvent::ReplicaCrashed { replica, .. }
            | TraceEvent::LinkDegraded { replica, .. }
            | TraceEvent::LinkRestored { replica, .. }
            | TraceEvent::RecoveryStarted { replica, .. }
            | TraceEvent::RecoveryComplete { replica, .. } => Some(replica),
            // A transfer belongs to the pod doing the work at that instant:
            // the source while it starts, the target once it lands.
            TraceEvent::KvTransferStarted { from, .. } => Some(from),
            TraceEvent::KvTransferComplete { to, .. } => Some(to),
            _ => None,
        }
    }
}

/// A destination for [`TraceEvent`]s.
///
/// Implementations must not feed anything back into the simulation: sinks
/// observe, they never steer, which is what lets the equivalence suite pin
/// the metrics bit-for-bit with any sink installed.
pub trait TraceSink {
    /// Record one event. Called on the simulation hot path — keep it cheap.
    fn record(&mut self, event: TraceEvent);
}

/// The do-nothing sink: every event is dropped.
///
/// Installing a `NullSink` (rather than no sink at all) measures the cost of
/// the dynamic-dispatch emission path itself — the telemetry-overhead bench
/// cell uses exactly this.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}
}

/// A cloneable handle to a shared [`TraceSink`].
///
/// The controller clones one handle into every replica driver, so all
/// emitters append to the same stream in simulation order. `Rc<RefCell<…>>`
/// rather than `Arc<Mutex<…>>`: a fleet run is single-threaded (report
/// sweeps parallelise across *runs*, building each controller inside its own
/// closure), and the uncontended borrow keeps emission at memcpy cost.
#[derive(Clone)]
pub struct SharedSink(Rc<RefCell<dyn TraceSink>>);

impl std::fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SharedSink")
    }
}

impl SharedSink {
    /// Wrap `sink`, returning the emission handle plus a typed handle the
    /// caller keeps to read the sink back after the run.
    pub fn new<S: TraceSink + 'static>(sink: S) -> (Self, Rc<RefCell<S>>) {
        let shared = Rc::new(RefCell::new(sink));
        (Self(shared.clone()), shared)
    }

    /// Record one event.
    #[inline]
    pub fn emit(&self, event: TraceEvent) {
        self.0.borrow_mut().record(event);
    }
}

/// An in-memory event sink, optionally ring-bounded.
///
/// Unbounded mode keeps every event (fine for demo traces); bounded mode
/// keeps the newest `capacity` events in a fixed-size ring and counts what
/// it dropped — the mode million-request bench runs use so recording cannot
/// balloon memory.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    ring: Vec<TraceEvent>,
    capacity: Option<usize>,
    /// Write cursor into the ring (bounded mode only).
    head: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// An unbounded recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder that keeps only the newest `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity >= 1, "a bounded recorder needs capacity >= 1");
        Self {
            ring: Vec::with_capacity(capacity),
            capacity: Some(capacity),
            head: 0,
            dropped: 0,
        }
    }

    /// Recorded events in emission order (oldest retained first).
    pub fn events(&self) -> Vec<TraceEvent> {
        match self.capacity {
            Some(_) if self.ring.len() == self.ring.capacity() => {
                // Full ring: the oldest retained event sits at the cursor.
                let mut out = Vec::with_capacity(self.ring.len());
                out.extend_from_slice(&self.ring[self.head..]);
                out.extend_from_slice(&self.ring[..self.head]);
                out
            }
            _ => self.ring.clone(),
        }
    }

    /// Events dropped by the bounded ring (zero when unbounded).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

impl TraceSink for TraceRecorder {
    fn record(&mut self, event: TraceEvent) {
        match self.capacity {
            Some(cap) if self.ring.len() == cap => {
                self.ring[self.head] = event;
                self.head = (self.head + 1) % cap;
                self.dropped += 1;
            }
            _ => self.ring.push(event),
        }
    }
}

/// A log-linear histogram: power-of-two octaves split into linear
/// sub-buckets, the classic HdrHistogram-style layout. Relative error is
/// bounded by `1 / sub_buckets` per octave at a fixed, tiny footprint —
/// unlike keeping raw samples, a million-step run costs the same memory as a
/// ten-step run.
#[derive(Debug, Clone)]
pub struct LogLinearHistogram {
    /// `octaves * sub_buckets` counts; octave `o` covers `[2^o, 2^(o+1))`
    /// times the base unit (values below 1.0 land in octave 0).
    counts: Vec<u64>,
    sub_buckets: usize,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogLinearHistogram {
    /// 64 octaves of 16 sub-buckets: ~6% worst-case relative error over the
    /// full positive `f64` range the simulator produces.
    pub fn new() -> Self {
        Self::with_sub_buckets(16)
    }

    /// A histogram with `sub_buckets` linear buckets per power-of-two
    /// octave.
    ///
    /// # Panics
    /// Panics if `sub_buckets` is zero.
    pub fn with_sub_buckets(sub_buckets: usize) -> Self {
        assert!(sub_buckets >= 1, "need at least one sub-bucket per octave");
        Self {
            counts: vec![0; 64 * sub_buckets],
            sub_buckets,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(&self, value: f64) -> usize {
        let v = value.max(0.0);
        // Octave 0 covers [0, 2); octave o >= 1 covers [2^o, 2^(o+1)).
        let octave = if v < 2.0 {
            0
        } else {
            (v.log2().floor() as usize).min(63)
        };
        let lo = if octave == 0 {
            0.0
        } else {
            (1u64 << octave) as f64
        };
        let width = if octave == 0 {
            2.0
        } else {
            (1u64 << octave) as f64
        };
        let sub = (((v - lo) / width * self.sub_buckets as f64) as usize).min(self.sub_buckets - 1);
        octave * self.sub_buckets + sub
    }

    fn bucket_midpoint(&self, index: usize) -> f64 {
        let octave = index / self.sub_buckets;
        let sub = index % self.sub_buckets;
        let lo = if octave == 0 {
            0.0
        } else {
            (1u64 << octave) as f64
        };
        let width = if octave == 0 {
            2.0
        } else {
            (1u64 << octave) as f64
        };
        lo + width * (sub as f64 + 0.5) / self.sub_buckets as f64
    }

    /// Record one non-negative sample (NaN is ignored).
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        let index = self.bucket_index(value);
        self.counts[index] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of recorded samples (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact maximum of recorded samples (zero when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Exact minimum of recorded samples (zero when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// The bucket-midpoint estimate of quantile `q` in `[0, 1]` (zero when
    /// empty). Exact endpoints are reported from the tracked min/max.
    pub fn value_at_quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max();
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp the midpoint estimate to the exact observed range.
                return self.bucket_midpoint(i).clamp(self.min, self.max);
            }
        }
        self.max()
    }
}

/// One per-replica row of a control-tick snapshot: the cumulative counters
/// the registry has seen for that replica up to the tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaSample {
    /// The replica slot.
    pub replica: usize,
    /// Engine steps executed so far.
    pub steps: u64,
    /// Cumulative busy (step) time so far, ms.
    pub busy_ms: f64,
    /// Requests completed so far.
    pub completed: u64,
    /// Requests admitted so far.
    pub admitted: u64,
}

/// One control-tick snapshot: the fleet gauges plus a per-replica row per
/// replica seen so far.
#[derive(Debug, Clone)]
pub struct TickSnapshot {
    /// Tick time.
    pub at_ms: f64,
    /// Replicas taking traffic.
    pub routable: usize,
    /// Replicas warming up.
    pub warming: usize,
    /// Windowed p95 TTFT, if observed.
    pub p95_ttft_ms: Option<f64>,
    /// Busy fraction over the window.
    pub utilization: f64,
    /// Queued requests across the fleet.
    pub queued: usize,
    /// Outstanding tokens across the fleet.
    pub outstanding_tokens: usize,
    /// Per-replica cumulative counters at this tick, indexed by slot.
    pub per_replica: Vec<ReplicaSample>,
}

/// Per-replica accumulation inside the registry.
#[derive(Debug, Clone, Copy, Default)]
struct ReplicaAccum {
    steps: u64,
    busy_ms: f64,
    completed: u64,
    admitted: u64,
}

/// Counters, gauges and histograms fed from the event stream.
///
/// The registry is itself a [`TraceSink`]: install it (alone, or behind a
/// fan-out of your own) and it maintains monotone counters, per-step /
/// per-request [log-linear histograms](LogLinearHistogram), and — at every
/// [`TraceEvent::ControlTick`] — a [`TickSnapshot`] time series with one
/// cumulative row per replica, which is exactly the shape a per-replica
/// utilization plot wants.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    /// Requests that reached the router.
    pub arrivals: u64,
    /// Requests routed to some replica.
    pub routed: u64,
    /// Requests no replica could ever admit.
    pub unroutable: u64,
    /// Requests admitted into running sets.
    pub admitted: u64,
    /// Requests rejected by replica budgets.
    pub rejected: u64,
    /// Requests completed.
    pub completed: u64,
    /// Engine steps executed.
    pub steps: u64,
    /// Prefill tokens processed.
    pub prefill_tokens: u64,
    /// Decode tokens processed.
    pub decode_tokens: u64,
    /// Scale-out events.
    pub scale_outs: u64,
    /// Scale-in events.
    pub scale_ins: u64,
    /// Replica retirements.
    pub retirements: u64,
    /// Injected replica crashes.
    pub crashes: u64,
    /// Injected link degradations.
    pub link_degrades: u64,
    /// Injected island partitions.
    pub island_partitions: u64,
    /// Completed crash recoveries.
    pub recoveries: u64,
    /// Requests re-admitted to survivors after crashes.
    pub readmitted: u64,
    /// Requests failed by crashes (fail-fast, or unroutable on recovery).
    pub failed_requests: u64,
    /// KV-cache handoffs started (disaggregated fleets; retries count).
    pub kv_transfers: u64,
    /// Total KV bytes put on the wire by started handoffs (f64 because the
    /// per-request sizes come from `MemoryModel::kv_bytes`).
    pub kv_transfer_bytes: f64,
    /// Step duration distribution, ms.
    pub step_ms: LogLinearHistogram,
    /// Step collective-time distribution, ms.
    pub step_collective_ms: LogLinearHistogram,
    /// Time-to-first-token distribution, ms.
    pub ttft_ms: LogLinearHistogram,
    /// End-to-end request latency distribution, ms.
    pub latency_ms: LogLinearHistogram,
    /// Queue-wait (arrival to admission) distribution, ms.
    pub queue_wait_ms: LogLinearHistogram,
    /// The control-tick time series.
    pub snapshots: Vec<TickSnapshot>,
    per_replica: Vec<ReplicaAccum>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn accum(&mut self, replica: usize) -> &mut ReplicaAccum {
        if replica >= self.per_replica.len() {
            self.per_replica.resize_with(replica + 1, Default::default);
        }
        &mut self.per_replica[replica]
    }

    /// The monotone counters as `(name, value)` rows, for reports.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("arrivals", self.arrivals),
            ("routed", self.routed),
            ("unroutable", self.unroutable),
            ("admitted", self.admitted),
            ("rejected", self.rejected),
            ("completed", self.completed),
            ("steps", self.steps),
            ("prefill_tokens", self.prefill_tokens),
            ("decode_tokens", self.decode_tokens),
            ("scale_outs", self.scale_outs),
            ("scale_ins", self.scale_ins),
            ("retirements", self.retirements),
            ("crashes", self.crashes),
            ("link_degrades", self.link_degrades),
            ("island_partitions", self.island_partitions),
            ("recoveries", self.recoveries),
            ("readmitted", self.readmitted),
            ("failed_requests", self.failed_requests),
            ("kv_transfers", self.kv_transfers),
        ]
    }
}

impl TraceSink for MetricsRegistry {
    fn record(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::Arrival { .. } => self.arrivals += 1,
            TraceEvent::Routed { .. } => self.routed += 1,
            TraceEvent::Unroutable { .. } => self.unroutable += 1,
            TraceEvent::Admitted { replica, .. } => {
                self.admitted += 1;
                self.accum(replica).admitted += 1;
            }
            TraceEvent::Rejected { .. } => self.rejected += 1,
            TraceEvent::Step {
                replica,
                total_ms,
                collective_ms,
                prefill_tokens,
                decode_tokens,
                ..
            } => {
                self.steps += 1;
                self.prefill_tokens += prefill_tokens as u64;
                self.decode_tokens += decode_tokens as u64;
                self.step_ms.record(total_ms);
                self.step_collective_ms.record(collective_ms);
                let a = self.accum(replica);
                a.steps += 1;
                a.busy_ms += total_ms;
            }
            TraceEvent::FirstToken { .. } => {}
            TraceEvent::Completed {
                replica,
                arrival_ms,
                admitted_ms,
                first_token_ms,
                finished_ms,
                ..
            } => {
                self.completed += 1;
                self.accum(replica).completed += 1;
                self.ttft_ms.record(first_token_ms - arrival_ms);
                self.latency_ms.record(finished_ms - arrival_ms);
                self.queue_wait_ms.record(admitted_ms - arrival_ms);
            }
            TraceEvent::ScaleOut { .. } => self.scale_outs += 1,
            TraceEvent::ScaleIn { .. } => self.scale_ins += 1,
            TraceEvent::Retired { .. } => self.retirements += 1,
            TraceEvent::ControlTick {
                at_ms,
                routable,
                warming,
                p95_ttft_ms,
                utilization,
                queued,
                outstanding_tokens,
            } => {
                let per_replica = self
                    .per_replica
                    .iter()
                    .enumerate()
                    .map(|(replica, a)| ReplicaSample {
                        replica,
                        steps: a.steps,
                        busy_ms: a.busy_ms,
                        completed: a.completed,
                        admitted: a.admitted,
                    })
                    .collect();
                self.snapshots.push(TickSnapshot {
                    at_ms,
                    routable,
                    warming,
                    p95_ttft_ms,
                    utilization,
                    queued,
                    outstanding_tokens,
                    per_replica,
                });
            }
            TraceEvent::ReplicaCommissioned { replica, .. } => {
                // Ensure the slot appears in subsequent snapshots even
                // before it executes its first step.
                let _ = self.accum(replica);
            }
            TraceEvent::ReplicaCrashed { .. } => self.crashes += 1,
            TraceEvent::LinkDegraded { .. } => self.link_degrades += 1,
            TraceEvent::IslandPartitioned { .. } => self.island_partitions += 1,
            TraceEvent::RecoveryComplete {
                readmitted, failed, ..
            } => {
                self.recoveries += 1;
                self.readmitted += readmitted as u64;
                self.failed_requests += failed as u64;
            }
            TraceEvent::KvTransferStarted { bytes, .. } => {
                self.kv_transfers += 1;
                self.kv_transfer_bytes += bytes;
            }
            TraceEvent::WarmupComplete { .. }
            | TraceEvent::DrainStarted { .. }
            | TraceEvent::LinkRestored { .. }
            | TraceEvent::RecoveryStarted { .. }
            // Landings carry no new volume: the transfer was counted when it
            // left the prefill pod.
            | TraceEvent::KvTransferComplete { .. } => {}
        }
    }
}

/// Per-request latency attribution, reconstructed from the event stream.
///
/// The phases partition the end-to-end latency exactly:
/// `queue_ms + prefill_ms + transfer_ms + decode_ms == latency_ms` (each
/// phase is a difference of adjacent timestamps, so the telescoping sum is
/// exact up to float rounding — the equivalence suite checks the tolerance).
/// Co-located requests have `transfer_ms == 0`, collapsing to the classic
/// three-phase split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestTimeline {
    /// Request id.
    pub id: u64,
    /// Serving replica slot (for a disaggregated handoff, the decode pod
    /// that finished the request).
    pub replica: usize,
    /// Arrival time.
    pub arrival_ms: f64,
    /// Admission time.
    pub admitted_ms: f64,
    /// First-token time.
    pub first_token_ms: f64,
    /// Last-token time.
    pub finished_ms: f64,
    /// Output tokens generated.
    pub output_len: usize,
    /// KV-handoff window: first transfer departure to last transfer landing
    /// (zero for co-located requests).
    pub transfer_ms: f64,
}

impl RequestTimeline {
    /// Time spent waiting for admission.
    pub fn queue_ms(&self) -> f64 {
        self.admitted_ms - self.arrival_ms
    }

    /// Time from admission to the first output token (the prefill phase,
    /// including any steps the request shared while chunking).
    pub fn prefill_ms(&self) -> f64 {
        self.first_token_ms - self.admitted_ms
    }

    /// Time from the first to the last output token, excluding any KV
    /// handoff in between (the decode phase).
    pub fn decode_ms(&self) -> f64 {
        self.finished_ms - self.first_token_ms - self.transfer_ms
    }

    /// End-to-end latency.
    pub fn latency_ms(&self) -> f64 {
        self.finished_ms - self.arrival_ms
    }

    /// Time to first token.
    pub fn ttft_ms(&self) -> f64 {
        self.first_token_ms - self.arrival_ms
    }

    /// Mean inter-token latency of the decode phase (`None` for
    /// single-token outputs, which have no inter-token gap).
    pub fn tpot_ms(&self) -> Option<f64> {
        if self.output_len >= 2 {
            Some(self.decode_ms() / (self.output_len - 1) as f64)
        } else {
            None
        }
    }
}

/// Reconstruct every completed request's timeline from an event stream, in
/// first-completion order. Streams truncated by a bounded ring yield only
/// the completions the ring retained.
///
/// A disaggregated handoff completes twice — once on its prefill pod and
/// once on its decode pod — and those halves merge into one timeline: the
/// earliest arrival/admission/first-token, the latest finish, the finishing
/// replica, the summed output length, and a `transfer_ms` spanning the first
/// [`TraceEvent::KvTransferStarted`] to the last
/// [`TraceEvent::KvTransferComplete`] for the id (so retries and re-routed
/// transfers are charged to the handoff, not to decode). Co-located streams
/// have one `Completed` per id and no transfer events, so their timelines
/// are exactly the classic per-event ones.
pub fn request_timelines(events: &[TraceEvent]) -> Vec<RequestTimeline> {
    let mut order: Vec<RequestTimeline> = Vec::new();
    let mut index: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    let mut bounds: std::collections::BTreeMap<u64, (Option<f64>, Option<f64>)> =
        std::collections::BTreeMap::new();
    for e in events {
        match *e {
            TraceEvent::Completed {
                id,
                replica,
                arrival_ms,
                admitted_ms,
                first_token_ms,
                finished_ms,
                output_len,
            } => match index.get(&id) {
                Some(&i) => {
                    let t = &mut order[i];
                    t.arrival_ms = t.arrival_ms.min(arrival_ms);
                    t.admitted_ms = t.admitted_ms.min(admitted_ms);
                    t.first_token_ms = t.first_token_ms.min(first_token_ms);
                    t.finished_ms = t.finished_ms.max(finished_ms);
                    // The later half finished the request; it owns the slot.
                    t.replica = replica;
                    t.output_len += output_len;
                }
                None => {
                    index.insert(id, order.len());
                    order.push(RequestTimeline {
                        id,
                        replica,
                        arrival_ms,
                        admitted_ms,
                        first_token_ms,
                        finished_ms,
                        output_len,
                        transfer_ms: 0.0,
                    });
                }
            },
            TraceEvent::KvTransferStarted { id, at_ms, .. } => {
                let b = bounds.entry(id).or_insert((None, None));
                if b.0.is_none() {
                    b.0 = Some(at_ms);
                }
            }
            TraceEvent::KvTransferComplete { id, at_ms, .. } => {
                bounds.entry(id).or_insert((None, None)).1 = Some(at_ms);
            }
            _ => {}
        }
    }
    for t in &mut order {
        // A transfer that started but never landed (the request failed on
        // the wire) leaves the prefill half's timeline transfer-free.
        if let Some(&(Some(start), Some(end))) = bounds.get(&t.id) {
            t.transfer_ms = end - start;
        }
    }
    order
}

/// Aggregate attribution over a set of [`RequestTimeline`]s: how much of the
/// mean end-to-end latency each lifecycle phase owns.
#[derive(Debug, Clone)]
pub struct AttributionSummary {
    /// Requests attributed.
    pub requests: usize,
    /// Queue-wait distribution, ms.
    pub queue: LatencySummary,
    /// Prefill-phase distribution, ms.
    pub prefill: LatencySummary,
    /// KV-handoff (prefill→decode transfer) distribution, ms.
    pub transfer: LatencySummary,
    /// Decode-phase distribution, ms.
    pub decode: LatencySummary,
    /// End-to-end latency distribution, ms.
    pub latency: LatencySummary,
}

impl AttributionSummary {
    /// Summarise `timelines` (all-empty summaries when none).
    pub fn from_timelines(timelines: &[RequestTimeline]) -> Self {
        let collect =
            |f: fn(&RequestTimeline) -> f64| -> Vec<f64> { timelines.iter().map(f).collect() };
        Self {
            requests: timelines.len(),
            queue: latency_summary(&collect(RequestTimeline::queue_ms)),
            prefill: latency_summary(&collect(RequestTimeline::prefill_ms)),
            transfer: latency_summary(&collect(|t: &RequestTimeline| t.transfer_ms)),
            decode: latency_summary(&collect(RequestTimeline::decode_ms)),
            latency: latency_summary(&collect(RequestTimeline::latency_ms)),
        }
    }

    /// Render as markdown rows (phase | mean | p50 | p95 | max).
    pub fn render_markdown(&self) -> Vec<String> {
        let row = |name: &str, s: &LatencySummary| {
            format!(
                "| {name} | {:.1} | {:.1} | {:.1} | {:.1} |",
                s.mean_ms, s.p50_ms, s.p95_ms, s.max_ms
            )
        };
        vec![
            "| phase | mean (ms) | p50 (ms) | p95 (ms) | max (ms) |".to_string(),
            "|---|---|---|---|---|".to_string(),
            row("queue wait", &self.queue),
            row("prefill", &self.prefill),
            row("kv transfer", &self.transfer),
            row("decode", &self.decode),
            row("end-to-end", &self.latency),
        ]
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a finite `f64` for JSON (trace timestamps are microseconds with
/// fractional precision preserved).
fn json_num(v: f64) -> String {
    // simlint::allow(float-eq): rendering check, not control flow — fract()
    // is exactly 0.0 iff the value is an integer, which is what JSON needs
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Export an event stream as Chrome trace-event JSON.
///
/// The output is the object form (`{"traceEvents": [...]}`) both
/// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load directly:
/// one process named `fleet`, one thread (track) per replica named by
/// `replica_names` (falling back to `replica N`), a complete (`"X"`) span
/// per engine step carrying the compute / collective / intra-island / spine
/// split in its `args`, and instant (`"i"`) markers for request lifecycle
/// and replica scale / warm-up / drain / retire events. Timestamps are
/// microseconds, per the trace-event spec.
pub fn chrome_trace_json(events: &[TraceEvent], replica_names: &[String]) -> String {
    let mut rows: Vec<String> = Vec::new();
    rows.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"fleet\"}}"
            .to_string(),
    );
    // One named track per replica; tid = slot + 1 (tid 0 is the control
    // plane's track for fleet-level instants).
    let replicas = replica_names.len().max(
        events
            .iter()
            .filter_map(TraceEvent::replica)
            .map(|r| r + 1)
            .max()
            .unwrap_or(0),
    );
    rows.push(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"control plane\"}}"
            .to_string(),
    );
    for slot in 0..replicas {
        let name = replica_names
            .get(slot)
            .cloned()
            .unwrap_or_else(|| format!("replica {slot}"));
        rows.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            slot + 1,
            json_escape(&name)
        ));
    }

    let us = |ms: f64| json_num(ms * 1_000.0);
    let instant = |name: &str, tid: usize, at_ms: f64, args: String| {
        format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
             \"tid\":{tid},\"ts\":{},\"args\":{{{args}}}}}",
            us(at_ms)
        )
    };
    for event in events {
        match *event {
            TraceEvent::Step {
                replica,
                start_ms,
                total_ms,
                compute_ms,
                collective_ms,
                intra_island_ms,
                spine_ms,
                prefill_tokens,
                decode_tokens,
            } => rows.push(format!(
                "{{\"name\":\"step\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{{\"compute_ms\":{},\
                 \"collective_ms\":{},\"intra_island_ms\":{},\"spine_ms\":{},\
                 \"prefill_tokens\":{prefill_tokens},\
                 \"decode_tokens\":{decode_tokens}}}}}",
                replica + 1,
                us(start_ms),
                us(total_ms),
                json_num(compute_ms),
                json_num(collective_ms),
                json_num(intra_island_ms),
                json_num(spine_ms),
            )),
            TraceEvent::Arrival { id, at_ms } => {
                rows.push(instant("arrival", 0, at_ms, format!("\"id\":{id}")));
            }
            TraceEvent::Unroutable { id, at_ms } => {
                rows.push(instant("unroutable", 0, at_ms, format!("\"id\":{id}")));
            }
            TraceEvent::Admitted { id, replica, at_ms } => {
                rows.push(instant(
                    "admitted",
                    replica + 1,
                    at_ms,
                    format!("\"id\":{id}"),
                ));
            }
            TraceEvent::Rejected { id, replica, at_ms } => {
                rows.push(instant(
                    "rejected",
                    replica + 1,
                    at_ms,
                    format!("\"id\":{id}"),
                ));
            }
            TraceEvent::FirstToken { id, replica, at_ms } => {
                rows.push(instant(
                    "first token",
                    replica + 1,
                    at_ms,
                    format!("\"id\":{id}"),
                ));
            }
            TraceEvent::ReplicaCommissioned {
                replica,
                at_ms,
                ready_ms,
            } => rows.push(instant(
                "commissioned",
                replica + 1,
                at_ms,
                format!("\"ready_ms\":{}", json_num(ready_ms)),
            )),
            TraceEvent::WarmupComplete { replica, at_ms } => {
                rows.push(instant(
                    "warm-up complete",
                    replica + 1,
                    at_ms,
                    String::new(),
                ));
            }
            TraceEvent::DrainStarted { replica, at_ms } => {
                rows.push(instant("drain started", replica + 1, at_ms, String::new()));
            }
            TraceEvent::Retired { replica, at_ms } => {
                rows.push(instant("retired", replica + 1, at_ms, String::new()));
            }
            TraceEvent::ScaleOut {
                at_ms,
                replicas_after,
            } => rows.push(instant(
                "scale-out",
                0,
                at_ms,
                format!("\"replicas_after\":{replicas_after}"),
            )),
            TraceEvent::ScaleIn {
                at_ms,
                replicas_after,
            } => rows.push(instant(
                "scale-in",
                0,
                at_ms,
                format!("\"replicas_after\":{replicas_after}"),
            )),
            TraceEvent::ReplicaCrashed {
                replica,
                at_ms,
                lost_running,
                lost_queued,
            } => rows.push(instant(
                "replica crashed",
                replica + 1,
                at_ms,
                format!("\"lost_running\":{lost_running},\"lost_queued\":{lost_queued}"),
            )),
            TraceEvent::LinkDegraded {
                replica,
                at_ms,
                until_ms,
            } => rows.push(instant(
                "link degraded",
                replica + 1,
                at_ms,
                format!("\"until_ms\":{}", json_num(until_ms)),
            )),
            TraceEvent::IslandPartitioned {
                island,
                replicas,
                at_ms,
                until_ms,
            } => rows.push(instant(
                "island partitioned",
                0,
                at_ms,
                format!(
                    "\"island\":{island},\"replicas\":{replicas},\"until_ms\":{}",
                    json_num(until_ms)
                ),
            )),
            TraceEvent::LinkRestored { replica, at_ms } => {
                rows.push(instant("link restored", replica + 1, at_ms, String::new()));
            }
            TraceEvent::RecoveryStarted {
                replica,
                at_ms,
                transfer_ms,
            } => rows.push(instant(
                "recovery started",
                replica + 1,
                at_ms,
                format!("\"transfer_ms\":{}", json_num(transfer_ms)),
            )),
            TraceEvent::RecoveryComplete {
                replica,
                at_ms,
                readmitted,
                failed,
            } => rows.push(instant(
                "recovery complete",
                replica + 1,
                at_ms,
                format!("\"readmitted\":{readmitted},\"failed\":{failed}"),
            )),
            TraceEvent::KvTransferStarted {
                id,
                from,
                to,
                bytes,
                at_ms,
            } => rows.push(instant(
                "kv transfer started",
                from + 1,
                at_ms,
                format!("\"id\":{id},\"to\":{to},\"bytes\":{}", json_num(bytes)),
            )),
            TraceEvent::KvTransferComplete {
                id,
                from,
                to,
                bytes,
                at_ms,
            } => rows.push(instant(
                "kv transfer complete",
                to + 1,
                at_ms,
                format!("\"id\":{id},\"from\":{from},\"bytes\":{}", json_num(bytes)),
            )),
            // Routing, completion and tick gauges stay out of the visual
            // trace: routing duplicates admission, completions duplicate the
            // final step span, and tick gauges belong to the registry's time
            // series rather than a timeline track.
            TraceEvent::Routed { .. }
            | TraceEvent::Completed { .. }
            | TraceEvent::ControlTick { .. } => {}
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&rows.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completed(id: u64, base: f64) -> TraceEvent {
        TraceEvent::Completed {
            id,
            replica: 0,
            arrival_ms: base,
            admitted_ms: base + 10.0,
            first_token_ms: base + 35.0,
            finished_ms: base + 95.0,
            output_len: 13,
        }
    }

    fn step(replica: usize, start_ms: f64) -> TraceEvent {
        TraceEvent::Step {
            replica,
            start_ms,
            total_ms: 4.0,
            compute_ms: 3.0,
            collective_ms: 1.0,
            intra_island_ms: 0.75,
            spine_ms: 0.25,
            prefill_tokens: 128,
            decode_tokens: 8,
        }
    }

    #[test]
    fn null_sink_drops_everything_and_shared_sink_shares() {
        let mut null = NullSink;
        null.record(completed(0, 0.0));

        let (sink, handle) = SharedSink::new(TraceRecorder::new());
        let clone = sink.clone();
        sink.emit(step(0, 0.0));
        clone.emit(completed(1, 0.0));
        assert_eq!(handle.borrow().len(), 2);
        assert_eq!(format!("{sink:?}"), "SharedSink");
    }

    #[test]
    fn bounded_recorder_keeps_the_newest_events_in_order() {
        let mut rec = TraceRecorder::bounded(3);
        for i in 0..5 {
            rec.record(TraceEvent::Arrival {
                id: i,
                at_ms: i as f64,
            });
        }
        assert_eq!(rec.dropped(), 2);
        assert_eq!(rec.len(), 3);
        let ids: Vec<u64> = rec
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::Arrival { id, .. } => *id,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(ids, vec![2, 3, 4]);
        // An unbounded recorder never drops.
        let mut all = TraceRecorder::new();
        for i in 0..5 {
            all.record(TraceEvent::Arrival {
                id: i,
                at_ms: i as f64,
            });
        }
        assert_eq!(all.dropped(), 0);
        assert_eq!(all.events().len(), 5);
        assert!(!all.is_empty());
    }

    #[test]
    fn log_linear_histogram_tracks_quantiles_within_bucket_error() {
        let mut h = LogLinearHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.value_at_quantile(0.5), 0.0);
        for v in 1..=1000 {
            h.record(v as f64);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 1000.0);
        // Log-linear with 16 sub-buckets: <= ~6.25% relative error.
        let p50 = h.value_at_quantile(0.5);
        assert!((p50 - 500.0).abs() / 500.0 < 0.07, "p50 {p50}");
        let p95 = h.value_at_quantile(0.95);
        assert!((p95 - 950.0).abs() / 950.0 < 0.07, "p95 {p95}");
        assert_eq!(h.value_at_quantile(0.0), 1.0);
        assert_eq!(h.value_at_quantile(1.0), 1000.0);
        // NaN is ignored, tiny and sub-1.0 values land in octave zero.
        h.record(f64::NAN);
        assert_eq!(h.count(), 1000);
        let mut small = LogLinearHistogram::with_sub_buckets(4);
        small.record(0.0);
        small.record(0.3);
        small.record(1.7);
        assert_eq!(small.count(), 3);
        assert!(small.value_at_quantile(0.5) <= 1.7);
    }

    #[test]
    fn registry_counts_and_snapshots_per_replica_series() {
        let mut reg = MetricsRegistry::new();
        reg.record(TraceEvent::Arrival { id: 0, at_ms: 0.0 });
        reg.record(TraceEvent::Routed {
            id: 0,
            replica: 1,
            at_ms: 0.0,
        });
        reg.record(TraceEvent::Admitted {
            id: 0,
            replica: 1,
            at_ms: 1.0,
        });
        reg.record(step(1, 1.0));
        reg.record(step(1, 5.0));
        reg.record(completed(7, 0.0));
        reg.record(TraceEvent::ControlTick {
            at_ms: 200.0,
            routable: 2,
            warming: 0,
            p95_ttft_ms: Some(35.0),
            utilization: 0.5,
            queued: 0,
            outstanding_tokens: 10,
        });
        reg.record(TraceEvent::ScaleOut {
            at_ms: 200.0,
            replicas_after: 3,
        });
        assert_eq!(reg.arrivals, 1);
        assert_eq!(reg.routed, 1);
        assert_eq!(reg.admitted, 1);
        assert_eq!(reg.steps, 2);
        assert_eq!(reg.prefill_tokens, 256);
        assert_eq!(reg.decode_tokens, 16);
        assert_eq!(reg.completed, 1);
        assert_eq!(reg.scale_outs, 1);
        assert_eq!(reg.step_ms.count(), 2);
        assert_eq!(reg.ttft_ms.count(), 1);
        assert_eq!(reg.queue_wait_ms.count(), 1);
        // The snapshot carries a row for every replica seen, cumulative.
        assert_eq!(reg.snapshots.len(), 1);
        let snap = &reg.snapshots[0];
        assert_eq!(snap.routable, 2);
        assert_eq!(snap.per_replica.len(), 2);
        assert_eq!(snap.per_replica[1].steps, 2);
        assert!((snap.per_replica[1].busy_ms - 8.0).abs() < 1e-12);
        assert_eq!(snap.per_replica[1].admitted, 1);
        assert_eq!(snap.per_replica[0].steps, 0);
        // Counters render as rows.
        let counters = reg.counters();
        assert!(counters.contains(&("steps", 2)));
        assert!(counters.contains(&("completed", 1)));
    }

    #[test]
    fn request_timelines_partition_latency_exactly() {
        let events = vec![step(0, 0.0), completed(3, 100.0), completed(4, 250.0)];
        let timelines = request_timelines(&events);
        assert_eq!(timelines.len(), 2);
        for t in &timelines {
            assert_eq!(t.transfer_ms, 0.0, "co-located timelines carry no transfer");
            let sum = t.queue_ms() + t.prefill_ms() + t.transfer_ms + t.decode_ms();
            assert!((sum - t.latency_ms()).abs() < 1e-9);
            assert_eq!(t.ttft_ms(), t.queue_ms() + t.prefill_ms());
            let tpot = t.tpot_ms().expect("13 output tokens have gaps");
            assert!((tpot - t.decode_ms() / 12.0).abs() < 1e-12);
        }
        let summary = AttributionSummary::from_timelines(&timelines);
        assert_eq!(summary.requests, 2);
        assert_eq!(summary.queue.mean_ms, 10.0);
        assert_eq!(summary.prefill.mean_ms, 25.0);
        assert_eq!(summary.decode.mean_ms, 60.0);
        assert_eq!(summary.latency.mean_ms, 95.0);
        let rows = summary.render_markdown();
        assert_eq!(rows.len(), 7);
        assert!(rows[2].contains("queue wait"));
        // Single-token outputs have no TPOT.
        let single = RequestTimeline {
            output_len: 1,
            ..timelines[0]
        };
        assert_eq!(single.tpot_ms(), None);
    }

    #[test]
    fn a_handoff_merges_into_one_timeline_with_a_transfer_phase() {
        // Prefill half on pod 0 (one output token at 30), KV handoff 30→42,
        // decode half on pod 2 finishing the remaining 12 tokens at 90.
        let events = vec![
            TraceEvent::Completed {
                id: 9,
                replica: 0,
                arrival_ms: 0.0,
                admitted_ms: 5.0,
                first_token_ms: 30.0,
                finished_ms: 30.0,
                output_len: 1,
            },
            TraceEvent::KvTransferStarted {
                id: 9,
                from: 0,
                to: 2,
                bytes: 4096.0,
                at_ms: 30.0,
            },
            TraceEvent::KvTransferComplete {
                id: 9,
                from: 0,
                to: 2,
                bytes: 4096.0,
                at_ms: 42.0,
            },
            TraceEvent::Completed {
                id: 9,
                replica: 2,
                arrival_ms: 42.0,
                admitted_ms: 44.0,
                first_token_ms: 46.0,
                finished_ms: 90.0,
                output_len: 12,
            },
        ];
        let timelines = request_timelines(&events);
        assert_eq!(timelines.len(), 1, "both halves merge into one timeline");
        let t = timelines[0];
        assert_eq!(t.replica, 2, "the decode pod finished the request");
        assert_eq!(t.output_len, 13);
        assert_eq!(t.transfer_ms, 12.0);
        assert_eq!(t.first_token_ms, 30.0);
        assert_eq!(t.finished_ms, 90.0);
        let sum = t.queue_ms() + t.prefill_ms() + t.transfer_ms + t.decode_ms();
        assert!((sum - t.latency_ms()).abs() < 1e-9);
        // The registry counts wire traffic once, at departure.
        let mut reg = MetricsRegistry::new();
        for e in &events {
            reg.record(*e);
        }
        assert_eq!(reg.kv_transfers, 1);
        assert!((reg.kv_transfer_bytes - 4096.0).abs() < 1e-9);
        assert!(reg.counters().contains(&("kv_transfers", 1)));
        // Both endpoints export as instants on the pods doing the work.
        let json = chrome_trace_json(&events, &[]);
        assert!(json.contains("\"kv transfer started\""));
        assert!(json.contains("\"kv transfer complete\""));
        assert!(json.contains("\"bytes\":4096"));
    }

    #[test]
    fn chrome_trace_has_a_track_per_replica_and_a_span_per_step() {
        let events = vec![
            TraceEvent::ReplicaCommissioned {
                replica: 0,
                at_ms: 0.0,
                ready_ms: 0.0,
            },
            step(0, 0.0),
            step(1, 2.5),
            TraceEvent::FirstToken {
                id: 0,
                replica: 0,
                at_ms: 4.0,
            },
            TraceEvent::ScaleOut {
                at_ms: 200.0,
                replicas_after: 2,
            },
            TraceEvent::DrainStarted {
                replica: 1,
                at_ms: 400.0,
            },
            TraceEvent::Retired {
                replica: 1,
                at_ms: 500.0,
            },
        ];
        let names = vec!["a100 \"pod\"".to_string(), "4070S".to_string()];
        let json = chrome_trace_json(&events, &names);
        // Two replica tracks plus the control plane, escaped names intact.
        assert_eq!(json.matches("\"thread_name\"").count(), 3);
        assert!(json.contains("a100 \\\"pod\\\""));
        // One X span per step, on distinct tracks, with the cost split.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"intra_island_ms\":0.75"));
        assert!(json.contains("\"spine_ms\":0.25"));
        assert!(json.contains("\"ts\":2500")); // 2.5 ms -> 2500 us
                                               // Instants for lifecycle and scale events.
        assert!(json.contains("\"scale-out\""));
        assert!(json.contains("\"drain started\""));
        assert!(json.contains("\"retired\""));
        assert!(json.contains("\"first token\""));
        // Balanced braces/brackets — a structural smoke test that the
        // hand-built JSON is well formed.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Names beyond the provided list fall back to `replica N`.
        let fallback = chrome_trace_json(&[step(2, 0.0)], &[]);
        assert!(fallback.contains("replica 2"));
    }

    #[test]
    fn fault_events_count_in_the_registry_and_export_as_instants() {
        let events = vec![
            TraceEvent::ReplicaCrashed {
                replica: 0,
                at_ms: 500.0,
                lost_running: 2,
                lost_queued: 3,
            },
            TraceEvent::RecoveryStarted {
                replica: 0,
                at_ms: 500.0,
                transfer_ms: 40.0,
            },
            TraceEvent::LinkDegraded {
                replica: 1,
                at_ms: 600.0,
                until_ms: 1_100.0,
            },
            TraceEvent::IslandPartitioned {
                island: 1,
                replicas: 2,
                at_ms: 700.0,
                until_ms: 900.0,
            },
            TraceEvent::LinkRestored {
                replica: 1,
                at_ms: 1_100.0,
            },
            TraceEvent::RecoveryComplete {
                replica: 0,
                at_ms: 540.0,
                readmitted: 4,
                failed: 1,
            },
        ];
        let mut reg = MetricsRegistry::new();
        for e in &events {
            reg.record(*e);
        }
        assert_eq!(reg.crashes, 1);
        assert_eq!(reg.link_degrades, 1);
        assert_eq!(reg.island_partitions, 1);
        assert_eq!(reg.recoveries, 1);
        assert_eq!(reg.readmitted, 4);
        assert_eq!(reg.failed_requests, 1);
        let counters = reg.counters();
        assert!(counters.contains(&("crashes", 1)));
        assert!(counters.contains(&("recoveries", 1)));
        // Every fault event carries a timestamp and (except the island
        // partition) a replica.
        assert_eq!(events[0].at_ms(), 500.0);
        assert_eq!(events[0].replica(), Some(0));
        assert_eq!(events[3].replica(), None);
        let json = chrome_trace_json(&events, &[]);
        assert!(json.contains("\"replica crashed\""));
        assert!(json.contains("\"lost_running\":2"));
        assert!(json.contains("\"recovery started\""));
        assert!(json.contains("\"link degraded\""));
        assert!(json.contains("\"island partitioned\""));
        assert!(json.contains("\"link restored\""));
        assert!(json.contains("\"recovery complete\""));
        assert!(json.contains("\"readmitted\":4"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
