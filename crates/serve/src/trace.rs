//! Deterministic request-trace generation: Poisson arrivals with uniform
//! prompt/output length distributions.

use crate::request::Request;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of a synthetic serving trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of requests in the trace.
    pub num_requests: usize,
    /// Mean arrival rate in requests per second (Poisson process).
    pub arrival_rate_rps: f64,
    /// Inclusive prompt-length bounds in tokens.
    pub prompt_len_range: (usize, usize),
    /// Inclusive output-length bounds in tokens.
    pub output_len_range: (usize, usize),
    /// RNG seed; the same seed always yields the same trace.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            num_requests: 64,
            arrival_rate_rps: 4.0,
            prompt_len_range: (64, 512),
            output_len_range: (16, 128),
            seed: 42,
        }
    }
}

impl TraceConfig {
    /// Generate the trace: exponential interarrival gaps at the configured
    /// rate and uniform prompt/output lengths, all from one seeded RNG.
    pub fn generate(&self) -> Vec<Request> {
        assert!(self.arrival_rate_rps > 0.0, "arrival rate must be positive");
        assert!(
            self.prompt_len_range.0 >= 1 && self.prompt_len_range.0 <= self.prompt_len_range.1,
            "invalid prompt length range"
        );
        assert!(
            self.output_len_range.0 >= 1 && self.output_len_range.0 <= self.output_len_range.1,
            "invalid output length range"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut clock_ms = 0.0f64;
        (0..self.num_requests)
            .map(|id| {
                // Exponential interarrival gap: -ln(1 - U) / rate seconds.
                let u: f64 = rng.gen_range(0.0..1.0);
                clock_ms += -(1.0 - u).ln() / self.arrival_rate_rps * 1e3;
                Request {
                    id: id as u64,
                    arrival_ms: clock_ms,
                    prompt_len: rng.gen_range(self.prompt_len_range.0..=self.prompt_len_range.1),
                    output_len: rng.gen_range(self.output_len_range.0..=self.output_len_range.1),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_per_seed() {
        let cfg = TraceConfig::default();
        assert_eq!(cfg.generate(), cfg.generate());
        let other = TraceConfig {
            seed: 43,
            ..TraceConfig::default()
        };
        assert_ne!(cfg.generate(), other.generate());
    }

    #[test]
    fn arrivals_are_monotone_and_lengths_in_range() {
        let cfg = TraceConfig {
            num_requests: 200,
            ..TraceConfig::default()
        };
        let trace = cfg.generate();
        assert_eq!(trace.len(), 200);
        for window in trace.windows(2) {
            assert!(window[0].arrival_ms <= window[1].arrival_ms);
        }
        for r in &trace {
            assert!((64..=512).contains(&r.prompt_len));
            assert!((16..=128).contains(&r.output_len));
            assert_eq!(r.total_tokens(), r.prompt_len + r.output_len);
        }
    }

    #[test]
    fn mean_interarrival_tracks_the_rate() {
        let cfg = TraceConfig {
            num_requests: 2000,
            arrival_rate_rps: 10.0,
            ..TraceConfig::default()
        };
        let trace = cfg.generate();
        let span_s = trace.last().unwrap().arrival_ms / 1e3;
        let rate = trace.len() as f64 / span_s;
        assert!((7.0..13.0).contains(&rate), "empirical rate {rate}");
    }
}
