//! Deterministic request-trace generation: Poisson arrivals with uniform
//! prompt/output length distributions, stationary ([`TraceConfig`]) or
//! piecewise-rate bursty ([`BurstyTraceConfig`]).

use crate::request::Request;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Parameters of a synthetic serving trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of requests in the trace.
    pub num_requests: usize,
    /// Mean arrival rate in requests per second (Poisson process).
    pub arrival_rate_rps: f64,
    /// Inclusive prompt-length bounds in tokens.
    pub prompt_len_range: (usize, usize),
    /// Inclusive output-length bounds in tokens.
    pub output_len_range: (usize, usize),
    /// RNG seed; the same seed always yields the same trace.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            num_requests: 64,
            arrival_rate_rps: 4.0,
            prompt_len_range: (64, 512),
            output_len_range: (16, 128),
            seed: 42,
        }
    }
}

impl TraceConfig {
    /// Generate the trace: exponential interarrival gaps at the configured
    /// rate and uniform prompt/output lengths, all from one seeded RNG. A
    /// stationary trace is exactly a single-phase bursty trace (same RNG
    /// draw order), so this delegates to [`BurstyTraceConfig::generate`].
    pub fn generate(&self) -> Vec<Request> {
        BurstyTraceConfig {
            phases: vec![BurstPhase {
                arrival_rate_rps: self.arrival_rate_rps,
                num_requests: self.num_requests,
            }],
            prompt_len_range: self.prompt_len_range,
            output_len_range: self.output_len_range,
            seed: self.seed,
        }
        .generate()
    }
}

/// One phase of a non-stationary (piecewise-rate) Poisson trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstPhase {
    /// Mean arrival rate of this phase in requests per second.
    pub arrival_rate_rps: f64,
    /// Requests generated in this phase.
    pub num_requests: usize,
}

/// A bursty serving trace: a sequence of Poisson phases with different
/// rates (e.g. calm → spike → calm), sharing one seeded RNG and one clock —
/// the non-stationary offered load the SLO autoscaler is exercised against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstyTraceConfig {
    /// The phases, in order.
    pub phases: Vec<BurstPhase>,
    /// Inclusive prompt-length bounds in tokens.
    pub prompt_len_range: (usize, usize),
    /// Inclusive output-length bounds in tokens.
    pub output_len_range: (usize, usize),
    /// RNG seed; the same seed always yields the same trace.
    pub seed: u64,
}

impl BurstyTraceConfig {
    /// The canonical calm → spike → calm shape.
    pub fn spike(
        calm_rps: f64,
        spike_rps: f64,
        calm_requests: usize,
        spike_requests: usize,
    ) -> Self {
        Self {
            phases: vec![
                BurstPhase {
                    arrival_rate_rps: calm_rps,
                    num_requests: calm_requests,
                },
                BurstPhase {
                    arrival_rate_rps: spike_rps,
                    num_requests: spike_requests,
                },
                BurstPhase {
                    arrival_rate_rps: calm_rps,
                    num_requests: calm_requests,
                },
            ],
            prompt_len_range: (64, 256),
            output_len_range: (16, 64),
            seed: 42,
        }
    }

    /// Total requests across all phases.
    pub fn num_requests(&self) -> usize {
        self.phases.iter().map(|p| p.num_requests).sum()
    }

    /// Index ranges of each phase's requests inside the generated trace
    /// (the per-phase arrival-count conservation the unit test pins).
    pub fn phase_ranges(&self) -> Vec<Range<usize>> {
        let mut start = 0usize;
        self.phases
            .iter()
            .map(|p| {
                let range = start..start + p.num_requests;
                start += p.num_requests;
                range
            })
            .collect()
    }

    /// Generate the trace: each phase draws exponential interarrival gaps at
    /// its own rate; the clock and request ids carry across phases, so the
    /// result is one monotone trace.
    pub fn generate(&self) -> Vec<Request> {
        assert!(!self.phases.is_empty(), "a bursty trace needs phases");
        assert!(
            self.phases.iter().all(|p| p.arrival_rate_rps > 0.0),
            "arrival rates must be positive"
        );
        assert!(
            self.prompt_len_range.0 >= 1 && self.prompt_len_range.0 <= self.prompt_len_range.1,
            "invalid prompt length range"
        );
        assert!(
            self.output_len_range.0 >= 1 && self.output_len_range.0 <= self.output_len_range.1,
            "invalid output length range"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut clock_ms = 0.0f64;
        let mut id = 0u64;
        let mut trace = Vec::with_capacity(self.num_requests());
        for phase in &self.phases {
            for _ in 0..phase.num_requests {
                let u: f64 = rng.gen_range(0.0..1.0);
                clock_ms += -(1.0 - u).ln() / phase.arrival_rate_rps * 1e3;
                trace.push(Request {
                    id,
                    arrival_ms: clock_ms,
                    prompt_len: rng.gen_range(self.prompt_len_range.0..=self.prompt_len_range.1),
                    output_len: rng.gen_range(self.output_len_range.0..=self.output_len_range.1),
                });
                id += 1;
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_per_seed() {
        let cfg = TraceConfig::default();
        assert_eq!(cfg.generate(), cfg.generate());
        let other = TraceConfig {
            seed: 43,
            ..TraceConfig::default()
        };
        assert_ne!(cfg.generate(), other.generate());
    }

    #[test]
    fn arrivals_are_monotone_and_lengths_in_range() {
        let cfg = TraceConfig {
            num_requests: 200,
            ..TraceConfig::default()
        };
        let trace = cfg.generate();
        assert_eq!(trace.len(), 200);
        for window in trace.windows(2) {
            assert!(window[0].arrival_ms <= window[1].arrival_ms);
        }
        for r in &trace {
            assert!((64..=512).contains(&r.prompt_len));
            assert!((16..=128).contains(&r.output_len));
            assert_eq!(r.total_tokens(), r.prompt_len + r.output_len);
        }
    }

    #[test]
    fn bursty_trace_conserves_arrival_counts_per_phase() {
        let cfg = BurstyTraceConfig::spike(2.0, 40.0, 50, 200);
        let trace = cfg.generate();
        assert_eq!(trace.len(), cfg.num_requests());
        assert_eq!(trace.len(), 300);
        // Determinism.
        assert_eq!(trace, cfg.generate());
        // Arrivals are globally monotone and ids are the trace order.
        for (i, pair) in trace.windows(2).enumerate() {
            assert!(pair[0].arrival_ms <= pair[1].arrival_ms);
            assert_eq!(pair[0].id, i as u64);
        }
        // Every phase contributed exactly its configured arrival count, and
        // the empirical rate inside each phase tracks its configuration (the
        // spike really is an order of magnitude hotter).
        let ranges = cfg.phase_ranges();
        assert_eq!(ranges.len(), 3);
        let mut phase_start_ms = 0.0;
        for (range, phase) in ranges.iter().zip(&cfg.phases) {
            assert_eq!(range.len(), phase.num_requests);
            let end_ms = trace[range.end - 1].arrival_ms;
            let span_s = (end_ms - phase_start_ms) / 1e3;
            let rate = phase.num_requests as f64 / span_s;
            assert!(
                rate > phase.arrival_rate_rps * 0.6 && rate < phase.arrival_rate_rps * 1.6,
                "phase rate {rate} vs configured {}",
                phase.arrival_rate_rps
            );
            phase_start_ms = end_ms;
        }
    }

    #[test]
    fn mean_interarrival_tracks_the_rate() {
        let cfg = TraceConfig {
            num_requests: 2000,
            arrival_rate_rps: 10.0,
            ..TraceConfig::default()
        };
        let trace = cfg.generate();
        let span_s = trace.last().unwrap().arrival_ms / 1e3;
        let rate = trace.len() as f64 / span_s;
        assert!((7.0..13.0).contains(&rate), "empirical rate {rate}");
    }
}
